#ifndef RCONS_WIDGET_HPP
#define RCONS_WIDGET_HPP
struct Widget { int id = 0; };
#endif  // RCONS_WIDGET_HPP
