#pragma once
#include <string>
using namespace std;
struct Widget { string name; };
