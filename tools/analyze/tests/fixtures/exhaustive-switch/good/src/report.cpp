#include "sim/explorer_config.hpp"
const char* name(sim::StopReason r) {
  switch (r) {
    case sim::StopReason::kNone: return "none";
    case sim::StopReason::kVisitedCap: return "cap";
    case sim::StopReason::kDeadline: return "deadline";
  }
  return "?";
}
const char* terse(sim::StopReason r) {
  switch (r) {
    case sim::StopReason::kNone: return "none";
    default:  // forward compatibility: unnamed reasons render as stopped
      return "stopped";
  }
}
