#include "sim/explorer_config.hpp"
const char* name(sim::StopReason r) {
  switch (r) {
    case sim::StopReason::kNone: return "none";
    case sim::StopReason::kVisitedCap: return "cap";
  }
  return "?";
}
