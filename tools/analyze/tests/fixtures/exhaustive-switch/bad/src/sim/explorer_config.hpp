namespace sim {
enum class StopReason { kNone, kVisitedCap, kDeadline };
}
