#include <utility>
#include <vector>
namespace obs {
std::vector<std::pair<const char*, const char*>> metric_names() {
  return {
      {"engine.visited", "states inserted into the visited set"},
      {"engine.rehashes", "reserved: table growth events"},
  };
}
std::vector<std::pair<const char*, const char*>> span_names() {
  return {
      {"probe", "pre-sizing probe run"},
      {"minimize", "reserved: schedule minimization"},
  };
}
}  // namespace obs
