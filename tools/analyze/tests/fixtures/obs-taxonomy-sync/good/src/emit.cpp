namespace obs { struct Span { Span(int, const char*); }; }
void emit(int session) {
  const char* metric = "engine.visited";
  obs::Span span(session, "probe");
  (void)metric;
}
