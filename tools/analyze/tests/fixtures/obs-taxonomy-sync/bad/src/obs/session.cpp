#include <utility>
#include <vector>
namespace obs {
std::vector<std::pair<const char*, const char*>> metric_names() {
  return {
      {"engine.visited", "states inserted into the visited set"},
      {"engine.orphaned", "documented but never published anywhere"},
  };
}
std::vector<std::pair<const char*, const char*>> span_names() {
  return {
      {"probe", "pre-sizing probe run"},
  };
}
}  // namespace obs
