namespace obs { struct Span { Span(int, const char*); }; }
void emit(int session) {
  const char* undocumented = "engine.mystery_counter";
  obs::Span span(session, "undocumented_span");
  (void)undocumented;
}
