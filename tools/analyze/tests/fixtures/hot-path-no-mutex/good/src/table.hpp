// rcons-lint: hot-path
#include <mutex>
struct Table {
  // rcons-lint: allow(hot-path-no-mutex) growth-only lock, never taken per insert
  std::mutex growth_mu;
};
