// rcons-lint: hot-path
#include <mutex>
struct Table {
  std::mutex per_insert_mu;  // unannotated lock in a hot-tagged file
  int get() {
    std::lock_guard<std::mutex> lock(per_insert_mu);
    return 0;
  }
};
