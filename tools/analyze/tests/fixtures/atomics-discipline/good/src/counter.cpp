// Exemplar: every atomic op names its order, including multi-line calls.
#include <atomic>
void good(std::atomic<int>& a) {
  a.store(1, std::memory_order_release);
  (void)a.load(std::memory_order_acquire);
  a.fetch_add(1, std::memory_order_relaxed);
  int expected = 0;
  a.compare_exchange_strong(expected, 2,
                            std::memory_order_seq_cst,
                            std::memory_order_acquire);
  // rcons-lint: allow(atomics-discipline) exercising the allow grammar on a deliberate omission
  a.store(3);
}
