// Exemplar: implicit seq_cst on every op — each one is a finding.
#include <atomic>
void bad(std::atomic<int>& a) {
  a.store(1);
  (void)a.load();
  a.fetch_add(1);
  int expected = 0;
  a.compare_exchange_weak(expected, 2);
}
