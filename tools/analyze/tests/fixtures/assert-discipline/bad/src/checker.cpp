#include <cassert>
#include <cstdlib>
int check(int v) {
  assert(v >= 0);
  if (v == 42) std::abort();
  return v;
}
