#include "util/assert.hpp"
int check(int v) {
  RCONS_ASSERT(v >= 0);
  RCONS_DCHECK_MSG(v < 100, "value out of calibrated range");
  if (v == 42) RCONS_UNREACHABLE("42 filtered by the parser");
  return v;
}
