#!/usr/bin/env python3
"""Self-test for tools/analyze/lint.py against the fixture corpus.

For every rule directory under fixtures/ there is one `good` and one `bad`
mini-tree. The good tree must lint clean for that rule (exit 0, no output);
the bad tree must produce at least one finding OF THAT RULE and exit 1.
Registered as the `analyze_selftest` ctest so tier-1 catches linter
regressions.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, os.pardir, "lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(root, rule):
    return subprocess.run(
        [sys.executable, LINT, "--root", root, "--rules", rule, "src"],
        capture_output=True, text=True)


def main():
    rules = sorted(os.listdir(FIXTURES))
    if not rules:
        print("selftest: no fixtures found", file=sys.stderr)
        return 1
    failures = []
    for rule in rules:
        good = run_lint(os.path.join(FIXTURES, rule, "good"), rule)
        if good.returncode != 0:
            failures.append(
                f"[{rule}] good fixture should be clean, got exit "
                f"{good.returncode}:\n{good.stdout}{good.stderr}")
        bad = run_lint(os.path.join(FIXTURES, rule, "bad"), rule)
        if bad.returncode != 1:
            failures.append(
                f"[{rule}] bad fixture should exit 1, got "
                f"{bad.returncode}:\n{bad.stdout}{bad.stderr}")
        elif f"[{rule}]" not in bad.stdout:
            failures.append(
                f"[{rule}] bad fixture findings do not mention the rule:\n"
                f"{bad.stdout}")
        else:
            print(f"ok {rule}: good clean, bad caught "
                  f"({bad.stdout.count('[' + rule + ']')} finding(s))")
    # The allow grammar itself: a reason-less allow and a stale allow must
    # both be rejected even though they name a real rule.
    meta_root = os.path.join(FIXTURES, "atomics-discipline", "good")
    meta = subprocess.run(
        [sys.executable, LINT, "--root", meta_root, "src"],
        capture_output=True, text=True)
    if meta.returncode != 0:
        failures.append(
            f"[meta] full-rule run over the atomics good fixture should pass:\n"
            f"{meta.stdout}{meta.stderr}")
    else:
        print("ok meta: allow annotation accepted under the full rule set")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(f"selftest: {len(rules)} rules verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
