#!/usr/bin/env python3
"""Repo-native static analysis for the rcons codebase.

Python 3 stdlib only — no libclang. The rules encode this repository's
documented invariants (see README "Correctness tooling"):

  atomics-discipline   every atomic .load/.store/.exchange/fetch_*/
                       compare_exchange_* call carries an explicit
                       std::memory_order argument.
  hot-path-no-mutex    std::mutex / lock_guard / unique_lock / shared_mutex /
                       condition_variable are forbidden in hot-tagged files
                       (the lock-free visit->intern->push pipeline) except at
                       sites carrying an allow annotation naming the cold
                       path.
  exhaustive-switch    switches over the audited enums (StopReason,
                       PropertyKind, ScheduleEvent::Kind, FaultPlan::Site,
                       FaultPlan::Action, Claim::Outcome) cover every
                       enumerator, or carry a default: with a reason comment.
  obs-taxonomy-sync    every engine.*/check.*/random.*/replay.*/portfolio.*/
                       store.* metric literal in src/ appears in the
                       metric_names() taxonomy (obs/session.cpp) and vice
                       versa; span names created in src/ appear in
                       span_names(), and documented spans are emitted
                       somewhere unless marked "reserved".
  assert-discipline    bare assert( / abort( / <cassert> outside
                       util/assert.hpp are errors; use RCONS_ASSERT /
                       RCONS_DCHECK / RCONS_UNREACHABLE.
  include-hygiene      headers carry an RCONS_*_HPP include guard; no
                       `using namespace std`.

Allow-annotation grammar (reason is REQUIRED — "zero unexplained allows"):

  // rcons-lint: allow(rule[,rule2]) <reason text>
  // rcons-lint: allow-file(rule) <reason text>

A line-level allow suppresses the named rules on its own line and the next
line. Annotations that suppress nothing are themselves findings
(stale-allow), so suppressions cannot rot.

Files are tagged hot for hot-path-no-mutex either by the built-in list
(HOT_FILE_SUFFIXES) or by a `// rcons-lint: hot-path` marker in the file.

Usage:
  tools/analyze/lint.py --all                 # lint src/ tests/ examples/ bench/
  tools/analyze/lint.py src/engine            # lint a subtree
  tools/analyze/lint.py --list-rules
Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import os
import re
import sys

RULES = {
    "atomics-discipline": "atomic ops must name an explicit std::memory_order",
    "hot-path-no-mutex": "mutex/lock primitives forbidden in hot-tagged files",
    "exhaustive-switch": "switches over audited enums cover every enumerator",
    "obs-taxonomy-sync": "metric/span literals match the obs/session.cpp taxonomy",
    "assert-discipline": "bare assert(/abort( outside util/assert.hpp",
    "include-hygiene": "RCONS include guards; no `using namespace std`",
}

# Internal meta-rules (not suppressible, not listed in fixtures).
META_RULES = ("bad-allow", "stale-allow", "unknown-rule")

DEFAULT_SCAN_DIRS = ("src", "tests", "examples", "bench")
CXX_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")
SKIP_DIR_NAMES = {".git", "__pycache__", "fixtures"}
SKIP_DIR_PREFIXES = ("build",)

# Files on the lock-free hot path (PR 7): the visit -> canonicalize ->
# fingerprint -> intern -> push pipeline. The in-file `hot-path` marker is
# the primary tag; this list is the backstop so deleting a marker cannot
# silently untag a file.
HOT_FILE_SUFFIXES = (
    "src/engine/cas_table.hpp",
    "src/engine/frontier.hpp",
    "src/engine/node_store.hpp",
    "src/engine/node_store.cpp",
    "src/engine/expand.hpp",
    "src/engine/expand.cpp",
)

MUTEX_TOKENS = (
    "std::mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::shared_mutex",
    "std::shared_lock",
    "std::condition_variable",
)

# Audited enums: short name -> (repo-relative header, nested qualifier the
# case labels use). Enumerators are parsed from the header at startup; a
# missing header simply skips that enum (fixture trees carry mini headers).
AUDITED_ENUMS = {
    "StopReason": "src/sim/explorer_config.hpp",
    "PropertyKind": "src/sim/properties.hpp",
    "Kind": "src/sim/schedule.hpp",  # sim::ScheduleEvent::Kind
    "Site": "src/engine/fault_inject.hpp",  # FaultPlan::Site
    "Action": "src/engine/fault_inject.hpp",  # FaultPlan::Action
    "Outcome": "src/engine/cas_table.hpp",  # CasTable::Claim::Outcome
}

TAXONOMY_FILE = "src/obs/session.cpp"
METRIC_PREFIXES = ("engine", "check", "random", "replay", "portfolio", "store")

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_weak|compare_exchange_strong)\s*\("
)

ALLOW_RE = re.compile(r"rcons-lint:\s*allow(-file)?\(([^)]*)\)\s*(.*)")
HOT_MARKER_RE = re.compile(r"rcons-lint:\s*hot-path")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Allow:
    def __init__(self, path, line, rules, reason, file_level):
        self.path = path
        self.line = line
        self.rules = rules
        self.reason = reason
        self.file_level = file_level
        self.used = False


def strip_comments_and_strings(text, keep_strings):
    """Returns text with comments blanked (and optionally string/char
    literals), preserving line structure so line numbers survive."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                # Raw string literal R"delim( ... )delim"
                if text[i - 1 : i] == "R" and (i < 2 or not text[i - 2].isalnum()):
                    m = re.match(r'"([^(\s]*)\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw"
                        out.append('"')
                        i += 1
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(ch)
            i += 1
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append(ch + nxt if keep_strings else "  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
                out.append(ch)
            else:
                out.append(ch if keep_strings else (" " if ch != "\n" else "\n"))
            i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                out.append(raw_delim if keep_strings else " " * len(raw_delim))
                i += len(raw_delim)
                state = "code"
                continue
            out.append(ch if keep_strings else (" " if ch != "\n" else "\n"))
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root, rel_path):
        self.rel_path = rel_path
        with open(os.path.join(root, rel_path), encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.splitlines()
        # code: comments + strings blanked (structure only).
        self.code = strip_comments_and_strings(self.raw, keep_strings=False)
        self.code_lines = self.code.splitlines()
        # code_with_strings: comments blanked, literals kept (taxonomy rule).
        self.code_with_strings = strip_comments_and_strings(self.raw, keep_strings=True)
        self.allows = self._parse_allows()
        self.hot = HOT_MARKER_RE.search(self.raw) is not None or any(
            rel_path.replace(os.sep, "/").endswith(suffix) for suffix in HOT_FILE_SUFFIXES
        )

    def _parse_allows(self):
        allows = []
        for lineno, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if m is None:
                continue
            file_level = m.group(1) == "-file"
            rules = [r.strip() for r in m.group(2).split(",") if r.strip()]
            reason = m.group(3).strip()
            allows.append(Allow(self.rel_path, lineno, rules, reason, file_level))
        return allows

    def allowed(self, rule, lineno):
        """True when `rule` is suppressed at `lineno`; marks the allow used."""
        hit = False
        for allow in self.allows:
            if rule not in allow.rules or not allow.reason:
                continue
            if allow.file_level or allow.line in (lineno, lineno - 1):
                allow.used = True
                hit = True
        return hit


def balanced_args(text, open_paren_index):
    """Returns the argument text between the paren at open_paren_index and
    its balanced close (or None when unterminated)."""
    depth = 0
    for j in range(open_paren_index, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_index + 1 : j]
    return None


# --- rules -------------------------------------------------------------------


def check_atomics(sf, findings):
    for m in ATOMIC_CALL_RE.finditer(sf.code):
        args = balanced_args(sf.code, sf.code.index("(", m.end() - 1))
        lineno = sf.code.count("\n", 0, m.start()) + 1
        if args is None:
            findings.append(
                Finding(sf.rel_path, lineno, "atomics-discipline",
                        f"unterminated {m.group(1)}() call"))
            continue
        if "memory_order" in args:
            continue
        if sf.allowed("atomics-discipline", lineno):
            continue
        findings.append(
            Finding(sf.rel_path, lineno, "atomics-discipline",
                    f"atomic {m.group(1)}() without an explicit std::memory_order "
                    "(implicit seq_cst hides the protocol's ordering intent)"))


def check_hot_path(sf, findings):
    if not sf.hot:
        return
    for lineno, line in enumerate(sf.code_lines, start=1):
        for token in MUTEX_TOKENS:
            if token in line and not sf.allowed("hot-path-no-mutex", lineno):
                findings.append(
                    Finding(sf.rel_path, lineno, "hot-path-no-mutex",
                            f"{token} in hot-tagged file; annotate the cold path with "
                            "`// rcons-lint: allow(hot-path-no-mutex) <reason>` or move "
                            "the lock out of the pipeline"))


def parse_enumerators(header_text, enum_name):
    code = strip_comments_and_strings(header_text, keep_strings=False)
    m = re.search(
        r"enum\s+(?:class\s+|struct\s+)?" + re.escape(enum_name) + r"\s*(?::[^{;]*)?\{",
        code)
    if m is None:
        return None
    body = balanced_body(code, m.end() - 1, "{", "}")
    if body is None:
        return None
    enumerators = []
    for part in body.split(","):
        name = part.split("=")[0].strip()
        if re.fullmatch(r"[A-Za-z_]\w*", name):
            enumerators.append(name)
    return enumerators


def balanced_body(text, open_index, open_ch, close_ch):
    depth = 0
    for j in range(open_index, len(text)):
        if text[j] == open_ch:
            depth += 1
        elif text[j] == close_ch:
            depth -= 1
            if depth == 0:
                return text[open_index + 1 : j]
    return None


def load_audited_enums(root):
    enums = {}
    for short_name, rel_header in AUDITED_ENUMS.items():
        path = os.path.join(root, rel_header)
        if not os.path.isfile(path):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            enumerators = parse_enumerators(f.read(), short_name)
        if enumerators:
            enums[short_name] = set(enumerators)
    return enums


CASE_RE = re.compile(r"\bcase\s+([A-Za-z_][\w:]*)\s*:")


def check_switches(sf, enums, findings):
    if not enums:
        return
    for m in re.finditer(r"\bswitch\s*\(", sf.code):
        open_brace = sf.code.find("{", m.end())
        if open_brace < 0:
            continue
        body = balanced_body(sf.code, open_brace, "{", "}")
        if body is None:
            continue
        lineno = sf.code.count("\n", 0, m.start()) + 1
        labels = CASE_RE.findall(body)
        if not labels:
            continue
        basenames = {label.split("::")[-1] for label in labels}
        qualifiers = {label.split("::")[-2] for label in labels if "::" in label}
        candidate = None
        for enum_name, enumerators in enums.items():
            if not basenames <= enumerators:
                continue
            if qualifiers and enum_name not in qualifiers:
                continue
            if candidate is None or len(enums[candidate]) > len(enumerators):
                candidate = enum_name  # prefer the tightest match
        if candidate is None:
            continue
        has_default = re.search(r"\bdefault\s*:", body) is not None
        if has_default:
            # The default must say why it is there: a comment on its raw line
            # or the next one, or an allow annotation.
            default_offset = body.index("default")
            default_line = lineno + m.end() - m.start()  # approximate fallback
            default_line = (
                sf.code.count("\n", 0, open_brace + 1 + default_offset) + 1)
            reasoned = any(
                "//" in sf.raw_lines[i]
                for i in range(default_line - 1, min(default_line + 1, len(sf.raw_lines))))
            if not reasoned and not sf.allowed("exhaustive-switch", default_line):
                findings.append(
                    Finding(sf.rel_path, default_line, "exhaustive-switch",
                            f"default: in a switch over {candidate} needs a reason "
                            "comment (or list every enumerator)"))
            continue
        missing = sorted(enums[candidate] - basenames)
        if missing and not sf.allowed("exhaustive-switch", lineno):
            findings.append(
                Finding(sf.rel_path, lineno, "exhaustive-switch",
                        f"switch over {candidate} misses enumerator(s): "
                        f"{', '.join(missing)} (cover them or add a "
                        "default-with-reason)"))


METRIC_LITERAL_RE = re.compile(
    r'"((?:' + "|".join(METRIC_PREFIXES) + r')\.[a-z][a-z0-9_]*)"')
SPAN_CALL_RES = (
    re.compile(r'obs::Span\s+\w+\s*\([^;"]*"([A-Za-z_]+)', re.S),
    re.compile(r'->\s*complete\s*\([^;"]*"([A-Za-z_]+)', re.S),
    re.compile(r'->\s*instant\s*\([^;"]*"([A-Za-z_]+)', re.S),
)
NAMEDOC_RE = re.compile(r'\{\s*"([^"]+)"\s*,\s*"([^"]*)"\s*\}')


def parse_taxonomy(session_text):
    """Returns ({metric: doc}, {span: doc}) from obs/session.cpp."""
    metrics, spans = {}, {}
    for fn_name, out in (("metric_names", metrics), ("span_names", spans)):
        m = re.search(fn_name + r"\(\)\s*\{", session_text)
        if m is None:
            continue
        body = balanced_body(session_text, m.end() - 1, "{", "}")
        if body is None:
            continue
        for name, doc in NAMEDOC_RE.findall(body):
            out[name] = doc
    return metrics, spans


def check_obs_taxonomy(root, files, findings):
    session_path = os.path.join(root, TAXONOMY_FILE)
    if not os.path.isfile(session_path):
        return  # tree without an obs taxonomy (e.g. a fixture for other rules)
    with open(session_path, encoding="utf-8", errors="replace") as f:
        metrics, spans = parse_taxonomy(f.read())
    if not metrics and not spans:
        return

    src_files = [
        sf for sf in files
        if sf.rel_path.replace(os.sep, "/").startswith("src/")
        and not sf.rel_path.replace(os.sep, "/").endswith(TAXONOMY_FILE.split("/")[-1])
    ]
    used_metrics = {}
    used_spans = {}
    all_literals = set()
    for sf in src_files:
        text = sf.code_with_strings
        for m in METRIC_LITERAL_RE.finditer(text):
            lineno = text.count("\n", 0, m.start()) + 1
            used_metrics.setdefault(m.group(1), (sf.rel_path, lineno))
        for pattern in SPAN_CALL_RES:
            for m in pattern.finditer(text):
                lineno = text.count("\n", 0, m.start()) + 1
                used_spans.setdefault(m.group(1), (sf.rel_path, lineno))
        all_literals.update(re.findall(r'"([^"\n]*)"', text))

    taxonomy_rel = TAXONOMY_FILE
    for name, (path, lineno) in sorted(used_metrics.items()):
        if name not in metrics:
            findings.append(
                Finding(path, lineno, "obs-taxonomy-sync",
                        f'metric "{name}" is published but missing from '
                        f"metric_names() in {taxonomy_rel}"))
    for name in sorted(metrics):
        if name not in used_metrics and not metrics[name].startswith("reserved"):
            findings.append(
                Finding(taxonomy_rel, 1, "obs-taxonomy-sync",
                        f'metric "{name}" is documented in metric_names() but never '
                        'published in src/ (delete it or mark the doc "reserved: ...")'))
    for name, (path, lineno) in sorted(used_spans.items()):
        if name not in spans:
            findings.append(
                Finding(path, lineno, "obs-taxonomy-sync",
                        f'span "{name}" is emitted but missing from span_names() '
                        f"in {taxonomy_rel}"))
    for name in sorted(spans):
        if name in used_spans or spans[name].startswith("reserved"):
            continue
        # Span names may travel through helpers (e.g. run_sequential(...,
        # "probe")); any literal occurrence in src/ counts as emitted.
        if name in all_literals:
            continue
        findings.append(
            Finding(taxonomy_rel, 1, "obs-taxonomy-sync",
                    f'span "{name}" is documented in span_names() but never emitted '
                    'in src/ (emit it, delete it, or mark the doc "reserved: ...")'))


BARE_ASSERT_RE = re.compile(r"(?:^|[^_\w.])assert\s*\(")
ABORT_RE = re.compile(r"(?:^|[^_\w:.])(?:std::\s*)?abort\s*\(")
STD_ABORT_RE = re.compile(r"std::\s*abort\s*\(")


def check_assert_discipline(sf, findings):
    # util/assert.hpp is NOT exempt: its one std::abort() carries an allow
    # annotation like any other sanctioned site.
    for lineno, line in enumerate(sf.code_lines, start=1):
        if "static_assert" in line:
            line = line.replace("static_assert", "")
        if BARE_ASSERT_RE.search(line) and not sf.allowed("assert-discipline", lineno):
            findings.append(
                Finding(sf.rel_path, lineno, "assert-discipline",
                        "bare assert(); use RCONS_ASSERT / RCONS_DCHECK "
                        "(util/assert.hpp) so the failure reports file/line and "
                        "respects build-type policy"))
        if (ABORT_RE.search(line) or STD_ABORT_RE.search(line)) and not sf.allowed(
                "assert-discipline", lineno):
            findings.append(
                Finding(sf.rel_path, lineno, "assert-discipline",
                        "raw abort(); use RCONS_ASSERT_MSG / RCONS_UNREACHABLE or "
                        "annotate the sanctioned site"))
    for lineno, line in enumerate(sf.raw_lines, start=1):
        if re.search(r'#\s*include\s*[<"](cassert|assert\.h)[>"]', line):
            if not sf.allowed("assert-discipline", lineno):
                findings.append(
                    Finding(sf.rel_path, lineno, "assert-discipline",
                            "<cassert>/<assert.h> include; the contract layer is "
                            "util/assert.hpp"))


def check_include_hygiene(sf, findings):
    rel = sf.rel_path.replace(os.sep, "/")
    if rel.endswith((".hpp", ".h")) and rel.startswith("src/"):
        has_guard = re.search(r"^#ifndef\s+RCONS_\w+_HPP", sf.raw, re.M) and re.search(
            r"^#define\s+RCONS_\w+_HPP", sf.raw, re.M)
        if not has_guard and not sf.allowed("include-hygiene", 1):
            findings.append(
                Finding(sf.rel_path, 1, "include-hygiene",
                        "header lacks an RCONS_*_HPP include guard"))
    for lineno, line in enumerate(sf.code_lines, start=1):
        if re.search(r"\busing\s+namespace\s+std\b", line) and not sf.allowed(
                "include-hygiene", lineno):
            findings.append(
                Finding(sf.rel_path, lineno, "include-hygiene",
                        "`using namespace std` pollutes every includer"))


def check_allow_annotations(sf, findings):
    for allow in sf.allows:
        unknown = [r for r in allow.rules if r not in RULES]
        for rule in unknown:
            findings.append(
                Finding(sf.rel_path, allow.line, "unknown-rule",
                        f'allow names unknown rule "{rule}" (known: '
                        f"{', '.join(sorted(RULES))})"))
        if not allow.reason:
            findings.append(
                Finding(sf.rel_path, allow.line, "bad-allow",
                        "allow annotation without a reason; the grammar is "
                        "`rcons-lint: allow(rule) <why this site is exempt>`"))
        elif not allow.used and not unknown:
            findings.append(
                Finding(sf.rel_path, allow.line, "stale-allow",
                        f"allow({', '.join(allow.rules)}) suppresses nothing on "
                        "this or the next line; delete it"))


# --- driver ------------------------------------------------------------------


def collect_files(root, scan_paths):
    rel_paths = []
    for scan in scan_paths:
        full = os.path.join(root, scan)
        if os.path.isfile(full):
            if full.endswith(CXX_EXTENSIONS):
                rel_paths.append(os.path.relpath(full, root))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = [
                d for d in dirnames
                if d not in SKIP_DIR_NAMES and not d.startswith(SKIP_DIR_PREFIXES)
            ]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    rel_paths.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(set(rel_paths))


def run_lint(root, scan_paths, selected_rules):
    files = [SourceFile(root, rel) for rel in collect_files(root, scan_paths)]
    enums = load_audited_enums(root)
    findings = []
    for sf in files:
        if "atomics-discipline" in selected_rules:
            check_atomics(sf, findings)
        if "hot-path-no-mutex" in selected_rules:
            check_hot_path(sf, findings)
        if "exhaustive-switch" in selected_rules:
            check_switches(sf, enums, findings)
        if "assert-discipline" in selected_rules:
            check_assert_discipline(sf, findings)
        if "include-hygiene" in selected_rules:
            check_include_hygiene(sf, findings)
    if "obs-taxonomy-sync" in selected_rules:
        check_obs_taxonomy(root, files, findings)
    for sf in files:
        check_allow_annotations(sf, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (relative to --root)")
    parser.add_argument("--all", action="store_true",
                        help=f"lint the default tree: {' '.join(DEFAULT_SCAN_DIRS)}")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule:20s} {RULES[rule]}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if args.all:
        scan_paths = [d for d in DEFAULT_SCAN_DIRS if os.path.isdir(os.path.join(root, d))]
    elif args.paths:
        scan_paths = args.paths
    else:
        parser.error("nothing to lint: pass paths or --all")

    if args.rules:
        selected = set()
        for rule in args.rules.split(","):
            rule = rule.strip()
            if rule not in RULES:
                print(f"unknown rule: {rule}", file=sys.stderr)
                return 2
            selected.add(rule)
    else:
        selected = set(RULES)

    findings = run_lint(root, scan_paths, selected)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"\n{len(findings)} finding(s). See tools/analyze/lint.py --list-rules "
              "and README 'Correctness tooling'.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
