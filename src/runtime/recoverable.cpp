#include "runtime/recoverable.hpp"

#include <algorithm>

#include "hierarchy/recording.hpp"
#include "util/assert.hpp"

namespace rcons::runtime {

using typesys::Value;

RTeamConsensus::RTeamConsensus(std::shared_ptr<const rc::TeamConsensusPlan> plan,
                               std::shared_ptr<const nvram::ClosedTable> table,
                               const nvram::PersistenceModel* persistence)
    : plan_(std::move(plan)),
      object_(std::move(table), plan_->q0, persistence),
      reg_a_(typesys::kBottom, persistence),
      reg_b_(typesys::kBottom, persistence) {
  RCONS_ASSERT(plan_ != nullptr);
}

Value RTeamConsensus::decide(int role, Value input, CrashInjector& crash) {
  RCONS_ASSERT(role >= 0 && role < plan_->n());
  const bool on_team_a = plan_->team[static_cast<std::size_t>(role)] == hierarchy::kTeamA;
  nvram::NvRegister& my_reg = on_team_a ? reg_a_ : reg_b_;

  crash.point();
  my_reg.write(input);  // line 5 / 16: announce my team's input

  crash.point();
  typesys::StateId q = object_.read_state();  // line 6 / 17
  if (q == plan_->q0) {
    if (!on_team_a && plan_->team_size[hierarchy::kTeamB] == 1) {
      crash.point();
      const Value announced = reg_a_.read();  // line 19
      if (announced != typesys::kBottom) return announced;  // line 20: defer to A
      crash.point();
      object_.apply(plan_->ops[static_cast<std::size_t>(role)]);  // line 22
      crash.point();
      q = object_.read_state();  // line 23
    } else {
      crash.point();
      object_.apply(plan_->ops[static_cast<std::size_t>(role)]);  // line 8 / 22
      crash.point();
      q = object_.read_state();  // line 9 / 23
    }
  }
  crash.point();
  const bool a_won = plan_->q_a.contains(q);  // lines 11-12 / 26-27
  return (a_won ? reg_a_ : reg_b_).read();
}

void RTeamConsensus::reset() {
  object_.reset(plan_->q0);
  reg_a_.write(typesys::kBottom);
  reg_b_.write(typesys::kBottom);
}

RTournament::RTournament(const typesys::ObjectType& type, int witness_n, int k,
                         const nvram::PersistenceModel* persistence) {
  RCONS_ASSERT(k >= 1 && k <= witness_n);
  auto cache = std::make_shared<typesys::TransitionCache>(type, witness_n);
  auto witness = hierarchy::find_recording_witness(*cache);
  RCONS_ASSERT_MSG(witness.has_value(), "type is not witness_n-recording");
  plan_ = rc::TeamConsensusPlan::create(cache, *witness);
  // The closure must be built after the witness search so state ids line up
  // with the plan's Q_A set (both share `cache`).
  auto table = nvram::ClosedTable::build(cache);

  auto install = [&]() {
    nodes_.push_back(std::make_unique<RTeamConsensus>(plan_, table, persistence));
    return nodes_.size() - 1;
  };
  auto stages = rc::build_tournament_stages<std::size_t>(k, plan_->team, install);
  chains_.resize(static_cast<std::size_t>(k));
  for (std::size_t p = 0; p < stages.size(); ++p) {
    for (const auto& stage : stages[p]) {
      chains_[p].push_back(StageRef{stage.instance, stage.role});
    }
  }
}

Value RTournament::decide(int participant, Value input, CrashInjector& crash) {
  RCONS_ASSERT(participant >= 0 && participant < participants());
  Value value = input;
  for (const StageRef& stage : chains_[static_cast<std::size_t>(participant)]) {
    value = nodes_[stage.node]->decide(stage.role, value, crash);
  }
  return value;
}

void RTournament::reset() {
  for (const auto& node : nodes_) node->reset();
}

int RTournament::depth() const {
  std::size_t depth = 0;
  for (const auto& chain : chains_) depth = std::max(depth, chain.size());
  return static_cast<int>(depth);
}

}  // namespace rcons::runtime
