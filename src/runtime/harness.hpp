// Thread harness: runs one OS thread per simulated process, with crash
// injection and crash-restart (recovery) semantics, and collects outputs for
// agreement/validity verification. Used by tests and benchmarks.
#ifndef RCONS_RUNTIME_HARNESS_HPP
#define RCONS_RUNTIME_HARNESS_HPP

#include <string>
#include <thread>
#include <vector>

#include "runtime/crash.hpp"
#include "typesys/core.hpp"
#include "util/assert.hpp"

namespace rcons::runtime {

struct HarnessReport {
  std::vector<typesys::Value> outputs;  // one per worker
  int total_crashes = 0;
  bool agreement = true;

  // True if every output appears in `inputs`.
  bool valid_against(const std::vector<typesys::Value>& inputs) const {
    for (const typesys::Value out : outputs) {
      bool found = false;
      for (const typesys::Value in : inputs) found = found || in == out;
      if (!found) return false;
    }
    return true;
  }
};

// `task(role, injector)` must return the worker's decision and may throw
// CrashException (from the injector); the harness restarts it — the model's
// crash-recover-rerun loop. Each worker gets an independent deterministic
// injector derived from `seed`.
template <typename Task>
HarnessReport run_crashy_workers(int n, Task task, std::uint64_t seed,
                                 int crash_per_mille, int max_crashes_per_worker) {
  RCONS_ASSERT(n >= 1);
  HarnessReport report;
  report.outputs.assign(static_cast<std::size_t>(n), 0);
  std::vector<int> crashes(static_cast<std::size_t>(n), 0);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int role = 0; role < n; ++role) {
    workers.emplace_back([&, role] {
      CrashInjector injector(seed + static_cast<std::uint64_t>(role) * 0x9e3779b9ULL,
                             crash_per_mille, max_crashes_per_worker);
      for (;;) {
        try {
          report.outputs[static_cast<std::size_t>(role)] = task(role, injector);
          break;
        } catch (const CrashException&) {
          // recovery: local state discarded, re-run from the top
        }
      }
      crashes[static_cast<std::size_t>(role)] = injector.crashes();
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (const int c : crashes) report.total_crashes += c;
  for (const typesys::Value out : report.outputs) {
    report.agreement = report.agreement && out == report.outputs.front();
  }
  return report;
}

}  // namespace rcons::runtime

#endif  // RCONS_RUNTIME_HARNESS_HPP
