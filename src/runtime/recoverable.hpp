// Blocking-style (production-shaped) implementations of the paper's
// recoverable consensus algorithms for the real-thread runtime.
//
// These mirror the sim/ step machines (which are the exhaustively
// model-checked reference); here the algorithms are written as ordinary
// sequential code over NVRAM cells, with crash points between shared
// accesses. Tests cross-check both implementations.
#ifndef RCONS_RUNTIME_RECOVERABLE_HPP
#define RCONS_RUNTIME_RECOVERABLE_HPP

#include <memory>
#include <vector>

#include "nvram/nvram.hpp"
#include "rc/staged.hpp"
#include "rc/team_consensus.hpp"
#include "runtime/crash.hpp"

namespace rcons::runtime {

// Figure 2 over NVRAM: one shared object of an n-recording type plus the two
// team registers. decide() may throw CrashException (when the injector
// fires); calling decide() again with the same arguments is the recovery.
class RTeamConsensus {
 public:
  RTeamConsensus(std::shared_ptr<const rc::TeamConsensusPlan> plan,
                 std::shared_ptr<const nvram::ClosedTable> table,
                 const nvram::PersistenceModel* persistence = nullptr);

  typesys::Value decide(int role, typesys::Value input, CrashInjector& crash);

  // Re-initializes the instance (benchmark iterations only; not part of the
  // algorithm).
  void reset();

  const rc::TeamConsensusPlan& plan() const { return *plan_; }

 private:
  std::shared_ptr<const rc::TeamConsensusPlan> plan_;
  nvram::NvObject object_;
  nvram::NvRegister reg_a_;
  nvram::NvRegister reg_b_;
};

// Full recoverable consensus: the Proposition 30 tournament over
// RTeamConsensus instances.
class RTournament {
 public:
  // Builds a tournament for `k` participants over a witness_n-recording
  // witness of `type` (asserts one exists).
  RTournament(const typesys::ObjectType& type, int witness_n, int k,
              const nvram::PersistenceModel* persistence = nullptr);

  typesys::Value decide(int participant, typesys::Value input, CrashInjector& crash);

  void reset();

  int participants() const { return static_cast<int>(chains_.size()); }
  int instances() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

 private:
  struct StageRef {
    std::size_t node = 0;
    int role = 0;
  };

  std::shared_ptr<const rc::TeamConsensusPlan> plan_;
  std::vector<std::unique_ptr<RTeamConsensus>> nodes_;
  std::vector<std::vector<StageRef>> chains_;
};

// The CAS-racing baseline (rcons(CAS) = ∞): one NVRAM word decides and
// records the outcome in a single step; recovery re-reads the record.
class RRaceConsensus {
 public:
  explicit RRaceConsensus(const nvram::PersistenceModel* persistence = nullptr)
      : cell_(typesys::kBottom, persistence) {}

  typesys::Value decide(typesys::Value input, CrashInjector& crash) {
    crash.point();
    const typesys::Value previous = cell_.compare_and_swap(typesys::kBottom, input);
    return previous == typesys::kBottom ? input : previous;
  }

  void reset() { cell_.write(typesys::kBottom); }

 private:
  nvram::NvRegister cell_;
};

}  // namespace rcons::runtime

#endif  // RCONS_RUNTIME_RECOVERABLE_HPP
