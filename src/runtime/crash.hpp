// Crash injection for the real-thread runtime.
//
// A worker thread simulates the paper's crash/recovery failures by calling
// CrashInjector::point() between shared-memory accesses; with the configured
// probability the injector throws CrashException, unwinding the worker's
// stack — which is precisely the model's semantics: all local state (locals,
// program counter) is lost, shared NVRAM state survives. The worker's driver
// catches the exception and re-invokes the routine from the top (recovery).
#ifndef RCONS_RUNTIME_CRASH_HPP
#define RCONS_RUNTIME_CRASH_HPP

#include <cstdint>

#include "util/rng.hpp"

namespace rcons::runtime {

struct CrashException {};

class CrashInjector {
 public:
  // `per_mille`: probability (out of 1000) that a crash point fires.
  // `max_crashes`: total budget for this injector (keeps runs finite).
  CrashInjector(std::uint64_t seed, int per_mille, int max_crashes)
      : rng_(seed), per_mille_(per_mille), max_crashes_(max_crashes) {}

  // Never crashes.
  static CrashInjector none() { return CrashInjector(0, 0, 0); }

  // Crashes deterministically at the k-th crash point (1-based), once.
  static CrashInjector at(int k) {
    CrashInjector injector(0, 1000, 1);
    injector.skip_points_ = k - 1;
    return injector;
  }

  void point() {
    if (per_mille_ <= 0 || crashes_ >= max_crashes_) return;
    if (skip_points_ > 0) {
      skip_points_ -= 1;
      return;
    }
    if (rng_.chance(static_cast<std::uint64_t>(per_mille_), 1000)) {
      crashes_ += 1;
      throw CrashException{};
    }
  }

  int crashes() const { return crashes_; }

 private:
  util::Rng rng_;
  int per_mille_;
  int max_crashes_;
  int crashes_ = 0;
  int skip_points_ = 0;
};

}  // namespace rcons::runtime

#endif  // RCONS_RUNTIME_CRASH_HPP
