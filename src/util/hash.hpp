// Hashing helpers for interning tables and visited-state sets.
#ifndef RCONS_UTIL_HASH_HPP
#define RCONS_UTIL_HASH_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rcons::util {

// 64-bit mix (Stafford variant 13); good avalanche for sequential combines.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

inline std::uint64_t hash_range(const std::int64_t* data, std::size_t size) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL ^ size;
  for (std::size_t i = 0; i < size; ++i) {
    h = hash_combine(h, static_cast<std::uint64_t>(data[i]));
  }
  return h;
}

struct VecHash {
  std::size_t operator()(const std::vector<std::int64_t>& v) const {
    return static_cast<std::size_t>(hash_range(v.data(), v.size()));
  }
};

// 128-bit fingerprint used as a visited-state key. The two halves are
// produced by independent hash streams over the same canonical encoding, so a
// pruning collision requires a simultaneous 64+64-bit collision.
struct U128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const U128&) const = default;
};

// Table hash for U128 keys. The previous `lo ^ (hi * K)` combine had no
// final avalanche: the low bucket-index bits depended only on the low bits
// of `lo` and `hi`, so structured fingerprints sharing low bits piled into
// the same buckets (and a plain `lo ^ hi` would additionally collide on
// swapped/equal halves). Mixing one half before combining and remixing the
// sum avalanches every input bit into the bucket index.
struct U128Hash {
  std::size_t operator()(const U128& v) const {
    return static_cast<std::size_t>(mix64(v.lo + 0x9e3779b97f4a7c15ULL * mix64(v.hi)));
  }
};

}  // namespace rcons::util

#endif  // RCONS_UTIL_HASH_HPP
