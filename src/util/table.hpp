// Minimal fixed-width text table used by benchmarks and examples to print
// paper-style tables (type zoo summaries, experiment rows).
#ifndef RCONS_UTIL_TABLE_HPP
#define RCONS_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace rcons::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  // Renders with per-column padding and a header separator.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcons::util

#endif  // RCONS_UTIL_TABLE_HPP
