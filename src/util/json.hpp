// Minimal streaming JSON writer for machine-readable bench output
// (BENCH_*.json files that the perf trajectory accumulates). Handles comma
// placement and string escaping; the caller is responsible for pairing
// begin/end calls and for writing a key before each value inside an object.
#ifndef RCONS_UTIL_JSON_HPP
#define RCONS_UTIL_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace rcons::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  ~JsonWriter() { RCONS_ASSERT_MSG(stack_.empty(), "unclosed JSON object/array"); }

  void begin_object() {
    comma();
    out_ << '{';
    stack_.push_back(State{false});
  }
  void end_object() {
    pop();
    out_ << '}';
  }
  void begin_array() {
    comma();
    out_ << '[';
    stack_.push_back(State{false});
  }
  void end_array() {
    pop();
    out_ << ']';
  }

  void key(const std::string& name) {
    comma();
    write_string(name);
    out_ << ':';
    pending_value_ = true;
  }

  void value(const std::string& text) {
    comma();
    write_string(text);
  }
  void value(const char* text) { value(std::string(text)); }
  void value(bool flag) {
    comma();
    out_ << (flag ? "true" : "false");
  }
  void value(double number) {
    comma();
    out_ << number;
  }
  void value(std::uint64_t number) {
    comma();
    out_ << number;
  }
  void value(long number) {
    comma();
    out_ << number;
  }
  void value(int number) {
    comma();
    out_ << number;
  }

  template <typename T>
  void key_value(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

 private:
  struct State {
    bool saw_item = false;
  };

  // Emits the separating comma for the second and later items of the current
  // container. A value directly after key() is part of the same item.
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back().saw_item) out_ << ',';
    stack_.back().saw_item = true;
  }

  void pop() {
    RCONS_ASSERT_MSG(!stack_.empty(), "end without matching begin");
    RCONS_ASSERT_MSG(!pending_value_, "key without value");
    stack_.pop_back();
  }

  void write_string(const std::string& text) {
    out_ << '"';
    for (const char ch : text) {
      switch (ch) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            const char* hex = "0123456789abcdef";
            out_ << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
          } else {
            out_ << ch;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

}  // namespace rcons::util

#endif  // RCONS_UTIL_JSON_HPP
