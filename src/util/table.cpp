#include "util/table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcons::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RCONS_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RCONS_ASSERT_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace rcons::util
