// Deterministic pseudo-random number generation.
//
// Every randomized component in this repository (random schedules, crash
// injection, workload generators) takes an explicit seed and uses these
// generators, so that any failing execution can be replayed exactly.
#ifndef RCONS_UTIL_RNG_HPP
#define RCONS_UTIL_RNG_HPP

#include <cstdint>

#include "util/assert.hpp"

namespace rcons::util {

// SplitMix64: used to expand a user seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality, and trivially copyable (so simulator
// snapshots of randomized components remain value-semantic).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). Uses rejection sampling to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    RCONS_ASSERT(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Bernoulli trial with probability numer/denom.
  bool chance(std::uint64_t numer, std::uint64_t denom) {
    RCONS_ASSERT(denom > 0);
    return below(denom) < numer;
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace rcons::util

#endif  // RCONS_UTIL_RNG_HPP
