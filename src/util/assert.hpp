// Internal invariant checking — the repo's contract layer.
//
// Three tiers, in decreasing cost tolerance:
//
//   RCONS_ASSERT / RCONS_ASSERT_MSG   active in ALL build types. The
//       properties this library verifies (agreement, validity,
//       linearizability) are the deliverable, so silently skipping these in
//       release builds would defeat the point. Reserve them for cheap checks
//       on cold paths (constructor validation, file parsing, API misuse).
//
//   RCONS_DCHECK / RCONS_DCHECK_MSG   compiled out in Release (NDEBUG)
//       unless RCONS_FORCE_DCHECK is defined (cmake -DRCONS_FORCE_DCHECK=ON).
//       These guard hot-path protocol invariants — slot-tag transition
//       legality, the transitions identity at flush points, pause-barrier
//       and checkpoint-frame consistency, codec fingerprint agreement —
//       that are too expensive or too frequent to verify on every Release
//       operation. The static-analysis CI job runs the full ctest suite in
//       a Debug+RCONS_FORCE_DCHECK build so every contract executes.
//
//   RCONS_UNREACHABLE(msg)            always-on, [[noreturn]]. Marks code
//       paths the surrounding logic has proven dead (e.g. a switch over an
//       enum whose every member returns). Preferred over a bare
//       std::abort(): it reports file/line and is recognized by the
//       assert-discipline lint rule (tools/analyze/lint.py).
//
// Bare assert( and std::abort( outside this header are lint errors
// (assert-discipline); route everything through these macros.
#ifndef RCONS_UTIL_ASSERT_HPP
#define RCONS_UTIL_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace rcons::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "rcons assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();  // rcons-lint: allow(assert-discipline) the one sanctioned abort site
}

}  // namespace rcons::util

#define RCONS_ASSERT(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::rcons::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define RCONS_ASSERT_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) ::rcons::util::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Debug contracts: on when NDEBUG is absent (Debug / default developer
// builds of CMAKE_BUILD_TYPE=Debug) or when forced via RCONS_FORCE_DCHECK.
// RelWithDebInfo and Release define NDEBUG, so DCHECKs compile to nothing
// there — the Release bench rows stay contract-free.
#if !defined(NDEBUG) || defined(RCONS_FORCE_DCHECK)
#define RCONS_DCHECK_ENABLED 1
#else
#define RCONS_DCHECK_ENABLED 0
#endif

#if RCONS_DCHECK_ENABLED
#define RCONS_DCHECK(expr) RCONS_ASSERT(expr)
#define RCONS_DCHECK_MSG(expr, msg) RCONS_ASSERT_MSG(expr, (msg))
#else
// Compiled out: the expression is not evaluated (it may be O(record) work),
// but sizeof keeps it syntactically checked so disabled contracts cannot rot.
#define RCONS_DCHECK(expr) \
  do {                     \
    (void)sizeof((expr));  \
  } while (false)
#define RCONS_DCHECK_MSG(expr, msg) \
  do {                              \
    (void)sizeof((expr));           \
    (void)sizeof(msg);              \
  } while (false)
#endif

#define RCONS_UNREACHABLE(msg) \
  ::rcons::util::assert_fail("unreachable", __FILE__, __LINE__, (msg))

#endif  // RCONS_UTIL_ASSERT_HPP
