// Internal invariant checking.
//
// RCONS_ASSERT is active in all build types: the properties this library
// verifies (agreement, validity, linearizability) are the deliverable, so
// silently skipping checks in release builds would defeat the point.
#ifndef RCONS_UTIL_ASSERT_HPP
#define RCONS_UTIL_ASSERT_HPP

#include <cstdio>
#include <cstdlib>

namespace rcons::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "rcons assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rcons::util

#define RCONS_ASSERT(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::rcons::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define RCONS_ASSERT_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) ::rcons::util::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#endif  // RCONS_UTIL_ASSERT_HPP
