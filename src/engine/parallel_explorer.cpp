#include "engine/parallel_explorer.hpp"

#include <chrono>
#include <new>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>

#include "engine/checkpoint.hpp"
#include "engine/fault_inject.hpp"
#include "engine/sentinel.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

namespace {

// Adaptive pop-batch sizing: how many items a worker drains from the
// frontier per lock acquisition. Fixed batches lose both ways — too large
// and a worker hoards frontier items while its peers' steals come back
// empty; too small and every worker pays a lock round-trip per handful of
// nodes. Each worker sizes its own batch inside [kMinPopBatch, kMaxPopBatch]
// from two observations at its next pop: the frontier-wide failed-steal
// counter advanced since it last looked (peers are starving — halve, keep
// work visible to steals), or its previous pop came back full from its own
// deque (the local deque runs deep and nobody is starving — double).
constexpr std::size_t kMinPopBatch = 4;
constexpr std::size_t kInitPopBatch = 16;
constexpr std::size_t kMaxPopBatch = 128;

// Per-worker recently-inserted fingerprint cache: direct-mapped, fixed size.
// A hit proves the fingerprint is already interned (everything remembered
// went through the store first), so the shard lock + table probe can be
// skipped entirely. Duplicate successors cluster in time — siblings reaching
// the same state, diamond interleavings — which is exactly what a small
// recency cache captures.
class DedupCache {
 public:
  DedupCache() : keys_(kEntries), valid_(kEntries, 0) {}

  bool seen(util::U128 key) const {
    const std::size_t index = slot(key);
    return valid_[index] != 0 && keys_[index] == key;
  }

  void remember(util::U128 key) {
    const std::size_t index = slot(key);
    keys_[index] = key;
    valid_[index] = 1;
  }

 private:
  static constexpr std::size_t kEntries = std::size_t{1} << 12;

  static std::size_t slot(util::U128 key) {
    return static_cast<std::size_t>(util::U128Hash{}(key)) & (kEntries - 1);
  }

  std::vector<util::U128> keys_;
  std::vector<std::uint8_t> valid_;
};

}  // namespace

ParallelExplorer::ParallelExplorer(sim::Memory initial,
                                   std::vector<sim::Process> processes,
                                   ParallelExplorerConfig config)
    : initial_memory_(std::move(initial)),
      initial_processes_(std::move(processes)),
      config_(std::move(config)) {
  RCONS_ASSERT(!initial_processes_.empty());
  RCONS_ASSERT(config_.crash_budget >= 0);
  RCONS_ASSERT_MSG(config_.num_threads >= 0,
                   "num_threads must be >= 0 (0 selects hardware concurrency)");
  RCONS_ASSERT_MSG(config_.shard_bits >= -1 && config_.shard_bits <= 16,
                   "shard_bits must be in [0, 16], or -1 for auto");
  num_threads_ = config_.num_threads;
  if (num_threads_ <= 0) {
    num_threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads_ <= 0) num_threads_ = 1;
  }
  if (config_.shard_bits >= 0) {
    shard_bits_ = config_.shard_bits;
  } else {
    std::uint64_t expected = config_.expected_states != 0 ? config_.expected_states
                                                          : config_.visited_cap();
    if (expected > config_.visited_cap()) expected = config_.visited_cap();
    shard_bits_ = pick_shard_bits(num_threads_, expected);
  }

  compact_ = resolve_compact_repr(config_.node_repr, initial_processes_);
  RCONS_ASSERT_MSG(config_.symmetry_classes.empty() ||
                       config_.symmetry_classes.size() == initial_processes_.size(),
                   "symmetry_classes must be empty or name every process");
  RCONS_ASSERT_MSG(
      (config_.checkpoint_path.empty() && config_.resume == nullptr) || compact_,
      "checkpointing requires the compact node representation");
  RCONS_ASSERT_MSG(config_.sentinel_interval_ms >= 1,
                   "sentinel_interval_ms must be >= 1");
}

std::uint64_t ParallelExplorer::presize_states() const {
  // Only a real expectation (e.g. the kAuto probe's count) pre-commits table
  // memory; max_visited defaults are far too pessimistic to allocate for.
  std::uint64_t expected = config_.expected_states;
  if (expected > config_.visited_cap()) expected = config_.visited_cap();
  return expected;
}

void ParallelExplorer::offer_violation(std::vector<Event> path,
                                       sim::PropertyViolation broken) {
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!has_violation_ || path_less(path, best_path_)) {
    has_violation_ = true;
    best_path_ = std::move(path);
    best_violation_ = std::move(broken);
  }
}

void ParallelExplorer::request_stop(sim::StopReason reason) {
  int expected = static_cast<int>(sim::StopReason::kNone);
  stop_reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_relaxed);
  stop_.store(true, std::memory_order_relaxed);
  // A stop must never leave anyone waiting: release fault-injected stalls
  // and wake the monitor so it can skip straight to its exit check.
  if (config_.fault != nullptr) config_.fault->release_stalls();
  monitor_cv_.notify_all();
}

void ParallelExplorer::record_truncation(const PathLink* tail, const Event& event) {
  request_stop(sim::StopReason::kVisitedCap);
  // Best-effort trace of where the budget ran out (like the sequential
  // explorer's partial trace); first recorder wins.
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!truncated_.load(std::memory_order_relaxed)) {
    truncated_.store(true, std::memory_order_relaxed);
    truncation_path_ = materialize_path(tail);
    truncation_path_.push_back(event);
    if (obs_cells_.active) obs_cells_.truncations->add(0, 1);
  }
}

std::string ParallelExplorer::truncation_description() const {
  switch (static_cast<sim::StopReason>(stop_reason_.load(std::memory_order_relaxed))) {
    case sim::StopReason::kNone:
      break;
    case sim::StopReason::kVisitedCap:
      return "state space exceeded max_visited; verdict incomplete";
    case sim::StopReason::kDeadline:
      return "time limit exceeded (time_limit_ms=" +
             std::to_string(config_.time_limit_ms) + "); verdict incomplete";
    case sim::StopReason::kMemory:
      return "memory limit exceeded or allocation failed (mem_limit_mb=" +
             std::to_string(config_.mem_limit_mb) + "); verdict incomplete";
    case sim::StopReason::kWatchdog:
      return "watchdog: worker made no progress; verdict incomplete —" +
             watchdog_dump_;
    case sim::StopReason::kForcedStop:
      return "run stopped by external request; verdict incomplete";
  }
  return "run stopped; verdict incomplete";
}

// --- pause barrier ----------------------------------------------------------

bool ParallelExplorer::pause_workers() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    pause_requested_ = true;
    pause_flag_.store(true, std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(pause_mu_);
  // Grace period: a worker wedged by fault injection (or a real stall — the
  // very condition the watchdog reports) must not deadlock checkpointing.
  const auto grace = std::chrono::milliseconds(
      config_.sentinel_interval_ms * 100 < 5000 ? 5000
                                                : config_.sentinel_interval_ms * 100);
  const bool parked = parked_cv_.wait_for(lock, grace, [&] {
    return parked_ == live_workers_ || stop_.load(std::memory_order_relaxed);
  });
  if (!parked || stop_.load(std::memory_order_relaxed)) {
    pause_requested_ = false;
    pause_flag_.store(false, std::memory_order_relaxed);
    lock.unlock();
    pause_cv_.notify_all();
    return false;
  }
  // Barrier postcondition: the predicate can only have passed via the parked
  // count (the stop branch returned above), and parked workers cannot leave
  // while we hold pause_mu_ with pause_requested_ still set.
  RCONS_DCHECK_MSG(parked_ == live_workers_ && pause_requested_,
                   "pause barrier reported success without full quiescence");
  return true;  // every live worker is parked; frontier + store quiescent
}

void ParallelExplorer::resume_workers() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    pause_requested_ = false;
    pause_flag_.store(false, std::memory_order_relaxed);
  }
  pause_cv_.notify_all();
}

void ParallelExplorer::worker_pause_point() {
  std::unique_lock<std::mutex> lock(pause_mu_);
  if (!pause_requested_) return;  // raced with resume (or an aborted pause)
  parked_ += 1;
  parked_cv_.notify_all();
  pause_cv_.wait(lock, [&] { return !pause_requested_; });
  parked_ -= 1;
}

void ParallelExplorer::worker_exit(int id) {
  heartbeats_[static_cast<std::size_t>(id)].beats.store(kHeartbeatExited,
                                                        std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    live_workers_ -= 1;
  }
  // A pause in flight may be waiting on this worker's park; its exit
  // satisfies the barrier the same way.
  parked_cv_.notify_all();
}

// --- monitor (resource sentinels, watchdog, periodic checkpoints) -----------

bool ParallelExplorer::monitor_needed() const {
  return config_.time_limit_ms > 0 || config_.mem_limit_mb > 0 ||
         config_.watchdog_stall_intervals > 0 ||
         (!config_.checkpoint_path.empty() && config_.checkpoint_every > 0);
}

void ParallelExplorer::monitor_loop(const std::function<bool()>& write_snapshot) {
  const std::int64_t deadline_ms =
      config_.time_limit_ms > 0 ? steady_now_ms() + config_.time_limit_ms : 0;
  const std::uint64_t rss_cap_bytes =
      config_.mem_limit_mb > 0
          ? static_cast<std::uint64_t>(config_.mem_limit_mb) << 20
          : 0;
  const std::uint64_t ckpt_every =
      write_snapshot != nullptr ? config_.checkpoint_every : 0;

  std::vector<std::uint64_t> last_beats(static_cast<std::size_t>(num_threads_), 0);
  std::vector<int> stalled(static_cast<std::size_t>(num_threads_), 0);
  std::uint64_t last_ckpt_visited = resume_visited_;

  std::unique_lock<std::mutex> lock(monitor_mu_);
  for (;;) {
    monitor_cv_.wait_for(lock,
                         std::chrono::milliseconds(config_.sentinel_interval_ms),
                         [&] { return monitor_exit_; });
    if (monitor_exit_) return;
    if (stop_.load(std::memory_order_relaxed)) continue;  // wait for the join

    if (deadline_ms != 0 && steady_now_ms() >= deadline_ms) {
      request_stop(sim::StopReason::kDeadline);
      continue;
    }
    if (rss_cap_bytes != 0) {
      const std::uint64_t rss = current_rss_bytes();
      // A 0 reading means RSS is unavailable here; never trip on it.
      if (rss != 0 && rss > rss_cap_bytes) {
        request_stop(sim::StopReason::kMemory);
        continue;
      }
    }
    if (config_.watchdog_stall_intervals > 0) {
      std::string dump;
      for (int i = 0; i < num_threads_; ++i) {
        const auto slot = static_cast<std::size_t>(i);
        const std::uint64_t beats = heartbeats_[slot].beats.load(std::memory_order_relaxed);
        if (beats == kHeartbeatExited) {
          stalled[slot] = 0;
          continue;
        }
        if (beats == last_beats[slot]) {
          stalled[slot] += 1;
        } else {
          stalled[slot] = 0;
          last_beats[slot] = beats;
        }
        if (stalled[slot] >= config_.watchdog_stall_intervals) {
          dump += " worker " + std::to_string(i) + ": no progress for " +
                  std::to_string(stalled[slot]) + " intervals (heartbeat=" +
                  std::to_string(beats) + ")";
        }
      }
      if (!dump.empty()) {
        {
          std::lock_guard<std::mutex> vlock(violation_mu_);
          watchdog_dump_ = dump;
        }
        request_stop(sim::StopReason::kWatchdog);
        continue;
      }
    }
    if (ckpt_every != 0) {
      const std::uint64_t visited = visited_count_.load(std::memory_order_relaxed);
      if (visited >= last_ckpt_visited + ckpt_every) {
        // The snapshot pauses the workers itself; drop monitor_mu_ so
        // request_stop (from a worker hitting the cap meanwhile) never
        // queues behind the pause.
        lock.unlock();
        const bool written = write_snapshot();
        lock.lock();
        if (written) last_ckpt_visited = visited;
      }
    }
  }
}

void ParallelExplorer::stop_monitor(std::thread& monitor) {
  if (!monitor.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    monitor_exit_ = true;
  }
  monitor_cv_.notify_all();
  monitor.join();
}

void ParallelExplorer::flush_worker_obs(std::size_t lane, WorkerStats& last_flushed,
                                        const WorkerStats& local,
                                        std::uint64_t pending_now) {
  // Workers flush only at event-classification boundaries, where the
  // conservation law must hold exactly.
  dcheck_transitions_identity(local);
  ObsDeltas delta;
  delta.visited = local.visited - last_flushed.visited;
  delta.transitions = local.transitions - last_flushed.transitions;
  delta.decisions = local.decisions - last_flushed.decisions;
  delta.terminal_states = local.terminal_states - last_flushed.terminal_states;
  delta.duplicates = local.duplicates - last_flushed.duplicates;
  delta.violation_edges = local.violation_edges - last_flushed.violation_edges;
  delta.encodes = local.encodes - last_flushed.encodes;
  delta.canonical_hits = local.canonical_hits - last_flushed.canonical_hits;
  delta.nodes = local.store_nodes - last_flushed.store_nodes;
  delta.value_bytes = local.store_bytes - last_flushed.store_bytes;
  delta.cache_probes = local.cache_probes - last_flushed.cache_probes;
  delta.cache_hits = local.cache_hits - last_flushed.cache_hits;
  delta.batches = local.batches - last_flushed.batches;
  delta.batched_items = local.batched_items - last_flushed.batched_items;
  delta.orbit_skipped = local.orbit_skipped - last_flushed.orbit_skipped;
  delta.cas_retries = local.ops.cas_retries - last_flushed.ops.cas_retries;
  delta.migration_stripes =
      local.ops.migration_stripes - last_flushed.ops.migration_stripes;
  obs_cells_.flush(lane, delta);
  // Any recent writer's view of the pending count is equally good (gauge is
  // last-write-wins), so a plain relaxed sample suffices.
  obs_cells_.frontier_pending->set(static_cast<std::int64_t>(pending_now));
  last_flushed = local;
}

void ParallelExplorer::worker_legacy(int id, Frontier& frontier,
                                     ShardedVisited& visited, PathArena& arena,
                                     std::atomic<std::uint64_t>& pending,
                                     WorkerStats& local) {
  // Per-worker reusable buffers: the popped batch, the successor batch under
  // construction, event/encode scratch, and the recently-inserted cache. The
  // only per-successor allocations left are the Node clones inherent to the
  // legacy representation.
  std::vector<Event> events;
  std::vector<typesys::Value> scratch;
  std::vector<WorkItem> batch;
  std::vector<WorkItem> successors;
  DedupCache cache;

  // Observability: metrics flush at batch boundaries (obs_cells_ inactive =
  // one predicted branch per batch), spans on the tracer's worker lane.
  obs::Tracer* const tracer = config_.obs.tracer;
  const std::size_t obs_lane = 1 + static_cast<std::size_t>(id);
  const std::size_t trace_lane = tracer != nullptr ? tracer->worker_lane(id) : 0;
  if (tracer != nullptr) {
    tracer->set_lane_name(trace_lane, "worker-" + std::to_string(id));
  }
  WorkerStats flushed;
  const std::uint64_t worker_begin = tracer != nullptr ? tracer->now_us() : 0;
  std::uint64_t batch_begin = 0;
  std::size_t pop_batch = kInitPopBatch;
  std::uint64_t steal_mark = frontier.failed_steals();
  Heartbeat& heartbeat = heartbeats_[static_cast<std::size_t>(id)];
  std::uint64_t beats = 0;
  FaultPlan* const fault = config_.fault;

  // Any allocation failure — a fault-injected one or a real bad_alloc out of
  // table/deque/arena growth — lands here and becomes the typed
  // StopReason::kMemory truncated verdict; it never escapes the worker.
  try {
    for (;;) {
      heartbeat.beats.store(++beats, std::memory_order_relaxed);
      if (batch.empty()) {
        // Cooperative stop: exit immediately. Queued work stays queued (and
        // pending-counted), so a checkpoint taken after the join still sees
        // every outstanding item; every worker leaves through this check, so
        // pending never reaching 0 cannot hang anyone.
        if (stop_.load(std::memory_order_relaxed)) break;
        if (pause_flag_.load(std::memory_order_relaxed)) {
          worker_pause_point();
          continue;
        }
        if (obs_cells_.active) {
          flush_worker_obs(obs_lane, flushed, local,
                           pending.load(std::memory_order_relaxed));
        }
        // Adapt the batch size to observed steal pressure before popping.
        const std::uint64_t failed = frontier.failed_steals();
        if (failed != steal_mark) {
          steal_mark = failed;
          pop_batch = pop_batch / 2 < kMinPopBatch ? kMinPopBatch : pop_batch / 2;
        }
        const std::uint64_t pop_begin = tracer != nullptr ? tracer->now_us() : 0;
        bool stole = false;
        const std::size_t got = frontier.pop_batch(id, batch, pop_batch, &stole);
        if (got == 0) {
          // pending counts items queued, locally buffered, or mid-expansion;
          // 0 means fully drained.
          if (pending.load(std::memory_order_acquire) == 0) break;
          std::this_thread::yield();
          continue;
        }
        if (fault != nullptr &&
            fault->hit(FaultPlan::Site::kBatch) == FaultPlan::Action::kStop) {
          request_stop(sim::StopReason::kForcedStop);
        }
        if (!stole && got == pop_batch && pop_batch < kMaxPopBatch) {
          pop_batch *= 2;  // local deque runs deep, nobody is starving
        }
        if (tracer != nullptr) {
          batch_begin = tracer->now_us();
          if (stole) tracer->complete(trace_lane, "steal", pop_begin, batch_begin);
        }
      } else if (stop_.load(std::memory_order_relaxed) ||
                 pause_flag_.load(std::memory_order_relaxed)) {
        // Hand the unprocessed remainder back (still pending-counted) so a
        // pause or post-stop checkpoint sees every outstanding item; the
        // next iteration parks or exits.
        frontier.push_batch(id, batch);
        batch.clear();
        continue;
      }
      WorkItem item = std::move(batch.back());
      batch.pop_back();

      enumerate_events(item.node, config_, events);
      if (is_terminal(item.node)) local.terminal_states += 1;
      successors.clear();
      bool incomplete = false;

      for (const Event& event : events) {
        if (stop_.load(std::memory_order_relaxed)) {
          incomplete = true;
          break;
        }
        local.transitions += 1;
        Node child = item.node;
        if (auto broken = apply_event(child, event, config_)) {
          local.violation_edges += 1;
          std::vector<Event> path = materialize_path(item.tail);
          path.push_back(event);
          offer_violation(std::move(path), std::move(*broken));
          continue;  // a violating edge is never expanded further
        }
        if (child.decisions.size() > item.node.decisions.size()) local.decisions += 1;
        const util::U128 key = fingerprint(child, scratch);
        local.cache_probes += 1;
        if (cache.seen(key)) {
          local.cache_hits += 1;
          local.duplicates += 1;
          continue;
        }
        if (!visited.insert(key, &local.ops)) {
          cache.remember(key);
          local.duplicates += 1;
          continue;
        }
        cache.remember(key);

        const std::uint64_t count =
            visited_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        local.visited += 1;
        if (count > config_.visited_cap()) {
          record_truncation(item.tail, event);
          incomplete = true;
          break;
        }
        successors.push_back(WorkItem{std::move(child), arena.add(event, item.tail)});
        local.allocations_avoided += 2;  // inline frontier item + arena link
      }

      if (!successors.empty()) {
        local.batches += 1;
        local.batched_items += successors.size();
        if (obs_cells_.active) {
          obs_cells_.batch_size->record(obs_lane, successors.size());
        }
        pending.fetch_add(successors.size(), std::memory_order_release);
        frontier.push_batch(id, successors);
        successors.clear();
      }
      if (incomplete) {
        // A stop interrupted this expansion: re-queue the item WITHOUT
        // releasing its pending slot. A resumed run re-expands it and the
        // already-inserted successors dedup away, so nothing is lost and
        // visited counts stay exact.
        frontier.push(id, std::move(item));
      } else {
        pending.fetch_sub(1, std::memory_order_release);
      }
      if (tracer != nullptr && batch.empty()) {
        tracer->complete(trace_lane, "expand_batch", batch_begin, tracer->now_us());
      }
    }
  } catch (const std::bad_alloc&) {
    // An allocation failed mid-event (real exhaustion or an injected alloc
    // fault): the in-flight event was already tallied as a transition but its
    // classification never completed. Drop the half-counted transition so
    // the conservation law stays exact at the flush/exit DCHECK below — the
    // run is truncated (kMemory) either way, and an unclassified transition
    // would overstate the explored edge count.
    // (The deviation is the one unclassified event, or — in the compact
    // worker — orbit skips recorded by an interrupted expansion before their
    // transition credit landed; reconciling to the classified sum restores
    // the law in both directions.)
    local.transitions =
        local.visited + local.duplicates + local.violation_edges + local.orbit_skipped;
    request_stop(sim::StopReason::kMemory);
  }

  dcheck_transitions_identity(local);  // holds even when obs flushing is off
  if (obs_cells_.active) {
    flush_worker_obs(obs_lane, flushed, local,
                     pending.load(std::memory_order_relaxed));
  }
  if (tracer != nullptr) {
    tracer->complete(trace_lane, "worker", worker_begin, tracer->now_us());
  }
  worker_exit(id);
}

void ParallelExplorer::worker_compact(int id, CompactFrontier& frontier,
                                      NodeStore& store, PathArena& arena,
                                      std::atomic<std::uint64_t>& pending,
                                      WorkerStats& local) {
  // Per-worker reusable state: one scratch node (restored from the parent's
  // record between successors — no Node copies), the record/event buffers,
  // the orbit mask, the popped and successor batches, and the
  // recently-inserted cache. Zero allocations per successor after warmup.
  NodeCodec codec(config_.symmetry_classes);
  Node parent = make_root(initial_memory_, initial_processes_, config_.properties);
  std::vector<Event> events;
  std::vector<typesys::Value> child_record;
  std::vector<std::uint8_t> orbit_skip;
  std::vector<CompactWorkItem> batch;
  std::vector<CompactWorkItem> successors;
  DedupCache cache;
  const bool orbits = codec.canonicalizing();

  // Observability: metrics flush at batch boundaries (obs_cells_ inactive =
  // one predicted branch per batch), spans on the tracer's worker lane.
  obs::Tracer* const tracer = config_.obs.tracer;
  const std::size_t obs_lane = 1 + static_cast<std::size_t>(id);
  const std::size_t trace_lane = tracer != nullptr ? tracer->worker_lane(id) : 0;
  if (tracer != nullptr) {
    tracer->set_lane_name(trace_lane, "worker-" + std::to_string(id));
  }
  WorkerStats flushed;
  const std::uint64_t worker_begin = tracer != nullptr ? tracer->now_us() : 0;
  std::uint64_t batch_begin = 0;
  std::size_t pop_batch = kInitPopBatch;
  std::uint64_t steal_mark = frontier.failed_steals();
  Heartbeat& heartbeat = heartbeats_[static_cast<std::size_t>(id)];
  std::uint64_t beats = 0;
  FaultPlan* const fault = config_.fault;

  // Any allocation failure — fault-injected at the batch/intern sites or a
  // real bad_alloc out of index/arena/deque growth — lands here and becomes
  // the typed StopReason::kMemory truncated verdict; it never escapes.
  try {
    for (;;) {
      heartbeat.beats.store(++beats, std::memory_order_relaxed);
      if (batch.empty()) {
        // Cooperative stop: exit immediately. Queued work stays queued (and
        // pending-counted), so a checkpoint taken after the join still sees
        // every outstanding item; every worker leaves through this check, so
        // pending never reaching 0 cannot hang anyone.
        if (stop_.load(std::memory_order_relaxed)) break;
        if (pause_flag_.load(std::memory_order_relaxed)) {
          worker_pause_point();
          continue;
        }
        if (obs_cells_.active) {
          flush_worker_obs(obs_lane, flushed, local,
                           pending.load(std::memory_order_relaxed));
        }
        // Adapt the batch size to observed steal pressure before popping.
        const std::uint64_t failed = frontier.failed_steals();
        if (failed != steal_mark) {
          steal_mark = failed;
          pop_batch = pop_batch / 2 < kMinPopBatch ? kMinPopBatch : pop_batch / 2;
        }
        const std::uint64_t pop_begin = tracer != nullptr ? tracer->now_us() : 0;
        bool stole = false;
        const std::size_t got = frontier.pop_batch(id, batch, pop_batch, &stole);
        if (got == 0) {
          if (pending.load(std::memory_order_acquire) == 0) break;
          std::this_thread::yield();
          continue;
        }
        if (fault != nullptr &&
            fault->hit(FaultPlan::Site::kBatch) == FaultPlan::Action::kStop) {
          request_stop(sim::StopReason::kForcedStop);
        }
        if (!stole && got == pop_batch && pop_batch < kMaxPopBatch) {
          pop_batch *= 2;  // local deque runs deep, nobody is starving
        }
        if (tracer != nullptr) {
          batch_begin = tracer->now_us();
          if (stole) tracer->complete(trace_lane, "steal", pop_begin, batch_begin);
        }
      } else if (stop_.load(std::memory_order_relaxed) ||
                 pause_flag_.load(std::memory_order_relaxed)) {
        // Hand the unprocessed remainder back (still pending-counted) so a
        // pause or post-stop checkpoint sees every outstanding item; the
        // next iteration parks or exits.
        frontier.push_batch(id, batch);
        batch.clear();
        continue;
      }
      const CompactWorkItem item = batch.back();
      batch.pop_back();

      // The item's record view reads straight from the store arena — no
      // fetch lock, no copy (see NodeStore::Intern). decode() also captures
      // the record's layout for the restore/patch-encode fast paths below.
      codec.decode(item.record, item.length, parent);
      // Stabilizer orbits: enumerate one representative event per orbit of
      // interchangeable processes; the skipped siblings still count as
      // transitions (they are edges of the unreduced graph) plus
      // orbit_skipped.
      const std::uint64_t orbit_before = local.orbit_skipped;
      const int orbit_count =
          orbits ? codec.orbit_skip_mask(item.record, orbit_skip) : 0;
      enumerate_events(parent, config_, events,
                       orbit_count > 0 ? &orbit_skip : nullptr,
                       &local.orbit_skipped);
      local.transitions += local.orbit_skipped - orbit_before;
      if (is_terminal(parent)) local.terminal_states += 1;
      successors.clear();
      bool incomplete = false;
      // Codec header: record[1] counts the distinct outputs so far.
      const auto parent_decisions = static_cast<std::size_t>(item.record[1]);

      // Between successors the scratch node diverges from the parent record
      // only where the previous event touched it: the shared flat fields
      // plus exactly one process (or all of them after a crash-all). restore
      // re-decodes just that — one program decode per successor instead of n.
      int dirty = NodeCodec::kDirtyNone;
      for (const Event& event : events) {
        if (stop_.load(std::memory_order_relaxed)) {
          incomplete = true;
          break;
        }
        local.transitions += 1;
        if (dirty != NodeCodec::kDirtyNone) {
          codec.restore(item.record, item.length, parent, dirty);
        }
        dirty = event.kind == Event::Kind::kCrashAll ? NodeCodec::kDirtyAll
                                                     : event.process;
        if (auto broken = apply_event(parent, event, config_)) {
          local.violation_edges += 1;
          std::vector<Event> path = materialize_path(item.tail);
          path.push_back(event);
          offer_violation(std::move(path), std::move(*broken));
          continue;  // a violating edge is never expanded further
        }
        if (parent.decisions.size() > parent_decisions) local.decisions += 1;
        // Per-process events leave n-1 blocks byte-identical to the parent
        // record: patch-encode copies them instead of re-encoding programs.
        const NodeCodec::Encoded encoded =
            event.kind == Event::Kind::kCrashAll
                ? codec.encode(parent, child_record)
                : codec.encode_successor(item.record, item.length, parent,
                                         event.process, child_record);
        local.encodes += 1;
        if (encoded.permuted) local.canonical_hits += 1;
        local.cache_probes += 1;
        if (cache.seen(encoded.fingerprint)) {
          local.cache_hits += 1;
          local.duplicates += 1;
          continue;  // guaranteed duplicate: skip the table probe entirely
        }
        if (fault != nullptr) fault->hit(FaultPlan::Site::kIntern);
        const NodeStore::Intern interned =
            store.intern(encoded.fingerprint, child_record, id, &local.ops);
        cache.remember(encoded.fingerprint);
        if (!interned.inserted) {
          local.duplicates += 1;
          continue;
        }
        local.store_nodes += 1;
        local.store_bytes +=
            static_cast<std::uint64_t>(interned.length) * sizeof(typesys::Value);

        const std::uint64_t count =
            visited_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        local.visited += 1;
        if (count > config_.visited_cap()) {
          record_truncation(item.tail, event);
          incomplete = true;
          break;
        }
        successors.push_back(CompactWorkItem{interned.record, interned.length,
                                             arena.add(event, item.tail)});
        local.allocations_avoided += 2;  // inline frontier item + arena link
      }

      if (!successors.empty()) {
        local.batches += 1;
        local.batched_items += successors.size();
        if (obs_cells_.active) {
          obs_cells_.batch_size->record(obs_lane, successors.size());
        }
        pending.fetch_add(successors.size(), std::memory_order_release);
        frontier.push_batch(id, successors);
        successors.clear();
      }
      if (incomplete) {
        // A stop interrupted this expansion: re-queue the item WITHOUT
        // releasing its pending slot. A resumed run re-expands it and the
        // already-interned successors dedup away, so nothing is lost and
        // visited counts stay exact.
        frontier.push(id, item);
      } else {
        pending.fetch_sub(1, std::memory_order_release);
      }
      if (tracer != nullptr && batch.empty()) {
        tracer->complete(trace_lane, "expand_batch", batch_begin, tracer->now_us());
      }
    }
  } catch (const std::bad_alloc&) {
    // An allocation failed mid-event (real exhaustion or an injected alloc
    // fault): the in-flight event was already tallied as a transition but its
    // classification never completed. Drop the half-counted transition so
    // the conservation law stays exact at the flush/exit DCHECK below — the
    // run is truncated (kMemory) either way, and an unclassified transition
    // would overstate the explored edge count.
    // (The deviation is the one unclassified event, or — in the compact
    // worker — orbit skips recorded by an interrupted expansion before their
    // transition credit landed; reconciling to the classified sum restores
    // the law in both directions.)
    local.transitions =
        local.visited + local.duplicates + local.violation_edges + local.orbit_skipped;
    request_stop(sim::StopReason::kMemory);
  }

  dcheck_transitions_identity(local);  // holds even when obs flushing is off
  if (obs_cells_.active) {
    flush_worker_obs(obs_lane, flushed, local,
                     pending.load(std::memory_order_relaxed));
  }
  if (tracer != nullptr) {
    tracer->complete(trace_lane, "worker", worker_begin, tracer->now_us());
  }
  worker_exit(id);
}

std::optional<sim::Violation> ParallelExplorer::run() {
  stats_ = sim::ExplorerStats{};
  visited_count_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  truncated_.store(false, std::memory_order_relaxed);
  stop_reason_.store(static_cast<int>(sim::StopReason::kNone),
                     std::memory_order_relaxed);
  checkpoints_written_.store(0, std::memory_order_relaxed);
  resume_visited_ = 0;
  resume_transitions_ = 0;
  resume_decisions_ = 0;
  resume_terminal_states_ = 0;
  resume_orbit_skipped_ = 0;
  resume_encodes_ = 0;
  resume_canonical_hits_ = 0;
  resume_checkpoints_ = 0;
  has_violation_ = false;
  best_path_.clear();
  best_violation_ = sim::PropertyViolation{};
  truncation_path_.clear();
  watchdog_dump_.clear();

  heartbeats_ = std::make_unique<Heartbeat[]>(static_cast<std::size_t>(num_threads_));
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    pause_requested_ = false;
    parked_ = 0;
    live_workers_ = num_threads_;
  }
  pause_flag_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    monitor_exit_ = false;
  }

  obs_cells_ = ObsCells::resolve(config_.obs.metrics);
  if (obs_cells_.active) {
    obs_cells_.visited_cap->set(static_cast<std::int64_t>(config_.visited_cap()));
    obs_cells_.num_threads->set(num_threads_);
    obs_cells_.expected_states->set(
        static_cast<std::int64_t>(config_.expected_states));
  }

  return compact_ ? run_compact() : run_legacy();
}

std::optional<sim::Violation> ParallelExplorer::run_legacy() {
  Frontier frontier(num_threads_);
  ShardedVisited visited(shard_bits_, presize_states());
  std::vector<PathArena> arenas(static_cast<std::size_t>(num_threads_));
  std::atomic<std::uint64_t> pending{0};

  {
    WorkItem root;
    root.node = make_root(initial_memory_, initial_processes_, config_.properties);
    std::vector<typesys::Value> scratch;
    visited.insert(fingerprint(root.node, scratch));
    pending.fetch_add(1, std::memory_order_release);
    frontier.push(0, std::move(root));
  }

  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(num_threads_));
  std::thread monitor;
  if (monitor_needed()) {
    // The legacy representation supports the sentinels and the watchdog but
    // not checkpoints (the ctor rejects that combination).
    monitor = std::thread([this] { monitor_loop(std::function<bool()>{}); });
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_));
  for (int id = 0; id < num_threads_; ++id) {
    threads.emplace_back(
        [this, id, &frontier, &visited, &arenas, &pending, &worker_stats] {
          worker_legacy(id, frontier, visited, arenas[static_cast<std::size_t>(id)],
                        pending, worker_stats[static_cast<std::size_t>(id)]);
        });
  }
  for (std::thread& thread : threads) thread.join();
  stop_monitor(monitor);

  visited_stats_ = visited.load_stats();
  frontier_stats_ = frontier.stats();
  return finish(worker_stats);
}

std::optional<sim::Violation> ParallelExplorer::run_compact() {
  CompactFrontier frontier(num_threads_);
  NodeStore store(shard_bits_, presize_states(), num_threads_);
  std::vector<PathArena> arenas(static_cast<std::size_t>(num_threads_));
  std::atomic<std::uint64_t> pending{0};
  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(num_threads_));

  // The root is always encoded — a resume checks its fingerprint against the
  // checkpoint's (same initial memory + programs) before trusting the file.
  NodeCodec codec(config_.symmetry_classes);
  Node root_node = make_root(initial_memory_, initial_processes_, config_.properties);
  std::vector<typesys::Value> root_record;
  const NodeCodec::Encoded root_encoded = codec.encode(root_node, root_record);
  const std::uint64_t root_canonical_hits = root_encoded.permuted ? 1 : 0;

  if (config_.resume != nullptr) {
    const CheckpointData& ckpt = *config_.resume;
    RCONS_ASSERT_MSG(ckpt.root_fp.lo == root_encoded.fingerprint.lo &&
                         ckpt.root_fp.hi == root_encoded.fingerprint.hi,
                     "resume checkpoint was taken from a different root state");
    RCONS_ASSERT_MSG(ckpt.config_hash == checkpoint_config_hash(config_),
                     "resume checkpoint was taken under a different config");
    // Re-intern the checkpointed records: the store again doubles as the
    // visited set, so every state expanded before the cut dedups away when
    // the resumed frontier re-reaches it.
    static_assert(std::is_same_v<typesys::Value, std::int64_t>,
                  "checkpoint records are raw value vectors");
    std::vector<NodeStore::Intern> interned;
    interned.reserve(ckpt.nodes.size());
    for (const CheckpointData::Node& node : ckpt.nodes) {
      interned.push_back(store.intern(node.fp, node.values));
    }
    visited_count_.store(ckpt.visited, std::memory_order_relaxed);
    resume_visited_ = ckpt.visited;
    resume_transitions_ = ckpt.transitions;
    resume_decisions_ = ckpt.decisions;
    resume_terminal_states_ = ckpt.terminal_states;
    resume_orbit_skipped_ = ckpt.orbit_skipped;
    resume_encodes_ = ckpt.encodes;
    resume_canonical_hits_ = ckpt.canonical_hits;
    resume_checkpoints_ = ckpt.checkpoints_written;
    if (ckpt.has_violation) {
      has_violation_ = true;
      best_violation_.description = ckpt.violation_description;
      best_violation_.property = ckpt.violation_property;
      best_violation_.param = ckpt.violation_param;
      best_path_ = ckpt.violation_schedule;
    }
    // Re-seed the frontier round-robin (path backlinks are not checkpointed:
    // post-resume violation traces are suffixes rooted at the cut).
    for (std::size_t i = 0; i < ckpt.frontier.size(); ++i) {
      const NodeStore::Intern& node = interned[ckpt.frontier[i]];
      pending.fetch_add(1, std::memory_order_release);
      frontier.push(static_cast<int>(i % static_cast<std::size_t>(num_threads_)),
                    CompactWorkItem{node.record, node.length, nullptr});
    }
  } else {
    const NodeStore::Intern interned =
        store.intern(root_encoded.fingerprint, root_record);
    pending.fetch_add(1, std::memory_order_release);
    frontier.push(0, CompactWorkItem{interned.record, interned.length, nullptr});
    if (obs_cells_.active) {
      // The coordinator's root intern, on lane 0, so store.* totals match
      // store.stats() exactly (the workers account everything else live).
      ObsDeltas root_delta;
      root_delta.nodes = 1;
      root_delta.value_bytes =
          static_cast<std::uint64_t>(interned.length) * sizeof(typesys::Value);
      root_delta.encodes = 1;
      root_delta.canonical_hits = root_canonical_hits;
      obs_cells_.flush(0, root_delta);
    }
  }
  // A resume's root re-encode was already counted by the original run.
  const std::uint64_t fresh_encodes = config_.resume == nullptr ? 1 : 0;
  const std::uint64_t fresh_canonical_hits =
      config_.resume == nullptr ? root_canonical_hits : 0;

  const std::uint64_t config_hash = checkpoint_config_hash(config_);

  // Fills a checkpoint from the current state. Caller contract: the workers
  // are parked at the pause barrier or have all joined (frontier + store
  // quiescent, worker_stats stable).
  auto gather = [&](CheckpointData& data) {
    data.config_hash = config_hash;
    data.label = config_.checkpoint_label;
    data.root_fp = root_encoded.fingerprint;
    data.visited = visited_count_.load(std::memory_order_relaxed);
    data.transitions = resume_transitions_;
    data.decisions = resume_decisions_;
    data.terminal_states = resume_terminal_states_;
    data.orbit_skipped = resume_orbit_skipped_;
    data.encodes = resume_encodes_ + fresh_encodes;
    data.canonical_hits = resume_canonical_hits_ + fresh_canonical_hits;
    for (const WorkerStats& local : worker_stats) {
      data.transitions += local.transitions;
      data.decisions += local.decisions;
      data.terminal_states += local.terminal_states;
      data.orbit_skipped += local.orbit_skipped;
      data.encodes += local.encodes;
      data.canonical_hits += local.canonical_hits;
    }
    data.checkpoints_written =
        resume_checkpoints_ + checkpoints_written_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(violation_mu_);
      data.has_violation = has_violation_;
      if (has_violation_) {
        data.violation_description = best_violation_.description;
        data.violation_property = best_violation_.property;
        data.violation_param = best_violation_.param;
        data.violation_schedule = best_path_;
      }
    }
    data.nodes.clear();
    data.frontier.clear();
    std::unordered_map<const typesys::Value*, std::uint64_t> record_index;
    store.for_each_record(
        [&](util::U128 fp, const typesys::Value* values, std::uint32_t length) {
          record_index.emplace(values, data.nodes.size());
          CheckpointData::Node node;
          node.fp = fp;
          node.values.assign(values, values + length);
          data.nodes.push_back(std::move(node));
        });
    std::vector<CompactWorkItem> items;
    frontier.snapshot(items);
    // Quiescence invariant (PR 8): with every worker parked or joined, each
    // pending-counted item is physically in the frontier — none are buffered
    // worker-side or mid-expansion. A mismatch means the cut is not
    // consistent and the checkpoint would silently lose or duplicate work.
    RCONS_DCHECK_MSG(pending.load(std::memory_order_relaxed) == items.size(),
                     "checkpoint cut taken without frontier quiescence "
                     "(pending != snapshot size)");
    data.frontier.reserve(items.size());
    for (const CompactWorkItem& item : items) {
      const auto it = record_index.find(item.record);
      RCONS_ASSERT_MSG(it != record_index.end(),
                       "frontier item missing from the node store");
      data.frontier.push_back(it->second);
    }
  };

  // Periodic snapshot (monitor thread): park everyone, gather, resume, then
  // write outside the barrier so a slow disk never blocks exploration.
  auto write_snapshot = [&]() -> bool {
    if (!pause_workers()) return false;  // stop in flight or a wedged worker
    CheckpointData data;
    gather(data);
    resume_workers();
    std::string error;
    if (!write_checkpoint(config_.checkpoint_path, data, config_.fault, error)) {
      return false;
    }
    checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  std::thread monitor;
  if (monitor_needed()) {
    std::function<bool()> snapshot_fn;
    if (!config_.checkpoint_path.empty() && config_.checkpoint_every > 0) {
      snapshot_fn = write_snapshot;
    }
    monitor = std::thread([this, snapshot_fn] { monitor_loop(snapshot_fn); });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_));
  for (int id = 0; id < num_threads_; ++id) {
    threads.emplace_back(
        [this, id, &frontier, &store, &arenas, &pending, &worker_stats] {
          worker_compact(id, frontier, store, arenas[static_cast<std::size_t>(id)],
                         pending, worker_stats[static_cast<std::size_t>(id)]);
        });
  }
  for (std::thread& thread : threads) thread.join();
  stop_monitor(monitor);

  // Final checkpoint at exit — complete, truncated, or violating alike. The
  // workers joined, so the cut is trivially consistent (no pause needed).
  if (!config_.checkpoint_path.empty()) {
    CheckpointData data;
    gather(data);
    std::string error;
    if (write_checkpoint(config_.checkpoint_path, data, config_.fault, error)) {
      checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const NodeStore::Stats store_stats = store.stats();
  stats_.compact = true;
  stats_.store.nodes = store_stats.nodes;
  stats_.store.value_bytes = store_stats.value_bytes;
  stats_.store.encodes = fresh_encodes;
  stats_.store.canonical_hits = fresh_canonical_hits;
  visited_stats_ = store.load_stats();
  frontier_stats_ = frontier.stats();
  return finish(worker_stats);
}

std::optional<sim::Violation> ParallelExplorer::finish(
    const std::vector<WorkerStats>& worker_stats) {
  // Like the sequential explorer, `visited` counts the states inserted during
  // expansion (the root insert is not counted).
  stats_.visited = visited_count_.load(std::memory_order_relaxed);
  stats_.stop_reason =
      static_cast<sim::StopReason>(stop_reason_.load(std::memory_order_relaxed));
  stats_.truncated = stats_.stop_reason != sim::StopReason::kNone;
  stats_.checkpoints_written =
      resume_checkpoints_ + checkpoints_written_.load(std::memory_order_relaxed);
  stats_.transitions = resume_transitions_;
  stats_.decisions = resume_decisions_;
  stats_.terminal_states = resume_terminal_states_;
  stats_.orbit_skipped = resume_orbit_skipped_;
  stats_.store.encodes += resume_encodes_;
  stats_.store.canonical_hits += resume_canonical_hits_;
  for (const WorkerStats& local : worker_stats) {
    stats_.transitions += local.transitions;
    stats_.decisions += local.decisions;
    stats_.terminal_states += local.terminal_states;
    stats_.orbit_skipped += local.orbit_skipped;
    stats_.store.encodes += local.encodes;
    stats_.store.canonical_hits += local.canonical_hits;
    stats_.hot.allocations_avoided += local.allocations_avoided;
    stats_.hot.batches += local.batches;
    stats_.hot.batched_items += local.batched_items;
    stats_.hot.dedup_cache_probes += local.cache_probes;
    stats_.hot.dedup_cache_hits += local.cache_hits;
    // Probe/contention counters are caller-side OpStats (the lock-free
    // tables hold no shared tallies); aggregate across workers here.
    stats_.hot.probe_total += local.ops.probe_total;
    stats_.hot.probe_ops += local.ops.probe_ops;
    if (local.ops.max_probe > stats_.hot.max_probe) {
      stats_.hot.max_probe = local.ops.max_probe;
    }
    stats_.hot.cas_retries += local.ops.cas_retries;
    stats_.hot.migration_stripes += local.ops.migration_stripes;
  }
  stats_.hot.rehashes = visited_stats_.rehashes;

  if (obs_cells_.active) {
    // Steal and rehash totals live in the frontier/table internals; publish
    // them once per run rather than threading handles through those layers.
    if (frontier_stats_.steals != 0) {
      obs_cells_.steals->add(0, frontier_stats_.steals);
    }
    if (frontier_stats_.stolen_items != 0) {
      obs_cells_.stolen_items->add(0, frontier_stats_.stolen_items);
    }
    if (stats_.hot.rehashes != 0) {
      obs_cells_.store_rehashes->add(0, stats_.hot.rehashes);
    }
    obs_cells_.frontier_pending->set(0);
  }

  if (has_violation_) {
    return sim::Violation{best_violation_.description, best_violation_.property,
                          best_violation_.param, best_path_};
  }
  if (stats_.truncated) {
    // Typed truncated verdict: full partial stats, a reason-specific
    // description, and (for the visited-cap case) a best-effort partial
    // trace. Never an abort, never an empty report.
    return sim::Violation{truncation_description(), sim::PropertyKind::kNone, 0,
                          truncation_path_};
  }
  return std::nullopt;
}

}  // namespace rcons::engine
