#include "engine/parallel_explorer.hpp"

#include <thread>

#include "util/assert.hpp"

namespace rcons::engine {

ParallelExplorer::ParallelExplorer(sim::Memory initial,
                                   std::vector<sim::Process> processes,
                                   ParallelExplorerConfig config)
    : initial_memory_(std::move(initial)),
      initial_processes_(std::move(processes)),
      config_(std::move(config)) {
  RCONS_ASSERT(!initial_processes_.empty());
  RCONS_ASSERT(config_.crash_budget >= 0);
  RCONS_ASSERT_MSG(config_.num_threads >= 0,
                   "num_threads must be >= 0 (0 selects hardware concurrency)");
  RCONS_ASSERT_MSG(config_.shard_bits >= -1 && config_.shard_bits <= 16,
                   "shard_bits must be in [0, 16], or -1 for auto");
  num_threads_ = config_.num_threads;
  if (num_threads_ <= 0) {
    num_threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads_ <= 0) num_threads_ = 1;
  }
  if (config_.shard_bits >= 0) {
    shard_bits_ = config_.shard_bits;
  } else {
    std::uint64_t expected = config_.expected_states != 0 ? config_.expected_states
                                                          : config_.max_visited;
    if (expected > config_.max_visited) expected = config_.max_visited;
    shard_bits_ = pick_shard_bits(num_threads_, expected);
  }

  compact_ = resolve_compact_repr(config_.node_repr, initial_processes_);
  RCONS_ASSERT_MSG(config_.symmetry_classes.empty() ||
                       config_.symmetry_classes.size() == initial_processes_.size(),
                   "symmetry_classes must be empty or name every process");
}

void ParallelExplorer::offer_violation(std::vector<Event> path,
                                       std::string description) {
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!has_violation_ || path_less(path, best_path_)) {
    has_violation_ = true;
    best_path_ = std::move(path);
    best_description_ = std::move(description);
  }
}

void ParallelExplorer::record_truncation(const PathLink* tail, const Event& event) {
  stop_.store(true, std::memory_order_relaxed);
  // Best-effort trace of where the budget ran out (like the sequential
  // explorer's partial trace); first recorder wins.
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!truncated_.load(std::memory_order_relaxed)) {
    truncated_.store(true, std::memory_order_relaxed);
    truncation_path_ = materialize_path(tail);
    truncation_path_.push_back(event);
  }
}

void ParallelExplorer::expand_legacy(const WorkItem& item, int id, Frontier& frontier,
                                     ShardedVisited& visited,
                                     std::atomic<std::uint64_t>& pending,
                                     WorkerStats& local, std::vector<Event>& events,
                                     std::vector<typesys::Value>& scratch) {
  enumerate_events(item.node, config_, events);
  if (is_terminal(item.node)) local.terminal_states += 1;

  for (const Event& event : events) {
    if (stop_.load(std::memory_order_relaxed)) return;
    local.transitions += 1;
    auto child = std::make_unique<WorkItem>();
    child->node = item.node;
    if (auto description = apply_event(child->node, event, config_)) {
      std::vector<Event> path = materialize_path(item.tail.get());
      path.push_back(event);
      offer_violation(std::move(path), std::move(*description));
      continue;  // a violating edge is never expanded further
    }
    if (child->node.has_decision && !item.node.has_decision) local.decisions += 1;
    if (!visited.insert(fingerprint(child->node, scratch))) continue;

    const std::uint64_t count =
        visited_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count > config_.max_visited) {
      record_truncation(item.tail.get(), event);
      return;
    }
    child->tail = std::make_shared<const PathLink>(PathLink{event, item.tail});
    pending.fetch_add(1, std::memory_order_release);
    frontier.push(id, std::move(child));
  }
}

void ParallelExplorer::worker_legacy(int id, Frontier& frontier,
                                     ShardedVisited& visited,
                                     std::atomic<std::uint64_t>& pending,
                                     WorkerStats& local) {
  std::vector<Event> events;
  std::vector<typesys::Value> scratch;
  for (;;) {
    std::unique_ptr<WorkItem> item = frontier.pop(id);
    if (item == nullptr) {
      // pending counts items queued or mid-expansion; 0 means fully drained.
      // After a stop, queued items are still popped (and skipped) below, so
      // the counter always reaches 0.
      if (pending.load(std::memory_order_acquire) == 0) return;
      std::this_thread::yield();
      continue;
    }
    if (!stop_.load(std::memory_order_relaxed)) {
      expand_legacy(*item, id, frontier, visited, pending, local, events, scratch);
    }
    pending.fetch_sub(1, std::memory_order_release);
  }
}

void ParallelExplorer::worker_compact(int id, CompactFrontier& frontier,
                                      NodeStore& store,
                                      std::atomic<std::uint64_t>& pending,
                                      WorkerStats& local) {
  // Per-worker reusable state: the decoded parent, the child being expanded
  // (re-decoded from the parent's record per successor — no Node copies),
  // and the record/event buffers. No allocation per successor after warmup.
  NodeCodec codec(config_.symmetry_classes);
  Node parent = make_root(initial_memory_, initial_processes_);
  Node child = parent;
  std::vector<Event> events;
  std::vector<typesys::Value> record;
  std::vector<typesys::Value> child_record;

  for (;;) {
    std::unique_ptr<CompactWorkItem> item = frontier.pop(id);
    if (item == nullptr) {
      if (pending.load(std::memory_order_acquire) == 0) return;
      std::this_thread::yield();
      continue;
    }
    if (!stop_.load(std::memory_order_relaxed)) {
      store.fetch(item->id, record);
      codec.decode(record.data(), record.size(), parent);
      enumerate_events(parent, config_, events);
      if (is_terminal(parent)) local.terminal_states += 1;

      for (const Event& event : events) {
        if (stop_.load(std::memory_order_relaxed)) break;
        local.transitions += 1;
        codec.decode(record.data(), record.size(), child);
        if (auto description = apply_event(child, event, config_)) {
          std::vector<Event> path = materialize_path(item->tail.get());
          path.push_back(event);
          offer_violation(std::move(path), std::move(*description));
          continue;  // a violating edge is never expanded further
        }
        if (child.has_decision && !parent.has_decision) local.decisions += 1;
        const NodeCodec::Encoded encoded = codec.encode(child, child_record);
        local.encodes += 1;
        if (encoded.permuted) local.canonical_hits += 1;
        const NodeStore::Intern interned =
            store.intern(encoded.fingerprint, child_record);
        if (!interned.inserted) continue;

        const std::uint64_t count =
            visited_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (count > config_.max_visited) {
          record_truncation(item->tail.get(), event);
          break;
        }
        auto next = std::make_unique<CompactWorkItem>();
        next->id = interned.id;
        next->tail = std::make_shared<const PathLink>(PathLink{event, item->tail});
        pending.fetch_add(1, std::memory_order_release);
        frontier.push(id, std::move(next));
      }
    }
    pending.fetch_sub(1, std::memory_order_release);
  }
}

std::optional<sim::Violation> ParallelExplorer::run() {
  stats_ = sim::ExplorerStats{};
  visited_count_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  truncated_.store(false, std::memory_order_relaxed);
  has_violation_ = false;
  best_path_.clear();
  best_description_.clear();
  truncation_path_.clear();

  return compact_ ? run_compact() : run_legacy();
}

std::optional<sim::Violation> ParallelExplorer::run_legacy() {
  Frontier frontier(num_threads_);
  ShardedVisited visited(shard_bits_);
  std::atomic<std::uint64_t> pending{0};

  auto root = std::make_unique<WorkItem>();
  root->node = make_root(initial_memory_, initial_processes_);
  {
    std::vector<typesys::Value> scratch;
    visited.insert(fingerprint(root->node, scratch));
  }
  pending.fetch_add(1, std::memory_order_release);
  frontier.push(0, std::move(root));

  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(num_threads_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_));
  for (int id = 0; id < num_threads_; ++id) {
    threads.emplace_back([this, id, &frontier, &visited, &pending, &worker_stats] {
      worker_legacy(id, frontier, visited, pending,
                    worker_stats[static_cast<std::size_t>(id)]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  visited_stats_ = visited.load_stats();
  frontier_stats_ = frontier.stats();
  return finish(worker_stats);
}

std::optional<sim::Violation> ParallelExplorer::run_compact() {
  CompactFrontier frontier(num_threads_);
  NodeStore store(shard_bits_);
  std::atomic<std::uint64_t> pending{0};

  std::uint64_t root_canonical_hits = 0;
  {
    NodeCodec codec(config_.symmetry_classes);
    Node root_node = make_root(initial_memory_, initial_processes_);
    std::vector<typesys::Value> record;
    const NodeCodec::Encoded encoded = codec.encode(root_node, record);
    if (encoded.permuted) root_canonical_hits = 1;
    const NodeStore::Intern interned = store.intern(encoded.fingerprint, record);
    auto root = std::make_unique<CompactWorkItem>();
    root->id = interned.id;
    pending.fetch_add(1, std::memory_order_release);
    frontier.push(0, std::move(root));
  }

  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(num_threads_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_));
  for (int id = 0; id < num_threads_; ++id) {
    threads.emplace_back([this, id, &frontier, &store, &pending, &worker_stats] {
      worker_compact(id, frontier, store, pending,
                     worker_stats[static_cast<std::size_t>(id)]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  const NodeStore::Stats store_stats = store.stats();
  stats_.compact = true;
  stats_.store.nodes = store_stats.nodes;
  stats_.store.value_bytes = store_stats.value_bytes;
  stats_.store.encodes = 1;  // the root encode
  stats_.store.canonical_hits = root_canonical_hits;
  visited_stats_ = store.load_stats();
  frontier_stats_ = frontier.stats();
  return finish(worker_stats);
}

std::optional<sim::Violation> ParallelExplorer::finish(
    const std::vector<WorkerStats>& worker_stats) {
  // Like the sequential explorer, `visited` counts the states inserted during
  // expansion (the root insert is not counted).
  stats_.visited = visited_count_.load(std::memory_order_relaxed);
  stats_.truncated = truncated_.load(std::memory_order_relaxed);
  for (const WorkerStats& local : worker_stats) {
    stats_.transitions += local.transitions;
    stats_.decisions += local.decisions;
    stats_.terminal_states += local.terminal_states;
    stats_.store.encodes += local.encodes;
    stats_.store.canonical_hits += local.canonical_hits;
  }

  if (has_violation_) {
    return sim::Violation{best_description_, best_path_};
  }
  if (stats_.truncated) {
    return sim::Violation{"state space exceeded max_visited; verdict incomplete",
                          truncation_path_};
  }
  return std::nullopt;
}

}  // namespace rcons::engine
