#include "engine/parallel_explorer.hpp"

#include <thread>

#include "util/assert.hpp"

namespace rcons::engine {

ParallelExplorer::ParallelExplorer(sim::Memory initial,
                                   std::vector<sim::Process> processes,
                                   ParallelExplorerConfig config)
    : initial_memory_(std::move(initial)),
      initial_processes_(std::move(processes)),
      config_(std::move(config)) {
  RCONS_ASSERT(!initial_processes_.empty());
  RCONS_ASSERT(config_.crash_budget >= 0);
  RCONS_ASSERT_MSG(config_.num_threads >= 0,
                   "num_threads must be >= 0 (0 selects hardware concurrency)");
  RCONS_ASSERT_MSG(config_.shard_bits >= 0 && config_.shard_bits <= 16,
                   "shard_bits must be in [0, 16]");
  num_threads_ = config_.num_threads;
  if (num_threads_ <= 0) {
    num_threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads_ <= 0) num_threads_ = 1;
  }
}

void ParallelExplorer::offer_violation(std::vector<Event> path,
                                       std::string description) {
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!has_violation_ || path_less(path, best_path_)) {
    has_violation_ = true;
    best_path_ = std::move(path);
    best_description_ = std::move(description);
  }
}

void ParallelExplorer::record_truncation(const WorkItem& item, const Event& event) {
  stop_.store(true, std::memory_order_relaxed);
  // Best-effort trace of where the budget ran out (like the sequential
  // explorer's partial trace); first recorder wins.
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!truncated_.load(std::memory_order_relaxed)) {
    truncated_.store(true, std::memory_order_relaxed);
    truncation_path_ = materialize_path(item.tail.get());
    truncation_path_.push_back(event);
  }
}

void ParallelExplorer::expand(const WorkItem& item, int id, Frontier& frontier,
                              ShardedVisited& visited,
                              std::atomic<std::uint64_t>& pending,
                              WorkerStats& local, std::vector<Event>& events,
                              std::vector<typesys::Value>& scratch) {
  enumerate_events(item.node, config_, events);
  if (is_terminal(item.node)) local.terminal_states += 1;

  for (const Event& event : events) {
    if (stop_.load(std::memory_order_relaxed)) return;
    local.transitions += 1;
    auto child = std::make_unique<WorkItem>();
    child->node = item.node;
    if (auto description = apply_event(child->node, event, config_)) {
      std::vector<Event> path = materialize_path(item.tail.get());
      path.push_back(event);
      offer_violation(std::move(path), std::move(*description));
      continue;  // a violating edge is never expanded further
    }
    if (child->node.has_decision && !item.node.has_decision) local.decisions += 1;
    if (!visited.insert(fingerprint(child->node, scratch))) continue;

    const std::uint64_t count =
        visited_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count > config_.max_visited) {
      record_truncation(item, event);
      return;
    }
    child->tail = std::make_shared<const PathLink>(PathLink{event, item.tail});
    pending.fetch_add(1, std::memory_order_release);
    frontier.push(id, std::move(child));
  }
}

void ParallelExplorer::worker(int id, Frontier& frontier, ShardedVisited& visited,
                              std::atomic<std::uint64_t>& pending,
                              WorkerStats& local) {
  std::vector<Event> events;
  std::vector<typesys::Value> scratch;
  for (;;) {
    std::unique_ptr<WorkItem> item = frontier.pop(id);
    if (item == nullptr) {
      // pending counts items queued or mid-expansion; 0 means fully drained.
      // After a stop, queued items are still popped (and skipped) below, so
      // the counter always reaches 0.
      if (pending.load(std::memory_order_acquire) == 0) return;
      std::this_thread::yield();
      continue;
    }
    if (!stop_.load(std::memory_order_relaxed)) {
      expand(*item, id, frontier, visited, pending, local, events, scratch);
    }
    pending.fetch_sub(1, std::memory_order_release);
  }
}

std::optional<sim::Violation> ParallelExplorer::run() {
  stats_ = sim::ExplorerStats{};
  visited_count_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  truncated_.store(false, std::memory_order_relaxed);
  has_violation_ = false;
  best_path_.clear();
  best_description_.clear();
  truncation_path_.clear();

  Frontier frontier(num_threads_);
  ShardedVisited visited(config_.shard_bits);
  std::atomic<std::uint64_t> pending{0};

  auto root = std::make_unique<WorkItem>();
  root->node = make_root(initial_memory_, initial_processes_);
  {
    std::vector<typesys::Value> scratch;
    visited.insert(fingerprint(root->node, scratch));
  }
  pending.fetch_add(1, std::memory_order_release);
  frontier.push(0, std::move(root));

  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(num_threads_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_));
  for (int id = 0; id < num_threads_; ++id) {
    threads.emplace_back([this, id, &frontier, &visited, &pending, &worker_stats] {
      worker(id, frontier, visited, pending, worker_stats[static_cast<std::size_t>(id)]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Like the sequential explorer, `visited` counts the states inserted during
  // expansion (the root insert is not counted).
  stats_.visited = visited_count_.load(std::memory_order_relaxed);
  stats_.truncated = truncated_.load(std::memory_order_relaxed);
  for (const WorkerStats& local : worker_stats) {
    stats_.transitions += local.transitions;
    stats_.decisions += local.decisions;
    stats_.terminal_states += local.terminal_states;
  }
  visited_stats_ = visited.load_stats();
  frontier_stats_ = frontier.stats();

  if (has_violation_) {
    return sim::Violation{best_description_, best_path_};
  }
  if (stats_.truncated) {
    return sim::Violation{"state space exceeded max_visited; verdict incomplete",
                          truncation_path_};
  }
  return std::nullopt;
}

}  // namespace rcons::engine
