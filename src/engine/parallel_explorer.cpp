#include "engine/parallel_explorer.hpp"

#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

namespace {

// Adaptive pop-batch sizing: how many items a worker drains from the
// frontier per lock acquisition. Fixed batches lose both ways — too large
// and a worker hoards frontier items while its peers' steals come back
// empty; too small and every worker pays a lock round-trip per handful of
// nodes. Each worker sizes its own batch inside [kMinPopBatch, kMaxPopBatch]
// from two observations at its next pop: the frontier-wide failed-steal
// counter advanced since it last looked (peers are starving — halve, keep
// work visible to steals), or its previous pop came back full from its own
// deque (the local deque runs deep and nobody is starving — double).
constexpr std::size_t kMinPopBatch = 4;
constexpr std::size_t kInitPopBatch = 16;
constexpr std::size_t kMaxPopBatch = 128;

// Per-worker recently-inserted fingerprint cache: direct-mapped, fixed size.
// A hit proves the fingerprint is already interned (everything remembered
// went through the store first), so the shard lock + table probe can be
// skipped entirely. Duplicate successors cluster in time — siblings reaching
// the same state, diamond interleavings — which is exactly what a small
// recency cache captures.
class DedupCache {
 public:
  DedupCache() : keys_(kEntries), valid_(kEntries, 0) {}

  bool seen(util::U128 key) const {
    const std::size_t index = slot(key);
    return valid_[index] != 0 && keys_[index] == key;
  }

  void remember(util::U128 key) {
    const std::size_t index = slot(key);
    keys_[index] = key;
    valid_[index] = 1;
  }

 private:
  static constexpr std::size_t kEntries = std::size_t{1} << 12;

  static std::size_t slot(util::U128 key) {
    return static_cast<std::size_t>(util::U128Hash{}(key)) & (kEntries - 1);
  }

  std::vector<util::U128> keys_;
  std::vector<std::uint8_t> valid_;
};

}  // namespace

ParallelExplorer::ParallelExplorer(sim::Memory initial,
                                   std::vector<sim::Process> processes,
                                   ParallelExplorerConfig config)
    : initial_memory_(std::move(initial)),
      initial_processes_(std::move(processes)),
      config_(std::move(config)) {
  RCONS_ASSERT(!initial_processes_.empty());
  RCONS_ASSERT(config_.crash_budget >= 0);
  RCONS_ASSERT_MSG(config_.num_threads >= 0,
                   "num_threads must be >= 0 (0 selects hardware concurrency)");
  RCONS_ASSERT_MSG(config_.shard_bits >= -1 && config_.shard_bits <= 16,
                   "shard_bits must be in [0, 16], or -1 for auto");
  num_threads_ = config_.num_threads;
  if (num_threads_ <= 0) {
    num_threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads_ <= 0) num_threads_ = 1;
  }
  if (config_.shard_bits >= 0) {
    shard_bits_ = config_.shard_bits;
  } else {
    std::uint64_t expected = config_.expected_states != 0 ? config_.expected_states
                                                          : config_.visited_cap();
    if (expected > config_.visited_cap()) expected = config_.visited_cap();
    shard_bits_ = pick_shard_bits(num_threads_, expected);
  }

  compact_ = resolve_compact_repr(config_.node_repr, initial_processes_);
  RCONS_ASSERT_MSG(config_.symmetry_classes.empty() ||
                       config_.symmetry_classes.size() == initial_processes_.size(),
                   "symmetry_classes must be empty or name every process");
}

std::uint64_t ParallelExplorer::presize_states() const {
  // Only a real expectation (e.g. the kAuto probe's count) pre-commits table
  // memory; max_visited defaults are far too pessimistic to allocate for.
  std::uint64_t expected = config_.expected_states;
  if (expected > config_.visited_cap()) expected = config_.visited_cap();
  return expected;
}

void ParallelExplorer::offer_violation(std::vector<Event> path,
                                       sim::PropertyViolation broken) {
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!has_violation_ || path_less(path, best_path_)) {
    has_violation_ = true;
    best_path_ = std::move(path);
    best_violation_ = std::move(broken);
  }
}

void ParallelExplorer::record_truncation(const PathLink* tail, const Event& event) {
  stop_.store(true, std::memory_order_relaxed);
  // Best-effort trace of where the budget ran out (like the sequential
  // explorer's partial trace); first recorder wins.
  std::lock_guard<std::mutex> lock(violation_mu_);
  if (!truncated_.load(std::memory_order_relaxed)) {
    truncated_.store(true, std::memory_order_relaxed);
    truncation_path_ = materialize_path(tail);
    truncation_path_.push_back(event);
    if (obs_cells_.active) obs_cells_.truncations->add(0, 1);
  }
}

void ParallelExplorer::flush_worker_obs(std::size_t lane, WorkerStats& last_flushed,
                                        const WorkerStats& local,
                                        std::uint64_t pending_now) {
  ObsDeltas delta;
  delta.visited = local.visited - last_flushed.visited;
  delta.transitions = local.transitions - last_flushed.transitions;
  delta.decisions = local.decisions - last_flushed.decisions;
  delta.terminal_states = local.terminal_states - last_flushed.terminal_states;
  delta.duplicates = local.duplicates - last_flushed.duplicates;
  delta.violation_edges = local.violation_edges - last_flushed.violation_edges;
  delta.encodes = local.encodes - last_flushed.encodes;
  delta.canonical_hits = local.canonical_hits - last_flushed.canonical_hits;
  delta.nodes = local.store_nodes - last_flushed.store_nodes;
  delta.value_bytes = local.store_bytes - last_flushed.store_bytes;
  delta.cache_probes = local.cache_probes - last_flushed.cache_probes;
  delta.cache_hits = local.cache_hits - last_flushed.cache_hits;
  delta.batches = local.batches - last_flushed.batches;
  delta.batched_items = local.batched_items - last_flushed.batched_items;
  delta.orbit_skipped = local.orbit_skipped - last_flushed.orbit_skipped;
  delta.cas_retries = local.ops.cas_retries - last_flushed.ops.cas_retries;
  delta.migration_stripes =
      local.ops.migration_stripes - last_flushed.ops.migration_stripes;
  obs_cells_.flush(lane, delta);
  // Any recent writer's view of the pending count is equally good (gauge is
  // last-write-wins), so a plain relaxed sample suffices.
  obs_cells_.frontier_pending->set(static_cast<std::int64_t>(pending_now));
  last_flushed = local;
}

void ParallelExplorer::worker_legacy(int id, Frontier& frontier,
                                     ShardedVisited& visited, PathArena& arena,
                                     std::atomic<std::uint64_t>& pending,
                                     WorkerStats& local) {
  // Per-worker reusable buffers: the popped batch, the successor batch under
  // construction, event/encode scratch, and the recently-inserted cache. The
  // only per-successor allocations left are the Node clones inherent to the
  // legacy representation.
  std::vector<Event> events;
  std::vector<typesys::Value> scratch;
  std::vector<WorkItem> batch;
  std::vector<WorkItem> successors;
  DedupCache cache;

  // Observability: metrics flush at batch boundaries (obs_cells_ inactive =
  // one predicted branch per batch), spans on the tracer's worker lane.
  obs::Tracer* const tracer = config_.obs.tracer;
  const std::size_t obs_lane = 1 + static_cast<std::size_t>(id);
  const std::size_t trace_lane = tracer != nullptr ? tracer->worker_lane(id) : 0;
  if (tracer != nullptr) {
    tracer->set_lane_name(trace_lane, "worker-" + std::to_string(id));
  }
  WorkerStats flushed;
  const std::uint64_t worker_begin = tracer != nullptr ? tracer->now_us() : 0;
  std::uint64_t batch_begin = 0;
  std::size_t pop_batch = kInitPopBatch;
  std::uint64_t steal_mark = frontier.failed_steals();

  for (;;) {
    if (batch.empty()) {
      if (obs_cells_.active) {
        flush_worker_obs(obs_lane, flushed, local,
                         pending.load(std::memory_order_relaxed));
      }
      // Adapt the batch size to observed steal pressure before popping.
      const std::uint64_t failed = frontier.failed_steals();
      if (failed != steal_mark) {
        steal_mark = failed;
        pop_batch = pop_batch / 2 < kMinPopBatch ? kMinPopBatch : pop_batch / 2;
      }
      const std::uint64_t pop_begin = tracer != nullptr ? tracer->now_us() : 0;
      bool stole = false;
      const std::size_t got = frontier.pop_batch(id, batch, pop_batch, &stole);
      if (got == 0) {
        // pending counts items queued, locally buffered, or mid-expansion;
        // 0 means fully drained. After a stop, queued items are still popped
        // (and skipped) below, so the counter always reaches 0.
        if (pending.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
        continue;
      }
      if (!stole && got == pop_batch && pop_batch < kMaxPopBatch) {
        pop_batch *= 2;  // local deque runs deep, nobody is starving
      }
      if (tracer != nullptr) {
        batch_begin = tracer->now_us();
        if (stole) tracer->complete(trace_lane, "steal", pop_begin, batch_begin);
      }
    }
    WorkItem item = std::move(batch.back());
    batch.pop_back();

    if (!stop_.load(std::memory_order_relaxed)) {
      enumerate_events(item.node, config_, events);
      if (is_terminal(item.node)) local.terminal_states += 1;
      successors.clear();

      for (const Event& event : events) {
        if (stop_.load(std::memory_order_relaxed)) break;
        local.transitions += 1;
        Node child = item.node;
        if (auto broken = apply_event(child, event, config_)) {
          local.violation_edges += 1;
          std::vector<Event> path = materialize_path(item.tail);
          path.push_back(event);
          offer_violation(std::move(path), std::move(*broken));
          continue;  // a violating edge is never expanded further
        }
        if (child.decisions.size() > item.node.decisions.size()) local.decisions += 1;
        const util::U128 key = fingerprint(child, scratch);
        local.cache_probes += 1;
        if (cache.seen(key)) {
          local.cache_hits += 1;
          local.duplicates += 1;
          continue;
        }
        if (!visited.insert(key, &local.ops)) {
          cache.remember(key);
          local.duplicates += 1;
          continue;
        }
        cache.remember(key);

        const std::uint64_t count =
            visited_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        local.visited += 1;
        if (count > config_.visited_cap()) {
          record_truncation(item.tail, event);
          break;
        }
        successors.push_back(WorkItem{std::move(child), arena.add(event, item.tail)});
        local.allocations_avoided += 2;  // inline frontier item + arena link
      }

      if (!successors.empty()) {
        local.batches += 1;
        local.batched_items += successors.size();
        if (obs_cells_.active) {
          obs_cells_.batch_size->record(obs_lane, successors.size());
        }
        pending.fetch_add(successors.size(), std::memory_order_release);
        frontier.push_batch(id, successors);
        successors.clear();
      }
    }
    pending.fetch_sub(1, std::memory_order_release);
    if (tracer != nullptr && batch.empty()) {
      tracer->complete(trace_lane, "expand_batch", batch_begin, tracer->now_us());
    }
  }

  if (obs_cells_.active) {
    flush_worker_obs(obs_lane, flushed, local,
                     pending.load(std::memory_order_relaxed));
  }
  if (tracer != nullptr) {
    tracer->complete(trace_lane, "worker", worker_begin, tracer->now_us());
  }
}

void ParallelExplorer::worker_compact(int id, CompactFrontier& frontier,
                                      NodeStore& store, PathArena& arena,
                                      std::atomic<std::uint64_t>& pending,
                                      WorkerStats& local) {
  // Per-worker reusable state: one scratch node (restored from the parent's
  // record between successors — no Node copies), the record/event buffers,
  // the orbit mask, the popped and successor batches, and the
  // recently-inserted cache. Zero allocations per successor after warmup.
  NodeCodec codec(config_.symmetry_classes);
  Node parent = make_root(initial_memory_, initial_processes_, config_.properties);
  std::vector<Event> events;
  std::vector<typesys::Value> child_record;
  std::vector<std::uint8_t> orbit_skip;
  std::vector<CompactWorkItem> batch;
  std::vector<CompactWorkItem> successors;
  DedupCache cache;
  const bool orbits = codec.canonicalizing();

  // Observability: metrics flush at batch boundaries (obs_cells_ inactive =
  // one predicted branch per batch), spans on the tracer's worker lane.
  obs::Tracer* const tracer = config_.obs.tracer;
  const std::size_t obs_lane = 1 + static_cast<std::size_t>(id);
  const std::size_t trace_lane = tracer != nullptr ? tracer->worker_lane(id) : 0;
  if (tracer != nullptr) {
    tracer->set_lane_name(trace_lane, "worker-" + std::to_string(id));
  }
  WorkerStats flushed;
  const std::uint64_t worker_begin = tracer != nullptr ? tracer->now_us() : 0;
  std::uint64_t batch_begin = 0;
  std::size_t pop_batch = kInitPopBatch;
  std::uint64_t steal_mark = frontier.failed_steals();

  for (;;) {
    if (batch.empty()) {
      if (obs_cells_.active) {
        flush_worker_obs(obs_lane, flushed, local,
                         pending.load(std::memory_order_relaxed));
      }
      // Adapt the batch size to observed steal pressure before popping.
      const std::uint64_t failed = frontier.failed_steals();
      if (failed != steal_mark) {
        steal_mark = failed;
        pop_batch = pop_batch / 2 < kMinPopBatch ? kMinPopBatch : pop_batch / 2;
      }
      const std::uint64_t pop_begin = tracer != nullptr ? tracer->now_us() : 0;
      bool stole = false;
      const std::size_t got = frontier.pop_batch(id, batch, pop_batch, &stole);
      if (got == 0) {
        if (pending.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
        continue;
      }
      if (!stole && got == pop_batch && pop_batch < kMaxPopBatch) {
        pop_batch *= 2;  // local deque runs deep, nobody is starving
      }
      if (tracer != nullptr) {
        batch_begin = tracer->now_us();
        if (stole) tracer->complete(trace_lane, "steal", pop_begin, batch_begin);
      }
    }
    const CompactWorkItem item = batch.back();
    batch.pop_back();

    if (!stop_.load(std::memory_order_relaxed)) {
      // The item's record view reads straight from the store arena — no
      // fetch lock, no copy (see NodeStore::Intern). decode() also captures
      // the record's layout for the restore/patch-encode fast paths below.
      codec.decode(item.record, item.length, parent);
      // Stabilizer orbits: enumerate one representative event per orbit of
      // interchangeable processes; the skipped siblings still count as
      // transitions (they are edges of the unreduced graph) plus
      // orbit_skipped.
      const std::uint64_t orbit_before = local.orbit_skipped;
      const int orbit_count =
          orbits ? codec.orbit_skip_mask(item.record, orbit_skip) : 0;
      enumerate_events(parent, config_, events,
                       orbit_count > 0 ? &orbit_skip : nullptr,
                       &local.orbit_skipped);
      local.transitions += local.orbit_skipped - orbit_before;
      if (is_terminal(parent)) local.terminal_states += 1;
      successors.clear();
      // Codec header: record[1] counts the distinct outputs so far.
      const auto parent_decisions = static_cast<std::size_t>(item.record[1]);

      // Between successors the scratch node diverges from the parent record
      // only where the previous event touched it: the shared flat fields
      // plus exactly one process (or all of them after a crash-all). restore
      // re-decodes just that — one program decode per successor instead of n.
      int dirty = NodeCodec::kDirtyNone;
      for (const Event& event : events) {
        if (stop_.load(std::memory_order_relaxed)) break;
        local.transitions += 1;
        if (dirty != NodeCodec::kDirtyNone) {
          codec.restore(item.record, item.length, parent, dirty);
        }
        dirty = event.kind == Event::Kind::kCrashAll ? NodeCodec::kDirtyAll
                                                     : event.process;
        if (auto broken = apply_event(parent, event, config_)) {
          local.violation_edges += 1;
          std::vector<Event> path = materialize_path(item.tail);
          path.push_back(event);
          offer_violation(std::move(path), std::move(*broken));
          continue;  // a violating edge is never expanded further
        }
        if (parent.decisions.size() > parent_decisions) local.decisions += 1;
        // Per-process events leave n-1 blocks byte-identical to the parent
        // record: patch-encode copies them instead of re-encoding programs.
        const NodeCodec::Encoded encoded =
            event.kind == Event::Kind::kCrashAll
                ? codec.encode(parent, child_record)
                : codec.encode_successor(item.record, item.length, parent,
                                         event.process, child_record);
        local.encodes += 1;
        if (encoded.permuted) local.canonical_hits += 1;
        local.cache_probes += 1;
        if (cache.seen(encoded.fingerprint)) {
          local.cache_hits += 1;
          local.duplicates += 1;
          continue;  // guaranteed duplicate: skip the table probe entirely
        }
        const NodeStore::Intern interned =
            store.intern(encoded.fingerprint, child_record, id, &local.ops);
        cache.remember(encoded.fingerprint);
        if (!interned.inserted) {
          local.duplicates += 1;
          continue;
        }
        local.store_nodes += 1;
        local.store_bytes +=
            static_cast<std::uint64_t>(interned.length) * sizeof(typesys::Value);

        const std::uint64_t count =
            visited_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        local.visited += 1;
        if (count > config_.visited_cap()) {
          record_truncation(item.tail, event);
          break;
        }
        successors.push_back(CompactWorkItem{interned.record, interned.length,
                                             arena.add(event, item.tail)});
        local.allocations_avoided += 2;  // inline frontier item + arena link
      }

      if (!successors.empty()) {
        local.batches += 1;
        local.batched_items += successors.size();
        if (obs_cells_.active) {
          obs_cells_.batch_size->record(obs_lane, successors.size());
        }
        pending.fetch_add(successors.size(), std::memory_order_release);
        frontier.push_batch(id, successors);
        successors.clear();
      }
    }
    pending.fetch_sub(1, std::memory_order_release);
    if (tracer != nullptr && batch.empty()) {
      tracer->complete(trace_lane, "expand_batch", batch_begin, tracer->now_us());
    }
  }

  if (obs_cells_.active) {
    flush_worker_obs(obs_lane, flushed, local,
                     pending.load(std::memory_order_relaxed));
  }
  if (tracer != nullptr) {
    tracer->complete(trace_lane, "worker", worker_begin, tracer->now_us());
  }
}

std::optional<sim::Violation> ParallelExplorer::run() {
  stats_ = sim::ExplorerStats{};
  visited_count_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  truncated_.store(false, std::memory_order_relaxed);
  has_violation_ = false;
  best_path_.clear();
  best_violation_ = sim::PropertyViolation{};
  truncation_path_.clear();

  obs_cells_ = ObsCells::resolve(config_.obs.metrics);
  if (obs_cells_.active) {
    obs_cells_.visited_cap->set(static_cast<std::int64_t>(config_.visited_cap()));
    obs_cells_.num_threads->set(num_threads_);
    obs_cells_.expected_states->set(
        static_cast<std::int64_t>(config_.expected_states));
  }

  return compact_ ? run_compact() : run_legacy();
}

std::optional<sim::Violation> ParallelExplorer::run_legacy() {
  Frontier frontier(num_threads_);
  ShardedVisited visited(shard_bits_, presize_states());
  std::vector<PathArena> arenas(static_cast<std::size_t>(num_threads_));
  std::atomic<std::uint64_t> pending{0};

  {
    WorkItem root;
    root.node = make_root(initial_memory_, initial_processes_, config_.properties);
    std::vector<typesys::Value> scratch;
    visited.insert(fingerprint(root.node, scratch));
    pending.fetch_add(1, std::memory_order_release);
    frontier.push(0, std::move(root));
  }

  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(num_threads_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_));
  for (int id = 0; id < num_threads_; ++id) {
    threads.emplace_back(
        [this, id, &frontier, &visited, &arenas, &pending, &worker_stats] {
          worker_legacy(id, frontier, visited, arenas[static_cast<std::size_t>(id)],
                        pending, worker_stats[static_cast<std::size_t>(id)]);
        });
  }
  for (std::thread& thread : threads) thread.join();

  visited_stats_ = visited.load_stats();
  frontier_stats_ = frontier.stats();
  return finish(worker_stats);
}

std::optional<sim::Violation> ParallelExplorer::run_compact() {
  CompactFrontier frontier(num_threads_);
  NodeStore store(shard_bits_, presize_states(), num_threads_);
  std::vector<PathArena> arenas(static_cast<std::size_t>(num_threads_));
  std::atomic<std::uint64_t> pending{0};

  std::uint64_t root_canonical_hits = 0;
  {
    NodeCodec codec(config_.symmetry_classes);
    Node root_node = make_root(initial_memory_, initial_processes_, config_.properties);
    std::vector<typesys::Value> record;
    const NodeCodec::Encoded encoded = codec.encode(root_node, record);
    if (encoded.permuted) root_canonical_hits = 1;
    const NodeStore::Intern interned = store.intern(encoded.fingerprint, record);
    pending.fetch_add(1, std::memory_order_release);
    frontier.push(0, CompactWorkItem{interned.record, interned.length, nullptr});
    if (obs_cells_.active) {
      // The coordinator's root intern, on lane 0, so store.* totals match
      // store.stats() exactly (the workers account everything else live).
      ObsDeltas root_delta;
      root_delta.nodes = 1;
      root_delta.value_bytes =
          static_cast<std::uint64_t>(interned.length) * sizeof(typesys::Value);
      root_delta.encodes = 1;
      root_delta.canonical_hits = root_canonical_hits;
      obs_cells_.flush(0, root_delta);
    }
  }

  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(num_threads_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_));
  for (int id = 0; id < num_threads_; ++id) {
    threads.emplace_back(
        [this, id, &frontier, &store, &arenas, &pending, &worker_stats] {
          worker_compact(id, frontier, store, arenas[static_cast<std::size_t>(id)],
                         pending, worker_stats[static_cast<std::size_t>(id)]);
        });
  }
  for (std::thread& thread : threads) thread.join();

  const NodeStore::Stats store_stats = store.stats();
  stats_.compact = true;
  stats_.store.nodes = store_stats.nodes;
  stats_.store.value_bytes = store_stats.value_bytes;
  stats_.store.encodes = 1;  // the root encode
  stats_.store.canonical_hits = root_canonical_hits;
  visited_stats_ = store.load_stats();
  frontier_stats_ = frontier.stats();
  return finish(worker_stats);
}

std::optional<sim::Violation> ParallelExplorer::finish(
    const std::vector<WorkerStats>& worker_stats) {
  // Like the sequential explorer, `visited` counts the states inserted during
  // expansion (the root insert is not counted).
  stats_.visited = visited_count_.load(std::memory_order_relaxed);
  stats_.truncated = truncated_.load(std::memory_order_relaxed);
  for (const WorkerStats& local : worker_stats) {
    stats_.transitions += local.transitions;
    stats_.decisions += local.decisions;
    stats_.terminal_states += local.terminal_states;
    stats_.orbit_skipped += local.orbit_skipped;
    stats_.store.encodes += local.encodes;
    stats_.store.canonical_hits += local.canonical_hits;
    stats_.hot.allocations_avoided += local.allocations_avoided;
    stats_.hot.batches += local.batches;
    stats_.hot.batched_items += local.batched_items;
    stats_.hot.dedup_cache_probes += local.cache_probes;
    stats_.hot.dedup_cache_hits += local.cache_hits;
    // Probe/contention counters are caller-side OpStats (the lock-free
    // tables hold no shared tallies); aggregate across workers here.
    stats_.hot.probe_total += local.ops.probe_total;
    stats_.hot.probe_ops += local.ops.probe_ops;
    if (local.ops.max_probe > stats_.hot.max_probe) {
      stats_.hot.max_probe = local.ops.max_probe;
    }
    stats_.hot.cas_retries += local.ops.cas_retries;
    stats_.hot.migration_stripes += local.ops.migration_stripes;
  }
  stats_.hot.rehashes = visited_stats_.rehashes;

  if (obs_cells_.active) {
    // Steal and rehash totals live in the frontier/table internals; publish
    // them once per run rather than threading handles through those layers.
    if (frontier_stats_.steals != 0) {
      obs_cells_.steals->add(0, frontier_stats_.steals);
    }
    if (frontier_stats_.stolen_items != 0) {
      obs_cells_.stolen_items->add(0, frontier_stats_.stolen_items);
    }
    if (stats_.hot.rehashes != 0) {
      obs_cells_.store_rehashes->add(0, stats_.hot.rehashes);
    }
    obs_cells_.frontier_pending->set(0);
  }

  if (has_violation_) {
    return sim::Violation{best_violation_.description, best_violation_.property,
                          best_violation_.param, best_path_};
  }
  if (stats_.truncated) {
    return sim::Violation{"state space exceeded max_visited; verdict incomplete",
                          sim::PropertyKind::kNone, 0, truncation_path_};
  }
  return std::nullopt;
}

}  // namespace rcons::engine
