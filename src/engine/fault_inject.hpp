// Deterministic fault-injection harness for the exhaustive engine.
//
// A FaultPlan arms one action at one injection site after a chosen number of
// hits, so tests (and the CI fault matrix) can prove that every failure mode
// the robustness layer claims to survive — allocation failure, a wedged
// worker, an external stop, a torn checkpoint write — ends in a clean typed
// verdict or a correct resume, never a hang or an abort.
//
// The plan is compiled in always and costs nothing when unset: the explorer
// holds a `FaultPlan*` that is null by default, and every injection point is
// one predicted null check. Sites count hits with a single shared atomic per
// site (fetch_add, relaxed), so with T workers the Nth hit is deterministic
// in the *count* domain even though which worker trips it is scheduling-
// dependent — exactly the determinism the harness needs, since every outcome
// it provokes (typed verdict / resume) is itself scheduling-independent.
//
// Sites (where the explorer consults the plan):
//   batch       once per frontier batch a worker pops (engine hot loop)
//   intern      once per NodeStore/visited-set insert attempt
//   ckpt-write  once per durable checkpoint write (engine/checkpoint.cpp)
//
// Actions:
//   alloc  throw std::bad_alloc from the site — exercises the "allocation
//          failure becomes StopReason::kMemory, never an abort" contract
//   stall  park the hitting worker until release_stalls() (the explorer
//          releases on any stop) or a safety timeout — trips the watchdog
//   stop   request a cooperative stop — the run returns the typed
//          StopReason::kForcedStop truncated verdict
//   die    std::_Exit(137) — the process vanishes as if SIGKILLed, leaving
//          the last durable checkpoint behind for --resume
//   trunc  (ckpt-write only) the writer truncates its temp file mid-stream
//          and skips the rename, so the previous checkpoint stays intact and
//          the loader's CRC check has a real torn write to reject
//
// Plan grammar (parse_fault_plan): `action@site=N` — fire on the Nth hit of
// the site (1-based). `N` may be written `~M`: a pseudo-random hit in [1, M]
// drawn from the plan seed, so a seeded sweep covers many placements
// reproducibly. An optional `:ms=T` bounds a stall (default 30000).
//   die@batch=50   alloc@intern=5000   stall@batch=100:ms=60000
//   stop@batch=~200:seed=7   trunc@ckpt-write=1
#ifndef RCONS_ENGINE_FAULT_INJECT_HPP
#define RCONS_ENGINE_FAULT_INJECT_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>

namespace rcons::engine {

class FaultPlan {
 public:
  enum class Site { kBatch, kIntern, kCkptWrite };
  enum class Action { kNone, kAllocFail, kStall, kStop, kDie, kTruncateWrite };

  FaultPlan() = default;
  FaultPlan(Site site, Action action, std::uint64_t at_hit) {
    arm(site, action, at_hit);
  }

  // (Re-)arms the plan in place — the atomics make FaultPlan unassignable.
  void arm(Site site, Action action, std::uint64_t at_hit) {
    site_ = site;
    action_ = action;
    at_hit_ = at_hit == 0 ? 1 : at_hit;
    stall_ms_ = 30'000;
    hits_.store(0, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    released_.store(false, std::memory_order_relaxed);
  }

  Site site() const { return site_; }
  Action action() const { return action_; }
  std::uint64_t at_hit() const { return at_hit_; }
  std::int64_t stall_ms() const { return stall_ms_; }
  void set_stall_ms(std::int64_t ms) { stall_ms_ = ms; }

  // True when the plan already fired (the armed hit was reached).
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  // Lets any stalled worker continue. The explorer calls this whenever its
  // cooperative stop flag flips (watchdog, sentinel, or verdict), so a stall
  // can never outlive the run.
  void release_stalls() { released_.store(true, std::memory_order_release); }

  // Called by an injection point. Returns the action to perform *now* (kNone
  // almost always). kAllocFail/kStall/kDie are fully handled here — the
  // throw, the park, the exit — so hot loops only have to handle kStop
  // (flip their stop flag) and the checkpoint writer kTruncateWrite.
  Action hit(Site site) {
    if (site != site_ || action_ == Action::kNone) return Action::kNone;
    const std::uint64_t count = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count != at_hit_) return Action::kNone;
    fired_.store(true, std::memory_order_relaxed);
    switch (action_) {
      case Action::kAllocFail:
        throw std::bad_alloc();
      case Action::kStall:
        stall();
        return Action::kNone;  // stall resolved (released or timed out)
      case Action::kDie:
        std::_Exit(137);  // the SIGKILL exit status — nothing runs after this
      case Action::kStop:
      case Action::kTruncateWrite:
        return action_;
      case Action::kNone:
        break;
    }
    return Action::kNone;
  }

 private:
  void stall() {
    // Cooperative spin: the worker is alive but makes no progress, which is
    // exactly the failure the watchdog exists to detect. The safety timeout
    // keeps an un-watched test from hanging forever.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(stall_ms_);
    while (!released_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Site site_ = Site::kBatch;
  Action action_ = Action::kNone;
  std::uint64_t at_hit_ = 1;
  std::int64_t stall_ms_ = 30'000;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<bool> fired_{false};
  std::atomic<bool> released_{false};
};

// Parses the `action@site=N[:ms=T][:seed=S]` grammar above into `plan`.
// Returns true on success; on failure fills `error` and leaves `plan`
// untouched. Deliberately header-only (with the rest of the harness) so the
// CLI and tests share one grammar without a new translation unit.
inline bool parse_fault_plan(const std::string& text, FaultPlan& plan,
                             std::string& error) {
  const auto fail = [&](const std::string& message) {
    error = "fault plan '" + text + "': " + message;
    return false;
  };
  const std::size_t at = text.find('@');
  const std::size_t eq = text.find('=', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || eq == std::string::npos || at == 0) {
    return fail("expected action@site=N");
  }

  const std::string action_name = text.substr(0, at);
  FaultPlan::Action action;
  if (action_name == "alloc") {
    action = FaultPlan::Action::kAllocFail;
  } else if (action_name == "stall") {
    action = FaultPlan::Action::kStall;
  } else if (action_name == "stop") {
    action = FaultPlan::Action::kStop;
  } else if (action_name == "die") {
    action = FaultPlan::Action::kDie;
  } else if (action_name == "trunc") {
    action = FaultPlan::Action::kTruncateWrite;
  } else {
    return fail("unknown action '" + action_name +
                "' (alloc|stall|stop|die|trunc)");
  }

  const std::string site_name = text.substr(at + 1, eq - at - 1);
  FaultPlan::Site site;
  if (site_name == "batch") {
    site = FaultPlan::Site::kBatch;
  } else if (site_name == "intern") {
    site = FaultPlan::Site::kIntern;
  } else if (site_name == "ckpt-write") {
    site = FaultPlan::Site::kCkptWrite;
  } else {
    return fail("unknown site '" + site_name + "' (batch|intern|ckpt-write)");
  }
  if (action == FaultPlan::Action::kTruncateWrite &&
      site != FaultPlan::Site::kCkptWrite) {
    return fail("trunc only applies to the ckpt-write site");
  }

  // Suffix: `N` or `~M`, then optional `:ms=T` / `:seed=S` in any order.
  std::string count_text = text.substr(eq + 1);
  std::int64_t stall_ms = -1;
  std::uint64_t seed = 1;
  std::size_t colon;
  while ((colon = count_text.rfind(':')) != std::string::npos) {
    const std::string opt = count_text.substr(colon + 1);
    count_text.resize(colon);
    const std::size_t opt_eq = opt.find('=');
    if (opt_eq == std::string::npos) return fail("expected :key=value, got ':" + opt + "'");
    const std::string key = opt.substr(0, opt_eq);
    const std::string value = opt.substr(opt_eq + 1);
    char* end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0' || parsed < 0) {
      return fail("bad value in ':" + opt + "'");
    }
    if (key == "ms") {
      stall_ms = parsed;
    } else if (key == "seed") {
      seed = static_cast<std::uint64_t>(parsed);
    } else {
      return fail("unknown option ':" + key + "=' (ms|seed)");
    }
  }

  bool randomized = false;
  if (!count_text.empty() && count_text[0] == '~') {
    randomized = true;
    count_text.erase(0, 1);
  }
  if (count_text.empty()) return fail("missing hit count");
  std::uint64_t hit = 0;
  for (const char ch : count_text) {
    if (ch < '0' || ch > '9') return fail("hit count must be a positive integer");
    hit = hit * 10 + static_cast<std::uint64_t>(ch - '0');
    if (hit > (std::uint64_t{1} << 62)) return fail("hit count overflow");
  }
  if (hit == 0) return fail("hit count must be >= 1");
  if (randomized) {
    // splitmix64 over the seed: a reproducible placement in [1, hit].
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    hit = 1 + z % hit;
  }

  plan.arm(site, action, hit);
  if (stall_ms >= 0) plan.set_stall_ms(stall_ms);
  return true;
}

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_FAULT_INJECT_HPP
