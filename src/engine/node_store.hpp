// Compact interned node representation for the exhaustive explorers.
//
// The clone-based representation copies `Memory` plus N type-erased `Process`
// objects (two heap clones each) for every successor generated — the dominant
// cost of the expansion hot path. Here a node is its canonical encoding: a
// flat `std::vector<typesys::Value>` record interned once in a sharded arena
// keyed by the node's 128-bit fingerprint. The store doubles as the visited
// set (interning *is* deduplication), frontier items carry interned ids
// instead of owning nodes, and expansion decodes a record into a reusable
// per-worker scratch `Node` — zero allocations and zero program clones per
// successor.
//
// Record layout (NodeCodec):
//
//   [crashes_used, ndecisions, decisions...]    header (sorted distinct outputs)
//   [registers..., object states...]            Memory::encode
//   per process: [done, (ever, last)?, state…]  Process::encode (variable; the
//                                               ever/last pair only when the
//                                               at-most-once property tracks
//                                               per-process outputs)
//   [steps_in_run...]                           sidecar, one value per process
//
// Everything except the sidecar is the canonical encoding the fingerprint
// covers — byte-for-byte the same prefix `engine::encode_node` produces, so
// compact and legacy runs compute identical fingerprints and explore the
// identical deduplicated graph. The sidecar (per-run step counts for the
// recoverable-wait-freedom bound) is intentionally outside the fingerprint,
// matching the legacy dedup semantics where the first path to reach a state
// fixes its step counts.
//
// Symmetry reduction: a `Canonicalizer` built from a symmetry declaration
// (ExplorerConfig::symmetry_classes) sorts the per-process blocks of each
// class — processes running identical programs — into a canonical order
// before fingerprinting. States that differ only by permuting interchangeable
// processes then intern to one record, shrinking visited sets combinatorially
// for team-consensus and tournament scenarios. The canonical representative
// is what exploration continues from; since class members are behaviourally
// identical this preserves every verdict, but a violating schedule found
// under reduction is a schedule of representatives — valid up to a class
// permutation, not guaranteed to replay verbatim on the concrete system.
#ifndef RCONS_ENGINE_NODE_STORE_HPP
#define RCONS_ENGINE_NODE_STORE_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/expand.hpp"
#include "engine/flat_table.hpp"
#include "engine/visited.hpp"
#include "util/hash.hpp"

namespace rcons::engine {

// Resolves which representation a run uses, shared by both explorers:
// kAuto picks compact iff every process supports decode(); kCompact asserts
// that precondition; kLegacy always clones.
bool resolve_compact_repr(sim::NodeRepr repr,
                          const std::vector<sim::Process>& processes);

// Sorts same-class per-process blocks of an encoded node into canonical
// order. Built once per run from the symmetry declaration; copy one per
// worker (cheap — it owns only the class index and scratch buffers).
class Canonicalizer {
 public:
  Canonicalizer() = default;  // identity (no declaration)
  explicit Canonicalizer(const std::vector<int>& symmetry_classes);

  // True when at least one class has two or more members.
  bool active() const { return !groups_.empty(); }

  // `record` holds a full NodeCodec record whose per-process blocks span
  // [block_offsets[i], block_offsets[i+1]) and whose sidecar occupies the
  // final n values. Reorders same-class blocks (and their sidecar entries)
  // into sorted order. Returns true when a non-identity permutation was
  // applied (a canonicalization "hit").
  bool canonicalize(std::vector<typesys::Value>& record,
                    const std::vector<std::size_t>& block_offsets);

 private:
  std::size_t num_processes_ = 0;
  std::vector<std::vector<int>> groups_;  // classes with >= 2 members
  std::vector<int> order_;                // scratch: block source per position
  std::vector<int> sorted_;               // scratch: one class being sorted
  std::vector<typesys::Value> scratch_;   // scratch: rebuilt record
};

// Encodes nodes into interned records and decodes records back into a
// structurally compatible scratch node. One codec per worker (it owns scratch
// buffers); all codecs of a run must share the same symmetry declaration.
class NodeCodec {
 public:
  NodeCodec() = default;
  explicit NodeCodec(const std::vector<int>& symmetry_classes)
      : canonicalizer_(symmetry_classes) {}

  // True when every process of `node` supports Process::decode — the
  // precondition for the compact representation.
  static bool decodable(const Node& node);

  struct Encoded {
    util::U128 fingerprint;
    std::size_t fingerprint_length = 0;  // record prefix the fingerprint covers
    bool permuted = false;               // canonicalizer applied a permutation
  };

  // Writes the full record (canonical encoding + sidecar) for `node` into
  // `record` and fingerprints the canonical prefix.
  Encoded encode(const Node& node, std::vector<typesys::Value>& record);

  // Restores `out` — which must be structurally a copy of the run's root
  // (same memory layout, same programs) — from a record produced by encode().
  void decode(const typesys::Value* record, std::size_t size, Node& out) const;

  bool canonicalizing() const { return canonicalizer_.active(); }

 private:
  Canonicalizer canonicalizer_;
  std::vector<std::size_t> offsets_;  // scratch: per-process block offsets
};

// Sharded interning arena: record payloads live in chunked per-shard arenas,
// keyed by fingerprint through a flat open-addressing index
// (engine/flat_table.hpp — no per-intern node allocation, incremental
// growth). Interning an already-present fingerprint is the deduplication hit
// that replaces the separate visited set. Thread-safe.
class NodeStore {
 public:
  using NodeId = std::uint64_t;

  // Valid shard_bits: 0 (single shard — the sequential layout) through 16.
  // `expected_states` pre-sizes the shard indexes so a run of the
  // anticipated size never rehashes (0 = unknown, start minimal).
  explicit NodeStore(int shard_bits, std::uint64_t expected_states = 0);

  struct Intern {
    NodeId id = 0;
    bool inserted = false;  // true when the fingerprint was new

    // Direct view of the interned payload in the shard arena. Records are
    // immutable once written and chunk buffers never reallocate (fixed
    // capacity, reserved up front), so the pointer is stable for the store's
    // lifetime and safe to read without the shard lock once the owning item
    // has been published through the frontier — expansion decodes in place
    // instead of paying a lock + copy per fetch.
    const typesys::Value* record = nullptr;
    std::uint32_t length = 0;
  };

  // Interns `record` under `fingerprint`; returns the (existing or new) id
  // and the resident payload view.
  Intern intern(util::U128 fingerprint, const std::vector<typesys::Value>& record);

  // Copies record `id` into `out` (cleared first). Safe to call concurrently
  // with intern().
  void fetch(NodeId id, std::vector<typesys::Value>& out) const;

  // Unique records interned. Exact at quiescence.
  std::uint64_t size() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  struct Stats {
    std::uint64_t nodes = 0;
    std::uint64_t value_bytes = 0;      // payload bytes across all records
    std::uint64_t duplicate_hits = 0;   // interns that found the key present
    FlatTable::Stats probes;            // aggregated index probe/growth work
  };
  Stats stats() const;

  // Shard occupancy in the same shape ShardedVisited reports, so shard_bits
  // tuning reads one format for either backend.
  ShardedVisited::LoadStats load_stats() const;

 private:
  // Fixed-capacity chunks keep record payloads contiguous without ever
  // reallocating (ids and payload addresses are stable once written).
  static constexpr std::size_t kChunkValues = std::size_t{1} << 14;
  static constexpr int kShardShift = 40;  // NodeId = shard << 40 | local index

  struct Record {
    std::uint32_t chunk = 0;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  struct alignas(64) Shard {
    explicit Shard(std::uint64_t expected) : index(expected) {}
    mutable std::mutex mu;
    std::vector<std::vector<typesys::Value>> chunks;
    std::vector<Record> records;
    FlatTable index;  // fingerprint -> local record index
    std::uint64_t duplicate_hits = 0;
  };

  std::size_t shard_index(util::U128 key) const {
    return shard_bits_ == 0
               ? 0
               : static_cast<std::size_t>(key.hi >> (64 - shard_bits_));
  }

  int shard_bits_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_NODE_STORE_HPP
