// Compact interned node representation for the exhaustive explorers.
// rcons-lint: hot-path
//
// The clone-based representation copies `Memory` plus N type-erased `Process`
// objects (two heap clones each) for every successor generated — the dominant
// cost of the expansion hot path. Here a node is its canonical encoding: a
// flat `std::vector<typesys::Value>` record interned once in a per-worker
// bump arena, keyed by the node's 128-bit fingerprint through a lock-free
// CAS-claimed slot index (engine/cas_table.hpp). The store doubles as the
// visited set (interning *is* deduplication), frontier items carry interned
// ids instead of owning nodes, and expansion decodes a record into a reusable
// per-worker scratch `Node` — zero allocations, zero program clones, and zero
// locks per successor on both the hit and the miss path.
//
// Record layout (NodeCodec):
//
//   [crashes_used, ndecisions, decisions...]    header (sorted distinct outputs)
//   [registers..., object states...]            Memory::encode
//   per process: [done, (ever, last)?, state…]  Process::encode (variable; the
//                                               ever/last pair only when the
//                                               at-most-once property tracks
//                                               per-process outputs)
//   [steps_in_run...]                           sidecar, one value per process
//
// Everything except the sidecar is the canonical encoding the fingerprint
// covers — byte-for-byte the same prefix `engine::encode_node` produces, so
// compact and legacy runs compute identical fingerprints and explore the
// identical deduplicated graph. The sidecar (per-run step counts for the
// recoverable-wait-freedom bound) is intentionally outside the fingerprint,
// matching the legacy dedup semantics where the first path to reach a state
// fixes its step counts. The fingerprint is computed *during* encoding
// (engine::FpStream): each record segment is absorbed right after it is
// written, so the separate fingerprint sweep of the record is gone.
//
// Symmetry reduction: a `Canonicalizer` built from a symmetry declaration
// (ExplorerConfig::symmetry_classes) sorts the per-process blocks of each
// class — processes running identical programs — into a canonical order
// before fingerprinting. States that differ only by permuting interchangeable
// processes then intern to one record, shrinking visited sets combinatorially
// for team-consensus and tournament scenarios. The canonical representative
// is what exploration continues from; since class members are behaviourally
// identical this preserves every verdict, but a violating schedule found
// under reduction is a schedule of representatives — valid up to a class
// permutation, not guaranteed to replay verbatim on the concrete system.
//
// The canonicalizer is also *stabilizer-aware*: from a canonical parent
// record it can compute, once per expansion, which same-class processes are
// in the same orbit of the state's stabilizer — identical block AND identical
// sidecar step count — so expansion enumerates one representative event per
// orbit and credits the skipped siblings (Canonicalizer::orbit_mask,
// NodeCodec::orbit_skip_mask, engine.orbit_skipped).
#ifndef RCONS_ENGINE_NODE_STORE_HPP
#define RCONS_ENGINE_NODE_STORE_HPP

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/cas_table.hpp"
#include "engine/expand.hpp"
#include "engine/visited.hpp"
#include "util/hash.hpp"

namespace rcons::engine {

// Resolves which representation a run uses, shared by both explorers:
// kAuto picks compact iff every process supports decode(); kCompact asserts
// that precondition; kLegacy always clones.
bool resolve_compact_repr(sim::NodeRepr repr,
                          const std::vector<sim::Process>& processes);

// Sorts same-class per-process blocks of an encoded node into canonical
// order. Built once per run from the symmetry declaration; copy one per
// worker (cheap — it owns only the class index and scratch buffers).
class Canonicalizer {
 public:
  Canonicalizer() = default;  // identity (no declaration)
  explicit Canonicalizer(const std::vector<int>& symmetry_classes);

  // True when at least one class has two or more members.
  bool active() const { return !groups_.empty(); }

  // `record` holds a full NodeCodec record whose per-process blocks span
  // [block_offsets[i], block_offsets[i+1]) and whose sidecar occupies the
  // final n values. Reorders same-class blocks (and their sidecar entries)
  // into sorted order. Returns true when a non-identity permutation was
  // applied (a canonicalization "hit").
  bool canonicalize(std::vector<typesys::Value>& record,
                    const std::vector<std::size_t>& block_offsets);

  // Stabilizer orbits of a *canonical* record: marks skip[p] = 1 for every
  // same-class process whose block and sidecar step count equal those of an
  // earlier class member (canonical order sorts equal blocks adjacent, so
  // one adjacent compare per member suffices). Such a process is a
  // non-representative orbit member — any event on it produces a state that
  // canonicalizes identically to the representative's — and expansion may
  // skip its events entirely. Returns the number of processes marked.
  int orbit_mask(const typesys::Value* record,
                 const std::vector<std::size_t>& block_offsets,
                 std::vector<std::uint8_t>& skip) const;

 private:
  std::size_t num_processes_ = 0;
  std::vector<std::vector<int>> groups_;  // classes with >= 2 members
  std::vector<int> order_;                // scratch: block source per position
  std::vector<int> sorted_;               // scratch: one class being sorted
  std::vector<typesys::Value> scratch_;   // scratch: rebuilt record
};

// Encodes nodes into interned records and decodes records back into a
// structurally compatible scratch node. One codec per worker (it owns scratch
// buffers); all codecs of a run must share the same symmetry declaration.
//
// decode() additionally captures the record's *layout* (per-process block
// offsets), which unlocks two per-successor fast paths against that record:
//   * restore() — refill only the shared header/memory/sidecar plus the one
//     process block a previous event dirtied, instead of decoding all n
//     process programs again;
//   * encode_successor() — build a successor's record by memcpy-ing the n-1
//     unchanged process blocks straight from the parent record, encoding
//     only the stepped/crashed process.
// Both are pure record-level optimizations: the resulting records and
// fingerprints are identical to full decode()+encode().
class NodeCodec {
 public:
  // `dirty` argument of restore(): no process block needs re-decoding, or
  // all of them do (also refreshes the captured layout via full decode()).
  static constexpr int kDirtyNone = -1;
  static constexpr int kDirtyAll = -2;

  NodeCodec() = default;
  explicit NodeCodec(const std::vector<int>& symmetry_classes)
      : canonicalizer_(symmetry_classes) {}

  // True when every process of `node` supports Process::decode — the
  // precondition for the compact representation.
  static bool decodable(const Node& node);

  struct Encoded {
    util::U128 fingerprint;
    std::size_t fingerprint_length = 0;  // record prefix the fingerprint covers
    bool permuted = false;               // canonicalizer applied a permutation
  };

  // Writes the full record (canonical encoding + sidecar) for `node` into
  // `record`, fingerprinting the canonical prefix in the same pass.
  Encoded encode(const Node& node, std::vector<typesys::Value>& record);

  // Like encode(), but every process block except `changed_process` is
  // copied verbatim from `parent` (the record most recently decode()d by
  // this codec — its captured layout supplies the block spans). The header,
  // memory, changed block, and sidecar come from `node`.
  Encoded encode_successor(const typesys::Value* parent, std::size_t parent_size,
                           const Node& node, int changed_process,
                           std::vector<typesys::Value>& record);

  // Restores `out` — which must be structurally a copy of the run's root
  // (same memory layout, same programs) — from a record produced by encode().
  // Captures the record's layout for restore()/encode_successor()/
  // orbit_skip_mask() against the same record.
  void decode(const typesys::Value* record, std::size_t size, Node& out);

  // Partial re-decode of the record last passed to decode(): always refills
  // the header, decisions, memory, per-process scalar fields and sidecar
  // (cheap flat reads), but re-decodes only the program state of process
  // `dirty` (kDirtyNone: none; kDirtyAll: delegates to decode(), refreshing
  // the layout). Between successors of one expansion exactly one process —
  // the previous event's target — is dirty, so this replaces n program
  // decodes with one.
  void restore(const typesys::Value* record, std::size_t size, Node& out,
               int dirty);

  // Orbit mask of the record last passed to decode() (see
  // Canonicalizer::orbit_mask). Returns the number of processes marked.
  int orbit_skip_mask(const typesys::Value* record,
                      std::vector<std::uint8_t>& skip) const;

  bool canonicalizing() const { return canonicalizer_.active(); }

 private:
  Canonicalizer canonicalizer_;
  std::vector<std::size_t> offsets_;  // scratch: per-process block offsets

  // Layout of the record most recently decode()d: where the process blocks
  // and the sidecar live. Valid until the next decode().
  std::size_t header_end_ = 0;                 // first process block offset
  std::vector<std::size_t> block_offsets_;     // n+1 entries; [n] = sidecar
};

// Interning store: record payloads live in per-worker chunked bump arenas,
// keyed by fingerprint through lock-free CAS-claimed slot tables
// (engine/cas_table.hpp). Interning an already-present fingerprint is the
// deduplication hit that replaces the separate visited set.
//
// intern() is mutex-free on both the hit and the miss path: the duplicate
// check is a lock-free probe, and a miss claims its index slot by CAS and
// bump-allocates the record copy from the calling worker's private arena
// *inside the claimed window* (CasTable::insert_with), so duplicates never
// pay a record copy and new records are published to concurrent readers by
// the slot's release-store. The only locks left are cold: index growth
// (CasTable's epoch migration) and fresh chunk allocation (once per
// kChunkValues interned values per worker).
class NodeStore {
 public:
  using NodeId = std::uint64_t;

  // Valid shard_bits: 0 (single index shard — the sequential layout) through
  // 16. `expected_states` pre-sizes the shard indexes so a run of the
  // anticipated size never rehashes (0 = unknown, start minimal).
  // `num_arenas` is the number of concurrent interning callers (one arena
  // per worker; arena i must only ever be used by one thread at a time).
  explicit NodeStore(int shard_bits, std::uint64_t expected_states = 0,
                     int num_arenas = 1);

  struct Intern {
    NodeId id = 0;
    bool inserted = false;  // true when the fingerprint was new

    // Direct view of the interned payload in its arena chunk. Records are
    // immutable once written and chunks never move, so the pointer is stable
    // for the store's lifetime; the index's publish/acquire tag protocol
    // orders the payload writes before any reader that found the id, so
    // expansion decodes in place — no lock, no copy per fetch.
    const typesys::Value* record = nullptr;
    std::uint32_t length = 0;
  };

  // Interns `record` under `fingerprint` using the caller's arena; returns
  // the (existing or new) id and the resident payload view. Probe/CAS
  // counters accumulate into `stats` when non-null.
  Intern intern(util::U128 fingerprint, const std::vector<typesys::Value>& record,
                int arena = 0, CasTable::OpStats* stats = nullptr);

  // Copies record `id` into `out` (cleared first). Safe to call concurrently
  // with intern().
  void fetch(NodeId id, std::vector<typesys::Value>& out) const;

  // Unique records interned. Exact at quiescence.
  std::uint64_t size() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_arenas() const { return static_cast<int>(arenas_.size()); }

  struct Stats {
    std::uint64_t nodes = 0;
    std::uint64_t value_bytes = 0;     // payload bytes across all records
    std::uint64_t duplicate_hits = 0;  // interns that found the key present
    std::uint64_t rehashes = 0;        // index growth epochs across shards
  };
  Stats stats() const;

  // Shard occupancy in the same shape ShardedVisited reports, so shard_bits
  // tuning reads one format for either backend.
  ShardedVisited::LoadStats load_stats() const;

  // Quiescent iteration over every interned record for checkpointing:
  // `fn(fingerprint, payload, length)` where `payload` points at the record
  // values (the slice intern() copied, excluding the length header). Caller
  // contract: no concurrent interns. Keys migrated by a partial index sweep
  // appear in two epoch arrays with the same header address; they are
  // deduplicated here (by that address) so each record is yielded once.
  template <typename F>
  void for_each_record(F&& fn) {
    std::vector<std::pair<util::U128, std::uint64_t>> entries;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      entries.clear();
      shard->index.for_each_published([&](util::U128 key, std::uint64_t value) {
        entries.emplace_back(key, value);
      });
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      std::uint64_t last = 0;
      bool first = true;
      for (const auto& [key, value] : entries) {
        if (!first && value == last) continue;  // migrated duplicate
        first = false;
        last = value;
        const auto* header =
            reinterpret_cast<const typesys::Value*>(static_cast<std::uintptr_t>(value));
        fn(key, header + 1, static_cast<std::uint32_t>(header[0]));
      }
    }
  }

 private:
  // Fixed-capacity chunks keep record payloads contiguous without ever
  // moving (ids and payload addresses are stable once written). A record is
  // stored as [length][values...]; the id is the header's address.
  static constexpr std::size_t kChunkValues = std::size_t{1} << 14;

  // One per interning worker; cache-line separated so two workers' bump
  // pointers and tallies never false-share.
  struct alignas(64) Arena {
    typesys::Value* cur = nullptr;
    typesys::Value* end = nullptr;
    std::uint64_t payload_values = 0;  // record values staged (excl. headers)
    std::uint64_t duplicate_hits = 0;
  };

  struct alignas(64) Shard {
    explicit Shard(std::uint64_t expected) : index(expected) {}
    CasTable index;  // fingerprint -> record header address
  };

  // Points the arena at a fresh chunk with >= `need` free values. Cold path:
  // takes chunk_mu_ once per kChunkValues interned values per worker.
  typesys::Value* arena_refill(Arena& arena, std::size_t need);

  std::size_t shard_index(util::U128 key) const {
    return shard_bits_ == 0
               ? 0
               : static_cast<std::size_t>(key.hi >> (64 - shard_bits_));
  }

  int shard_bits_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Arena>> arenas_;
  // rcons-lint: allow(hot-path-no-mutex) cold: guards chunk allocation, never per-intern
  std::mutex chunk_mu_;
  std::vector<std::unique_ptr<typesys::Value[]>> chunks_;
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_NODE_STORE_HPP
