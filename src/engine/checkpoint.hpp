// Durable checkpoints for the parallel exhaustive engine.
//
// A checkpoint is a consistent cut of a compact-representation run taken
// while every worker is parked at a pause barrier (or after they joined):
// the interned node records (which double as the visited set), the frontier
// as node indices, the visited counter, the partial statistics, and the best
// violation found so far. Resuming re-interns the records, re-seeds the
// frontier, and continues; because complete-run visited counts are
// scheduling-independent (they count the deduplicated graph), a resumed run
// finishes with byte-identical visited counts and the same verdict as an
// uninterrupted one (tests/engine/checkpoint_test.cpp, CI kill-and-resume).
//
// What a checkpoint deliberately does NOT carry: the path backlinks of
// frontier items. Traces of violations found *after* a resume are therefore
// suffixes rooted at the checkpoint cut, not full root-to-violation
// schedules (the verdict and its typed identity are unaffected; a violation
// found *before* the checkpoint is carried whole).
//
// File format (version 1, all integers little-endian):
//
//   "RCKP"  magic
//   u32     version
//   u64     config_hash      engine::checkpoint_config_hash of the run config
//   u32+b   label            caller-chosen identity line (the scenario spec)
//   u64 x2  root fingerprint
//   u64     visited          visited_count_ at the cut
//   u64 x7  partial stats    transitions, decisions, terminal_states,
//                            orbit_skipped, encodes, canonical_hits,
//                            checkpoints_written
//   u8      has_violation    (+ description, property, param, schedule)
//   u64     node count       then per node: fp.lo, fp.hi, u32 len, i64[len]
//   u64     frontier count   then per item: u64 node index
//   u32     CRC-32 of everything above
//
// Durability protocol: serialize to memory, write `path + ".tmp"`, flush,
// rename over `path`. A crash mid-write leaves the previous checkpoint
// intact; a torn or tampered file fails the CRC (or a bounds check) and the
// loader reports kCorrupt with a precise error — it never half-loads.
#ifndef RCONS_ENGINE_CHECKPOINT_HPP
#define RCONS_ENGINE_CHECKPOINT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/explorer_config.hpp"
#include "sim/schedule.hpp"
#include "util/hash.hpp"

namespace rcons::engine {

class FaultPlan;

struct CheckpointData {
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t config_hash = 0;
  std::string label;  // e.g. the formatted scenario line; validated by the CLI
  util::U128 root_fp{};

  std::uint64_t visited = 0;

  // Partial statistics at the cut, re-based into ExplorerStats on resume.
  std::uint64_t transitions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t terminal_states = 0;
  std::uint64_t orbit_skipped = 0;
  std::uint64_t encodes = 0;
  std::uint64_t canonical_hits = 0;
  std::uint64_t checkpoints_written = 0;

  // Best violation found before the cut (empty when none): survives the
  // crash with its full root-rooted schedule.
  bool has_violation = false;
  std::string violation_description;
  sim::PropertyKind violation_property = sim::PropertyKind::kNone;
  std::int64_t violation_param = 0;
  std::vector<sim::ScheduleEvent> violation_schedule;

  struct Node {
    util::U128 fp{};
    std::vector<std::int64_t> values;  // full NodeCodec record
  };
  std::vector<Node> nodes;
  std::vector<std::uint64_t> frontier;  // indices into `nodes`
};

// Identity hash of everything that shapes the explored graph: the budget
// knobs that prune or bound it, the property set, and the symmetry
// declaration. Resource limits and checkpoint knobs are deliberately
// excluded — resuming with a different time budget is legal; resuming with a
// different crash model is not. The root fingerprint (stored separately)
// covers the initial memory and programs.
std::uint64_t checkpoint_config_hash(const sim::ExplorerConfig& config);

// Serializes `data` into the exact on-disk byte string (CRC included).
std::string serialize_checkpoint(const CheckpointData& data);

// Durable write: temp file + rename (see header comment). A FaultPlan armed
// at the ckpt-write site may truncate the temp write and skip the rename —
// simulating a torn write without touching any existing checkpoint. Returns
// false (with `error` filled) on I/O failure or a fault-injected truncation.
bool write_checkpoint(const std::string& path, const CheckpointData& data,
                      FaultPlan* fault, std::string& error);

enum class CheckpointLoad {
  kOk,
  kMissing,  // no file at `path`
  kCorrupt,  // unreadable, bad magic/version/CRC, or a framing violation
};

// Loads and fully validates `path` into `data` (untouched unless kOk).
// Any corruption — flipped bytes, truncation, bad counts — is detected and
// described in `error`.
CheckpointLoad load_checkpoint(const std::string& path, CheckpointData& data,
                               std::string& error);

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_CHECKPOINT_HPP
