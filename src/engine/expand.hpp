// Node-expansion core shared by the sequential `sim::Explorer` and the
// rcons-lint: hot-path
// parallel `engine::ParallelExplorer`.
//
// A `Node` is one deduplicatable global state: shared memory, every process's
// local step machine, the per-process decided/steps-in-run bookkeeping, the
// crash budget spent, and the output constraints of the configured
// `sim::PropertySet` (the sorted distinct-output set for agreement / k-set
// agreement, plus the per-process stability memory when at-most-once decide
// is on). Expansion enumerates the applicable events (process steps, then
// crash placements, in a fixed deterministic order), applies them to copies,
// and evaluates the property set on the way — inline through the shared
// helpers in sim/properties.hpp, with no virtual dispatch or allocation on
// the hot path.
//
// Keeping this logic in one place is what makes the two explorers provably
// explore the same deduplicated graph: they differ only in traversal order
// and in how the visited set is stored.
#ifndef RCONS_ENGINE_EXPAND_HPP
#define RCONS_ENGINE_EXPAND_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/properties.hpp"
#include "sim/schedule.hpp"
#include "util/hash.hpp"

namespace rcons::engine {

struct Node {
  sim::Memory memory;
  std::vector<sim::Process> processes;
  std::vector<std::uint8_t> done;
  std::vector<std::int64_t> steps_in_run;
  int crashes_used = 0;

  // Distinct decided values observed so far, sorted ascending — the
  // (k-set) agreement constraint. Bounded by PropertySet::agreement_k()
  // (empty and untouched when no agreement property is configured). Part of
  // the deduplicated state: two global states with different output histories
  // must not merge, because their future obligations differ.
  std::vector<typesys::Value> decisions;

  // kAtMostOnceDecide stability memory: last_output[p] (valid when
  // ever_output[p]) is what p decided in an earlier run. Sized to the process
  // count by make_root iff the property is on (empty otherwise, so the
  // encoding — and the state space — is unchanged for sets without it).
  // Crash events deliberately do not clear these: they remember outputs
  // *across* runs.
  std::vector<std::uint8_t> ever_output;
  std::vector<typesys::Value> last_output;

  bool has_decision() const { return !decisions.empty(); }
};

// Search events are schedule events: a path through the execution graph IS a
// replayable schedule, which is how explorer-found violations round-trip
// through sim::replay without conversion.
using Event = sim::ScheduleEvent;

// The root node for an exploration: pristine memory and processes, nothing
// decided, no crashes spent. `properties` sizes the at-most-once tracking
// vectors (the default classic trio leaves them empty).
Node make_root(sim::Memory initial, std::vector<sim::Process> processes,
               const sim::PropertySet& properties = {});

// Enumerates the events applicable at `node`, in the canonical order the
// sequential explorer uses: step(p0) < step(p1) < ... < crash moves. Crash
// placements that only burn budget without changing reachability (crashing a
// process that has not taken a step in its current run, or an all-crash when
// nobody has progressed) are pruned here, identically for both explorers.
//
// The orbit-aware overload additionally drops per-process events whose
// process is marked in `orbit_skip` (a non-representative member of a
// same-class orbit, see NodeCodec::orbit_skip_mask): the representative's
// successor canonicalizes identically, so the sibling edge can only ever be
// a duplicate. Each dropped event bumps `*orbit_skipped`; callers credit the
// same amount to `transitions` so the exactness invariant becomes
// transitions == visited + duplicates + violation_edges + orbit_skipped.
// kCrashAll is never skipped (it is not a per-process event).
void enumerate_events(const Node& node, const sim::ExplorerConfig& config,
                      std::vector<Event>& out);
void enumerate_events(const Node& node, const sim::ExplorerConfig& config,
                      std::vector<Event>& out,
                      const std::vector<std::uint8_t>* orbit_skip,
                      std::uint64_t* orbit_skipped);

// True when every process has decided (no step moves exist).
bool is_terminal(const Node& node);

// Applies `event` to `node` in place. For step events this performs one
// shared-memory access and evaluates config.properties (validity, agreement
// or k-set agreement, at-most-once decide, and the per-run step bound); a
// broken property is reported as a typed violation (the caller owns trace
// formatting). Crash events discard the victims' local state.
std::optional<sim::PropertyViolation> apply_event(Node& node, const Event& event,
                                                  const sim::ExplorerConfig& config);

// The canonical encoding is assembled from these two helpers, shared by the
// clone-based encode_node() below and the compact NodeCodec
// (engine/node_store.hpp), so the two representations cannot drift: any
// future property that adds node state extends the layout in exactly one
// place and both paths keep fingerprinting identically.

// Record header: crash budget spent, the sorted distinct-output constraint,
// then the shared memory.
inline void encode_node_header(const Node& node, std::vector<typesys::Value>& out) {
  out.push_back(node.crashes_used);
  out.push_back(static_cast<typesys::Value>(node.decisions.size()));
  for (const typesys::Value decision : node.decisions) out.push_back(decision);
  node.memory.encode(out);
}

// One per-process block: done bit, the at-most-once stability pair when the
// node tracks it, then the program's local state.
inline void encode_process_block(const Node& node, std::size_t i,
                                 std::vector<typesys::Value>& out) {
  out.push_back(node.done[i] != 0 ? 1 : 0);
  if (!node.ever_output.empty()) {
    out.push_back(node.ever_output[i] != 0 ? 1 : 0);
    out.push_back(node.ever_output[i] != 0 ? node.last_output[i] : 0);
  }
  node.processes[i].encode(out);
}

// Canonical encoding of the node (header + every process block) and its
// 128-bit fingerprint. `scratch` is caller-provided to avoid per-node
// allocation.
void encode_node(const Node& node, std::vector<typesys::Value>& scratch);
util::U128 fingerprint(const Node& node, std::vector<typesys::Value>& scratch);

// Streaming form of the node fingerprint: both 64-bit hash lanes absorb
// values as they are appended to the encoding (the compact NodeCodec feeds
// each record segment right after writing it, while it is still cache-hot),
// and the encoded length is folded in only at finish(). One pass produces
// record + hash with no separate fingerprint sweep.
struct FpStream {
  std::uint64_t lo = 0x2545f4914f6cdd1dULL;
  std::uint64_t hi = 0x6a09e667f3bcc909ULL;

  void absorb(const typesys::Value* data, std::size_t count) {
    // Two independent multiply-accumulate lanes: polynomial hashes with
    // distinct odd multipliers and distinct injection ops (add vs xor). One
    // add/xor + one multiply per lane per value, and the lanes carry no
    // dependency on each other, so both chains pipeline; all avalanche is
    // deferred to finish(). A cross-lane collision needs one value
    // difference annihilated by powers of BOTH multipliers mod 2^64.
    std::uint64_t l = lo;
    std::uint64_t h = hi;
    for (std::size_t i = 0; i < count; ++i) {
      const auto v = static_cast<std::uint64_t>(data[i]);
      l = (l + v) * 0xff51afd7ed558ccdULL;
      h = (h ^ v) * 0x9e3779b97f4a7c15ULL;
    }
    lo = l;
    hi = h;
  }

  util::U128 finish(std::size_t size) const {
    // Cross the lanes while folding in the encoded length, then avalanche
    // each output word so every absorbed value diffuses into both halves.
    const auto s = static_cast<std::uint64_t>(size);
    return util::U128{util::mix64(lo ^ (hi >> 29) ^ s),
                      util::mix64(hi + (lo << 31) + s * 0x9e3779b97f4a7c15ULL)};
  }
};

// Fingerprint of an already-encoded canonical prefix (== FpStream absorbing
// the whole prefix). Shared by fingerprint() and the compact NodeCodec
// (engine/node_store.hpp), so the clone-based and interned representations
// key the visited set identically.
util::U128 fingerprint_values(const typesys::Value* data, std::size_t size);

// Deterministic total order on events / event paths, matching the enumeration
// order above. Used for "lowest trace wins" violation selection in the
// parallel explorer.
bool event_less(const Event& a, const Event& b);
bool path_less(const std::vector<Event>& a, const std::vector<Event>& b);

// Immutable backlink chain recording how a node was first reached. Work items
// share their ancestors' links, so extending a path is O(1) instead of
// copying the root-to-node event vector per child; the full path is only
// materialized (root-first) when a violation needs a trace. Links are plain
// pointers into per-worker append-only arenas (engine/path_arena.hpp) that
// outlive the workers and are freed wholesale — no per-link refcounting.
struct PathLink {
  Event event;
  const PathLink* parent = nullptr;
};
std::vector<Event> materialize_path(const PathLink* tail);

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_EXPAND_HPP
