// Node-expansion core shared by the sequential `sim::Explorer` and the
// parallel `engine::ParallelExplorer`.
//
// A `Node` is one deduplicatable global state: shared memory, every process's
// local step machine, the per-process decided/steps-in-run bookkeeping, the
// crash budget spent, and the decision constraint. Expansion enumerates the
// applicable events (process steps, then crash placements, in a fixed
// deterministic order), applies them to copies, and checks the three verified
// properties — agreement, validity, recoverable wait-freedom — on the way.
//
// Keeping this logic in one place is what makes the two explorers provably
// explore the same deduplicated graph: they differ only in traversal order
// and in how the visited set is stored.
#ifndef RCONS_ENGINE_EXPAND_HPP
#define RCONS_ENGINE_EXPAND_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/schedule.hpp"
#include "util/hash.hpp"

namespace rcons::engine {

struct Node {
  sim::Memory memory;
  std::vector<sim::Process> processes;
  std::vector<std::uint8_t> done;
  std::vector<long> steps_in_run;
  int crashes_used = 0;
  bool has_decision = false;
  typesys::Value decision = 0;
};

// Search events are schedule events: a path through the execution graph IS a
// replayable schedule, which is how explorer-found violations round-trip
// through sim::replay without conversion.
using Event = sim::ScheduleEvent;

// The root node for an exploration: pristine memory and processes, nothing
// decided, no crashes spent.
Node make_root(sim::Memory initial, std::vector<sim::Process> processes);

// Enumerates the events applicable at `node`, in the canonical order the
// sequential explorer uses: step(p0) < step(p1) < ... < crash moves. Crash
// placements that only burn budget without changing reachability (crashing a
// process that has not taken a step in its current run, or an all-crash when
// nobody has progressed) are pruned here, identically for both explorers.
void enumerate_events(const Node& node, const sim::ExplorerConfig& config,
                      std::vector<Event>& out);

// True when every process has decided (no step moves exist).
bool is_terminal(const Node& node);

// Applies `event` to `node` in place. For step events this performs one
// shared-memory access and checks validity, agreement, and the per-run step
// bound; a violated property is reported as its description (the caller owns
// trace formatting). Crash events discard the victims' local state.
std::optional<std::string> apply_event(Node& node, const Event& event,
                                       const sim::ExplorerConfig& config);

// Canonical encoding of the node (crash budget spent, decision constraint,
// shared memory, per-process done bit + local state) and its 128-bit
// fingerprint. `scratch` is caller-provided to avoid per-node allocation.
void encode_node(const Node& node, std::vector<typesys::Value>& scratch);
util::U128 fingerprint(const Node& node, std::vector<typesys::Value>& scratch);

// Fingerprint of an already-encoded canonical prefix. Shared by fingerprint()
// and the compact NodeCodec (engine/node_store.hpp), so the clone-based and
// interned representations key the visited set identically.
util::U128 fingerprint_values(const typesys::Value* data, std::size_t size);

// Deterministic total order on events / event paths, matching the enumeration
// order above. Used for "lowest trace wins" violation selection in the
// parallel explorer.
bool event_less(const Event& a, const Event& b);
bool path_less(const std::vector<Event>& a, const std::vector<Event>& b);

// Immutable backlink chain recording how a node was first reached. Work items
// share their ancestors' links, so extending a path is O(1) instead of
// copying the root-to-node event vector per child; the full path is only
// materialized (root-first) when a violation needs a trace. Links are plain
// pointers into per-worker append-only arenas (engine/path_arena.hpp) that
// outlive the workers and are freed wholesale — no per-link refcounting.
struct PathLink {
  Event event;
  const PathLink* parent = nullptr;
};
std::vector<Event> materialize_path(const PathLink* tail);

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_EXPAND_HPP
