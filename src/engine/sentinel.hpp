// Resource-sentinel primitives: a monotonic millisecond clock and the
// process resident-set size. The parallel engine's monitor thread and the
// sequential explorer's inline polls both read these; keeping the raw
// plumbing here keeps /proc parsing out of the explorers.
#ifndef RCONS_ENGINE_SENTINEL_HPP
#define RCONS_ENGINE_SENTINEL_HPP

#include <chrono>
#include <cstdint>
#include <cstdio>

namespace rcons::engine {

// Milliseconds since an arbitrary (steady) epoch — the sentinels only ever
// compare differences against Budget::time_limit_ms.
inline std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Current resident-set size in bytes, or 0 when unavailable (non-Linux, or
// /proc unreadable) — a 0 reading disables the memory sentinel rather than
// tripping it. Reads /proc/self/statm, whose second field is resident pages;
// cheap enough (~1µs) to sample every sentinel interval.
inline std::uint64_t current_rss_bytes() {
#ifdef __linux__
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int fields = std::fscanf(statm, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(statm);
  if (fields != 2) return 0;
  // Page size is 4 KiB on every platform this project targets; avoiding
  // sysconf keeps the header free of <unistd.h>.
  return static_cast<std::uint64_t>(resident_pages) * 4096ULL;
#else
  return 0;
#endif
}

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_SENTINEL_HPP
