#include "engine/portfolio.hpp"

#include <sstream>

#include "check/spec_system.hpp"
#include "obs/trace.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/object_type.hpp"
#include "typesys/zoo.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

namespace {
constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;
}  // namespace

const char* crash_model_name(sim::CrashModel model) {
  return model == sim::CrashModel::kIndependent ? "independent" : "simultaneous";
}

Portfolio::Portfolio(PortfolioConfig config) : config_(std::move(config)) {}

void Portfolio::add(Scenario scenario) {
  RCONS_ASSERT(scenario.build != nullptr);
  scenarios_.push_back(std::move(scenario));
}

void Portfolio::add_team_consensus(const typesys::ObjectType& type, int n,
                                   sim::CrashModel crash_model, int crash_budget) {
  // Materialize once (witness search is the expensive part); the builder
  // hands out value-semantic copies so every run starts pristine.
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(type, n, kInputA, kInputB);
  auto shared = std::make_shared<rc::TeamConsensusSystem>(std::move(system));

  Scenario scenario;
  scenario.crash_model = crash_model;
  scenario.crash_budget = crash_budget;
  scenario.num_processes = n;
  scenario.object_type = type.name();
  std::ostringstream name;
  name << "team-consensus/" << type.name() << "/n=" << n << "/"
       << crash_model_name(crash_model) << "/c=" << crash_budget;
  scenario.name = name.str();
  scenario.build = [shared] {
    ScenarioSystem out;
    out.memory = shared->memory;
    out.processes = shared->processes;
    out.properties.valid_outputs = {kInputA, kInputB};
    return out;
  };
  scenarios_.push_back(std::move(scenario));
}

void Portfolio::add_spec(const check::ScenarioSpec& spec) {
  // Materialize once (witness search is the expensive part); the builder
  // hands out value-semantic copies so every run starts pristine. The built
  // system carries the spec's symmetry declaration when symmetry=on.
  auto shared =
      std::make_shared<const check::ScenarioSystem>(check::build_spec_system(spec));

  Scenario scenario;
  scenario.crash_model = spec.crash_model;
  scenario.crash_budget = spec.crash_budget;
  scenario.num_processes = spec.n;
  scenario.object_type = spec.type;
  scenario.name = check::spec_display_name(spec);
  scenario.properties_label = shared->properties.label();
  scenario.max_steps_per_run = spec.max_steps_per_run;
  scenario.max_visited = spec.max_visited;
  scenario.time_limit_ms = spec.time_limit_ms;
  scenario.mem_limit_mb = spec.mem_limit_mb;
  scenario.build = [shared] { return *shared; };
  scenarios_.push_back(std::move(scenario));
}

void Portfolio::add_specs(const std::vector<check::ScenarioSpec>& specs) {
  for (const check::ScenarioSpec& spec : specs) add_spec(spec);
}

std::vector<ScenarioResult> Portfolio::run_all() const {
  std::vector<ScenarioResult> results;
  results.reserve(scenarios_.size());
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->gauge("portfolio.scenarios_total")
        .set(static_cast<std::int64_t>(scenarios_.size()));
  }
  std::size_t index = 0;
  for (const Scenario& scenario : scenarios_) {
    index += 1;
    if (config_.obs.metrics != nullptr) {
      // Per-scenario counters: clear the previous scenario's totals (the
      // portfolio.* gauges survive — reset is prefix-scoped).
      config_.obs.metrics->reset("check.");
      config_.obs.metrics->reset("engine.");
      config_.obs.metrics->reset("store.");
      config_.obs.metrics->reset("random.");
      config_.obs.metrics->reset("replay.");
      config_.obs.metrics->gauge("portfolio.scenario_index")
          .set(static_cast<std::int64_t>(index));
    }
    obs::Span scenario_span(config_.obs.tracer, 0,
                            "portfolio_scenario: " + scenario.name);
    ScenarioResult result;
    result.scenario = scenario;

    check::CheckRequest request;
    request.system = scenario.build();
    request.budget = config_.budget;
    request.budget.crash_model = scenario.crash_model;
    request.budget.crash_budget = scenario.crash_budget;
    if (scenario.max_steps_per_run >= 0) {
      request.budget.max_steps_per_run = scenario.max_steps_per_run;
    }
    if (scenario.max_visited >= 0) {
      request.budget.max_visited = scenario.max_visited;
    }
    if (scenario.time_limit_ms >= 0) {
      request.budget.time_limit_ms = scenario.time_limit_ms;
    }
    if (scenario.mem_limit_mb >= 0) {
      request.budget.mem_limit_mb = scenario.mem_limit_mb;
    }
    request.strategy = check::Strategy::kAuto;
    request.num_threads = config_.num_threads;
    request.shard_bits = config_.shard_bits;
    request.obs = config_.obs;

    check::CheckReport report = check::check(std::move(request));
    result.clean = report.clean;
    result.strategy = report.strategy;
    result.violation = std::move(report.violation);
    result.stats = report.stats;
    result.seconds = report.seconds;
    results.push_back(std::move(result));
  }
  return results;
}

util::Table Portfolio::verdict_table(const std::vector<ScenarioResult>& results) {
  util::Table table({"scenario", "model", "crashes", "n", "properties", "verdict",
                     "visited", "transitions", "time(s)"});
  for (const ScenarioResult& result : results) {
    std::ostringstream time;
    time.precision(3);
    time << std::fixed << result.seconds;
    std::string verdict = result.clean ? "clean" : "VIOLATION";
    if (!result.clean && result.violation.has_value() &&
        result.violation->property != sim::PropertyKind::kNone) {
      verdict = std::string("VIOLATION(") +
                sim::property_name(result.violation->property) + ")";
    }
    if (result.stats.truncated) {
      verdict = std::string("TRUNCATED(") +
                sim::stop_reason_name(result.stats.stop_reason) + ")";
    }
    table.add_row({result.scenario.name, crash_model_name(result.scenario.crash_model),
                   std::to_string(result.scenario.crash_budget),
                   std::to_string(result.scenario.num_processes),
                   result.scenario.properties_label, verdict,
                   std::to_string(result.stats.visited),
                   std::to_string(result.stats.transitions), time.str()});
  }
  return table;
}

}  // namespace rcons::engine
