#include "engine/portfolio.hpp"

#include <chrono>
#include <sstream>

#include "rc/team_consensus.hpp"
#include "typesys/object_type.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

namespace {
constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;
}  // namespace

const char* crash_model_name(sim::CrashModel model) {
  return model == sim::CrashModel::kIndependent ? "independent" : "simultaneous";
}

Portfolio::Portfolio(PortfolioConfig config) : config_(config) {}

void Portfolio::add(Scenario scenario) {
  RCONS_ASSERT(scenario.build != nullptr);
  scenarios_.push_back(std::move(scenario));
}

void Portfolio::add_team_consensus(const typesys::ObjectType& type, int n,
                                   sim::CrashModel crash_model, int crash_budget) {
  // Materialize once (witness search is the expensive part); the builder
  // hands out value-semantic copies so every run starts pristine.
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(type, n, kInputA, kInputB);
  auto shared = std::make_shared<rc::TeamConsensusSystem>(std::move(system));

  Scenario scenario;
  scenario.crash_model = crash_model;
  scenario.crash_budget = crash_budget;
  scenario.num_processes = n;
  scenario.object_type = type.name();
  std::ostringstream name;
  name << "team-consensus/" << type.name() << "/n=" << n << "/"
       << crash_model_name(crash_model) << "/c=" << crash_budget;
  scenario.name = name.str();
  scenario.build = [shared] {
    ScenarioSystem out;
    out.memory = shared->memory;
    out.processes = shared->processes;
    out.valid_outputs = {kInputA, kInputB};
    return out;
  };
  scenarios_.push_back(std::move(scenario));
}

std::vector<ScenarioResult> Portfolio::run_all() const {
  std::vector<ScenarioResult> results;
  results.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) {
    ScenarioResult result;
    result.scenario = scenario;

    ScenarioSystem system = scenario.build();
    ParallelExplorerConfig config;
    config.crash_model = scenario.crash_model;
    config.crash_budget = scenario.crash_budget;
    config.max_steps_per_run = config_.max_steps_per_run;
    config.max_visited = config_.max_visited;
    config.crash_after_decide = config_.crash_after_decide;
    config.valid_outputs = system.valid_outputs;
    config.num_threads = config_.num_threads;
    config.shard_bits = config_.shard_bits;

    ParallelExplorer explorer(std::move(system.memory), std::move(system.processes),
                              config);
    const auto start = std::chrono::steady_clock::now();
    result.violation = explorer.run();
    const auto end = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(end - start).count();
    result.clean = !result.violation.has_value();
    result.stats = explorer.stats();
    results.push_back(std::move(result));
  }
  return results;
}

util::Table Portfolio::verdict_table(const std::vector<ScenarioResult>& results) {
  util::Table table({"scenario", "model", "crashes", "n", "verdict", "visited",
                     "transitions", "time(s)"});
  for (const ScenarioResult& result : results) {
    std::ostringstream time;
    time.precision(3);
    time << std::fixed << result.seconds;
    std::string verdict = result.clean ? "clean" : "VIOLATION";
    if (result.stats.truncated) verdict = "TRUNCATED";
    table.add_row({result.scenario.name, crash_model_name(result.scenario.crash_model),
                   std::to_string(result.scenario.crash_budget),
                   std::to_string(result.scenario.num_processes), verdict,
                   std::to_string(result.stats.visited),
                   std::to_string(result.stats.transitions), time.str()});
  }
  return table;
}

}  // namespace rcons::engine
