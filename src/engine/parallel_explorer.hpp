// Multi-threaded exhaustive exploration with the same contract as
// `sim::Explorer`.
//
// Workers expand nodes taken from a work-stealing frontier and deduplicate
// through a sharded store; each reachable global state is claimed by exactly
// one worker and expanded exactly once. On runs that complete (no max_visited
// truncation) this makes the *verdict* (violation-or-clean), the
// visited/transition/decision/terminal counts, and the set of violating
// edges all independent of scheduling. Truncated runs stop racily: counts
// then vary run to run and `visited` can overshoot max_visited by up to one
// state per worker. What a race can change on complete runs is which path
// first claims a state, and therefore the trace prefix attached to a
// violation; the engine reports the lexicographically lowest trace among
// every violation discovered (same event order the sequential DFS uses),
// which pins the report for algorithms whose local state advances every
// step — all of the repository's real ones.
//
// The hot path is allocation-free, batch-oriented, and mutex-free: frontier
// items are stored inline and submitted/drained in batches
// (engine/frontier.hpp) with pop-batch sizes adapted to observed steal
// pressure, path backlinks come from per-worker append-only arenas instead
// of shared_ptr allocations (engine/path_arena.hpp), and dedup probes hit
// lock-free CAS-claimed slot tables (engine/cas_table.hpp) behind a small
// per-worker recently-inserted fingerprint cache that short-circuits
// duplicate probes before touching the shared tables at all.
// ExplorerStats::hot counts the work saved and the contention observed.
//
// Two node representations share this driver (sim::NodeRepr selects):
//
//   * compact (default when every process is decodable) — nodes are interned
//     value records in a sharded NodeStore arena; frontier items carry ids,
//     and each worker decodes into reusable scratch nodes instead of cloning
//     Memory + N Process objects per successor (engine/node_store.hpp);
//   * legacy — the original clone-based WorkItems deduplicated through a
//     fingerprint-only ShardedVisited set.
//
// Both explore the identical deduplicated graph
// (tests/engine/differential_test.cpp); the compact path additionally
// supports symmetry reduction via ExplorerConfig::symmetry_classes.
//
// Unlike the sequential explorer, which stops at the first violation its DFS
// meets, the parallel engine keeps exploring until the frontier drains (or
// `max_visited` truncates the search) and then reports the best violation.
// On clean instances — the expensive case that motivates parallelism — the
// two explorers do identical work.
#ifndef RCONS_ENGINE_PARALLEL_EXPLORER_HPP
#define RCONS_ENGINE_PARALLEL_EXPLORER_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/expand.hpp"
#include "engine/frontier.hpp"
#include "engine/node_store.hpp"
#include "engine/obs_cells.hpp"
#include "engine/path_arena.hpp"
#include "engine/visited.hpp"
#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"

namespace rcons::engine {

struct ParallelExplorerConfig : sim::ExplorerConfig {
  int num_threads = 0;  // 0 = std::thread::hardware_concurrency()
  int shard_bits = -1;  // -1 = auto via pick_shard_bits(); valid fixed: [0, 16]

  // Hint for auto shard_bits and for pre-sizing the dedup tables: how many
  // states the run is expected to visit (e.g. the kAuto probe's count).
  // 0 = unknown, max_visited bounds it.
  std::uint64_t expected_states = 0;
};

class ParallelExplorer {
 public:
  ParallelExplorer(sim::Memory initial, std::vector<sim::Process> processes,
                   ParallelExplorerConfig config);

  // Explores the full (deduplicated) execution graph. Returns the lowest-
  // trace violation found, or nullopt if every execution satisfies the
  // properties. Callable repeatedly; each call restarts from the root.
  std::optional<sim::Violation> run();

  const sim::ExplorerStats& stats() const { return stats_; }

  // Store/visited-set shard occupancy and frontier steal/batch counts of the
  // last run() (whichever representation ran fills visited_stats()).
  const ShardedVisited::LoadStats& visited_stats() const { return visited_stats_; }
  const Frontier::Stats& frontier_stats() const { return frontier_stats_; }

  int num_threads() const { return num_threads_; }
  int shard_bits() const { return shard_bits_; }

  // Whether run() uses the compact interned representation (resolved from
  // config.node_repr and the processes' decode support).
  bool compact() const { return compact_; }

 private:
  struct WorkerStats {
    std::uint64_t transitions = 0;
    std::uint64_t decisions = 0;
    std::uint64_t terminal_states = 0;
    std::uint64_t orbit_skipped = 0;
    std::uint64_t encodes = 0;
    std::uint64_t canonical_hits = 0;
    std::uint64_t allocations_avoided = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_items = 0;
    std::uint64_t cache_probes = 0;
    std::uint64_t cache_hits = 0;
    // Lock-free table work (probe lengths, lost claim CASes, migration
    // stripes helped) — accumulated caller-side so the tables never bounce a
    // shared stats cache line between workers.
    CasTable::OpStats ops;
    // Observability-only tallies (not part of ExplorerStats): states this
    // worker inserted, duplicate successors it skipped, violating edges it
    // found, and the interned records/bytes it added to the store.
    std::uint64_t visited = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t violation_edges = 0;
    std::uint64_t store_nodes = 0;
    std::uint64_t store_bytes = 0;
  };

  std::optional<sim::Violation> run_legacy();
  std::optional<sim::Violation> run_compact();

  // Adds the delta between `local` and the worker's last flush into the
  // registry cells and refreshes the frontier-pending gauge (obs_cells.hpp).
  void flush_worker_obs(std::size_t lane, WorkerStats& last_flushed,
                        const WorkerStats& local, std::uint64_t pending_now);

  void worker_legacy(int id, Frontier& frontier, ShardedVisited& visited,
                     PathArena& arena, std::atomic<std::uint64_t>& pending,
                     WorkerStats& local);

  void worker_compact(int id, CompactFrontier& frontier, NodeStore& store,
                      PathArena& arena, std::atomic<std::uint64_t>& pending,
                      WorkerStats& local);

  // Dedup-table pre-size for a run: the expectation hint clamped by
  // max_visited (0 when unknown).
  std::uint64_t presize_states() const;

  void offer_violation(std::vector<Event> path, sim::PropertyViolation broken);
  void record_truncation(const PathLink* tail, const Event& event);
  std::optional<sim::Violation> finish(const std::vector<WorkerStats>& worker_stats);

  sim::Memory initial_memory_;
  std::vector<sim::Process> initial_processes_;
  ParallelExplorerConfig config_;
  int num_threads_;
  int shard_bits_;
  bool compact_;

  sim::ExplorerStats stats_;
  ShardedVisited::LoadStats visited_stats_;
  Frontier::Stats frontier_stats_;

  // Resolved metric handles for this run (inactive when config_.obs.metrics
  // is null). Resolved once in run(); workers only touch lane-private cells.
  ObsCells obs_cells_;

  std::atomic<std::uint64_t> visited_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> truncated_{false};

  std::mutex violation_mu_;
  bool has_violation_ = false;
  std::vector<Event> best_path_;
  sim::PropertyViolation best_violation_;  // typed property + description
  std::vector<Event> truncation_path_;     // guarded by violation_mu_
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_PARALLEL_EXPLORER_HPP
