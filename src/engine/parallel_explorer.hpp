// Multi-threaded exhaustive exploration with the same contract as
// `sim::Explorer`.
//
// Workers expand nodes taken from a work-stealing frontier and deduplicate
// through a sharded store; each reachable global state is claimed by exactly
// one worker and expanded exactly once. On runs that complete (no max_visited
// truncation) this makes the *verdict* (violation-or-clean), the
// visited/transition/decision/terminal counts, and the set of violating
// edges all independent of scheduling. Truncated runs stop racily: counts
// then vary run to run and `visited` can overshoot max_visited by up to one
// state per worker. What a race can change on complete runs is which path
// first claims a state, and therefore the trace prefix attached to a
// violation; the engine reports the lexicographically lowest trace among
// every violation discovered (same event order the sequential DFS uses),
// which pins the report for algorithms whose local state advances every
// step — all of the repository's real ones.
//
// The hot path is allocation-free, batch-oriented, and mutex-free: frontier
// items are stored inline and submitted/drained in batches
// (engine/frontier.hpp) with pop-batch sizes adapted to observed steal
// pressure, path backlinks come from per-worker append-only arenas instead
// of shared_ptr allocations (engine/path_arena.hpp), and dedup probes hit
// lock-free CAS-claimed slot tables (engine/cas_table.hpp) behind a small
// per-worker recently-inserted fingerprint cache that short-circuits
// duplicate probes before touching the shared tables at all.
// ExplorerStats::hot counts the work saved and the contention observed.
//
// Two node representations share this driver (sim::NodeRepr selects):
//
//   * compact (default when every process is decodable) — nodes are interned
//     value records in a sharded NodeStore arena; frontier items carry ids,
//     and each worker decodes into reusable scratch nodes instead of cloning
//     Memory + N Process objects per successor (engine/node_store.hpp);
//   * legacy — the original clone-based WorkItems deduplicated through a
//     fingerprint-only ShardedVisited set.
//
// Both explore the identical deduplicated graph
// (tests/engine/differential_test.cpp); the compact path additionally
// supports symmetry reduction via ExplorerConfig::symmetry_classes.
//
// Unlike the sequential explorer, which stops at the first violation its DFS
// meets, the parallel engine keeps exploring until the frontier drains (or
// `max_visited` truncates the search) and then reports the best violation.
// On clean instances — the expensive case that motivates parallelism — the
// two explorers do identical work.
#ifndef RCONS_ENGINE_PARALLEL_EXPLORER_HPP
#define RCONS_ENGINE_PARALLEL_EXPLORER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/expand.hpp"
#include "engine/frontier.hpp"
#include "engine/node_store.hpp"
#include "engine/obs_cells.hpp"
#include "engine/path_arena.hpp"
#include "engine/visited.hpp"
#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

struct ParallelExplorerConfig : sim::ExplorerConfig {
  int num_threads = 0;  // 0 = std::thread::hardware_concurrency()
  int shard_bits = -1;  // -1 = auto via pick_shard_bits(); valid fixed: [0, 16]

  // Hint for auto shard_bits and for pre-sizing the dedup tables: how many
  // states the run is expected to visit (e.g. the kAuto probe's count).
  // 0 = unknown, max_visited bounds it.
  std::uint64_t expected_states = 0;
};

class ParallelExplorer {
 public:
  ParallelExplorer(sim::Memory initial, std::vector<sim::Process> processes,
                   ParallelExplorerConfig config);

  // Explores the full (deduplicated) execution graph. Returns the lowest-
  // trace violation found, or nullopt if every execution satisfies the
  // properties. Callable repeatedly; each call restarts from the root.
  std::optional<sim::Violation> run();

  const sim::ExplorerStats& stats() const { return stats_; }

  // Store/visited-set shard occupancy and frontier steal/batch counts of the
  // last run() (whichever representation ran fills visited_stats()).
  const ShardedVisited::LoadStats& visited_stats() const { return visited_stats_; }
  const Frontier::Stats& frontier_stats() const { return frontier_stats_; }

  int num_threads() const { return num_threads_; }
  int shard_bits() const { return shard_bits_; }

  // Whether run() uses the compact interned representation (resolved from
  // config.node_repr and the processes' decode support).
  bool compact() const { return compact_; }

  // Public (not private) so the contract test can violate it on purpose and
  // watch the DCHECK fire under -DRCONS_FORCE_DCHECK=ON.
  struct WorkerStats {
    std::uint64_t transitions = 0;
    std::uint64_t decisions = 0;
    std::uint64_t terminal_states = 0;
    std::uint64_t orbit_skipped = 0;
    std::uint64_t encodes = 0;
    std::uint64_t canonical_hits = 0;
    std::uint64_t allocations_avoided = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_items = 0;
    std::uint64_t cache_probes = 0;
    std::uint64_t cache_hits = 0;
    // Lock-free table work (probe lengths, lost claim CASes, migration
    // stripes helped) — accumulated caller-side so the tables never bounce a
    // shared stats cache line between workers.
    CasTable::OpStats ops;
    // Observability-only tallies (not part of ExplorerStats): states this
    // worker inserted, duplicate successors it skipped, violating edges it
    // found, and the interned records/bytes it added to the store.
    std::uint64_t visited = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t violation_edges = 0;
    std::uint64_t store_nodes = 0;
    std::uint64_t store_bytes = 0;
  };

  // Per-worker conservation law: every counted transition is classified
  // exactly once — it discovered a new state (visited), hit a duplicate, was
  // a violating edge (never expanded further), or was skipped whole by orbit
  // reduction. Both worker loops restore this identity at every obs-flush
  // boundary and at worker exit; drift means a classification branch was
  // added without its tally (or a tally without its transition).
  static void dcheck_transitions_identity(const WorkerStats& w) {
    RCONS_DCHECK_MSG(
        w.visited + w.duplicates + w.violation_edges + w.orbit_skipped == w.transitions,
        "transitions identity violated: visited + duplicates + violation_edges + "
        "orbit_skipped != transitions");
  }

 private:
  std::optional<sim::Violation> run_legacy();
  std::optional<sim::Violation> run_compact();

  // --- robustness layer -----------------------------------------------------
  //
  // Cooperative stop: request_stop records the first reason (CAS,
  // first-writer-wins) and flips stop_. Workers observe stop_ at their loop
  // top, hand any in-hand batch back to the frontier (still pending-counted,
  // so a checkpoint sees every outstanding item) and exit; a worker stopped
  // mid-expansion re-queues the partially-expanded item without releasing
  // its pending slot — re-expansion after a resume only produces duplicate
  // interns, so visited counts stay exact. Workers may therefore exit with
  // pending > 0; every exit path is either "frontier drained" (pending == 0)
  // or "stop observed".
  void request_stop(sim::StopReason reason);

  // Pause barrier for consistent checkpoints: the monitor sets
  // pause_flag_, workers hand their batches back and park in
  // worker_pause_point() until resume_workers(). When every live worker is
  // parked the frontier holds ALL pending items and the store is quiescent —
  // the consistent cut the checkpoint serializes. pause_workers() aborts
  // (returning false) on a stop or if a worker fails to park within a grace
  // period (e.g. wedged by fault injection) — a checkpoint is then skipped,
  // never deadlocked on.
  bool pause_workers();
  void resume_workers();
  void worker_pause_point();
  void worker_exit(int id);

  // Resource sentinel / watchdog / periodic-checkpoint monitor. Runs only
  // when one of those features is enabled (monitor_needed()); hot paths with
  // everything off never touch a clock. `write_snapshot` (null when
  // checkpointing is off) pauses the workers, gathers, resumes, and writes.
  bool monitor_needed() const;
  void monitor_loop(const std::function<bool()>& write_snapshot);
  void stop_monitor(std::thread& monitor);

  std::string truncation_description() const;

  // Adds the delta between `local` and the worker's last flush into the
  // registry cells and refreshes the frontier-pending gauge (obs_cells.hpp).
  void flush_worker_obs(std::size_t lane, WorkerStats& last_flushed,
                        const WorkerStats& local, std::uint64_t pending_now);

  void worker_legacy(int id, Frontier& frontier, ShardedVisited& visited,
                     PathArena& arena, std::atomic<std::uint64_t>& pending,
                     WorkerStats& local);

  void worker_compact(int id, CompactFrontier& frontier, NodeStore& store,
                      PathArena& arena, std::atomic<std::uint64_t>& pending,
                      WorkerStats& local);

  // Dedup-table pre-size for a run: the expectation hint clamped by
  // max_visited (0 when unknown).
  std::uint64_t presize_states() const;

  void offer_violation(std::vector<Event> path, sim::PropertyViolation broken);
  void record_truncation(const PathLink* tail, const Event& event);
  std::optional<sim::Violation> finish(const std::vector<WorkerStats>& worker_stats);

  sim::Memory initial_memory_;
  std::vector<sim::Process> initial_processes_;
  ParallelExplorerConfig config_;
  int num_threads_;
  int shard_bits_;
  bool compact_;

  sim::ExplorerStats stats_;
  ShardedVisited::LoadStats visited_stats_;
  Frontier::Stats frontier_stats_;

  // Resolved metric handles for this run (inactive when config_.obs.metrics
  // is null). Resolved once in run(); workers only touch lane-private cells.
  ObsCells obs_cells_;

  std::atomic<std::uint64_t> visited_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> truncated_{false};  // a truncation path was recorded

  // First stop reason wins (holds sim::StopReason as int; 0 = kNone).
  std::atomic<int> stop_reason_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};

  // Per-worker progress heartbeats, bumped once per frontier item; the
  // monitor's watchdog samples them per sentinel interval. kHeartbeatExited
  // marks a worker that returned (never a stall).
  struct alignas(64) Heartbeat {
    std::atomic<std::uint64_t> beats{0};
  };
  static constexpr std::uint64_t kHeartbeatExited = ~std::uint64_t{0};
  std::unique_ptr<Heartbeat[]> heartbeats_;

  // Pause barrier state (see pause_workers). pause_flag_ mirrors
  // pause_requested_ for the workers' relaxed fast-path check.
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;   // workers wait here while paused
  std::condition_variable parked_cv_;  // coordinator waits for a full park
  bool pause_requested_ = false;       // guarded by pause_mu_
  int parked_ = 0;                     // guarded by pause_mu_
  int live_workers_ = 0;               // guarded by pause_mu_
  std::atomic<bool> pause_flag_{false};

  std::mutex monitor_mu_;
  std::condition_variable monitor_cv_;
  bool monitor_exit_ = false;  // guarded by monitor_mu_

  // Baseline carried in from a resumed checkpoint, added back in finish().
  std::uint64_t resume_visited_ = 0;
  std::uint64_t resume_transitions_ = 0;
  std::uint64_t resume_decisions_ = 0;
  std::uint64_t resume_terminal_states_ = 0;
  std::uint64_t resume_orbit_skipped_ = 0;
  std::uint64_t resume_encodes_ = 0;
  std::uint64_t resume_canonical_hits_ = 0;
  std::uint64_t resume_checkpoints_ = 0;

  std::mutex violation_mu_;
  bool has_violation_ = false;
  std::vector<Event> best_path_;
  sim::PropertyViolation best_violation_;  // typed property + description
  std::vector<Event> truncation_path_;     // guarded by violation_mu_
  std::string watchdog_dump_;              // guarded by violation_mu_
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_PARALLEL_EXPLORER_HPP
