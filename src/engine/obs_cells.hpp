// Resolved metric handles for the engine taxonomy (obs/session.hpp), shared
// by the sequential and parallel explorers.
//
// Handles are resolved once per run (the only locking moment); after that
// every update is a relaxed atomic on a lane-private cell. The explorers keep
// counting in their plain per-worker locals exactly as before and call
// flush() with the *delta since the last flush* at batch boundaries — so the
// per-state hot path is untouched and a null registry (inactive cells) costs
// one predicted branch per batch.
//
// The counter names mirror sim::ExplorerStats field-for-field where a field
// exists (engine.visited_states == stats.visited, and so on); the obs tests
// pin that equality across all four check strategies.
#ifndef RCONS_ENGINE_OBS_CELLS_HPP
#define RCONS_ENGINE_OBS_CELLS_HPP

#include <cstdint>

#include "obs/metrics.hpp"

namespace rcons::engine {

// Counter deltas accumulated between flushes. Field meanings match the
// engine.* / store.* taxonomy in obs/session.cpp.
struct ObsDeltas {
  std::uint64_t visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t terminal_states = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t violation_edges = 0;
  std::uint64_t encodes = 0;
  std::uint64_t canonical_hits = 0;
  std::uint64_t nodes = 0;
  std::uint64_t value_bytes = 0;
  std::uint64_t cache_probes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_items = 0;
  std::uint64_t orbit_skipped = 0;
  std::uint64_t cas_retries = 0;
  std::uint64_t migration_stripes = 0;
};

struct ObsCells {
  bool active = false;

  obs::Counter* visited_states = nullptr;
  obs::Counter* transitions = nullptr;
  obs::Counter* decisions = nullptr;
  obs::Counter* terminal_states = nullptr;
  obs::Counter* duplicates = nullptr;
  obs::Counter* violation_edges = nullptr;
  obs::Counter* orbit_skipped = nullptr;
  obs::Counter* cas_retries = nullptr;
  obs::Counter* migration_stripes = nullptr;
  obs::Counter* truncations = nullptr;
  obs::Counter* dedup_cache_probes = nullptr;
  obs::Counter* dedup_cache_hits = nullptr;
  obs::Counter* frontier_batches = nullptr;
  obs::Counter* frontier_batched_items = nullptr;
  obs::Counter* steals = nullptr;
  obs::Counter* stolen_items = nullptr;
  obs::Counter* store_nodes = nullptr;
  obs::Counter* store_value_bytes = nullptr;
  obs::Counter* store_encodes = nullptr;
  obs::Counter* store_canonical_hits = nullptr;
  obs::Counter* store_rehashes = nullptr;

  obs::Gauge* frontier_pending = nullptr;
  obs::Gauge* visited_cap = nullptr;
  obs::Gauge* num_threads = nullptr;
  obs::Gauge* expected_states = nullptr;

  obs::Histogram* batch_size = nullptr;

  static ObsCells resolve(obs::MetricsRegistry* registry) {
    ObsCells cells;
    if (registry == nullptr) return cells;
    cells.active = true;
    cells.visited_states = &registry->counter("engine.visited_states");
    cells.transitions = &registry->counter("engine.transitions");
    cells.decisions = &registry->counter("engine.decisions");
    cells.terminal_states = &registry->counter("engine.terminal_states");
    cells.duplicates = &registry->counter("engine.duplicates");
    cells.violation_edges = &registry->counter("engine.violation_edges");
    cells.orbit_skipped = &registry->counter("engine.orbit_skipped");
    cells.cas_retries = &registry->counter("engine.cas_retries");
    cells.migration_stripes = &registry->counter("engine.migration_stripes");
    cells.truncations = &registry->counter("engine.truncations");
    cells.dedup_cache_probes = &registry->counter("engine.dedup_cache_probes");
    cells.dedup_cache_hits = &registry->counter("engine.dedup_cache_hits");
    cells.frontier_batches = &registry->counter("engine.frontier_batches");
    cells.frontier_batched_items = &registry->counter("engine.frontier_batched_items");
    cells.steals = &registry->counter("engine.steals");
    cells.stolen_items = &registry->counter("engine.stolen_items");
    cells.store_nodes = &registry->counter("store.nodes");
    cells.store_value_bytes = &registry->counter("store.value_bytes");
    cells.store_encodes = &registry->counter("store.encodes");
    cells.store_canonical_hits = &registry->counter("store.canonical_hits");
    cells.store_rehashes = &registry->counter("store.rehashes");
    cells.frontier_pending = &registry->gauge("engine.frontier_pending");
    cells.visited_cap = &registry->gauge("engine.visited_cap");
    cells.num_threads = &registry->gauge("engine.num_threads");
    cells.expected_states = &registry->gauge("engine.expected_states");
    cells.batch_size = &registry->histogram("engine.batch_size");
    return cells;
  }

  // Adds the nonzero deltas into `lane`'s cells. Callers pass deltas, not
  // totals, so flushing is idempotent-per-increment and the registry totals
  // equal the sums of the per-worker locals at every boundary.
  void flush(std::size_t lane, const ObsDeltas& d) const {
    if (!active) return;
    if (d.visited != 0) visited_states->add(lane, d.visited);
    if (d.transitions != 0) transitions->add(lane, d.transitions);
    if (d.decisions != 0) decisions->add(lane, d.decisions);
    if (d.terminal_states != 0) terminal_states->add(lane, d.terminal_states);
    if (d.duplicates != 0) duplicates->add(lane, d.duplicates);
    if (d.violation_edges != 0) violation_edges->add(lane, d.violation_edges);
    if (d.encodes != 0) store_encodes->add(lane, d.encodes);
    if (d.canonical_hits != 0) store_canonical_hits->add(lane, d.canonical_hits);
    if (d.nodes != 0) store_nodes->add(lane, d.nodes);
    if (d.value_bytes != 0) store_value_bytes->add(lane, d.value_bytes);
    if (d.cache_probes != 0) dedup_cache_probes->add(lane, d.cache_probes);
    if (d.cache_hits != 0) dedup_cache_hits->add(lane, d.cache_hits);
    if (d.batches != 0) frontier_batches->add(lane, d.batches);
    if (d.batched_items != 0) frontier_batched_items->add(lane, d.batched_items);
    if (d.orbit_skipped != 0) orbit_skipped->add(lane, d.orbit_skipped);
    if (d.cas_retries != 0) cas_retries->add(lane, d.cas_retries);
    if (d.migration_stripes != 0) migration_stripes->add(lane, d.migration_stripes);
  }
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_OBS_CELLS_HPP
