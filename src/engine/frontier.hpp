// Work-stealing frontier for parallel state-space exploration.
//
// Each worker owns a deque of pending exploration items. A worker pushes the
// children it generates onto the back of its own deque and pops from the back
// (LIFO: depth-first-ish traversal, hot caches, frontier stays shallow). A
// worker whose deque runs dry steals from the *front* of a victim's deque —
// the oldest, shallowest nodes, which tend to root the largest unexplored
// subtrees — and takes a batch (half the victim's items, capped) in one lock
// acquisition so a starving worker doesn't come back for every node.
#ifndef RCONS_ENGINE_FRONTIER_HPP
#define RCONS_ENGINE_FRONTIER_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/expand.hpp"

namespace rcons::engine {

// One pending unit of work: a deduplicated global state plus a backlink to
// the event path that first reached it (materialized only for trace
// reporting).
struct WorkItem {
  Node node;
  std::shared_ptr<const PathLink> tail;
};

class Frontier {
 public:
  explicit Frontier(int num_workers);

  // Pushes onto `worker`'s own deque. Thread-safe (stealers lock the same
  // deque), but `worker` must identify the calling worker.
  void push(int worker, std::unique_ptr<WorkItem> item);

  // Pops the most recent local item, or steals a batch from the busiest
  // other worker. Returns nullptr when every deque is (momentarily) empty —
  // the caller decides via its pending-work counter whether that means done.
  std::unique_ptr<WorkItem> pop(int worker);

  struct Stats {
    std::uint64_t steals = 0;          // successful batch steals
    std::uint64_t stolen_items = 0;    // items moved by those steals
  };
  Stats stats() const;

 private:
  static constexpr std::size_t kMaxStealBatch = 32;

  struct alignas(64) Deque {
    mutable std::mutex mu;
    std::deque<std::unique_ptr<WorkItem>> items;
  };

  bool steal_into(int thief, int victim);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_items_{0};
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_FRONTIER_HPP
