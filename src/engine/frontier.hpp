// Work-stealing frontier for parallel state-space exploration.
// rcons-lint: hot-path
//
// Each worker owns a deque of pending exploration items. A worker pushes the
// children it generates onto the back of its own deque and pops from the back
// (LIFO: depth-first-ish traversal, hot caches, frontier stays shallow). A
// worker whose deque runs dry steals from the *front* of a victim's deque —
// the oldest, shallowest nodes, which tend to root the largest unexplored
// subtrees — and takes a batch (half the victim's items, capped) in one lock
// acquisition so a starving worker doesn't come back for every node.
//
// The hot path is allocation-free and batch-oriented: items are stored
// *inline* (no unique_ptr wrapper, no per-item heap allocation once the
// backing vectors reach steady-state capacity), `push_batch` submits every
// successor of an expansion under one lock, and `pop_batch` drains work in
// chunks. A successful steal moves the stolen batch straight into the
// thief's output buffer — the thief's own deque is never touched, which both
// removes the historical double-lock (steal used to enqueue into the thief's
// deque and then re-pop it) and the thief-side mutex acquisition entirely.
//
// The frontier is generic over the item type: the clone-based explorer queues
// `WorkItem`s that own their node, while the compact explorer queues
// `CompactWorkItem`s that carry only an interned NodeStore id (the node
// payload lives once in the store's arena, engine/node_store.hpp).
#ifndef RCONS_ENGINE_FRONTIER_HPP
#define RCONS_ENGINE_FRONTIER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "engine/expand.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

// One pending unit of work in the clone-based representation: a deduplicated
// global state plus a backlink to the event path that first reached it
// (materialized only for trace reporting).
struct WorkItem {
  Node node;
  const PathLink* tail = nullptr;
};

// One pending unit of work in the compact representation: a direct view of
// the node's interned record in the NodeStore arena (stable, immutable —
// see NodeStore::Intern) plus the same path backlink. Trivially copyable —
// moving one through the frontier is three register-width stores, and
// expansion decodes the record in place with no lock and no copy.
struct CompactWorkItem {
  const typesys::Value* record = nullptr;
  std::uint32_t length = 0;
  const PathLink* tail = nullptr;
};

// Shared across FrontierT instantiations so callers can hold the counters
// without caring which item type produced them.
struct FrontierStats {
  std::uint64_t steals = 0;         // successful batch steals
  std::uint64_t stolen_items = 0;   // items moved by those steals
  std::uint64_t failed_steals = 0;  // pops that found every deque empty
  std::uint64_t push_batches = 0;   // push/push_batch lock acquisitions
  std::uint64_t pushed_items = 0;   // items across those pushes
  std::uint64_t pop_batches = 0;    // pop_batch calls that returned items
  std::uint64_t popped_items = 0;   // items across those pops

  double avg_push_batch() const {
    return push_batches == 0 ? 0.0
                             : static_cast<double>(pushed_items) /
                                   static_cast<double>(push_batches);
  }
};

template <typename Item>
class FrontierT {
 public:
  explicit FrontierT(int num_workers) {
    RCONS_ASSERT(num_workers >= 1);
    deques_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      deques_.push_back(std::make_unique<Deque>());
    }
  }

  // Pushes one item onto `worker`'s own deque. Thread-safe (stealers lock the
  // same deque), but `worker` must identify the calling worker.
  void push(int worker, Item item) {
    Deque& deque = *deques_[static_cast<std::size_t>(worker)];
    {
      // rcons-lint: allow(hot-path-no-mutex) single-item push is the slow API; batch paths amortize
      std::lock_guard<std::mutex> lock(deque.mu);
      deque.items.push_back(std::move(item));
    }
    push_batches_.fetch_add(1, std::memory_order_relaxed);
    pushed_items_.fetch_add(1, std::memory_order_relaxed);
  }

  // Moves every item of `batch` onto `worker`'s own deque under one lock
  // acquisition — the per-expansion submit path. The span's items are left
  // moved-from.
  void push_batch(int worker, std::span<Item> batch) {
    if (batch.empty()) return;
    Deque& deque = *deques_[static_cast<std::size_t>(worker)];
    {
      // No reserve: an exact-size reserve would defeat the vector's
      // geometric growth and reallocate on every submit while the frontier
      // ramps up; amortized push_back keeps steady-state pushes
      // allocation-free.
      // rcons-lint: allow(hot-path-no-mutex) one acquisition per pushed batch, amortized over batch size
      std::lock_guard<std::mutex> lock(deque.mu);
      for (Item& item : batch) deque.items.push_back(std::move(item));
    }
    push_batches_.fetch_add(1, std::memory_order_relaxed);
    pushed_items_.fetch_add(batch.size(), std::memory_order_relaxed);
  }

  // Moves up to `max` items into `out` (appended): the newest items of the
  // worker's own deque, or — when it is empty — a batch stolen from a
  // victim's front, delivered directly (the thief's deque is not involved).
  // Consume `out` back-to-front: for a local pop that preserves the LIFO
  // order, and after a steal it serves the most recent of the stolen batch
  // first, exactly as the steal-then-re-pop path used to. Returns the number
  // of items appended; 0 means every deque was (momentarily) empty — the
  // caller decides via its pending-work counter whether that means done.
  // `stole`, when non-null, reports whether the returned items came from a
  // victim's deque rather than the worker's own (observability: the engine
  // emits a "steal" span for these).
  std::size_t pop_batch(int worker, std::vector<Item>& out, std::size_t max,
                        bool* stole = nullptr) {
    RCONS_ASSERT(max >= 1);
    if (stole != nullptr) *stole = false;
    Deque& own = *deques_[static_cast<std::size_t>(worker)];
    {
      // rcons-lint: allow(hot-path-no-mutex) one acquisition per popped batch, amortized over batch size
      std::lock_guard<std::mutex> lock(own.mu);
      const std::size_t avail = own.size();
      if (avail != 0) {
        const std::size_t take = avail < max ? avail : max;
        own.take_back(take, out);
        pop_batches_.fetch_add(1, std::memory_order_relaxed);
        popped_items_.fetch_add(take, std::memory_order_relaxed);
        return take;
      }
    }

    const int n = static_cast<int>(deques_.size());
    for (int offset = 1; offset < n; ++offset) {
      const int victim = (worker + offset) % n;
      Deque& from = *deques_[static_cast<std::size_t>(victim)];
      // rcons-lint: allow(hot-path-no-mutex) steals are rare (own deque empty) and take half a deque per lock
      std::lock_guard<std::mutex> lock(from.mu);
      const std::size_t avail = from.size();
      if (avail == 0) continue;
      // Half the victim's items, capped by the batch cap and by what the
      // caller can accept (everything appended to `out` is handed over).
      std::size_t take = (avail + 1) / 2;
      if (take > kMaxStealBatch) take = kMaxStealBatch;
      if (take > max) take = max;
      from.take_front(take, out);
      if (stole != nullptr) *stole = true;
      steals_.fetch_add(1, std::memory_order_relaxed);
      stolen_items_.fetch_add(take, std::memory_order_relaxed);
      pop_batches_.fetch_add(1, std::memory_order_relaxed);
      popped_items_.fetch_add(take, std::memory_order_relaxed);
      return take;
    }
    // The whole frontier was (momentarily) dry: the steal-pressure signal
    // the workers' adaptive batch sizing watches (see failed_steals()).
    failed_steals_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

  // Monotone count of pops that found every deque empty. Workers sample it
  // to detect starvation pressure: when the counter advanced since their
  // last look, peers are starving, so they shrink their pop batches (keeping
  // work visible for steals); while it is quiet they grow them.
  std::uint64_t failed_steals() const {
    return failed_steals_.load(std::memory_order_relaxed);
  }

  // Single-item convenience over pop_batch (tests, simple drains). Unlike
  // the batch path this allocates a one-slot buffer per call; the workers use
  // pop_batch with reusable buffers.
  bool pop(int worker, Item& out) {
    std::vector<Item> scratch;
    if (pop_batch(worker, scratch, 1) == 0) return false;
    out = std::move(scratch.back());
    return true;
  }

  // Copies every queued item into `out` (appended) for checkpointing.
  // Caller contract: every worker is parked (no concurrent push/pop) — the
  // per-deque locks are still taken so a racy caller corrupts nothing, but
  // the snapshot is only a consistent cut at quiescence. Items are copied,
  // not drained; the run continues unchanged afterwards.
  void snapshot(std::vector<Item>& out) const {
    for (const std::unique_ptr<Deque>& deque : deques_) {
      // rcons-lint: allow(hot-path-no-mutex) checkpoint snapshot runs only at quiescence (workers parked)
      std::lock_guard<std::mutex> lock(deque->mu);
      for (std::size_t i = deque->head; i < deque->items.size(); ++i) {
        out.push_back(deque->items[i]);
      }
    }
  }

  using Stats = FrontierStats;
  Stats stats() const {
    Stats stats;
    stats.steals = steals_.load(std::memory_order_relaxed);
    stats.stolen_items = stolen_items_.load(std::memory_order_relaxed);
    stats.failed_steals = failed_steals_.load(std::memory_order_relaxed);
    stats.push_batches = push_batches_.load(std::memory_order_relaxed);
    stats.pushed_items = pushed_items_.load(std::memory_order_relaxed);
    stats.pop_batches = pop_batches_.load(std::memory_order_relaxed);
    stats.popped_items = popped_items_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  static constexpr std::size_t kMaxStealBatch = 32;

  // Inline item storage with an explicit head index: pushes and back-pops are
  // vector operations; front-steals advance `head` and the dead prefix is
  // compacted amortized-O(1). No per-item allocation anywhere.
  struct alignas(64) Deque {
    // rcons-lint: allow(hot-path-no-mutex) per-deque lock; every acquisition above is batch-amortized
    mutable std::mutex mu;
    std::vector<Item> items;
    std::size_t head = 0;  // live range is items[head, items.size())

    std::size_t size() const { return items.size() - head; }

    // Appends the `take` newest items to `out` in oldest-to-newest order.
    void take_back(std::size_t take, std::vector<Item>& out) {
      const std::size_t begin = items.size() - take;
      for (std::size_t i = begin; i < items.size(); ++i) {
        out.push_back(std::move(items[i]));
      }
      items.resize(begin);
      if (items.size() <= head) {
        items.clear();
        head = 0;
      }
    }

    // Appends the `take` oldest items to `out` in oldest-to-newest order.
    void take_front(std::size_t take, std::vector<Item>& out) {
      for (std::size_t i = 0; i < take; ++i) {
        out.push_back(std::move(items[head + i]));
      }
      head += take;
      if (head >= items.size()) {
        items.clear();
        head = 0;
      } else if (head >= kCompactThreshold && head * 2 >= items.size()) {
        items.erase(items.begin(),
                    items.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  static constexpr std::size_t kCompactThreshold = 64;

  std::vector<std::unique_ptr<Deque>> deques_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_items_{0};
  std::atomic<std::uint64_t> failed_steals_{0};
  std::atomic<std::uint64_t> push_batches_{0};
  std::atomic<std::uint64_t> pushed_items_{0};
  std::atomic<std::uint64_t> pop_batches_{0};
  std::atomic<std::uint64_t> popped_items_{0};
};

using Frontier = FrontierT<WorkItem>;
using CompactFrontier = FrontierT<CompactWorkItem>;

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_FRONTIER_HPP
