// Work-stealing frontier for parallel state-space exploration.
//
// Each worker owns a deque of pending exploration items. A worker pushes the
// children it generates onto the back of its own deque and pops from the back
// (LIFO: depth-first-ish traversal, hot caches, frontier stays shallow). A
// worker whose deque runs dry steals from the *front* of a victim's deque —
// the oldest, shallowest nodes, which tend to root the largest unexplored
// subtrees — and takes a batch (half the victim's items, capped) in one lock
// acquisition so a starving worker doesn't come back for every node.
//
// The frontier is generic over the item type: the clone-based explorer queues
// `WorkItem`s that own their node, while the compact explorer queues
// `CompactWorkItem`s that carry only an interned NodeStore id (the node
// payload lives once in the store's arena, engine/node_store.hpp).
#ifndef RCONS_ENGINE_FRONTIER_HPP
#define RCONS_ENGINE_FRONTIER_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/expand.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

// One pending unit of work in the clone-based representation: a deduplicated
// global state plus a backlink to the event path that first reached it
// (materialized only for trace reporting).
struct WorkItem {
  Node node;
  std::shared_ptr<const PathLink> tail;
};

// One pending unit of work in the compact representation: the interned id of
// the node's record plus the same path backlink.
struct CompactWorkItem {
  std::uint64_t id = 0;  // NodeStore::NodeId
  std::shared_ptr<const PathLink> tail;
};

// Shared across FrontierT instantiations so callers can hold steal counts
// without caring which item type produced them.
struct FrontierStats {
  std::uint64_t steals = 0;        // successful batch steals
  std::uint64_t stolen_items = 0;  // items moved by those steals
};

template <typename Item>
class FrontierT {
 public:
  explicit FrontierT(int num_workers) {
    RCONS_ASSERT(num_workers >= 1);
    deques_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      deques_.push_back(std::make_unique<Deque>());
    }
  }

  // Pushes onto `worker`'s own deque. Thread-safe (stealers lock the same
  // deque), but `worker` must identify the calling worker.
  void push(int worker, std::unique_ptr<Item> item) {
    Deque& deque = *deques_[static_cast<std::size_t>(worker)];
    std::lock_guard<std::mutex> lock(deque.mu);
    deque.items.push_back(std::move(item));
  }

  // Pops the most recent local item, or steals a batch from another worker.
  // Returns nullptr when every deque is (momentarily) empty — the caller
  // decides via its pending-work counter whether that means done.
  std::unique_ptr<Item> pop(int worker) {
    Deque& own = *deques_[static_cast<std::size_t>(worker)];
    {
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.items.empty()) {
        std::unique_ptr<Item> item = std::move(own.items.back());
        own.items.pop_back();
        return item;
      }
    }

    const int n = static_cast<int>(deques_.size());
    for (int offset = 1; offset < n; ++offset) {
      const int victim = (worker + offset) % n;
      if (!steal_into(worker, victim)) continue;
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.items.empty()) {
        std::unique_ptr<Item> item = std::move(own.items.back());
        own.items.pop_back();
        return item;
      }
    }
    return nullptr;
  }

  using Stats = FrontierStats;
  Stats stats() const {
    Stats stats;
    stats.steals = steals_.load(std::memory_order_relaxed);
    stats.stolen_items = stolen_items_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  static constexpr std::size_t kMaxStealBatch = 32;

  struct alignas(64) Deque {
    mutable std::mutex mu;
    std::deque<std::unique_ptr<Item>> items;
  };

  bool steal_into(int thief, int victim) {
    Deque& from = *deques_[static_cast<std::size_t>(victim)];
    Deque& to = *deques_[static_cast<std::size_t>(thief)];
    // Lock ordering by worker index prevents deadlock between mutual stealers.
    std::unique_lock<std::mutex> first(victim < thief ? from.mu : to.mu,
                                       std::defer_lock);
    std::unique_lock<std::mutex> second(victim < thief ? to.mu : from.mu,
                                        std::defer_lock);
    first.lock();
    second.lock();
    if (from.items.empty()) return false;
    std::size_t take = (from.items.size() + 1) / 2;
    if (take > kMaxStealBatch) take = kMaxStealBatch;
    for (std::size_t i = 0; i < take; ++i) {
      to.items.push_back(std::move(from.items.front()));
      from.items.pop_front();
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    stolen_items_.fetch_add(take, std::memory_order_relaxed);
    return true;
  }

  std::vector<std::unique_ptr<Deque>> deques_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_items_{0};
};

using Frontier = FrontierT<WorkItem>;
using CompactFrontier = FrontierT<CompactWorkItem>;

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_FRONTIER_HPP
