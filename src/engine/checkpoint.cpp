#include "engine/checkpoint.hpp"

#include <cstdio>
#include <cstring>

#include "engine/fault_inject.hpp"
#include "util/assert.hpp"

namespace rcons::engine {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'K', 'P'};

// CRC-32 (IEEE 802.3, reflected), table computed on first use. The frame
// check only needs to catch torn writes and bit flips, not adversaries.
std::uint32_t crc32(const unsigned char* data, std::size_t size) {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) != 0 ? 0xedb88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffU] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffU;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// Bounds-checked little-endian reader over the loaded byte buffer. Every
// read can fail (truncated frame); the loader surfaces the first failure.
struct Reader {
  const unsigned char* data;
  std::size_t size;
  std::size_t at = 0;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || size - at < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, data + at, n);
    at += n;
    return true;
  }

  std::uint32_t u32() {
    unsigned char b[4] = {};
    if (!take(b, 4)) return 0;
    return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 |
           static_cast<std::uint32_t>(b[3]) << 24;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    unsigned char b[8] = {};
    if (!take(b, 8)) return 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || size - at < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + at), n);
    at += n;
    return s;
  }
};

}  // namespace

std::uint64_t checkpoint_config_hash(const sim::ExplorerConfig& config) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi, arbitrary non-zero seed
  const auto fold = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = util::mix64(h);
  };
  fold(static_cast<std::uint64_t>(config.crash_model));
  fold(static_cast<std::uint64_t>(config.crash_budget));
  fold(static_cast<std::uint64_t>(config.max_steps_per_run));
  fold(static_cast<std::uint64_t>(config.max_visited));
  fold(config.crash_after_decide ? 1 : 0);
  fold(config.symmetry_classes.size());
  for (const int cls : config.symmetry_classes) {
    fold(static_cast<std::uint64_t>(static_cast<std::int64_t>(cls)));
  }
  fold(config.properties.specs().size());
  for (const sim::PropertySpec& spec : config.properties.specs()) {
    fold(static_cast<std::uint64_t>(spec.kind));
    fold(static_cast<std::uint64_t>(spec.param));
  }
  fold(config.properties.valid_outputs.size());
  for (const typesys::Value v : config.properties.valid_outputs) {
    fold(static_cast<std::uint64_t>(v));
  }
  return h;
}

std::string serialize_checkpoint(const CheckpointData& data) {
  // Producer-side frame invariants: catch an inconsistent cut before it is
  // made durable (the loader re-validates the same bounds on read, but by
  // then the bad frame has already replaced a good one on disk).
  for (const std::uint64_t index : data.frontier) {
    RCONS_DCHECK_MSG(index < data.nodes.size(),
                     "checkpoint frame references a node it does not carry");
  }
  RCONS_DCHECK_MSG(data.has_violation || data.violation_schedule.empty(),
                   "violation schedule present without the violation flag");
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, CheckpointData::kVersion);
  put_u64(out, data.config_hash);
  put_string(out, data.label);
  put_u64(out, data.root_fp.lo);
  put_u64(out, data.root_fp.hi);
  put_u64(out, data.visited);
  put_u64(out, data.transitions);
  put_u64(out, data.decisions);
  put_u64(out, data.terminal_states);
  put_u64(out, data.orbit_skipped);
  put_u64(out, data.encodes);
  put_u64(out, data.canonical_hits);
  put_u64(out, data.checkpoints_written);

  out.push_back(data.has_violation ? 1 : 0);
  if (data.has_violation) {
    put_string(out, data.violation_description);
    put_u32(out, static_cast<std::uint32_t>(data.violation_property));
    put_i64(out, data.violation_param);
    put_u32(out, static_cast<std::uint32_t>(data.violation_schedule.size()));
    for (const sim::ScheduleEvent& event : data.violation_schedule) {
      out.push_back(static_cast<char>(event.kind));
      put_u32(out, static_cast<std::uint32_t>(event.process));
    }
  }

  put_u64(out, data.nodes.size());
  for (const CheckpointData::Node& node : data.nodes) {
    put_u64(out, node.fp.lo);
    put_u64(out, node.fp.hi);
    put_u32(out, static_cast<std::uint32_t>(node.values.size()));
    for (const std::int64_t v : node.values) put_i64(out, v);
  }
  put_u64(out, data.frontier.size());
  for (const std::uint64_t index : data.frontier) put_u64(out, index);

  put_u32(out, crc32(reinterpret_cast<const unsigned char*>(out.data()), out.size()));
  return out;
}

bool write_checkpoint(const std::string& path, const CheckpointData& data,
                      FaultPlan* fault, std::string& error) {
  const std::string bytes = serialize_checkpoint(data);
  std::size_t write_size = bytes.size();
  bool truncate = false;
  if (fault != nullptr &&
      fault->hit(FaultPlan::Site::kCkptWrite) == FaultPlan::Action::kTruncateWrite) {
    // Simulated torn write: half the frame lands in the temp file and the
    // rename never happens, so any previous checkpoint at `path` survives.
    write_size /= 2;
    truncate = true;
  }

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    error = "checkpoint: cannot open '" + tmp + "' for writing";
    return false;
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, write_size, file);
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (written != write_size || !flushed) {
    error = "checkpoint: short write to '" + tmp + "'";
    return false;
  }
  if (truncate) {
    error = "checkpoint: write truncated by fault injection (rename skipped)";
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "checkpoint: cannot rename '" + tmp + "' to '" + path + "'";
    return false;
  }
  return true;
}

CheckpointLoad load_checkpoint(const std::string& path, CheckpointData& data,
                               std::string& error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error = "checkpoint: no file at '" + path + "'";
    return CheckpointLoad::kMissing;
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) bytes.append(buf, got);
  std::fclose(file);

  const auto corrupt = [&](const std::string& why) {
    error = "checkpoint '" + path + "': " + why;
    return CheckpointLoad::kCorrupt;
  };
  if (bytes.size() < sizeof(kMagic) + 4 + 4) return corrupt("file too short");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return corrupt("bad magic (not a checkpoint file)");
  }
  const std::size_t body = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body, 4);
  // The trailer was serialized little-endian; reassemble portably.
  const auto* tail = reinterpret_cast<const unsigned char*>(bytes.data() + body);
  stored_crc = static_cast<std::uint32_t>(tail[0]) |
               static_cast<std::uint32_t>(tail[1]) << 8 |
               static_cast<std::uint32_t>(tail[2]) << 16 |
               static_cast<std::uint32_t>(tail[3]) << 24;
  const std::uint32_t actual_crc =
      crc32(reinterpret_cast<const unsigned char*>(bytes.data()), body);
  if (stored_crc != actual_crc) {
    return corrupt("CRC mismatch (torn write or flipped bytes)");
  }

  Reader r{reinterpret_cast<const unsigned char*>(bytes.data()), body};
  r.at = sizeof(kMagic);
  const std::uint32_t version = r.u32();
  if (version != CheckpointData::kVersion) {
    return corrupt("unsupported version " + std::to_string(version));
  }

  CheckpointData loaded;
  loaded.config_hash = r.u64();
  loaded.label = r.str();
  loaded.root_fp.lo = r.u64();
  loaded.root_fp.hi = r.u64();
  loaded.visited = r.u64();
  loaded.transitions = r.u64();
  loaded.decisions = r.u64();
  loaded.terminal_states = r.u64();
  loaded.orbit_skipped = r.u64();
  loaded.encodes = r.u64();
  loaded.canonical_hits = r.u64();
  loaded.checkpoints_written = r.u64();

  unsigned char has_violation = 0;
  r.take(&has_violation, 1);
  if (has_violation > 1) return corrupt("bad violation flag");
  loaded.has_violation = has_violation != 0;
  if (loaded.has_violation) {
    loaded.violation_description = r.str();
    const std::uint32_t property = r.u32();
    if (property > static_cast<std::uint32_t>(sim::PropertyKind::kAtMostOnceDecide)) {
      return corrupt("bad violation property");
    }
    loaded.violation_property = static_cast<sim::PropertyKind>(property);
    loaded.violation_param = r.i64();
    const std::uint32_t nevents = r.u32();
    if (!r.ok || nevents > body) return corrupt("bad violation schedule length");
    loaded.violation_schedule.reserve(nevents);
    for (std::uint32_t i = 0; i < nevents; ++i) {
      unsigned char kind = 0;
      r.take(&kind, 1);
      if (kind > static_cast<unsigned char>(sim::ScheduleEvent::Kind::kCrashAll)) {
        return corrupt("bad schedule event kind");
      }
      sim::ScheduleEvent event;
      event.kind = static_cast<sim::ScheduleEvent::Kind>(kind);
      event.process = static_cast<int>(static_cast<std::int32_t>(r.u32()));
      loaded.violation_schedule.push_back(event);
    }
  }

  const std::uint64_t node_count = r.u64();
  if (!r.ok || node_count > body) return corrupt("bad node count");
  loaded.nodes.reserve(static_cast<std::size_t>(node_count));
  for (std::uint64_t i = 0; i < node_count; ++i) {
    CheckpointData::Node node;
    node.fp.lo = r.u64();
    node.fp.hi = r.u64();
    const std::uint32_t len = r.u32();
    if (!r.ok || static_cast<std::size_t>(len) * 8 > body - r.at) {
      return corrupt("bad node record length");
    }
    node.values.reserve(len);
    for (std::uint32_t v = 0; v < len; ++v) node.values.push_back(r.i64());
    loaded.nodes.push_back(std::move(node));
  }

  const std::uint64_t frontier_count = r.u64();
  if (!r.ok || frontier_count > body) return corrupt("bad frontier count");
  loaded.frontier.reserve(static_cast<std::size_t>(frontier_count));
  for (std::uint64_t i = 0; i < frontier_count; ++i) {
    const std::uint64_t index = r.u64();
    if (index >= node_count) return corrupt("frontier index out of range");
    loaded.frontier.push_back(index);
  }
  if (!r.ok) return corrupt("truncated frame");
  if (r.at != body) return corrupt("trailing bytes after frame");

  data = std::move(loaded);
  return CheckpointLoad::kOk;
}

}  // namespace rcons::engine
