#include "engine/visited.hpp"

#include "util/assert.hpp"

namespace rcons::engine {

ShardedVisited::ShardedVisited(int shard_bits, std::uint64_t expected_states)
    : shard_bits_(shard_bits) {
  RCONS_ASSERT_MSG(shard_bits >= 0 && shard_bits <= 16,
                   "shard_bits must be in [0, 16]");
  const std::size_t count = static_cast<std::size_t>(1) << shard_bits;
  const std::uint64_t expected_per_shard = expected_states / count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(expected_per_shard));
  }
}

bool ShardedVisited::insert(util::U128 key, CasTable::OpStats* stats) {
  return shards_[shard_index(key)]->table.insert(key, 0, stats).inserted;
}

std::uint64_t ShardedVisited::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->table.size();
  return total;
}

ShardedVisited::LoadStats ShardedVisited::load_stats() const {
  LoadStats stats;
  stats.min_shard = ~0ULL;
  for (const auto& shard : shards_) {
    const std::uint64_t count = shard->table.size();
    stats.total += count;
    if (count < stats.min_shard) stats.min_shard = count;
    if (count > stats.max_shard) stats.max_shard = count;
    stats.rehashes += shard->table.rehashes();
  }
  if (stats.total == 0) {
    stats.min_shard = 0;
    stats.imbalance = 1.0;
  } else {
    const double even = static_cast<double>(stats.total) /
                        static_cast<double>(shards_.size());
    stats.imbalance = even > 0 ? static_cast<double>(stats.max_shard) / even : 1.0;
  }
  return stats;
}

int pick_shard_bits(int num_threads, std::uint64_t expected_states) {
  if (num_threads <= 1) return 0;

  // Smallest k with 2^k >= 8 * num_threads.
  int contention_bits = 0;
  while (contention_bits < 16 &&
         (std::uint64_t{1} << contention_bits) <
             8 * static_cast<std::uint64_t>(num_threads)) {
    contention_bits += 1;
  }

  if (expected_states == 0) return contention_bits;

  // Largest k with 2^k <= expected_states / 64 (0 when the quotient is 0 or
  // 1 — the loop never advances).
  int occupancy_bits = 0;
  while (occupancy_bits < 16 &&
         (std::uint64_t{1} << (occupancy_bits + 1)) <= expected_states / 64) {
    occupancy_bits += 1;
  }

  return contention_bits < occupancy_bits ? contention_bits : occupancy_bits;
}

}  // namespace rcons::engine
