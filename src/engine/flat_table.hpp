// Flat open-addressing fingerprint table — the hot-path replacement for the
// per-shard `std::unordered_set` / `unordered_map` in the visited set and the
// NodeStore index.
//
// Node-based hash tables pay one heap allocation per insert and one pointer
// chase per probe; at millions of states per second that is the dominant
// dedup cost. This table stores (128-bit key, 64-bit payload) slots inline in
// one power-of-two array probed linearly, so a lookup is a handful of
// contiguous loads and an insert in steady state allocates nothing.
//
// Growth is *incremental*: when occupancy crosses the load threshold the
// table allocates a double-size slot array and migrates a fixed number of old
// slots per subsequent operation, so no single insert under a shard lock
// stalls on an O(n) rehash. While a migration is in flight lookups consult
// the new array first and fall back to the (immutable, not-yet-freed) old
// array; migrated keys are *copied*, never deleted, so the old array's linear
// probe chains stay intact. The old array is freed wholesale when the sweep
// completes.
//
// The all-zero key is a legal fingerprint (nothing in fingerprint_values
// forbids it), so it cannot double as the empty-slot marker; it is tracked by
// a dedicated sideband flag instead.
//
// Not thread-safe by itself — callers shard and lock (engine/visited.hpp,
// engine/node_store.hpp).
#ifndef RCONS_ENGINE_FLAT_TABLE_HPP
#define RCONS_ENGINE_FLAT_TABLE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.hpp"

namespace rcons::engine {

class FlatTable {
 public:
  // Probe-length and growth counters, aggregated by the sharded containers
  // into the run's hot-path statistics.
  struct Stats {
    std::uint64_t probe_total = 0;  // slots inspected across all operations
    std::uint64_t probe_ops = 0;    // operations that probed
    std::uint64_t max_probe = 0;    // longest single probe sequence
    std::uint64_t rehashes = 0;     // incremental growths started
  };

  // Pre-sizes for `expected` keys so a run of the anticipated size never
  // rehashes. 0 = unknown; start minimal and grow incrementally.
  explicit FlatTable(std::uint64_t expected = 0) {
    std::size_t capacity = kMinCapacity;
    while (capacity < kMaxPresize &&
           expected > capacity / 8 * 5) {  // keep load <= 5/8
      capacity <<= 1;
    }
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
  }

  struct Found {
    std::uint64_t value = 0;
    bool inserted = false;  // true when `key` was not present before
  };

  // Inserts `key -> value` if absent; returns the resident value (the
  // existing one on a duplicate) and whether an insert happened.
  Found insert(util::U128 key, std::uint64_t value) {
    migrate_some();
    if (is_zero(key)) {
      if (has_zero_) return Found{zero_value_, false};
      has_zero_ = true;
      zero_value_ = value;
      size_ += 1;
      maybe_grow();
      return Found{value, true};
    }
    // Presence check spans the new array and, mid-migration, the old one.
    if (const Slot* slot = find_slot(slots_, mask_, key)) {
      return Found{slot->value, false};
    }
    if (!old_slots_.empty()) {
      if (const Slot* slot = find_slot(old_slots_, old_mask_, key)) {
        return Found{slot->value, false};
      }
    }
    place(slots_, mask_, key, value);
    size_ += 1;
    maybe_grow();
    return Found{value, true};
  }

  bool contains(util::U128 key) const { return find(key) != nullptr; }

  // Pointer to the payload of `key`, or nullptr. Stable only until the next
  // mutating call.
  const std::uint64_t* find(util::U128 key) const {
    if (is_zero(key)) return has_zero_ ? &zero_value_ : nullptr;
    if (const Slot* slot = find_slot(slots_, mask_, key)) return &slot->value;
    if (!old_slots_.empty()) {
      if (const Slot* slot = find_slot(old_slots_, old_mask_, key)) {
        return &slot->value;
      }
    }
    return nullptr;
  }

  std::uint64_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  bool migrating() const { return !old_slots_.empty(); }

  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    util::U128 key;           // all-zero = empty
    std::uint64_t value = 0;
  };

  static constexpr std::size_t kMinCapacity = 16;  // power of two
  // Pre-sizing cap (slots): callers may pass optimistic expectations (e.g. a
  // max_visited bound); beyond this the table grows incrementally instead of
  // committing memory up front.
  static constexpr std::size_t kMaxPresize = std::size_t{1} << 22;
  // Old slots migrated per mutating operation. At the 5/8 load threshold the
  // new array absorbs ~5/8 of the old capacity in fresh inserts before the
  // next growth, and 8 times that comfortably exceeds the old capacity, so a
  // sweep always completes first; the force-finish in maybe_grow() is a
  // safety net, not the common path.
  static constexpr std::size_t kMigrateStep = 8;

  static bool is_zero(util::U128 key) { return key.lo == 0 && key.hi == 0; }

  static std::size_t bucket(util::U128 key, std::size_t mask) {
    return static_cast<std::size_t>(util::U128Hash{}(key)) & mask;
  }

  // Linear probe for `key`; nullptr when an empty slot ends the chain.
  const Slot* find_slot(const std::vector<Slot>& slots, std::size_t mask,
                        util::U128 key) const {
    std::size_t index = bucket(key, mask);
    std::uint64_t probes = 0;
    for (;;) {
      const Slot& slot = slots[index];
      probes += 1;
      if (is_zero(slot.key)) break;
      if (slot.key == key) {
        note_probe(probes);
        return &slot;
      }
      index = (index + 1) & mask;
    }
    note_probe(probes);
    return nullptr;
  }

  // Writes `key -> value` into the first empty slot of its chain. The caller
  // guarantees `key` is absent and the array has a free slot (load < 1).
  static void place(std::vector<Slot>& slots, std::size_t mask, util::U128 key,
                    std::uint64_t value) {
    std::size_t index = bucket(key, mask);
    while (!is_zero(slots[index].key)) index = (index + 1) & mask;
    slots[index].key = key;
    slots[index].value = value;
  }

  void note_probe(std::uint64_t probes) const {
    stats_.probe_total += probes;
    stats_.probe_ops += 1;
    if (probes > stats_.max_probe) stats_.max_probe = probes;
  }

  void maybe_grow() {
    // Grow at 5/8 load: linear probing's expected probe length stays ~1.5
    // at the cost of one mostly-empty doubling step of headroom.
    if (size_ <= mask_ / 8 * 5) return;
    if (!old_slots_.empty()) {
      // Threshold reached with a sweep still in flight (only possible after
      // pathological presizing): finish it before chaining another growth.
      while (!old_slots_.empty()) migrate_some();
    }
    stats_.rehashes += 1;
    old_slots_.swap(slots_);
    old_mask_ = mask_;
    slots_.assign(old_slots_.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    migrate_pos_ = 0;
  }

  // Copies up to kMigrateStep occupied old slots into the new array. Old
  // slots are left in place (lookups may still walk them), so probe chains in
  // the old array never break; the whole array is freed when the sweep ends.
  void migrate_some() {
    if (old_slots_.empty()) return;
    std::size_t moved = 0;
    while (migrate_pos_ < old_slots_.size() && moved < kMigrateStep) {
      const Slot& slot = old_slots_[migrate_pos_];
      migrate_pos_ += 1;
      if (is_zero(slot.key)) continue;
      if (find_slot(slots_, mask_, slot.key) == nullptr) {
        place(slots_, mask_, slot.key, slot.value);
      }
      moved += 1;
    }
    if (migrate_pos_ >= old_slots_.size()) {
      old_slots_.clear();
      old_slots_.shrink_to_fit();
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::vector<Slot> old_slots_;  // non-empty while a growth sweep is in flight
  std::size_t old_mask_ = 0;
  std::size_t migrate_pos_ = 0;
  std::uint64_t size_ = 0;
  bool has_zero_ = false;
  std::uint64_t zero_value_ = 0;
  mutable Stats stats_;
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_FLAT_TABLE_HPP
