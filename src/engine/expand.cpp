// rcons-lint: hot-path
#include "engine/expand.hpp"

#include "util/assert.hpp"

namespace rcons::engine {

using typesys::Value;

Node make_root(sim::Memory initial, std::vector<sim::Process> processes,
               const sim::PropertySet& properties) {
  RCONS_ASSERT(!processes.empty());
  Node root;
  root.memory = std::move(initial);
  root.processes = std::move(processes);
  root.done.assign(root.processes.size(), 0);
  root.steps_in_run.assign(root.processes.size(), 0);
  if (properties.at_most_once()) {
    root.ever_output.assign(root.processes.size(), 0);
    root.last_output.assign(root.processes.size(), 0);
  }
  return root;
}

void enumerate_events(const Node& node, const sim::ExplorerConfig& config,
                      std::vector<Event>& out) {
  enumerate_events(node, config, out, nullptr, nullptr);
}

void enumerate_events(const Node& node, const sim::ExplorerConfig& config,
                      std::vector<Event>& out,
                      const std::vector<std::uint8_t>* orbit_skip,
                      std::uint64_t* orbit_skipped) {
  out.clear();
  const int n = static_cast<int>(node.processes.size());
  const auto skipped = [&](int i) {
    if (orbit_skip == nullptr || (*orbit_skip)[static_cast<std::size_t>(i)] == 0) {
      return false;
    }
    *orbit_skipped += 1;
    return true;
  };

  // Step moves.
  for (int i = 0; i < n; ++i) {
    if (node.done[static_cast<std::size_t>(i)] != 0) continue;
    if (skipped(i)) continue;
    out.push_back(Event{Event::Kind::kStep, i});
  }

  // Crash moves.
  if (node.crashes_used >= config.crash_budget) return;
  if (config.crash_model == sim::CrashModel::kIndependent) {
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const bool is_done = node.done[idx] != 0;
      if (is_done && !config.crash_after_decide) continue;
      // Crashing a process that has not taken a step in its current run
      // only burns budget; the resulting state is strictly weaker.
      if (!is_done && node.steps_in_run[idx] == 0) continue;
      // Orbit members have identical blocks *and* sidecars, so a skipped
      // sibling's crash is the representative's crash up to relabeling.
      if (skipped(i)) continue;
      out.push_back(Event{Event::Kind::kCrash, i});
    }
  } else {
    bool useful = false;
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      useful = useful || node.done[idx] != 0 || node.steps_in_run[idx] > 0;
    }
    if (useful) out.push_back(Event{Event::Kind::kCrashAll, -1});
  }
}

bool is_terminal(const Node& node) {
  for (const std::uint8_t d : node.done) {
    if (d == 0) return false;
  }
  return true;
}

namespace {

std::optional<sim::PropertyViolation> apply_step(Node& node, int process,
                                                 const sim::ExplorerConfig& config) {
  const auto idx = static_cast<std::size_t>(process);
  const sim::StepResult result = node.processes[idx].step(node.memory);
  node.steps_in_run[idx] += 1;
  if (auto violation = sim::check_wait_freedom(config.properties, process,
                                               node.steps_in_run[idx],
                                               config.max_steps_per_run)) {
    return violation;
  }
  if (result.kind == sim::StepResult::Kind::kDecided) {
    if (auto violation =
            sim::check_output(config.properties, process, result.decision,
                              node.decisions, node.ever_output, node.last_output)) {
      return violation;
    }
    node.done[idx] = 1;
    node.steps_in_run[idx] = 0;
    // Canonicalize the local state of decided processes so equivalent global
    // states deduplicate regardless of how the decision was reached.
    node.processes[idx].reset();
  }
  return std::nullopt;
}

void crash_process(Node& node, int process) {
  const auto idx = static_cast<std::size_t>(process);
  node.done[idx] = 0;
  node.steps_in_run[idx] = 0;
  node.processes[idx].reset();
}

}  // namespace

std::optional<sim::PropertyViolation> apply_event(Node& node, const Event& event,
                                                  const sim::ExplorerConfig& config) {
  switch (event.kind) {
    case Event::Kind::kStep:
      return apply_step(node, event.process, config);
    case Event::Kind::kCrash:
      node.crashes_used += 1;
      crash_process(node, event.process);
      return std::nullopt;
    case Event::Kind::kCrashAll:
      node.crashes_used += 1;
      for (int i = 0; i < static_cast<int>(node.processes.size()); ++i) {
        crash_process(node, i);
      }
      return std::nullopt;
  }
  return std::nullopt;
}

void encode_node(const Node& node, std::vector<Value>& scratch) {
  scratch.clear();
  encode_node_header(node, scratch);
  for (std::size_t i = 0; i < node.processes.size(); ++i) {
    encode_process_block(node, i, scratch);
  }
}

util::U128 fingerprint(const Node& node, std::vector<Value>& scratch) {
  encode_node(node, scratch);
  return fingerprint_values(scratch.data(), scratch.size());
}

util::U128 fingerprint_values(const Value* data, std::size_t size) {
  // One sweep advancing both 64-bit lanes; the length is folded in at the
  // end (FpStream::finish) so the same stream can absorb the encoding
  // incrementally while it is being produced.
  FpStream fp;
  fp.absorb(data, size);
  return fp.finish(size);
}

bool event_less(const Event& a, const Event& b) {
  if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  return a.process < b.process;
}

bool path_less(const std::vector<Event>& a, const std::vector<Event>& b) {
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < common; ++i) {
    if (event_less(a[i], b[i])) return true;
    if (event_less(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}

std::vector<Event> materialize_path(const PathLink* tail) {
  std::vector<Event> path;
  for (const PathLink* link = tail; link != nullptr; link = link->parent) {
    path.push_back(link->event);
  }
  for (std::size_t i = 0, j = path.size(); i + 1 < j; ++i, --j) {
    std::swap(path[i], path[j - 1]);
  }
  return path;
}

}  // namespace rcons::engine
