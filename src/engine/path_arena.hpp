// Append-only arena for PathLink backlink chains.
//
// The parallel explorer used to allocate one `shared_ptr<const PathLink>`
// control block per frontier push and pay an atomic refcount bump every time
// an item was moved — pure overhead, since every link of a run dies at the
// same moment (when exploration ends). Each worker now bump-allocates links
// out of its own chunked arena; links are immutable once written, may be
// referenced across workers (a stolen item's chain spans the victim's arena),
// and are freed wholesale when every worker has joined and the arenas go out
// of scope.
//
// Cross-arena safety: a link is fully written before the item carrying it is
// published through the frontier's deque mutex, and all arenas outlive all
// workers, so readers never see a torn or dangling link.
#ifndef RCONS_ENGINE_PATH_ARENA_HPP
#define RCONS_ENGINE_PATH_ARENA_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/expand.hpp"

namespace rcons::engine {

class PathArena {
 public:
  PathArena() = default;
  PathArena(const PathArena&) = delete;
  PathArena& operator=(const PathArena&) = delete;

  // One new immutable link; amortizes to one heap allocation per kChunkLinks
  // links.
  const PathLink* add(const Event& event, const PathLink* parent) {
    if (used_ == kChunkLinks || chunks_.empty()) {
      chunks_.push_back(std::make_unique<PathLink[]>(kChunkLinks));
      used_ = 0;
    }
    PathLink* link = &chunks_.back()[used_];
    used_ += 1;
    link->event = event;
    link->parent = parent;
    links_ += 1;
    return link;
  }

  std::uint64_t links() const { return links_; }

 private:
  static constexpr std::size_t kChunkLinks = std::size_t{1} << 12;

  std::vector<std::unique_ptr<PathLink[]>> chunks_;
  std::size_t used_ = kChunkLinks;
  std::uint64_t links_ = 0;
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_PATH_ARENA_HPP
