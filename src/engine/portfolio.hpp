// Scenario portfolios: fan a set of {crash model, crash budget, object type,
// process count} model-checking scenarios across the parallel engine and
// aggregate a verdict table.
//
// A scenario owns a builder that materializes its system (shared memory,
// processes, valid outputs) on demand, so adding a scenario is cheap and a
// portfolio can be re-run. The canned `team_consensus_scenario` family wraps
// the paper's Figure 2 algorithm over any n-recording type from the zoo;
// arbitrary systems plug in through the builder.
#ifndef RCONS_ENGINE_PORTFOLIO_HPP
#define RCONS_ENGINE_PORTFOLIO_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/parallel_explorer.hpp"
#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/table.hpp"

namespace rcons::typesys {
class ObjectType;
}

namespace rcons::engine {

struct ScenarioSystem {
  sim::Memory memory;
  std::vector<sim::Process> processes;
  std::vector<typesys::Value> valid_outputs;
};

struct Scenario {
  std::string name;
  sim::CrashModel crash_model = sim::CrashModel::kIndependent;
  int crash_budget = 2;
  int num_processes = 0;        // informational, shown in the verdict table
  std::string object_type;      // informational, shown in the verdict table
  std::function<ScenarioSystem()> build;
};

struct ScenarioResult {
  Scenario scenario;
  bool clean = false;
  std::optional<sim::Violation> violation;
  sim::ExplorerStats stats;
  double seconds = 0.0;
};

struct PortfolioConfig {
  int num_threads = 0;  // per scenario; 0 = hardware concurrency
  int shard_bits = 6;
  long max_steps_per_run = 500;
  std::uint64_t max_visited = 20'000'000;
  bool crash_after_decide = true;
};

class Portfolio {
 public:
  explicit Portfolio(PortfolioConfig config = {});

  void add(Scenario scenario);

  // Figure 2 recoverable team consensus over `type` with n roles; asserts the
  // type is n-recording. Inputs are fixed, distinct per team, and become the
  // validity set.
  void add_team_consensus(const typesys::ObjectType& type, int n,
                          sim::CrashModel crash_model, int crash_budget);

  std::size_t size() const { return scenarios_.size(); }

  // Runs every scenario through the parallel engine, in order. Scenarios run
  // one at a time; each one uses all configured threads internally (state
  // spaces dwarf scenario counts, so intra-scenario parallelism wins).
  std::vector<ScenarioResult> run_all() const;

  // Paper-style verdict table: one row per scenario with model, budget,
  // verdict, visited states, and wall time.
  static util::Table verdict_table(const std::vector<ScenarioResult>& results);

 private:
  PortfolioConfig config_;
  std::vector<Scenario> scenarios_;
};

const char* crash_model_name(sim::CrashModel model);

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_PORTFOLIO_HPP
