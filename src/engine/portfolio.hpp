// Scenario portfolios: fan a set of {crash model, crash budget, object type,
// process count} model-checking scenarios through the `check::` facade and
// aggregate a verdict table.
//
// A scenario owns a builder that materializes its system (shared memory,
// processes, valid outputs) on demand, so adding a scenario is cheap and a
// portfolio can be re-run. The canned `team_consensus_scenario` family wraps
// the paper's Figure 2 algorithm over any n-recording type from the zoo;
// scenario sets also load from spec files (check/scenario_spec.hpp), and
// arbitrary systems plug in through the builder.
#ifndef RCONS_ENGINE_PORTFOLIO_HPP
#define RCONS_ENGINE_PORTFOLIO_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/scenario_spec.hpp"
#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/table.hpp"

namespace rcons::typesys {
class ObjectType;
}

namespace rcons::engine {

using ScenarioSystem = check::ScenarioSystem;

struct Scenario {
  std::string name;
  sim::CrashModel crash_model = sim::CrashModel::kIndependent;
  int crash_budget = 2;
  int num_processes = 0;    // informational, shown in the verdict table
  std::string object_type;  // informational, shown in the verdict table
  // Property set label (sim::PropertySet::label() of the built system),
  // shown in the verdict table so sweeps over mixed property sets stay
  // readable. add()/add_spec fill it; defaults to the classic trio.
  std::string properties_label = sim::PropertySet().label();
  std::int64_t max_steps_per_run = -1;  // -1 = inherit the portfolio budget
  std::int64_t max_visited = -1;
  std::int64_t time_limit_ms = -1;  // -1 = inherit (resource sentinel budgets)
  std::int64_t mem_limit_mb = -1;
  std::function<ScenarioSystem()> build;
};

struct ScenarioResult {
  Scenario scenario;
  bool clean = false;
  check::Strategy strategy = check::Strategy::kAuto;  // backend actually used
  std::optional<sim::Violation> violation;
  sim::ExplorerStats stats;
  double seconds = 0.0;
};

struct PortfolioConfig {
  // crash_model / crash_budget / valid_outputs are per-scenario and
  // overridden; the remaining budget fields apply to every scenario that does
  // not override them.
  check::Budget budget;
  int num_threads = 0;  // per scenario; 0 = hardware concurrency
  int shard_bits = -1;  // -1 = auto-tune per scenario (engine::pick_shard_bits)

  // Observability sinks (obs/hooks.hpp), forwarded to every scenario's check.
  // run_all() resets the shared registry's check./engine./store./random./
  // replay.* prefixes between scenarios (so per-scenario counters read per-
  // scenario work) and keeps the portfolio.* gauges current; a tracer gets
  // one "portfolio_scenario" span per scenario.
  obs::Hooks obs;
};

class Portfolio {
 public:
  explicit Portfolio(PortfolioConfig config = {});

  void add(Scenario scenario);

  // Figure 2 recoverable team consensus over `type` with n roles; asserts the
  // type is n-recording. Inputs are fixed, distinct per team, and become the
  // validity set.
  void add_team_consensus(const typesys::ObjectType& type, int n,
                          sim::CrashModel crash_model, int crash_budget);

  // Team-consensus scenario from a parsed spec (file-driven sweeps). The
  // spec's type name must be known to the zoo — load_scenario_file /
  // parse_scenario_specs already validate this, so add_spec asserts.
  void add_spec(const check::ScenarioSpec& spec);
  void add_specs(const std::vector<check::ScenarioSpec>& specs);

  std::size_t size() const { return scenarios_.size(); }

  // Runs every scenario through check() with Strategy::kAuto, in order.
  // Scenarios run one at a time; each one uses all configured threads
  // internally (state spaces dwarf scenario counts, so intra-scenario
  // parallelism wins).
  std::vector<ScenarioResult> run_all() const;

  // Paper-style verdict table: one row per scenario with model, budget,
  // verdict, visited states, and wall time.
  static util::Table verdict_table(const std::vector<ScenarioResult>& results);

 private:
  PortfolioConfig config_;
  std::vector<Scenario> scenarios_;
};

const char* crash_model_name(sim::CrashModel model);

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_PORTFOLIO_HPP
