#include "engine/frontier.hpp"

#include "util/assert.hpp"

namespace rcons::engine {

Frontier::Frontier(int num_workers) {
  RCONS_ASSERT(num_workers >= 1);
  deques_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
}

void Frontier::push(int worker, std::unique_ptr<WorkItem> item) {
  Deque& deque = *deques_[static_cast<std::size_t>(worker)];
  std::lock_guard<std::mutex> lock(deque.mu);
  deque.items.push_back(std::move(item));
}

bool Frontier::steal_into(int thief, int victim) {
  Deque& from = *deques_[static_cast<std::size_t>(victim)];
  Deque& to = *deques_[static_cast<std::size_t>(thief)];
  // Lock ordering by worker index prevents deadlock between mutual stealers.
  std::unique_lock<std::mutex> first(victim < thief ? from.mu : to.mu, std::defer_lock);
  std::unique_lock<std::mutex> second(victim < thief ? to.mu : from.mu, std::defer_lock);
  first.lock();
  second.lock();
  if (from.items.empty()) return false;
  std::size_t take = (from.items.size() + 1) / 2;
  if (take > kMaxStealBatch) take = kMaxStealBatch;
  for (std::size_t i = 0; i < take; ++i) {
    to.items.push_back(std::move(from.items.front()));
    from.items.pop_front();
  }
  steals_.fetch_add(1, std::memory_order_relaxed);
  stolen_items_.fetch_add(take, std::memory_order_relaxed);
  return true;
}

std::unique_ptr<WorkItem> Frontier::pop(int worker) {
  Deque& own = *deques_[static_cast<std::size_t>(worker)];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.items.empty()) {
      std::unique_ptr<WorkItem> item = std::move(own.items.back());
      own.items.pop_back();
      return item;
    }
  }

  const int n = static_cast<int>(deques_.size());
  for (int offset = 1; offset < n; ++offset) {
    const int victim = (worker + offset) % n;
    if (!steal_into(worker, victim)) continue;
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.items.empty()) {
      std::unique_ptr<WorkItem> item = std::move(own.items.back());
      own.items.pop_back();
      return item;
    }
  }
  return nullptr;
}

Frontier::Stats Frontier::stats() const {
  Stats stats;
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.stolen_items = stolen_items_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace rcons::engine
