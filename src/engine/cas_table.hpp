// Lock-free open-addressing fingerprint table — the concurrent replacement
// rcons-lint: hot-path
// for the per-shard `mutex + FlatTable` pairs in ShardedVisited and the
// NodeStore intern index.
//
// Every slot carries a 32-bit atomic tag driving a small state machine:
//
//          CAS (claim)            store-release (publish)
//   EMPTY ------------> CLAIMED ------------------------> PUBLISHED
//            |                |
//            |                '--> TOMBSTONE   (claim landed in a freshly
//            '--> (CAS failed:     sealed array; the slot is dead and
//                 another thread   probes walk past it)
//                 owns the slot)
//
// An insert probes linearly over the tags; the key halves and the payload are
// plain (non-atomic) fields written inside the CLAIMED window and made
// visible by the release-publish of the tag, so readers that acquire-load a
// PUBLISHED tag see a complete slot — no mutex anywhere on the insert path,
// and TSan agrees.
//
// Growth is epoch-based and cooperative. When occupancy crosses the load
// threshold, one thread (under a mutex — growth is the cold path, a handful
// of events per run) allocates a double-size array, marks the current one
// `sealed`, and publishes the new array as live. Live inserts then each
// migrate one fixed *stripe* of the sealed array's slots per operation —
// workers share the sweep via an atomic stripe cursor instead of any thread
// stopping the world. Sealed arrays stay readable (their probe chains are
// never broken) until every stripe is migrated, and their memory is retired
// to the table and freed on destruction: bounded by the geometric capacity
// series, i.e. less than one extra copy of the final array.
//
// The seal handshake is the subtle part. A claimer CASes EMPTY→CLAIMED and
// then checks `sealed`; the grower stores `sealed = true` before publishing
// the new live array. Both sides use seq_cst, so for any claim that lands in
// an array a later inserter reaches *as an old array*, the claim is ordered
// before that inserter's tag load — the probe sees at least CLAIMED and
// waits for the claim to resolve (PUBLISHED or TOMBSTONE). A claimer that
// observes `sealed` after winning the CAS reverts its slot to TOMBSTONE and
// retries in the newer array, so no insert is ever lost at an epoch
// boundary and no key is ever published twice.
//
// Liveness at the threshold: while a sweep is pending the threshold growth
// defers, so a stalled migrator (e.g. descheduled on an oversubscribed box)
// can let inserts fill the live array completely. A probe that inspects
// every slot without finding EMPTY reports the array full, and the inserter
// *forces* a growth — stacking a second epoch on the pending one — instead
// of spinning on a table that can never accept its claim.
//
// Probe-length and contention counters accumulate into a caller-owned
// OpStats (one per worker), never into shared cache lines.
#ifndef RCONS_ENGINE_CAS_TABLE_HPP
#define RCONS_ENGINE_CAS_TABLE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace rcons::engine {

class CasTable {
 public:
  // Per-caller (per-worker) operation counters; callers aggregate them into
  // the run's hot-path statistics. Kept out of the table so the hot path
  // never bounces a shared stats cache line between workers.
  struct OpStats {
    std::uint64_t probe_total = 0;        // slots inspected
    std::uint64_t probe_ops = 0;          // operations that probed
    std::uint64_t max_probe = 0;          // longest single probe sequence
    std::uint64_t cas_retries = 0;        // slot claims lost to another thread
    std::uint64_t migration_stripes = 0;  // growth stripes this caller migrated
  };

  struct Found {
    std::uint64_t value = 0;
    bool inserted = false;  // true when `key` was not present before
  };

  // Pre-sizes for `expected` keys so a run of the anticipated size never
  // grows. 0 = unknown; start minimal and grow cooperatively.
  explicit CasTable(std::uint64_t expected = 0) {
    std::size_t capacity = kMinCapacity;
    while (capacity < kMaxPresize && expected > capacity / 8 * 5) capacity <<= 1;
    auto first = std::make_unique<Array>(capacity);
    live_.store(first.get(), std::memory_order_release);
    arrays_.push_back(std::move(first));
  }

  // Inserts `key -> value` if absent; returns the resident value (the
  // existing one on a duplicate) and whether an insert happened. Thread-safe,
  // lock-free except inside the (rare) growth allocation.
  Found insert(util::U128 key, std::uint64_t value, OpStats* stats = nullptr) {
    return insert_with(key, [value] { return value; }, stats);
  }

  // Like insert, but the payload is materialized only when the key turns out
  // to be absent: `make_value()` runs inside the claimed window, after the
  // duplicate check, exactly once per successful insert. This is what lets
  // the NodeStore stage a record copy only for genuinely new states.
  template <typename F>
  Found insert_with(util::U128 key, F&& make_value, OpStats* stats = nullptr) {
    for (;;) {
      Array* head = live_.load(std::memory_order_acquire);
      if (head->prev.load(std::memory_order_acquire) != nullptr) {
        help_migrate(stats);
        head = live_.load(std::memory_order_acquire);
      }
      // Duplicate check walks the sealed arrays first (oldest data), then the
      // claim walk settles the race in the live array.
      for (Array* old = head->prev.load(std::memory_order_acquire); old != nullptr;
           old = old->prev.load(std::memory_order_acquire)) {
        std::uint64_t existing = 0;
        if (probe_published(*old, key, existing, stats)) return Found{existing, false};
      }
      Claim claim = claim_or_find(*head, key, make_value, stats);
      if (claim.outcome == Claim::kFound) return Found{claim.value, false};
      if (claim.outcome == Claim::kInserted) {
        size_.fetch_add(1, std::memory_order_relaxed);
        maybe_grow(head);
        return Found{claim.value, true};
      }
      if (claim.outcome == Claim::kFull) {
        // The live array has no EMPTY slot left (a stalled migrator blocked
        // the threshold growth while inserts kept landing). Growth cannot
        // wait for a successful claim — no claim can succeed — so force it.
        force_grow(head);
        continue;
      }
      // Claim::kSealed: the array was sealed under us; wait for the grower to
      // publish the replacement, then retry the whole protocol there.
      while (live_.load(std::memory_order_acquire) == head) std::this_thread::yield();
    }
  }

  // True when `key` is present. Safe concurrently with inserts.
  bool contains(util::U128 key) const {
    std::uint64_t ignored = 0;
    return find(key, ignored);
  }

  // Looks `key` up; fills `value` and returns true when present.
  bool find(util::U128 key, std::uint64_t& value) const {
    for (Array* a = live_.load(std::memory_order_acquire); a != nullptr;
         a = a->prev.load(std::memory_order_acquire)) {
      if (probe_published(*a, key, value, nullptr)) return true;
    }
    return false;
  }

  // Keys inserted. Exact at quiescence; a racy snapshot while inserting.
  std::uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  // Growth epochs started (the concurrent analogue of FlatTable rehashes).
  std::uint64_t rehashes() const { return rehashes_.load(std::memory_order_relaxed); }

  // True while a sealed array still has unmigrated stripes.
  bool migrating() const {
    Array* head = live_.load(std::memory_order_acquire);
    return head->prev.load(std::memory_order_acquire) != nullptr;
  }

  std::size_t capacity() const {
    return live_.load(std::memory_order_acquire)->capacity;
  }

  // Quiescent iteration for checkpointing: visits every PUBLISHED slot of
  // every epoch array still owned by the table (live and sealed), calling
  // `fn(key, value)`. Caller contract: no concurrent inserts (the engine
  // calls this only while every worker is parked at the pause barrier or
  // after they joined). A key carried over by a partial migration sweep
  // appears in both its sealed and its destination array with the SAME
  // value, so callers needing uniqueness dedup by value.
  template <typename F>
  void for_each_published(F&& fn) {
    // rcons-lint: allow(hot-path-no-mutex) enumeration runs offline (stats/checkpoint), never per-insert
    std::lock_guard<std::mutex> lock(growth_mu_);
    for (const std::unique_ptr<Array>& array : arrays_) {
      for (std::size_t i = 0; i < array->capacity; ++i) {
        const Slot& slot = array->slots[i];
        if (slot.tag.load(std::memory_order_acquire) == kPublished) {
          fn(util::U128{slot.key_lo, slot.key_hi}, slot.value);
        }
      }
    }
  }

 private:
  // Slot tag states. 32-bit so the CAS is narrow and the slot stays 32 bytes.
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kClaimed = 1;
  static constexpr std::uint32_t kPublished = 2;
  static constexpr std::uint32_t kTombstone = 3;

  static constexpr std::size_t kMinCapacity = 16;  // power of two
  // Pre-sizing cap (slots): beyond this the table grows cooperatively
  // instead of committing memory up front.
  static constexpr std::size_t kMaxPresize = std::size_t{1} << 22;
  // Slots per migration stripe: one stripe is copied per insert while a
  // sweep is pending, so a sweep of capacity C completes within C/32 helped
  // inserts — well before the ~0.6*C fresh inserts that would trigger the
  // next growth.
  static constexpr std::size_t kStripeSlots = 32;

  struct Slot {
    std::atomic<std::uint32_t> tag{kEmpty};
    std::uint32_t pad = 0;
    // Plain fields: written inside the CLAIMED window, released by the
    // PUBLISHED tag store, acquired by every tag load that reads them.
    std::uint64_t key_lo = 0;
    std::uint64_t key_hi = 0;
    std::uint64_t value = 0;
  };

  struct Array {
    explicit Array(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          num_stripes((cap + kStripeSlots - 1) / kStripeSlots),
          slots(new Slot[cap]()) {}

    const std::size_t capacity;
    const std::size_t mask;
    const std::size_t num_stripes;
    std::unique_ptr<Slot[]> slots;
    // The next-older array whose sweep feeds this chain; cleared (detached
    // from lookups) when that sweep completes. Memory is retired to the
    // table, not freed, so racing readers never chase a dangling pointer.
    std::atomic<Array*> prev{nullptr};
    std::atomic<bool> sealed{false};
    std::atomic<std::size_t> stripe_cursor{0};  // next stripe to claim
    std::atomic<std::size_t> stripes_done{0};
  };

  static std::size_t bucket(util::U128 key, std::size_t mask) {
    return static_cast<std::size_t>(util::U128Hash{}(key)) & mask;
  }

  static void note_probe(OpStats* stats, std::uint64_t probes) {
    if (stats == nullptr) return;
    stats->probe_total += probes;
    stats->probe_ops += 1;
    if (probes > stats->max_probe) stats->max_probe = probes;
  }

  // Waits out a CLAIMED tag (the owner is between its CAS and its publish or
  // tombstone — a handful of plain stores away).
  static std::uint32_t settle(const Slot& slot, std::uint32_t tag) {
    while (tag == kClaimed) {
      std::this_thread::yield();
      tag = slot.tag.load(std::memory_order_seq_cst);
    }
    return tag;
  }

  // Read-only probe of one array. seq_cst tag loads: claims that landed in
  // this array before it sealed are ordered before our load (see the seal
  // handshake in the header comment), so we never conclude "absent" while an
  // in-flight pre-seal claim is about to publish our key.
  static bool probe_published(const Array& a, util::U128 key, std::uint64_t& value,
                              OpStats* stats) {
    std::size_t index = bucket(key, a.mask);
    std::uint64_t probes = 0;
    for (;;) {
      const Slot& slot = a.slots[index];
      if (probes >= a.capacity) {
        // Every slot inspected, no EMPTY and no match: the array filled
        // completely before its (forced) seal. The key is simply absent.
        note_probe(stats, probes);
        return false;
      }
      probes += 1;
      std::uint32_t tag = slot.tag.load(std::memory_order_seq_cst);
      tag = settle(slot, tag);
      if (tag == kEmpty) {
        note_probe(stats, probes);
        return false;
      }
      if (tag == kPublished && slot.key_lo == key.lo && slot.key_hi == key.hi) {
        value = slot.value;
        note_probe(stats, probes);
        return true;
      }
      index = (index + 1) & a.mask;
    }
  }

  struct Claim {
    enum Outcome { kInserted, kFound, kSealed, kFull };
    Outcome outcome = kSealed;
    std::uint64_t value = 0;
  };

  // Probes the live array for `key`, claiming the first EMPTY slot of the
  // chain. The CAS arbitrates racing inserters of the same key: the loser
  // re-reads the slot, waits out the claim, and either finds the key
  // (duplicate) or probes on. Returns kFull after inspecting every slot
  // without a match or an EMPTY — possible only in the pathological window
  // where a pending migration has deferred growth while inserts kept
  // landing; the caller must force a growth or the probe loop would spin.
  template <typename F>
  Claim claim_or_find(Array& a, util::U128 key, F&& make_value, OpStats* stats) {
    std::size_t index = bucket(key, a.mask);
    std::uint64_t probes = 0;
    for (;;) {
      Slot& slot = a.slots[index];
      if (probes >= a.capacity) {
        note_probe(stats, probes);
        return Claim{Claim::kFull, 0};
      }
      probes += 1;
      std::uint32_t tag = slot.tag.load(std::memory_order_acquire);
      for (;;) {
        if (tag == kEmpty) {
          std::uint32_t expected = kEmpty;
          if (slot.tag.compare_exchange_strong(expected, kClaimed,
                                               std::memory_order_seq_cst,
                                               std::memory_order_acquire)) {
            if (a.sealed.load(std::memory_order_seq_cst)) {
              // Claimed a slot in an array that sealed under us: kill the
              // slot and retry in the replacement (see header comment).
              RCONS_DCHECK_MSG(slot.tag.load(std::memory_order_relaxed) == kClaimed,
                               "tombstone transition from a tag we do not own");
              slot.tag.store(kTombstone, std::memory_order_release);
              note_probe(stats, probes);
              return Claim{Claim::kSealed, 0};
            }
            slot.key_lo = key.lo;
            slot.key_hi = key.hi;
            slot.value = make_value();
            // Only the claimer publishes: claimed -> published is the sole
            // legal transition out of a slot we won the CAS for.
            RCONS_DCHECK_MSG(slot.tag.load(std::memory_order_relaxed) == kClaimed,
                             "publish transition from a tag we do not own");
            slot.tag.store(kPublished, std::memory_order_release);
            note_probe(stats, probes);
            return Claim{Claim::kInserted, slot.value};
          }
          if (stats != nullptr) stats->cas_retries += 1;
          tag = expected;  // the failed CAS loaded the current tag
          continue;
        }
        if (tag == kClaimed) {
          tag = settle(slot, tag);
          continue;
        }
        break;  // kPublished or kTombstone
      }
      if (tag == kPublished && slot.key_lo == key.lo && slot.key_hi == key.hi) {
        note_probe(stats, probes);
        return Claim{Claim::kFound, slot.value};
      }
      index = (index + 1) & a.mask;
    }
  }

  // Inserts a slot carried over from sealed array `floor` into the live
  // chain. Deduplicates only against arrays strictly newer than `floor`: a
  // key lives in exactly one sealed array (fresh inserts always checked the
  // whole chain first), so older arrays cannot hold it, and stripe ownership
  // means no other migrator is moving this particular slot.
  void migrate_insert(util::U128 key, std::uint64_t value, const Array* floor,
                      OpStats* stats) {
    for (;;) {
      Array* head = live_.load(std::memory_order_acquire);
      bool duplicate = false;
      for (Array* old = head->prev.load(std::memory_order_acquire);
           old != nullptr && old != floor;
           old = old->prev.load(std::memory_order_acquire)) {
        std::uint64_t existing = 0;
        if (probe_published(*old, key, existing, stats)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) return;
      Claim claim = claim_or_find(*head, key, [value] { return value; }, stats);
      if (claim.outcome == Claim::kInserted || claim.outcome == Claim::kFound) return;
      if (claim.outcome == Claim::kFull) {
        force_grow(head);
        continue;
      }
      // kSealed: wait for the replacement array, then retry there.
      while (live_.load(std::memory_order_acquire) == head) std::this_thread::yield();
    }
  }

  // Claims and migrates one stripe of the oldest pending sealed array; the
  // last stripe detaches that array from lookups. Called by inserts while a
  // sweep is pending — the cooperative, no-stop-the-world growth path.
  void help_migrate(OpStats* stats) {
    // Walk to the oldest pending array (chains longer than one are rare —
    // they need a growth to trigger before the previous sweep finishes).
    Array* successor = live_.load(std::memory_order_acquire);
    Array* oldest = successor->prev.load(std::memory_order_acquire);
    if (oldest == nullptr) return;
    for (;;) {
      Array* older = oldest->prev.load(std::memory_order_acquire);
      if (older == nullptr) break;
      successor = oldest;
      oldest = older;
    }
    const std::size_t stripe =
        oldest->stripe_cursor.fetch_add(1, std::memory_order_relaxed);
    if (stripe >= oldest->num_stripes) return;  // sweep fully claimed
    const std::size_t begin = stripe * kStripeSlots;
    std::size_t end = begin + kStripeSlots;
    if (end > oldest->capacity) end = oldest->capacity;
    for (std::size_t i = begin; i < end; ++i) {
      Slot& slot = oldest->slots[i];
      std::uint32_t tag = slot.tag.load(std::memory_order_seq_cst);
      tag = settle(slot, tag);
      if (tag != kPublished) continue;
      migrate_insert(util::U128{slot.key_lo, slot.key_hi}, slot.value, oldest, stats);
    }
    if (stats != nullptr) stats->migration_stripes += 1;
    const std::size_t done =
        oldest->stripes_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == oldest->num_stripes) {
      // Every slot is carried over: detach the array from lookups. Its
      // memory stays retired in arrays_ until destruction.
      successor->prev.store(nullptr, std::memory_order_release);
    }
  }

  void maybe_grow(Array* claimed_in) {
    if (size_.load(std::memory_order_relaxed) <= claimed_in->capacity / 8 * 5) return;
    // rcons-lint: allow(hot-path-no-mutex) growth only; inserts reach here after the lock-free size gate
    std::lock_guard<std::mutex> lock(growth_mu_);  // cold path: growth only
    Array* head = live_.load(std::memory_order_relaxed);
    if (head != claimed_in) return;  // someone else already grew
    if (size_.load(std::memory_order_relaxed) <= head->capacity / 8 * 5) return;
    if (head->prev.load(std::memory_order_acquire) != nullptr) {
      // The previous sweep is still pending; inserts keep helping it along
      // and the next threshold crossing re-attempts the growth. Probing
      // stays correct at the (briefly) higher load factor; should the array
      // fill completely before the sweep finishes, the kFull path forces the
      // growth this branch deferred.
      return;
    }
    grow_locked(head);
  }

  // Growth demanded by a kFull probe: the live array has no EMPTY slots, so
  // no insert can succeed until a new epoch exists. Unlike maybe_grow this
  // ignores the load threshold AND a pending prev sweep — stacking a second
  // epoch is safe (help_migrate walks to the oldest pending array, lookups
  // traverse the whole chain, and migrate_insert dedups against every array
  // newer than its floor); refusing to stack would spin forever.
  void force_grow(Array* full) {
    // rcons-lint: allow(hot-path-no-mutex) taken once per array exhaustion, the sanctioned growth path
    std::lock_guard<std::mutex> lock(growth_mu_);
    Array* head = live_.load(std::memory_order_relaxed);
    if (head != full) return;  // someone else already grew past it
    grow_locked(head);
  }

  // Precondition: growth_mu_ held and `head` == live_.
  void grow_locked(Array* head) {
    auto next = std::make_unique<Array>(head->capacity * 2);
    next->prev.store(head, std::memory_order_relaxed);
    rehashes_.fetch_add(1, std::memory_order_relaxed);
    // Order matters: seal first, then publish. A claimer that slipped into
    // `head` before the seal publishes normally and is visible to every
    // later prober (seq_cst handshake); one that reads the seal after its
    // CAS tombstones itself and retries in `next`.
    head->sealed.store(true, std::memory_order_seq_cst);
    Array* raw = next.get();
    arrays_.push_back(std::move(next));
    live_.store(raw, std::memory_order_seq_cst);
  }

  std::atomic<Array*> live_{nullptr};
  std::atomic<std::uint64_t> size_{0};
  std::atomic<std::uint64_t> rehashes_{0};
  // rcons-lint: allow(hot-path-no-mutex) serializes growth (cold); never taken by inserts
  std::mutex growth_mu_;
  std::vector<std::unique_ptr<Array>> arrays_;  // guarded by growth_mu_
};

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_CAS_TABLE_HPP
