// rcons-lint: hot-path
#include "engine/node_store.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "util/assert.hpp"

namespace rcons::engine {

using typesys::Value;

bool resolve_compact_repr(sim::NodeRepr repr,
                          const std::vector<sim::Process>& processes) {
  bool all_decodable = true;
  for (const sim::Process& process : processes) {
    all_decodable = all_decodable && process.decodable();
  }
  switch (repr) {
    case sim::NodeRepr::kAuto:
      return all_decodable;
    case sim::NodeRepr::kCompact:
      RCONS_ASSERT_MSG(all_decodable,
                       "NodeRepr::kCompact requires every program to decode()");
      return true;
    case sim::NodeRepr::kLegacy:
      return false;
  }
  return false;
}

// --- Canonicalizer ----------------------------------------------------------

Canonicalizer::Canonicalizer(const std::vector<int>& symmetry_classes)
    : num_processes_(symmetry_classes.size()) {
  std::map<int, std::vector<int>> by_class;
  for (std::size_t i = 0; i < symmetry_classes.size(); ++i) {
    by_class[symmetry_classes[i]].push_back(static_cast<int>(i));
  }
  for (auto& [cls, members] : by_class) {
    if (members.size() >= 2) groups_.push_back(std::move(members));
  }
}

bool Canonicalizer::canonicalize(std::vector<Value>& record,
                                 const std::vector<std::size_t>& block_offsets) {
  if (groups_.empty()) return false;
  const std::size_t n = num_processes_;
  RCONS_ASSERT(block_offsets.size() == n + 1);
  RCONS_ASSERT(record.size() == block_offsets[n] + n);
  const std::size_t sidecar = block_offsets[n];

  // Lexicographic order on (block content, steps_in_run). The sidecar
  // tiebreak only disambiguates equal blocks — it never influences which
  // fingerprint results, since equal blocks fingerprint identically either
  // way — but it keeps the stored record deterministic.
  auto block_less = [&](int a, int b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    const Value* a_begin = record.data() + block_offsets[sa];
    const Value* a_end = record.data() + block_offsets[sa + 1];
    const Value* b_begin = record.data() + block_offsets[sb];
    const Value* b_end = record.data() + block_offsets[sb + 1];
    if (std::lexicographical_compare(a_begin, a_end, b_begin, b_end)) return true;
    if (std::lexicographical_compare(b_begin, b_end, a_begin, a_end)) return false;
    return record[sidecar + sa] < record[sidecar + sb];
  };

  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = static_cast<int>(i);
  bool permuted = false;
  for (const std::vector<int>& group : groups_) {
    sorted_.assign(group.begin(), group.end());
    // Stable: fully-equal blocks (e.g. every process at the root) keep their
    // original order, so the identity state never counts as a "hit".
    std::stable_sort(sorted_.begin(), sorted_.end(), block_less);
    for (std::size_t j = 0; j < group.size(); ++j) {
      order_[static_cast<std::size_t>(group[j])] = sorted_[j];
      permuted = permuted || sorted_[j] != group[j];
    }
  }
  if (!permuted) return false;

  // Rebuild the process region and sidecar in the canonical order.
  scratch_.clear();
  scratch_.insert(scratch_.end(), record.begin(),
                  record.begin() + static_cast<std::ptrdiff_t>(block_offsets[0]));
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = static_cast<std::size_t>(order_[i]);
    scratch_.insert(scratch_.end(),
                    record.begin() + static_cast<std::ptrdiff_t>(block_offsets[src]),
                    record.begin() + static_cast<std::ptrdiff_t>(block_offsets[src + 1]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    scratch_.push_back(record[sidecar + static_cast<std::size_t>(order_[i])]);
  }
  RCONS_ASSERT(scratch_.size() == record.size());
  record.swap(scratch_);
  return true;
}

int Canonicalizer::orbit_mask(const Value* record,
                              const std::vector<std::size_t>& block_offsets,
                              std::vector<std::uint8_t>& skip) const {
  const std::size_t n = num_processes_;
  RCONS_ASSERT(block_offsets.size() == n + 1);
  skip.assign(n, 0);
  if (groups_.empty()) return 0;
  const std::size_t sidecar = block_offsets[n];
  int marked = 0;
  for (const std::vector<int>& group : groups_) {
    // In a canonical record the group's blocks are sorted, so every orbit is
    // a maximal run of adjacent equal (block, sidecar) members; the run's
    // first member — the lowest process index, which keeps the enumeration
    // order and hence lowest-trace selection deterministic — represents it.
    for (std::size_t j = 1; j < group.size(); ++j) {
      const auto a = static_cast<std::size_t>(group[j - 1]);
      const auto b = static_cast<std::size_t>(group[j]);
      const std::size_t a_len = block_offsets[a + 1] - block_offsets[a];
      const std::size_t b_len = block_offsets[b + 1] - block_offsets[b];
      if (a_len != b_len) continue;
      if (record[sidecar + a] != record[sidecar + b]) continue;
      if (!std::equal(record + block_offsets[a], record + block_offsets[a + 1],
                      record + block_offsets[b])) {
        continue;
      }
      skip[b] = 1;
      marked += 1;
    }
  }
  return marked;
}

// --- NodeCodec --------------------------------------------------------------

bool NodeCodec::decodable(const Node& node) {
  for (const sim::Process& process : node.processes) {
    if (!process.decodable()) return false;
  }
  return true;
}

NodeCodec::Encoded NodeCodec::encode(const Node& node, std::vector<Value>& record) {
  record.clear();
  FpStream fp;
  encode_node_header(node, record);
  fp.absorb(record.data(), record.size());

  const std::size_t n = node.processes.size();
  offsets_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    offsets_.push_back(record.size());
    encode_process_block(node, i, record);
    // Absorb the block while it is still cache-hot — by the end of the loop
    // the fingerprint is done without a second sweep over the record.
    fp.absorb(record.data() + offsets_.back(), record.size() - offsets_.back());
  }
  offsets_.push_back(record.size());
  for (std::size_t i = 0; i < n; ++i) record.push_back(node.steps_in_run[i]);

  Encoded encoded;
  encoded.permuted = canonicalizer_.canonicalize(record, offsets_);
  encoded.fingerprint_length = record.size() - n;
  // A canonical permutation reorders the absorbed blocks, so only then is a
  // fresh sweep over the (now canonical) prefix needed.
  encoded.fingerprint =
      encoded.permuted ? fingerprint_values(record.data(), encoded.fingerprint_length)
                       : fp.finish(encoded.fingerprint_length);
  // Codec round-trip contract: the fused absorb-during-encode stream must
  // agree with a reference sweep over the finished record. Divergence means
  // an encode path mutated values after absorbing them.
  RCONS_DCHECK_MSG(
      encoded.permuted ||
          encoded.fingerprint ==
              fingerprint_values(record.data(), encoded.fingerprint_length),
      "fused fingerprint diverged from reference sweep");
  return encoded;
}

NodeCodec::Encoded NodeCodec::encode_successor(const Value* parent,
                                               std::size_t parent_size,
                                               const Node& node, int changed_process,
                                               std::vector<Value>& record) {
  const std::size_t n = node.processes.size();
  RCONS_ASSERT_MSG(block_offsets_.size() == n + 1,
                   "encode_successor needs the parent's captured layout");
  RCONS_ASSERT(parent_size == block_offsets_[n] + n);
  RCONS_ASSERT(changed_process >= 0 && static_cast<std::size_t>(changed_process) < n);

  record.clear();
  FpStream fp;
  encode_node_header(node, record);
  fp.absorb(record.data(), record.size());

  offsets_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t begin = record.size();
    offsets_.push_back(begin);
    if (static_cast<int>(i) == changed_process) {
      encode_process_block(node, i, record);
    } else {
      // Unchanged process: its block is byte-identical to the parent's.
      record.insert(record.end(), parent + block_offsets_[i],
                    parent + block_offsets_[i + 1]);
    }
    fp.absorb(record.data() + begin, record.size() - begin);
  }
  offsets_.push_back(record.size());
  for (std::size_t i = 0; i < n; ++i) record.push_back(node.steps_in_run[i]);

  Encoded encoded;
  encoded.permuted = canonicalizer_.canonicalize(record, offsets_);
  encoded.fingerprint_length = record.size() - n;
  encoded.fingerprint =
      encoded.permuted ? fingerprint_values(record.data(), encoded.fingerprint_length)
                       : fp.finish(encoded.fingerprint_length);
  // Codec round-trip contract: the fused absorb-during-encode stream must
  // agree with a reference sweep over the finished record. Divergence means
  // an encode path mutated values after absorbing them.
  RCONS_DCHECK_MSG(
      encoded.permuted ||
          encoded.fingerprint ==
              fingerprint_values(record.data(), encoded.fingerprint_length),
      "fused fingerprint diverged from reference sweep");
  return encoded;
}

void NodeCodec::decode(const Value* record, std::size_t size, Node& out) {
  RCONS_ASSERT_MSG(size >= 2, "truncated node record");
  out.crashes_used = static_cast<int>(record[0]);
  const auto ndecisions = static_cast<std::size_t>(record[1]);
  std::size_t at = 2;
  RCONS_ASSERT_MSG(at + ndecisions <= size, "truncated node record");
  out.decisions.clear();
  for (std::size_t i = 0; i < ndecisions; ++i) out.decisions.push_back(record[at++]);
  at += out.memory.decode(record + at, size - at);
  header_end_ = at;

  // Whether records carry the at-most-once (ever, last) pair is a run-level
  // invariant reflected in the root-shaped scratch node.
  const std::size_t n = out.processes.size();
  const bool track_outputs = !out.ever_output.empty();
  block_offsets_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    block_offsets_.push_back(at);
    RCONS_ASSERT_MSG(at < size, "truncated node record");
    out.done[i] = record[at++] != 0 ? 1 : 0;
    if (track_outputs) {
      RCONS_ASSERT_MSG(at + 1 < size, "truncated node record");
      out.ever_output[i] = record[at++] != 0 ? 1 : 0;
      out.last_output[i] = record[at++];
    }
    at += out.processes[i].decode(record + at, size - at);
  }
  block_offsets_.push_back(at);
  for (std::size_t i = 0; i < n; ++i) {
    RCONS_ASSERT_MSG(at < size, "truncated node record");
    out.steps_in_run[i] = static_cast<std::int64_t>(record[at++]);
  }
  RCONS_ASSERT_MSG(at == size, "node record has trailing values");
}

void NodeCodec::restore(const Value* record, std::size_t size, Node& out,
                        int dirty) {
  if (dirty == kDirtyAll) {
    decode(record, size, out);
    return;
  }
  const std::size_t n = out.processes.size();
  RCONS_ASSERT_MSG(block_offsets_.size() == n + 1,
                   "restore needs the record's captured layout");
  RCONS_ASSERT(size == block_offsets_[n] + n);

  // Shared flat fields are always refilled — any event can touch them.
  out.crashes_used = static_cast<int>(record[0]);
  const auto ndecisions = static_cast<std::size_t>(record[1]);
  out.decisions.clear();
  for (std::size_t i = 0; i < ndecisions; ++i) out.decisions.push_back(record[2 + i]);
  out.memory.decode(record + 2 + ndecisions, size - 2 - ndecisions);

  const bool track_outputs = !out.ever_output.empty();
  const std::size_t sidecar = block_offsets_[n];
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t at = block_offsets_[i];
    out.done[i] = record[at++] != 0 ? 1 : 0;
    if (track_outputs) {
      out.ever_output[i] = record[at++] != 0 ? 1 : 0;
      out.last_output[i] = record[at++];
    }
    // Program state: only the dirtied process actually diverged from the
    // record; everyone else's object is already byte-equivalent.
    if (static_cast<int>(i) == dirty) {
      out.processes[i].decode(record + at, size - at);
    }
    out.steps_in_run[i] = static_cast<std::int64_t>(record[sidecar + i]);
  }
}

int NodeCodec::orbit_skip_mask(const Value* record,
                               std::vector<std::uint8_t>& skip) const {
  return canonicalizer_.orbit_mask(record, block_offsets_, skip);
}

// --- NodeStore --------------------------------------------------------------

NodeStore::NodeStore(int shard_bits, std::uint64_t expected_states, int num_arenas)
    : shard_bits_(shard_bits) {
  RCONS_ASSERT_MSG(shard_bits >= 0 && shard_bits <= 16,
                   "shard_bits must be in [0, 16]");
  RCONS_ASSERT_MSG(num_arenas >= 1, "need at least one arena");
  const std::size_t count = std::size_t{1} << shard_bits;
  const std::uint64_t expected_per_shard = expected_states / count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(expected_per_shard));
  }
  arenas_.reserve(static_cast<std::size_t>(num_arenas));
  for (int i = 0; i < num_arenas; ++i) arenas_.push_back(std::make_unique<Arena>());
}

Value* NodeStore::arena_refill(Arena& arena, std::size_t need) {
  RCONS_ASSERT_MSG(need <= kChunkValues, "node record exceeds chunk size");
  // Cold path: one lock per kChunkValues interned values per worker, the
  // arena analogue of the index's growth mutex. The bump pointer handoff to
  // readers stays lock-free — records become visible through the index
  // slot's release-publish, never through this lock.
  // rcons-lint: allow(hot-path-no-mutex) one lock per kChunkValues interned values, arena refill only
  std::lock_guard<std::mutex> lock(chunk_mu_);
  chunks_.push_back(std::make_unique<Value[]>(kChunkValues));
  arena.cur = chunks_.back().get();
  arena.end = arena.cur + kChunkValues;
  return arena.cur;
}

NodeStore::Intern NodeStore::intern(util::U128 fingerprint,
                                    const std::vector<Value>& record, int arena_index,
                                    CasTable::OpStats* stats) {
  RCONS_ASSERT(arena_index >= 0 &&
               static_cast<std::size_t>(arena_index) < arenas_.size());
  Arena& arena = *arenas_[static_cast<std::size_t>(arena_index)];
  Shard& shard = *shards_[shard_index(fingerprint)];
  const std::size_t length = record.size();

  // The record copy is staged from the caller's private arena only inside
  // the claimed window — after the lock-free duplicate check — so a
  // duplicate intern never copies and never allocates.
  const CasTable::Found found = shard.index.insert_with(
      fingerprint,
      [&]() -> std::uint64_t {
        Value* header = arena.cur;
        if (header == nullptr ||
            static_cast<std::size_t>(arena.end - header) < length + 1) {
          header = arena_refill(arena, length + 1);
        }
        header[0] = static_cast<Value>(length);
        std::memcpy(header + 1, record.data(), length * sizeof(Value));
        arena.cur = header + 1 + length;
        arena.payload_values += length;
        return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(header));
      },
      stats);

  const Value* header =
      reinterpret_cast<const Value*>(static_cast<std::uintptr_t>(found.value));
  if (!found.inserted) arena.duplicate_hits += 1;
  return Intern{found.value, found.inserted, header + 1,
                static_cast<std::uint32_t>(header[0])};
}

void NodeStore::fetch(NodeId id, std::vector<Value>& out) const {
  const Value* header =
      reinterpret_cast<const Value*>(static_cast<std::uintptr_t>(id));
  RCONS_ASSERT(header != nullptr);
  const auto length = static_cast<std::size_t>(header[0]);
  out.assign(header + 1, header + 1 + length);
}

std::uint64_t NodeStore::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index.size();
  return total;
}

NodeStore::Stats NodeStore::stats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    stats.nodes += shard->index.size();
    stats.rehashes += shard->index.rehashes();
  }
  for (const auto& arena : arenas_) {
    stats.value_bytes += arena->payload_values * sizeof(Value);
    stats.duplicate_hits += arena->duplicate_hits;
  }
  return stats;
}

ShardedVisited::LoadStats NodeStore::load_stats() const {
  ShardedVisited::LoadStats stats;
  stats.min_shard = ~0ULL;
  for (const auto& shard : shards_) {
    const std::uint64_t count = shard->index.size();
    stats.total += count;
    if (count < stats.min_shard) stats.min_shard = count;
    if (count > stats.max_shard) stats.max_shard = count;
    stats.rehashes += shard->index.rehashes();
  }
  for (const auto& arena : arenas_) stats.duplicate_inserts += arena->duplicate_hits;
  if (stats.total == 0) {
    stats.min_shard = 0;
    stats.imbalance = 1.0;
  } else {
    const double even =
        static_cast<double>(stats.total) / static_cast<double>(shards_.size());
    stats.imbalance = even > 0 ? static_cast<double>(stats.max_shard) / even : 1.0;
  }
  return stats;
}

}  // namespace rcons::engine
