#include "engine/node_store.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace rcons::engine {

using typesys::Value;

bool resolve_compact_repr(sim::NodeRepr repr,
                          const std::vector<sim::Process>& processes) {
  bool all_decodable = true;
  for (const sim::Process& process : processes) {
    all_decodable = all_decodable && process.decodable();
  }
  switch (repr) {
    case sim::NodeRepr::kAuto:
      return all_decodable;
    case sim::NodeRepr::kCompact:
      RCONS_ASSERT_MSG(all_decodable,
                       "NodeRepr::kCompact requires every program to decode()");
      return true;
    case sim::NodeRepr::kLegacy:
      return false;
  }
  return false;
}

// --- Canonicalizer ----------------------------------------------------------

Canonicalizer::Canonicalizer(const std::vector<int>& symmetry_classes)
    : num_processes_(symmetry_classes.size()) {
  std::map<int, std::vector<int>> by_class;
  for (std::size_t i = 0; i < symmetry_classes.size(); ++i) {
    by_class[symmetry_classes[i]].push_back(static_cast<int>(i));
  }
  for (auto& [cls, members] : by_class) {
    if (members.size() >= 2) groups_.push_back(std::move(members));
  }
}

bool Canonicalizer::canonicalize(std::vector<Value>& record,
                                 const std::vector<std::size_t>& block_offsets) {
  if (groups_.empty()) return false;
  const std::size_t n = num_processes_;
  RCONS_ASSERT(block_offsets.size() == n + 1);
  RCONS_ASSERT(record.size() == block_offsets[n] + n);
  const std::size_t sidecar = block_offsets[n];

  // Lexicographic order on (block content, steps_in_run). The sidecar
  // tiebreak only disambiguates equal blocks — it never influences which
  // fingerprint results, since equal blocks fingerprint identically either
  // way — but it keeps the stored record deterministic.
  auto block_less = [&](int a, int b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    const Value* a_begin = record.data() + block_offsets[sa];
    const Value* a_end = record.data() + block_offsets[sa + 1];
    const Value* b_begin = record.data() + block_offsets[sb];
    const Value* b_end = record.data() + block_offsets[sb + 1];
    if (std::lexicographical_compare(a_begin, a_end, b_begin, b_end)) return true;
    if (std::lexicographical_compare(b_begin, b_end, a_begin, a_end)) return false;
    return record[sidecar + sa] < record[sidecar + sb];
  };

  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = static_cast<int>(i);
  bool permuted = false;
  for (const std::vector<int>& group : groups_) {
    sorted_.assign(group.begin(), group.end());
    // Stable: fully-equal blocks (e.g. every process at the root) keep their
    // original order, so the identity state never counts as a "hit".
    std::stable_sort(sorted_.begin(), sorted_.end(), block_less);
    for (std::size_t j = 0; j < group.size(); ++j) {
      order_[static_cast<std::size_t>(group[j])] = sorted_[j];
      permuted = permuted || sorted_[j] != group[j];
    }
  }
  if (!permuted) return false;

  // Rebuild the process region and sidecar in the canonical order.
  scratch_.clear();
  scratch_.insert(scratch_.end(), record.begin(),
                  record.begin() + static_cast<std::ptrdiff_t>(block_offsets[0]));
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = static_cast<std::size_t>(order_[i]);
    scratch_.insert(scratch_.end(),
                    record.begin() + static_cast<std::ptrdiff_t>(block_offsets[src]),
                    record.begin() + static_cast<std::ptrdiff_t>(block_offsets[src + 1]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    scratch_.push_back(record[sidecar + static_cast<std::size_t>(order_[i])]);
  }
  RCONS_ASSERT(scratch_.size() == record.size());
  record.swap(scratch_);
  return true;
}

// --- NodeCodec --------------------------------------------------------------

bool NodeCodec::decodable(const Node& node) {
  for (const sim::Process& process : node.processes) {
    if (!process.decodable()) return false;
  }
  return true;
}

NodeCodec::Encoded NodeCodec::encode(const Node& node, std::vector<Value>& record) {
  record.clear();
  encode_node_header(node, record);

  const std::size_t n = node.processes.size();
  offsets_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    offsets_.push_back(record.size());
    encode_process_block(node, i, record);
  }
  offsets_.push_back(record.size());
  for (std::size_t i = 0; i < n; ++i) record.push_back(node.steps_in_run[i]);

  Encoded encoded;
  encoded.permuted = canonicalizer_.canonicalize(record, offsets_);
  encoded.fingerprint_length = record.size() - n;
  encoded.fingerprint =
      fingerprint_values(record.data(), encoded.fingerprint_length);
  return encoded;
}

void NodeCodec::decode(const Value* record, std::size_t size, Node& out) const {
  RCONS_ASSERT_MSG(size >= 2, "truncated node record");
  out.crashes_used = static_cast<int>(record[0]);
  const auto ndecisions = static_cast<std::size_t>(record[1]);
  std::size_t at = 2;
  RCONS_ASSERT_MSG(at + ndecisions <= size, "truncated node record");
  out.decisions.clear();
  for (std::size_t i = 0; i < ndecisions; ++i) out.decisions.push_back(record[at++]);
  at += out.memory.decode(record + at, size - at);

  // Whether records carry the at-most-once (ever, last) pair is a run-level
  // invariant reflected in the root-shaped scratch node.
  const std::size_t n = out.processes.size();
  const bool track_outputs = !out.ever_output.empty();
  for (std::size_t i = 0; i < n; ++i) {
    RCONS_ASSERT_MSG(at < size, "truncated node record");
    out.done[i] = record[at++] != 0 ? 1 : 0;
    if (track_outputs) {
      RCONS_ASSERT_MSG(at + 1 < size, "truncated node record");
      out.ever_output[i] = record[at++] != 0 ? 1 : 0;
      out.last_output[i] = record[at++];
    }
    at += out.processes[i].decode(record + at, size - at);
  }
  for (std::size_t i = 0; i < n; ++i) {
    RCONS_ASSERT_MSG(at < size, "truncated node record");
    out.steps_in_run[i] = static_cast<std::int64_t>(record[at++]);
  }
  RCONS_ASSERT_MSG(at == size, "node record has trailing values");
}

// --- NodeStore --------------------------------------------------------------

NodeStore::NodeStore(int shard_bits, std::uint64_t expected_states)
    : shard_bits_(shard_bits) {
  RCONS_ASSERT_MSG(shard_bits >= 0 && shard_bits <= 16,
                   "shard_bits must be in [0, 16]");
  const std::size_t count = std::size_t{1} << shard_bits;
  const std::uint64_t expected_per_shard = expected_states / count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(expected_per_shard));
  }
}

NodeStore::Intern NodeStore::intern(util::U128 fingerprint,
                                    const std::vector<Value>& record) {
  RCONS_ASSERT_MSG(record.size() <= kChunkValues, "node record exceeds chunk size");
  const std::size_t shard_idx = shard_index(fingerprint);
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);

  // Speculative insert keyed to the next local index: one probe resolves both
  // the duplicate check and the placement.
  const std::uint64_t local = shard.records.size();
  const FlatTable::Found found = shard.index.insert(fingerprint, local);
  if (!found.inserted) {
    shard.duplicate_hits += 1;
    const Record& existing = shard.records[static_cast<std::size_t>(found.value)];
    const std::vector<Value>& existing_chunk = shard.chunks[existing.chunk];
    return Intern{(static_cast<NodeId>(shard_idx) << kShardShift) | found.value,
                  false, existing_chunk.data() + existing.offset, existing.length};
  }

  if (shard.chunks.empty() ||
      shard.chunks.back().size() + record.size() > kChunkValues) {
    shard.chunks.emplace_back();
    shard.chunks.back().reserve(kChunkValues);
  }
  std::vector<Value>& chunk = shard.chunks.back();
  Record entry;
  entry.chunk = static_cast<std::uint32_t>(shard.chunks.size() - 1);
  entry.offset = static_cast<std::uint32_t>(chunk.size());
  entry.length = static_cast<std::uint32_t>(record.size());
  chunk.insert(chunk.end(), record.begin(), record.end());

  shard.records.push_back(entry);
  return Intern{(static_cast<NodeId>(shard_idx) << kShardShift) | local, true,
                chunk.data() + entry.offset, entry.length};
}

void NodeStore::fetch(NodeId id, std::vector<Value>& out) const {
  const std::size_t shard_idx = static_cast<std::size_t>(id >> kShardShift);
  const std::uint64_t local = id & ((std::uint64_t{1} << kShardShift) - 1);
  RCONS_ASSERT(shard_idx < shards_.size());
  const Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  RCONS_ASSERT(local < shard.records.size());
  const Record& record = shard.records[static_cast<std::size_t>(local)];
  const std::vector<Value>& chunk = shard.chunks[record.chunk];
  out.assign(chunk.begin() + record.offset,
             chunk.begin() + record.offset + record.length);
}

std::uint64_t NodeStore::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->records.size();
  }
  return total;
}

NodeStore::Stats NodeStore::stats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.nodes += shard->records.size();
    stats.duplicate_hits += shard->duplicate_hits;
    for (const Record& record : shard->records) {
      stats.value_bytes += static_cast<std::uint64_t>(record.length) * sizeof(Value);
    }
    const FlatTable::Stats& probes = shard->index.stats();
    stats.probes.probe_total += probes.probe_total;
    stats.probes.probe_ops += probes.probe_ops;
    if (probes.max_probe > stats.probes.max_probe) {
      stats.probes.max_probe = probes.max_probe;
    }
    stats.probes.rehashes += probes.rehashes;
  }
  return stats;
}

ShardedVisited::LoadStats NodeStore::load_stats() const {
  ShardedVisited::LoadStats stats;
  stats.min_shard = ~0ULL;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const std::uint64_t count = shard->records.size();
    stats.total += count;
    if (count < stats.min_shard) stats.min_shard = count;
    if (count > stats.max_shard) stats.max_shard = count;
    stats.duplicate_inserts += shard->duplicate_hits;
    const FlatTable::Stats& probes = shard->index.stats();
    stats.probes.probe_total += probes.probe_total;
    stats.probes.probe_ops += probes.probe_ops;
    if (probes.max_probe > stats.probes.max_probe) {
      stats.probes.max_probe = probes.max_probe;
    }
    stats.probes.rehashes += probes.rehashes;
  }
  if (stats.total == 0) {
    stats.min_shard = 0;
    stats.imbalance = 1.0;
  } else {
    const double even =
        static_cast<double>(stats.total) / static_cast<double>(shards_.size());
    stats.imbalance = even > 0 ? static_cast<double>(stats.max_shard) / even : 1.0;
  }
  return stats;
}

}  // namespace rcons::engine
