// Sharded visited-state set for parallel exploration.
//
// The sequential legacy explorer keeps one single-threaded flat table; under
// T workers every insert must be concurrent. Here the 128-bit fingerprint
// space is split across 2^shard_bits independent shards, each a *lock-free
// CAS-claimed slot table* (engine/cas_table.hpp): inserts claim a slot by
// CAS-ing its atomic tag and publish with a release store — no mutex on the
// insert path at all (the only lock left in the table guards the cold growth
// allocation). Sharding still pays: it splits the atomic size counters and
// growth sweeps, and unrelated inserts probe disjoint cache regions. Shard
// selection uses the top bits of the `hi` half; the intra-shard slot index
// comes from `util::U128Hash`, which mixes both halves, so shard selection
// does not degrade slot distribution.
//
// Probe/contention counters accumulate into caller-owned CasTable::OpStats
// (one per worker) rather than shared table fields — load_stats() reports
// only what the tables themselves track contention-free (sizes, growths).
#ifndef RCONS_ENGINE_VISITED_HPP
#define RCONS_ENGINE_VISITED_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/cas_table.hpp"
#include "util/hash.hpp"

namespace rcons::engine {

class ShardedVisited {
 public:
  // Valid shard_bits: 0 (a single shard — degenerates to the sequential
  // layout) through 16. `expected_states` pre-sizes the shard tables so a
  // run of the anticipated size never rehashes (0 = unknown, start minimal).
  explicit ShardedVisited(int shard_bits, std::uint64_t expected_states = 0);

  // Inserts `key`; returns true when it was not already present. Thread-safe
  // and lock-free; probe/CAS counters accumulate into `stats` when non-null.
  bool insert(util::U128 key, CasTable::OpStats* stats = nullptr);

  // Exact at quiescence; a racy snapshot while workers are inserting.
  std::uint64_t size() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Occupancy statistics for tuning shard_bits: total entries, the
  // fullest/emptiest shard, and the imbalance ratio max/(total/shards)
  // (1.0 = perfectly even). `rehashes` counts growth epochs across the
  // shards. Duplicate inserts are visible to callers via insert()'s return
  // value (the workers tally them); `duplicate_inserts` here is filled only
  // by owners with out-of-band tracking (NodeStore's arenas) and stays 0 for
  // a bare ShardedVisited.
  struct LoadStats {
    std::uint64_t total = 0;
    std::uint64_t min_shard = 0;
    std::uint64_t max_shard = 0;
    double imbalance = 1.0;
    std::uint64_t duplicate_inserts = 0;
    std::uint64_t rehashes = 0;
  };
  LoadStats load_stats() const;

 private:
  // Shards are cache-line separated so neighbouring atomics don't false-share.
  struct alignas(64) Shard {
    explicit Shard(std::uint64_t expected) : table(expected) {}
    CasTable table;
  };

  std::size_t shard_index(util::U128 key) const {
    return shard_bits_ == 0
               ? 0
               : static_cast<std::size_t>(key.hi >> (64 - shard_bits_));
  }

  int shard_bits_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Picks shard_bits for a parallel run instead of a fixed default. Two forces:
//
//   * contention — with T workers inserting concurrently we want enough
//     shards that two unrelated inserts rarely meet on one table's atomics:
//     at least 8×T shards (collision probability <= 1/8 per pair), rounded
//     up to the next power of two;
//   * occupancy — a state space of S states should not be spread over more
//     than S/64 shards, or most shards sit empty and load stats (and cache
//     locality) degrade.
//
// The occupancy cap wins when they conflict (tiny spaces finish before
// contention matters). `expected_states` of 0 means unknown — only the
// contention bound applies. A single worker always gets 0 bits (the
// sequential layout; no concurrent inserts to spread). Result is clamped to
// the supported [0, 16] range.
int pick_shard_bits(int num_threads, std::uint64_t expected_states);

}  // namespace rcons::engine

#endif  // RCONS_ENGINE_VISITED_HPP
