#include "obs/session.hpp"

#include <iostream>
#include <utility>

namespace rcons::obs {

Session::Session(SessionOptions options) : options_(std::move(options)) {
  if (!options_.trace_out.empty()) {
    tracer_ = std::make_unique<Tracer>();
  }
  const bool sampling = options_.progress || !options_.metrics_out.empty();
  if (sampling) {
    SamplerOptions sampler_options;
    sampler_options.interval_ms = options_.interval_ms;
    if (options_.progress) sampler_options.heartbeat_out = &std::cerr;
    if (!options_.metrics_out.empty()) {
      metrics_file_.open(options_.metrics_out);
      if (metrics_file_.is_open()) sampler_options.metrics_out = &metrics_file_;
    }
    sampler_ = std::make_unique<Sampler>(registry_, sampler_options);
    sampler_->start();
  }
}

Session::~Session() { finish(); }

Hooks Session::hooks() {
  Hooks hooks;
  if (options_.any_enabled()) hooks.metrics = &registry_;
  hooks.tracer = tracer_.get();
  return hooks;
}

bool Session::finish(std::string* error) {
  if (finished_) return true;
  finished_ = true;
  if (sampler_ != nullptr) sampler_->stop();
  if (metrics_file_.is_open()) metrics_file_.close();
  if (tracer_ != nullptr) {
    std::ofstream out(options_.trace_out);
    if (!out.is_open()) {
      if (error != nullptr) *error = "cannot write trace file " + options_.trace_out;
      return false;
    }
    tracer_->write_chrome_trace(out);
    if (!out.good()) {
      if (error != nullptr) *error = "error writing trace file " + options_.trace_out;
      return false;
    }
  }
  return true;
}

const std::vector<NameDoc>& metric_names() {
  static const std::vector<NameDoc> kNames = {
      {"check.probe_visited", "states the kAuto probe explored before escalating"},
      {"engine.batch_size", "histogram of successor batch sizes pushed per expansion"},
      {"engine.cas_retries", "lock-free slot claims lost to a racing worker and retried"},
      {"engine.decisions", "decide transitions taken (== ExplorerStats.decisions)"},
      {"engine.dedup_cache_hits", "duplicate probes answered by the per-worker cache"},
      {"engine.dedup_cache_probes", "lookups in the per-worker recently-inserted cache"},
      {"engine.duplicates", "successor states that were already visited"},
      {"engine.expected_states", "gauge: pre-size hint handed to the dedup tables"},
      {"engine.frontier_batched_items", "items across those batches"},
      {"engine.frontier_batches", "successor batches submitted to the frontier"},
      {"engine.frontier_pending", "gauge: items queued or mid-expansion right now"},
      {"engine.migration_stripes", "table-growth stripes migrated cooperatively by workers"},
      {"engine.num_threads", "gauge: resolved engine worker count"},
      {"engine.orbit_skipped", "orbit-equivalent sibling events skipped by symmetry"},
      {"engine.steals", "successful frontier batch steals"},
      {"engine.stolen_items", "items moved by those steals"},
      {"engine.terminal_states", "states where every process has decided"},
      {"engine.transitions", "events applied (== ExplorerStats.transitions)"},
      {"engine.truncations", "max_visited budget exhaustions recorded"},
      {"engine.violation_edges", "violating edges found (>=1 edge per reported violation)"},
      {"engine.visited_cap", "gauge: the run's max_visited budget"},
      {"engine.visited_states", "deduplicated states inserted (== ExplorerStats.visited)"},
      {"portfolio.scenario_index", "gauge: 1-based index of the scenario now checking"},
      {"portfolio.scenarios_total", "gauge: scenarios in the running portfolio"},
      {"random.crashes", "crashes injected across random runs"},
      {"random.runs", "seeded random executions completed or stopped"},
      {"random.steps", "process steps taken across random runs"},
      {"random.violations", "random runs that hit a property violation"},
      {"replay.outputs", "decide events observed during replay"},
      {"replay.steps", "schedule events applied during replay"},
      {"replay.violations", "replays that reproduced a property violation"},
      {"store.canonical_hits", "encodings the symmetry canonicalizer permuted"},
      {"store.encodes", "node encodings produced"},
      {"store.nodes", "unique states interned in the node store"},
      {"store.rehashes", "incremental flat-table growths across shards"},
      {"store.value_bytes", "arena payload bytes across interned records"},
  };
  return kNames;
}

const std::vector<NameDoc>& span_names() {
  static const std::vector<NameDoc> kNames = {
      {"auto_select", "instant: the kAuto probe-or-escalate decision"},
      {"check", "one check() call end-to-end"},
      {"expand_batch", "one popped batch expanded by an engine worker"},
      {"explore", "the exhaustive backend's full exploration"},
      {"minimize", "reserved: greedy schedule minimization of a violation"},
      {"portfolio_scenario", "one portfolio scenario end-to-end (': <name>' suffixed)"},
      {"probe", "the kAuto bounded sequential probe"},
      {"random_run", "one seeded random execution"},
      {"rehash", "reserved: table growth publishes store.rehashes today"},
      {"replay", "scripted schedule replay"},
      {"spec_parse", "reserved: scenario spec file parse"},
      {"spill_candidate", "reserved for the out-of-core store (ROADMAP)"},
      {"steal", "a pop that came back with a victim's items (span covers the probe)"},
      {"worker", "one engine worker thread within a run"},
  };
  return kNames;
}

}  // namespace rcons::obs
