// Metrics registry: named counters, gauges, and histograms backed by
// per-worker ("lane") atomic cells.
//
// Design constraints, in order:
//   1. Zero hot-path locks. Registration (name -> metric) takes a mutex, but
//      it happens once per run per metric; the handles returned are stable
//      for the registry's lifetime, and every update on them is one relaxed
//      atomic on a lane-private cache line.
//   2. No cross-worker contention. Each worker updates its own lane's cell
//      (64-byte aligned); readers aggregate across lanes. Writers never wait
//      on each other or on the sampler thread.
//   3. Free when off. The engine's workers accumulate into the plain local
//      counters they already keep and flush deltas into the registry only at
//      batch boundaries — and only when a registry is installed at all
//      (obs/hooks.hpp), so a disabled sink costs a predicted branch per
//      batch, not per state.
//
// Aggregation semantics:
//   Counter   — monotonic; total() sums the lanes.
//   Gauge     — one shared cell, last write wins (used for run-level facts
//               like the visited cap or the current frontier size, where any
//               recent writer's view is equally good).
//   Histogram — per-lane power-of-two buckets plus count/sum/max, merged on
//               read.
//
// snapshot() returns the aggregated view sorted by name, so two runs that
// did the same work produce byte-identical snapshots — the determinism tests
// rely on this.
#ifndef RCONS_OBS_METRICS_HPP
#define RCONS_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rcons::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind);

// Aggregated view of one metric at one instant.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // Counter: total. Gauge: current value (signed, stored as int64 bits).
  // Histogram: observation count.
  std::uint64_t value = 0;
  // Histogram only:
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  std::int64_t gauge_value() const { return static_cast<std::int64_t>(value); }
};

// The full aggregated registry state, sorted by metric name.
using MetricsSnapshot = std::vector<MetricSample>;

// Finds a sample by name; nullptr when absent.
const MetricSample* find_sample(const MetricsSnapshot& snapshot,
                                std::string_view name);

namespace detail {
struct alignas(64) LaneCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

class Counter {
 public:
  explicit Counter(std::size_t lanes)
      : cells_(std::make_unique<detail::LaneCell[]>(lanes)), lanes_(lanes) {}

  void add(std::size_t lane, std::uint64_t delta) {
    cells_[lane % lanes_].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < lanes_; ++i) {
      sum += cells_[i].value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (std::size_t i = 0; i < lanes_; ++i) {
      cells_[i].value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::unique_ptr<detail::LaneCell[]> cells_;
  std::size_t lanes_;
};

class Gauge {
 public:
  void set(std::int64_t value) {
    cell_.store(static_cast<std::uint64_t>(value), std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return static_cast<std::int64_t>(cell_.load(std::memory_order_relaxed));
  }
  void reset() { cell_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> cell_{0};
};

class Histogram {
 public:
  // Power-of-two buckets: bucket i counts values v with bit_width(v) == i
  // (bucket 0 is v == 0). 40 buckets cover every value this codebase can
  // plausibly record (batch sizes, probe lengths, microsecond durations).
  static constexpr std::size_t kBuckets = 40;

  explicit Histogram(std::size_t lanes)
      : lanes_(std::make_unique<Lane[]>(lanes)), lane_count_(lanes) {}

  void record(std::size_t lane_index, std::uint64_t value);

  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t max() const;
  // Merged bucket counts (size kBuckets).
  std::vector<std::uint64_t> buckets() const;
  void reset();

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
  };

  std::unique_ptr<Lane[]> lanes_;
  std::size_t lane_count_;
};

class MetricsRegistry {
 public:
  // `lanes` bounds the worker ids that get contention-free cells; updates
  // from higher ids wrap (correct totals, possible false sharing). Lane 0 is
  // conventionally the coordinating thread, workers use 1 + worker id.
  static constexpr std::size_t kDefaultLanes = 64;

  explicit MetricsRegistry(std::size_t lanes = kDefaultLanes);

  std::size_t lanes() const { return lanes_; }

  // Get-or-create; the returned reference is stable for the registry's
  // lifetime. Creating takes the registration mutex, so hot paths should
  // resolve their handles once per run (see e.g. ObsCells in
  // engine/obs_cells.hpp).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Aggregated state of every registered metric, sorted by name.
  MetricsSnapshot snapshot() const;

  // Zeroes every metric whose name starts with `prefix` (all of them when
  // empty). Metrics stay registered — handles remain valid. Used between
  // checks sharing one registry, and by the kAuto escalation path so the
  // winning backend's totals are not polluted by the probe's.
  void reset(std::string_view prefix = {});

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::size_t lanes_;
  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace rcons::obs

#endif  // RCONS_OBS_METRICS_HPP
