// Live progress reporting and periodic metrics snapshots, driven by the
// metrics registry.
//
// A Sampler is a background thread that wakes every `interval_ms`, snapshots
// the registry (lock-free reads of the lane cells; the registration mutex is
// uncontended at steady state) and
//   * appends one JSONL line to `metrics_out` — the machine-readable
//     trajectory of the run ({"t_ms":..., "counters":{...}, ...}), and/or
//   * renders a rate-limited single-line heartbeat to `heartbeat_out`
//     (stderr in check_cli --progress): elapsed time, visited states,
//     states/s since the previous beat, frontier size, dedup hit rate,
//     bytes/node, and the ETA toward the visited budget.
//
// The sampler never blocks the workers: it only reads atomics. stop() takes
// one final sample so short runs still produce at least one snapshot line.
//
// Heartbeat metric names are the engine taxonomy from obs/session.hpp
// (engine.visited_states & co.); missing metrics simply render as absent, so
// the heartbeat degrades gracefully on backends that fill fewer counters.
#ifndef RCONS_OBS_PROGRESS_HPP
#define RCONS_OBS_PROGRESS_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace rcons::obs {

struct SamplerOptions {
  std::ostream* metrics_out = nullptr;    // JSONL snapshot stream; null = off
  std::ostream* heartbeat_out = nullptr;  // human heartbeat; null = off
  int interval_ms = 500;
};

// Renders one human-readable heartbeat line (no trailing newline) from a
// snapshot. `seconds` is elapsed wall time; `rate` is states/s measured by
// the caller between beats (negative = unknown, rendered as "-").
std::string render_heartbeat(const MetricsSnapshot& snapshot, double seconds,
                             double rate);

// Writes one JSONL metrics line: counters/gauges as name:value, histograms
// as name:{count,sum,max}.
void write_metrics_jsonl(std::ostream& out, const MetricsSnapshot& snapshot,
                         std::uint64_t t_ms);

class Sampler {
 public:
  Sampler(const MetricsRegistry& registry, SamplerOptions options);
  ~Sampler();  // stops (with a final sample) if still running

  void start();
  void stop();

  bool running() const { return running_; }
  std::uint64_t samples_taken() const { return samples_; }

 private:
  void loop();
  void sample();

  const MetricsRegistry& registry_;
  SamplerOptions options_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;

  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t samples_ = 0;
  // Rate computation between beats; a counter that moved backwards (registry
  // reset between checks) restarts the delta from zero.
  std::uint64_t last_visited_ = 0;
  std::chrono::steady_clock::time_point last_beat_;
};

}  // namespace rcons::obs

#endif  // RCONS_OBS_PROGRESS_HPP
