#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace rcons::obs {

Tracer::Tracer(std::size_t lanes, std::size_t max_events_per_lane)
    : epoch_(std::chrono::steady_clock::now()),
      lanes_(lanes),
      max_events_per_lane_(max_events_per_lane) {
  RCONS_ASSERT_MSG(lanes >= 2, "a tracer needs lane 0 plus at least one worker lane");
  RCONS_ASSERT(max_events_per_lane >= 1);
  lanes_[0].name = "check";
}

bool Tracer::lane_full(Lane& lane) {
  if (lane.events.size() < max_events_per_lane_) return false;
  lane.dropped += 1;
  return true;
}

void Tracer::complete(std::size_t lane_index, std::string name,
                      std::uint64_t begin_us, std::uint64_t end_us) {
  Lane& lane = lanes_[lane_index % lanes_.size()];
  if (lane_full(lane)) return;
  Event event;
  event.name = std::move(name);
  event.ts_us = begin_us;
  event.dur_us = end_us >= begin_us ? end_us - begin_us : 0;
  event.ph = 'X';
  lane.events.push_back(std::move(event));
}

void Tracer::instant(std::size_t lane_index, std::string name) {
  Lane& lane = lanes_[lane_index % lanes_.size()];
  if (lane_full(lane)) return;
  Event event;
  event.name = std::move(name);
  event.ts_us = now_us();
  event.ph = 'i';
  lane.events.push_back(std::move(event));
}

void Tracer::set_lane_name(std::size_t lane_index, std::string name) {
  lanes_[lane_index % lanes_.size()].name = std::move(name);
}

std::uint64_t Tracer::events_recorded() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.events.size();
  return total;
}

std::uint64_t Tracer::events_dropped() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.dropped;
  return total;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  util::JsonWriter json(out);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();

  json.begin_object();
  json.key_value("name", "process_name");
  json.key_value("ph", "M");
  json.key_value("pid", 1);
  json.key_value("tid", 0);
  json.key_value("ts", std::uint64_t{0});
  json.key("args");
  json.begin_object();
  json.key_value("name", "rcons");
  json.end_object();
  json.end_object();

  for (std::size_t tid = 0; tid < lanes_.size(); ++tid) {
    const Lane& lane = lanes_[tid];
    if (lane.name.empty() && lane.events.empty()) continue;
    if (!lane.name.empty()) {
      json.begin_object();
      json.key_value("name", "thread_name");
      json.key_value("ph", "M");
      json.key_value("pid", 1);
      json.key_value("tid", static_cast<std::uint64_t>(tid));
      json.key_value("ts", std::uint64_t{0});
      json.key("args");
      json.begin_object();
      json.key_value("name", lane.name);
      json.end_object();
      json.end_object();
    }
    for (const Event& event : lane.events) {
      json.begin_object();
      json.key_value("name", event.name);
      json.key_value("cat", "rcons");
      json.key("ph");
      json.value(std::string(1, event.ph));
      json.key_value("pid", 1);
      json.key_value("tid", static_cast<std::uint64_t>(tid));
      json.key_value("ts", event.ts_us);
      if (event.ph == 'X') json.key_value("dur", event.dur_us);
      json.end_object();
    }
  }

  json.end_array();
  json.key_value("displayTimeUnit", "ms");
  json.key("metadata");
  json.begin_object();
  json.key_value("events_recorded", events_recorded());
  json.key_value("events_dropped", events_dropped());
  json.end_object();
  json.end_object();
  out << "\n";
}

// ---------------------------------------------------------------------------
// validate_chrome_trace: a self-contained JSON parser (the repo has a writer
// in util/json.hpp but deliberately no general reader) plus the structural
// checks described in the header.

namespace {

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;

  const JValue* get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JValue& out, std::string& error) {
    if (!parse_value(out, 0)) {
      error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing characters after JSON document";
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool parse_value(JValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.kind = JValue::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') return parse_literal(out, c == 't');
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return fail("bad literal");
      pos_ += 4;
      out.kind = JValue::Kind::kNull;
      return true;
    }
    return parse_number(out);
  }

  bool parse_literal(JValue& out, bool value) {
    const std::string_view word = value ? "true" : "false";
    if (text_.compare(pos_, word.size(), word) != 0) return fail("bad literal");
    pos_ += word.size();
    out.kind = JValue::Kind::kBool;
    out.boolean = value;
    return true;
  }

  bool parse_number(JValue& out) {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[pos_]));
      ++pos_;
    }
    if (!digits) return fail("expected a value");
    out.kind = JValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(begin, pos_ - begin)).c_str(),
                             nullptr);
    return true;
  }

  bool parse_string(std::string& out) {
    RCONS_ASSERT(text_[pos_] == '"');
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            // Validation only cares about well-formedness; preserve the raw
            // escape rather than decoding UTF-16.
            out.append("\\u").append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default:
            return fail("bad escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_object(JValue& out, int depth) {
    out.kind = JValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected a key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JValue& out, int depth) {
    out.kind = JValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

struct SpanInterval {
  double begin = 0;
  double end = 0;
  std::string name;
};

}  // namespace

bool validate_chrome_trace(std::istream& in, std::string* error) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return set_error(error, "trace file is empty");

  JValue root;
  std::string parse_error;
  if (!JsonParser(text).parse(root, parse_error)) {
    return set_error(error, "invalid JSON: " + parse_error);
  }
  if (root.kind != JValue::Kind::kObject) {
    return set_error(error, "top-level value is not an object");
  }
  const JValue* events = root.get("traceEvents");
  if (events == nullptr || events->kind != JValue::Kind::kArray) {
    return set_error(error, "missing traceEvents array");
  }

  // (pid, tid) -> complete-span intervals.
  std::map<std::pair<double, double>, std::vector<SpanInterval>> spans;
  std::size_t real_events = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JValue& event = events->array[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (event.kind != JValue::Kind::kObject) {
      return set_error(error, where + " is not an object");
    }
    const JValue* name = event.get("name");
    const JValue* ph = event.get("ph");
    const JValue* pid = event.get("pid");
    const JValue* tid = event.get("tid");
    const JValue* ts = event.get("ts");
    if (name == nullptr || name->kind != JValue::Kind::kString) {
      return set_error(error, where + " lacks a string 'name'");
    }
    if (ph == nullptr || ph->kind != JValue::Kind::kString || ph->string.empty()) {
      return set_error(error, where + " lacks a 'ph' phase");
    }
    if (pid == nullptr || pid->kind != JValue::Kind::kNumber ||
        tid == nullptr || tid->kind != JValue::Kind::kNumber) {
      return set_error(error, where + " lacks numeric pid/tid");
    }
    if (ts == nullptr || ts->kind != JValue::Kind::kNumber) {
      return set_error(error, where + " lacks a numeric 'ts'");
    }
    if (ph->string == "M") continue;  // metadata record
    real_events += 1;
    if (ph->string == "X") {
      const JValue* dur = event.get("dur");
      if (dur == nullptr || dur->kind != JValue::Kind::kNumber || dur->number < 0) {
        return set_error(error, where + " is a complete event without 'dur'");
      }
      spans[{pid->number, tid->number}].push_back(
          SpanInterval{ts->number, ts->number + dur->number, name->string});
    }
  }
  if (real_events == 0) {
    return set_error(error, "trace contains no events (only metadata)");
  }

  // Per lane, complete events must nest like a call stack: sort by start
  // (ties: longer span first, i.e. the parent), then sweep with a stack —
  // each span must either start after the stack top ends (sibling) or end
  // within it (child). Partial overlap is a malformed trace.
  for (auto& [lane, intervals] : spans) {
    std::sort(intervals.begin(), intervals.end(),
              [](const SpanInterval& a, const SpanInterval& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end > b.end;
              });
    std::vector<const SpanInterval*> stack;
    for (const SpanInterval& span : intervals) {
      while (!stack.empty() && span.begin >= stack.back()->end) stack.pop_back();
      if (!stack.empty() && span.end > stack.back()->end) {
        return set_error(error, "spans '" + stack.back()->name + "' and '" +
                                    span.name + "' partially overlap on tid " +
                                    std::to_string(lane.second));
      }
      stack.push_back(&span);
    }
  }
  return true;
}

}  // namespace rcons::obs
