#include "obs/progress.hpp"

#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace rcons::obs {

namespace {

std::uint64_t counter_value(const MetricsSnapshot& snapshot, std::string_view name) {
  const MetricSample* sample = find_sample(snapshot, name);
  return sample == nullptr ? 0 : sample->value;
}

std::string fixed(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed << value;
  return out.str();
}

// 740123 -> "740.1k", 2.3e6 -> "2.3M".
std::string humanize(double value) {
  if (value >= 1e9) return fixed(value / 1e9, 1) + "G";
  if (value >= 1e6) return fixed(value / 1e6, 1) + "M";
  if (value >= 1e3) return fixed(value / 1e3, 1) + "k";
  return fixed(value, 0);
}

}  // namespace

std::string render_heartbeat(const MetricsSnapshot& snapshot, double seconds,
                             double rate) {
  const std::uint64_t visited = counter_value(snapshot, "engine.visited_states");
  const std::uint64_t transitions = counter_value(snapshot, "engine.transitions");
  const std::uint64_t duplicates = counter_value(snapshot, "engine.duplicates");
  const std::uint64_t nodes = counter_value(snapshot, "store.nodes");
  const std::uint64_t bytes = counter_value(snapshot, "store.value_bytes");

  std::ostringstream out;
  out << "[rcons] " << fixed(seconds, 1) << "s";
  out << " | visited " << humanize(static_cast<double>(visited));
  out << " | " << (rate < 0 ? std::string("-") : humanize(rate)) << " states/s";

  const MetricSample* frontier = find_sample(snapshot, "engine.frontier_pending");
  if (frontier != nullptr) {
    out << " | frontier " << humanize(static_cast<double>(frontier->gauge_value()));
  }
  if (transitions > 0) {
    out << " | dup "
        << fixed(100.0 * static_cast<double>(duplicates) /
                     static_cast<double>(transitions),
                 1)
        << "%";
  }
  if (nodes > 0) {
    out << " | "
        << fixed(static_cast<double>(bytes) / static_cast<double>(nodes), 1)
        << " B/node";
  }

  const MetricSample* cap = find_sample(snapshot, "engine.visited_cap");
  if (cap != nullptr && cap->gauge_value() > 0 && rate > 0) {
    const auto budget = static_cast<std::uint64_t>(cap->gauge_value());
    if (visited < budget) {
      const double eta = static_cast<double>(budget - visited) / rate;
      out << " | budget ETA " << fixed(eta, 0) << "s";
    } else {
      out << " | budget exhausted";
    }
  }

  const std::uint64_t runs = counter_value(snapshot, "random.runs");
  if (runs > 0) {
    out << " | runs " << runs << " steps "
        << humanize(static_cast<double>(counter_value(snapshot, "random.steps")));
  }
  return out.str();
}

void write_metrics_jsonl(std::ostream& out, const MetricsSnapshot& snapshot,
                         std::uint64_t t_ms) {
  util::JsonWriter json(out);
  json.begin_object();
  json.key_value("t_ms", t_ms);
  json.key("metrics");
  json.begin_object();
  for (const MetricSample& sample : snapshot) {
    switch (sample.kind) {
      case MetricKind::kCounter:
        json.key_value(sample.name, sample.value);
        break;
      case MetricKind::kGauge:
        json.key_value(sample.name, static_cast<long>(sample.gauge_value()));
        break;
      case MetricKind::kHistogram:
        json.key(sample.name);
        json.begin_object();
        json.key_value("count", sample.value);
        json.key_value("sum", sample.sum);
        json.key_value("max", sample.max);
        json.end_object();
        break;
    }
  }
  json.end_object();
  json.end_object();
  out << "\n";
}

Sampler::Sampler(const MetricsRegistry& registry, SamplerOptions options)
    : registry_(registry), options_(options) {
  if (options_.interval_ms < 10) options_.interval_ms = 10;
}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  samples_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  last_beat_ = epoch_;
  last_visited_ = 0;
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  sample();  // final snapshot so short runs still record one line
  running_ = false;
}

void Sampler::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this] { return stop_requested_; });
    if (stopping) return;  // the final sample is taken by stop()
    lock.unlock();
    sample();
    lock.lock();
  }
}

void Sampler::sample() {
  const auto now = std::chrono::steady_clock::now();
  const MetricsSnapshot snapshot = registry_.snapshot();
  const auto t_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_).count());
  samples_ += 1;

  if (options_.metrics_out != nullptr) {
    write_metrics_jsonl(*options_.metrics_out, snapshot, t_ms);
    options_.metrics_out->flush();
  }

  if (options_.heartbeat_out != nullptr) {
    const std::uint64_t visited = counter_value(snapshot, "engine.visited_states");
    const double dt = std::chrono::duration<double>(now - last_beat_).count();
    double rate = -1.0;
    if (dt > 0) {
      // A registry reset between checks moves the counter backwards; restart
      // the delta from the new value instead of reporting a bogus rate.
      const std::uint64_t delta = visited >= last_visited_ ? visited - last_visited_
                                                           : visited;
      rate = static_cast<double>(delta) / dt;
    }
    last_visited_ = visited;
    last_beat_ = now;
    *options_.heartbeat_out << render_heartbeat(
                                   snapshot,
                                   std::chrono::duration<double>(now - epoch_).count(),
                                   rate)
                            << "\n";
    options_.heartbeat_out->flush();
  }
}

}  // namespace rcons::obs
