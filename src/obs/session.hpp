// One observability session: the owner of the registry, tracer, sampler,
// and output files for a CLI / bench / daemon run.
//
//   obs::SessionOptions options;
//   options.progress = true;              // stderr heartbeat
//   options.trace_out = "trace.json";     // Chrome trace (Perfetto-loadable)
//   options.metrics_out = "metrics.jsonl";// periodic snapshot stream
//   obs::Session session(options);
//   request.obs = session.hooks();        // thread through any backend config
//   ... run checks ...
//   session.finish(&error);               // stop sampler, write trace file
//
// hooks() hands out non-owning pointers (obs/hooks.hpp); disabled sinks stay
// null so the backends skip their instrumentation entirely. A session whose
// options enable nothing is valid and hands out all-null hooks — callers can
// construct one unconditionally.
//
// This header also owns the observability *taxonomy*: the documented metric
// and span names (`metric_names()` / `span_names()`) that `check_cli --list`
// prints, kept next to the session so the vocabulary has one home.
#ifndef RCONS_OBS_SESSION_HPP
#define RCONS_OBS_SESSION_HPP

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace rcons::obs {

struct SessionOptions {
  bool progress = false;    // live stderr heartbeat
  std::string trace_out;    // Chrome trace JSON path; empty = tracing off
  std::string metrics_out;  // JSONL snapshot path; empty = off
  int interval_ms = 500;    // sampler period for progress / metrics_out

  bool any_enabled() const {
    return progress || !trace_out.empty() || !metrics_out.empty();
  }
};

class Session {
 public:
  explicit Session(SessionOptions options);
  ~Session();

  // Non-owning sink bundle for backend configs. The metrics pointer is set
  // whenever any sink is enabled (progress and metrics_out read it; the
  // CheckReport snapshot uses it too); the tracer pointer only when
  // trace_out is set.
  Hooks hooks();

  MetricsRegistry& metrics() { return registry_; }
  Tracer* tracer() { return tracer_.get(); }

  // Stops the sampler (final snapshot included) and writes the trace file.
  // Idempotent. Returns false (with `error` filled) when an output file
  // cannot be written.
  bool finish(std::string* error = nullptr);

 private:
  SessionOptions options_;
  MetricsRegistry registry_;
  std::unique_ptr<Tracer> tracer_;
  std::ofstream metrics_file_;
  std::unique_ptr<Sampler> sampler_;
  bool finished_ = false;
};

// One documented observability name: taxonomy rows for check_cli --list and
// the README table.
struct NameDoc {
  const char* name;
  const char* doc;
};

// Every metric name the backends publish, sorted by name.
const std::vector<NameDoc>& metric_names();

// Every span / instant-event name the backends emit, plus reserved names for
// subsystems that publish their activity as counters today.
const std::vector<NameDoc>& span_names();

}  // namespace rcons::obs

#endif  // RCONS_OBS_SESSION_HPP
