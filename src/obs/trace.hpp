// Span-based tracing with Chrome trace-event JSON export.
//
// A Tracer owns one event buffer per "lane" (lane 0 = the coordinating
// thread, lane 1 + worker id = engine workers). Lanes are single-writer:
// the owning thread appends without locks, and export happens after the
// workers have joined, so the whole structure needs no synchronization
// beyond thread start/join ordering. Each lane is bounded
// (`max_events_per_lane`); past the cap events are counted as dropped
// instead of growing without bound on huge explorations.
//
// Spans are RAII (`obs::Span`): construction samples the clock, destruction
// records one Chrome "complete" event (ph:"X" with ts + dur). Because spans
// close in strict reverse order of opening on each lane, the exported events
// per lane are properly nested — Perfetto renders them as a flame graph, and
// validate_chrome_trace() checks the invariant mechanically.
//
// Export is the Chrome trace-event JSON object format
// ({"traceEvents":[...]}), loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. Lane names are emitted as thread_name metadata.
#ifndef RCONS_OBS_TRACE_HPP
#define RCONS_OBS_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcons::obs {

class Tracer {
 public:
  static constexpr std::size_t kDefaultLanes = 64;
  static constexpr std::size_t kDefaultMaxEventsPerLane = 1 << 16;

  explicit Tracer(std::size_t lanes = kDefaultLanes,
                  std::size_t max_events_per_lane = kDefaultMaxEventsPerLane);

  std::size_t lanes() const { return lanes_.size(); }

  // Lane index for an engine worker id (1 + id, wrapped into range; lane 0
  // stays reserved for the coordinating thread).
  std::size_t worker_lane(int worker_id) const {
    return 1 + static_cast<std::size_t>(worker_id) % (lanes_.size() - 1);
  }

  // Microseconds since the tracer's construction (steady clock).
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Records one complete span on `lane`. Only the lane-owning thread may
  // call this (single-writer contract).
  void complete(std::size_t lane, std::string name, std::uint64_t begin_us,
                std::uint64_t end_us);

  // Records an instant event (ph:"i") on `lane` — zero-duration markers like
  // a successful steal or the kAuto escalation decision.
  void instant(std::size_t lane, std::string name);

  // Display name for the lane in trace viewers (thread_name metadata).
  void set_lane_name(std::size_t lane, std::string name);

  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  // Writes the whole trace as Chrome trace-event JSON. Call only after every
  // lane-writing thread has finished (or joined).
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;
    char ph = 'X';
  };

  struct alignas(64) Lane {
    std::vector<Event> events;
    std::string name;
    std::uint64_t dropped = 0;
  };

  bool lane_full(Lane& lane);

  std::chrono::steady_clock::time_point epoch_;
  std::vector<Lane> lanes_;
  std::size_t max_events_per_lane_;
};

// RAII scoped span; a null tracer makes every operation a no-op.
class Span {
 public:
  Span(Tracer* tracer, std::size_t lane, std::string name)
      : tracer_(tracer), lane_(lane), name_(std::move(name)) {
    if (tracer_ != nullptr) begin_us_ = tracer_->now_us();
  }
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early (idempotent).
  void close() {
    if (tracer_ == nullptr) return;
    tracer_->complete(lane_, std::move(name_), begin_us_, tracer_->now_us());
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  std::size_t lane_;
  std::string name_;
  std::uint64_t begin_us_ = 0;
};

// Parses a Chrome trace-event JSON document and checks its structure: valid
// JSON, a traceEvents array of objects each carrying name/ph/pid/tid/ts (and
// dur for ph:"X"), at least one non-metadata event, and — per (pid, tid) —
// properly nested complete events (every pair of spans is disjoint or
// contained, never partially overlapping). Returns false and fills `error`
// (when non-null) on the first problem found. Used by the trace round-trip
// test and by check_cli to verify its own --trace-out output.
bool validate_chrome_trace(std::istream& in, std::string* error);

}  // namespace rcons::obs

#endif  // RCONS_OBS_TRACE_HPP
