// Non-owning bundle of observability sinks, threaded through every backend
// config (sim::ExplorerConfig, sim::RandomRunConfig, check::CheckRequest,
// engine::PortfolioConfig). Null members switch the corresponding
// instrumentation off entirely: the backends guard every obs touch behind a
// pointer check, and the hot loops additionally buffer their counters in the
// plain per-worker locals they already keep and only flush deltas at batch
// boundaries — so a default-constructed Hooks costs nothing on the hot path.
//
// The sinks themselves (obs/metrics.hpp, obs/trace.hpp) are owned elsewhere —
// typically by an obs::Session (obs/session.hpp) that outlives the check —
// which keeps this struct trivially copyable and safe to embed in configs
// that are copied per run.
#ifndef RCONS_OBS_HOOKS_HPP
#define RCONS_OBS_HOOKS_HPP

namespace rcons::obs {

class MetricsRegistry;
class Tracer;

struct Hooks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

}  // namespace rcons::obs

#endif  // RCONS_OBS_HOOKS_HPP
