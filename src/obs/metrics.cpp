#include "obs/metrics.hpp"

#include <bit>

#include "util/assert.hpp"

namespace rcons::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricSample* find_sample(const MetricsSnapshot& snapshot,
                                std::string_view name) {
  for (const MetricSample& sample : snapshot) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

void Histogram::record(std::size_t lane_index, std::uint64_t value) {
  Lane& lane = lanes_[lane_index % lane_count_];
  lane.count.fetch_add(1, std::memory_order_relaxed);
  lane.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = lane.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !lane.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  lane.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < lane_count_; ++i) {
    total += lanes_[i].count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < lane_count_; ++i) {
    total += lanes_[i].sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::max() const {
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < lane_count_; ++i) {
    const std::uint64_t lane_max = lanes_[i].max.load(std::memory_order_relaxed);
    if (lane_max > best) best = lane_max;
  }
  return best;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> merged(kBuckets, 0);
  for (std::size_t i = 0; i < lane_count_; ++i) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      merged[b] += lanes_[i].buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < lane_count_; ++i) {
    Lane& lane = lanes_[i];
    lane.count.store(0, std::memory_order_relaxed);
    lane.sum.store(0, std::memory_order_relaxed);
    lane.max.store(0, std::memory_order_relaxed);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      lane.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry::MetricsRegistry(std::size_t lanes) : lanes_(lanes) {
  RCONS_ASSERT_MSG(lanes >= 1, "a metrics registry needs at least one lane");
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kCounter;
    entry.counter = std::make_unique<Counter>(lanes_);
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  RCONS_ASSERT_MSG(it->second.kind == MetricKind::kCounter,
                   "metric re-registered with a different kind");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  RCONS_ASSERT_MSG(it->second.kind == MetricKind::kGauge,
                   "metric re-registered with a different kind");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricKind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(lanes_);
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  RCONS_ASSERT_MSG(it->second.kind == MetricKind::kHistogram,
                   "metric re-registered with a different kind");
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.value = entry.counter->total();
        break;
      case MetricKind::kGauge:
        sample.value = static_cast<std::uint64_t>(entry.gauge->value());
        break;
      case MetricKind::kHistogram:
        sample.value = entry.histogram->count();
        sample.sum = entry.histogram->sum();
        sample.max = entry.histogram->max();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::reset(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

}  // namespace rcons::obs
