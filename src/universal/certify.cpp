#include "universal/certify.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rcons::universal {

namespace {

CertResult fail(std::string error) {
  CertResult result;
  result.ok = false;
  result.error = std::move(error);
  return result;
}

}  // namespace

CertResult certify_history(const Universal& universal,
                           const std::vector<OpRecord>& records) {
  const std::vector<int> order = universal.list_order();

  // 1. Structure.
  std::unordered_map<int, long> seq_of;  // node -> seq
  long expected_seq = 2;                 // dummy holds 1
  for (const int node : order) {
    const Universal::NodeInfo info = universal.node_info(node);
    if (info.seq != expected_seq) {
      return fail("list seq not contiguous at node " + std::to_string(node) +
                  ": expected " + std::to_string(expected_seq) + ", found " +
                  std::to_string(info.seq));
    }
    if (!seq_of.emplace(node, info.seq).second) {
      return fail("node " + std::to_string(node) + " appears twice in the list");
    }
    expected_seq += 1;
  }

  // 2. Sequential conformance: replay the list through the specification.
  typesys::StateId state = universal.initial_state();
  for (const int node : order) {
    const Universal::NodeInfo info = universal.node_info(node);
    const nvram::ClosedTable::Entry entry = universal.table().apply(state, info.op);
    if (entry.next != info.new_state || entry.response != info.response) {
      return fail("node " + std::to_string(node) +
                  " does not conform to the sequential specification");
    }
    state = entry.next;
  }

  // 3. Completed-op inclusion with matching responses, and 5. at-most-once.
  std::unordered_set<int> seen_nodes;
  for (const OpRecord& record : records) {
    if (!record.completed) continue;
    if (!seen_nodes.insert(record.node).second) {
      return fail("node " + std::to_string(record.node) +
                  " completed by two invocations");
    }
    auto it = seq_of.find(record.node);
    if (it == seq_of.end()) {
      return fail("completed op (node " + std::to_string(record.node) +
                  ") missing from the list");
    }
    if (universal.node_info(record.node).response != record.response) {
      return fail("node " + std::to_string(record.node) +
                  " response mismatch vs caller observation");
    }
  }

  // 4. Real-time order among completed ops: sort by seq, then check that no
  // later-linearized op returned before an earlier-linearized op was invoked
  // (via a suffix-minimum of return timestamps).
  std::vector<const OpRecord*> completed;
  for (const OpRecord& record : records) {
    if (record.completed) completed.push_back(&record);
  }
  std::sort(completed.begin(), completed.end(),
            [&](const OpRecord* a, const OpRecord* b) {
              return seq_of.at(a->node) < seq_of.at(b->node);
            });
  std::vector<long> suffix_min_return(completed.size() + 1,
                                      std::numeric_limits<long>::max());
  for (std::size_t i = completed.size(); i-- > 0;) {
    suffix_min_return[i] = std::min(suffix_min_return[i + 1], completed[i]->return_ts);
  }
  for (std::size_t i = 0; i < completed.size(); ++i) {
    // Ops linearized after position i must not have returned before this
    // op's invocation.
    if (suffix_min_return[i + 1] < completed[i]->invoke_ts) {
      return fail("real-time order violated around node " +
                  std::to_string(completed[i]->node));
    }
  }

  CertResult result;
  result.list_length = order.size();
  return result;
}

}  // namespace rcons::universal
