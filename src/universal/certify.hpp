// Linearizability certification for Universal histories.
//
// The construction is its own certificate: the list order *is* the claimed
// linearization. Certification checks, for a quiescent Universal instance and
// the op records collected by the harness:
//
//   1. Structure — the list's sequence numbers are contiguous from 2 and each
//      node appears at most once.
//   2. Sequential conformance — replaying the list's operations through the
//      type's sequential specification from the initial state reproduces
//      every node's persisted (new_state, response).
//   3. Completed-op inclusion — every completed invocation's node appears in
//      the list with the response the caller observed.
//   4. Real-time order — if op A returned before op B was invoked, A is
//      linearized before B.
//   5. Crash semantics — an operation interrupted by a crash is linearized at
//      most once; whether it appears at all matches what detectable recovery
//      reported (strict/persistent linearizability in the paper's terms).
#ifndef RCONS_UNIVERSAL_CERTIFY_HPP
#define RCONS_UNIVERSAL_CERTIFY_HPP

#include <string>
#include <vector>

#include "universal/universal.hpp"

namespace rcons::universal {

struct OpRecord {
  int node = 0;       // node id returned by invoke/recover
  int process = 0;
  long invoke_ts = 0;  // global logical clock at invocation
  long return_ts = 0;  // global logical clock at completion
  typesys::Value response = 0;
  bool completed = false;  // false: crashed and recovery reported "not executed"
};

struct CertResult {
  bool ok = true;
  std::string error;
  std::size_t list_length = 0;
};

CertResult certify_history(const Universal& universal,
                           const std::vector<OpRecord>& records);

}  // namespace rcons::universal

#endif  // RCONS_UNIVERSAL_CERTIFY_HPP
