// A wait-free recoverable consensus cell for arbitrary (non-⊥) values.
//
// This is the "RC instance associated with each next pointer" of the paper's
// RUniversal (Figure 7). Backed by a single NVRAM compare-and-swap word —
// rcons(CAS) = ∞, so one cell serves any number of processes, and the first
// successful CAS durably records the decision (recovery just re-reads it).
// Section 4's point is that *any* type with rcons ≥ n could stand in here;
// the tests exercise RUniversal with tournament-based RC cells built from
// S_n objects to demonstrate exactly that.
#ifndef RCONS_UNIVERSAL_RC_CELL_HPP
#define RCONS_UNIVERSAL_RC_CELL_HPP

#include "nvram/nvram.hpp"
#include "typesys/core.hpp"

namespace rcons::universal {

class RcCell {
 public:
  explicit RcCell(const nvram::PersistenceModel* persistence = nullptr)
      : cell_(typesys::kBottom, persistence) {}

  // Recoverable consensus: returns the cell's decided value, which is
  // `proposal` if this call decided. Idempotent across crashes and re-runs.
  typesys::Value decide(typesys::Value proposal) {
    const typesys::Value previous = cell_.compare_and_swap(typesys::kBottom, proposal);
    return previous == typesys::kBottom ? proposal : previous;
  }

  // ⊥ if undecided.
  typesys::Value peek() const { return cell_.read(); }

 private:
  nvram::NvRegister cell_;
};

}  // namespace rcons::universal

#endif  // RCONS_UNIVERSAL_RC_CELL_HPP
