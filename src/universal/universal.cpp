#include "universal/universal.hpp"

#include <atomic>

#include "util/assert.hpp"

namespace rcons::universal {

using runtime::CrashInjector;
using typesys::Value;

// Memory orders: the PODC'22 algorithm (Figure 7 / Appendix F) is stated in
// the sequentially-consistent shared-memory model, and its correctness proof
// leans on a single total order over all base-object steps. Every atomic here
// therefore spells out seq_cst; do not weaken individual sites without
// re-deriving the persist/visibility argument.

Universal::Universal(std::shared_ptr<const nvram::ClosedTable> table,
                     typesys::StateId q0, int n, Options options)
    : table_(std::move(table)),
      q0_(q0),
      n_(n),
      options_(options),
      nodes_(1 + static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(options.nodes_per_process)),
      announce_(static_cast<std::size_t>(n)),
      head_(static_cast<std::size_t>(n)),
      next_free_(static_cast<std::size_t>(n)) {
  RCONS_ASSERT(table_ != nullptr);
  RCONS_ASSERT(n_ >= 1);
  // Dummy node at index 0: seq 1, carries the initial state (Appendix F).
  nodes_[0].seq.store(1, std::memory_order_seq_cst);
  nodes_[0].new_state.store(q0_, std::memory_order_seq_cst);
  for (int i = 0; i < n_; ++i) {
    announce_[static_cast<std::size_t>(i)].store(0, std::memory_order_seq_cst);
    head_[static_cast<std::size_t>(i)].store(0, std::memory_order_seq_cst);
    next_free_[static_cast<std::size_t>(i)].store(0, std::memory_order_seq_cst);
  }
}

int Universal::alloc_node(int process) {
  // Bump allocation from the process's private region. The counter is
  // advanced before the node is used, so a crash mid-invocation leaks at most
  // one node — never reuses one (no ABA on next cells).
  const int offset = next_free_[static_cast<std::size_t>(process)].fetch_add(1, std::memory_order_seq_cst);
  RCONS_ASSERT_MSG(offset < options_.nodes_per_process, "node pool exhausted");
  return 1 + process * options_.nodes_per_process + offset;
}

Universal::Completion Universal::invoke(int process, typesys::OpId op,
                                        CrashInjector& crash) {
  RCONS_ASSERT(process >= 0 && process < n_);
  // Figure 7, Universal(op): prepare and announce a fresh node.
  crash.point();
  const int nd = alloc_node(process);
  nodes_[static_cast<std::size_t>(nd)].op.store(op, std::memory_order_seq_cst);
  crash.point();
  announce_[static_cast<std::size_t>(process)].store(nd, std::memory_order_seq_cst);

  // Lines 121-125: make sure Head[i] is not too far out of date.
  for (int j = 0; j < n_; ++j) {
    crash.point();
    const int theirs = head_[static_cast<std::size_t>(j)].load(std::memory_order_seq_cst);
    const int mine = head_[static_cast<std::size_t>(process)].load(std::memory_order_seq_cst);
    if (nodes_[static_cast<std::size_t>(theirs)].seq.load(std::memory_order_seq_cst) >
        nodes_[static_cast<std::size_t>(mine)].seq.load(std::memory_order_seq_cst)) {
      head_[static_cast<std::size_t>(process)].store(theirs, std::memory_order_seq_cst);
    }
  }
  return apply_operation(process, crash);
}

Universal::Completion Universal::recover(int process, CrashInjector& crash) {
  RCONS_ASSERT(process >= 0 && process < n_);
  return apply_operation(process, crash);
}

Universal::Completion Universal::apply_operation(int process, CrashInjector& crash) {
  const auto pidx = static_cast<std::size_t>(process);
  for (;;) {
    crash.point();
    const int my = announce_[pidx].load(std::memory_order_seq_cst);
    Node& my_node = nodes_[static_cast<std::size_t>(my)];
    if (my_node.seq.load(std::memory_order_seq_cst) != 0) {
      return Completion{my, my_node.response.load(std::memory_order_seq_cst)};
    }

    const int h = head_[pidx].load(std::memory_order_seq_cst);
    Node& head = nodes_[static_cast<std::size_t>(h)];
    const long head_seq = head.seq.load(std::memory_order_seq_cst);

    // Round-robin helping: the process whose id matches the next position
    // gets priority (guarantees wait-freedom).
    const int priority = static_cast<int>((head_seq + 1) % n_);
    crash.point();
    const int candidate = announce_[static_cast<std::size_t>(priority)].load(std::memory_order_seq_cst);
    const int pointer =
        nodes_[static_cast<std::size_t>(candidate)].seq.load(std::memory_order_seq_cst) == 0 ? candidate : my;

    // Recoverable consensus on the next pointer.
    crash.point();
    const int winner = static_cast<int>(head.next.decide(pointer));
    Node& winner_node = nodes_[static_cast<std::size_t>(winner)];

    // Fill in the winner's fields (helpers race but write identical values,
    // all derived deterministically from the same predecessor); then publish
    // the sequence number LAST — apply_operation treats seq != 0 as "fields
    // final", and the head chain transfers the necessary ordering.
    const nvram::ClosedTable::Entry entry =
        table_->apply(head.new_state.load(std::memory_order_seq_cst), winner_node.op.load(std::memory_order_seq_cst));
    crash.point();
    winner_node.new_state.store(entry.next, std::memory_order_seq_cst);
    winner_node.response.store(entry.response, std::memory_order_seq_cst);
    if (options_.persistence != nullptr) options_.persistence->on_persist();
    crash.point();
    winner_node.seq.store(head_seq + 1, std::memory_order_seq_cst);
    if (options_.persistence != nullptr) options_.persistence->on_persist();
    crash.point();
    head_[pidx].store(winner, std::memory_order_seq_cst);
  }
}

int Universal::last_announced(int process) const {
  RCONS_ASSERT(process >= 0 && process < n_);
  return announce_[static_cast<std::size_t>(process)].load(std::memory_order_seq_cst);
}

std::vector<int> Universal::list_order() const {
  std::vector<int> order;
  int current = 0;
  for (;;) {
    const Value next = nodes_[static_cast<std::size_t>(current)].next.peek();
    if (next == typesys::kBottom) break;
    current = static_cast<int>(next);
    // Include only fully appended nodes (seq published).
    if (nodes_[static_cast<std::size_t>(current)].seq.load(std::memory_order_seq_cst) == 0) break;
    order.push_back(current);
  }
  return order;
}

Universal::NodeInfo Universal::node_info(int node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  return NodeInfo{n.op.load(std::memory_order_seq_cst), n.response.load(std::memory_order_seq_cst), n.new_state.load(std::memory_order_seq_cst),
                  n.seq.load(std::memory_order_seq_cst)};
}

}  // namespace rcons::universal
