// The recoverable universal construction RUniversal (paper Section 4,
// pseudocode in Appendix F / Figure 7).
//
// A wait-free, linearizable, *recoverable* implementation of any
// deterministic object type: operations are threaded onto a linked list whose
// next-pointers are decided by recoverable consensus; the list order is the
// linearization order. All structures live in (simulated) NVRAM. After a
// crash, the recovery function finishes the process's last announced
// operation — giving detectability: the process learns whether its in-flight
// operation took effect, and if so obtains its persisted response.
//
// Used without crash injection (and without a persistence cost model) this is
// exactly Herlihy's original universal construction, which serves as the
// halting-failure baseline in the benchmarks.
#ifndef RCONS_UNIVERSAL_UNIVERSAL_HPP
#define RCONS_UNIVERSAL_UNIVERSAL_HPP

#include <atomic>
#include <memory>
#include <vector>

#include "nvram/closed_table.hpp"
#include "nvram/nvram.hpp"
#include "runtime/crash.hpp"
#include "universal/rc_cell.hpp"

namespace rcons::universal {

class Universal {
 public:
  struct Options {
    int nodes_per_process = 1 << 14;
    const nvram::PersistenceModel* persistence = nullptr;
  };

  // Implements the type described by `table`, initialized to state `q0`, for
  // `n` processes.
  Universal(std::shared_ptr<const nvram::ClosedTable> table, typesys::StateId q0, int n,
            Options options);
  Universal(std::shared_ptr<const nvram::ClosedTable> table, typesys::StateId q0, int n)
      : Universal(std::move(table), q0, n, Options{}) {}

  struct Completion {
    int node = 0;
    typesys::Value response = 0;
  };

  // Executes `op` for `process`. May throw CrashException at injected crash
  // points; shared state stays consistent and the op may or may not have been
  // announced (see last_announced / recover).
  Completion invoke(int process, typesys::OpId op, runtime::CrashInjector& crash);

  // The recovery function (Figure 7, Recover): finishes the last announced
  // operation of `process` and returns its node and persisted response.
  Completion recover(int process, runtime::CrashInjector& crash);

  // Node id currently announced by `process` (0 = the dummy node; used by
  // callers for detectability: compare before/after a crash).
  int last_announced(int process) const;

  // --- certificate access (see certify.hpp) ---

  int num_processes() const { return n_; }
  typesys::StateId initial_state() const { return q0_; }
  const nvram::ClosedTable& table() const { return *table_; }

  // Node ids in list order, excluding the dummy node. Call only when
  // quiescent (no concurrent invocations).
  std::vector<int> list_order() const;

  struct NodeInfo {
    typesys::OpId op = 0;
    typesys::Value response = 0;
    typesys::StateId new_state = typesys::kNoState;
    long seq = 0;
  };
  NodeInfo node_info(int node) const;

 private:
  struct Node {
    std::atomic<long> seq{0};  // 0 = not yet appended; dummy holds 1
    std::atomic<typesys::OpId> op{0};
    std::atomic<typesys::StateId> new_state{typesys::kNoState};
    std::atomic<typesys::Value> response{typesys::kAck};
    RcCell next;
  };

  Completion apply_operation(int process, runtime::CrashInjector& crash);
  int alloc_node(int process);

  std::shared_ptr<const nvram::ClosedTable> table_;
  typesys::StateId q0_;
  int n_;
  Options options_;
  std::vector<Node> nodes_;                      // [0] is the dummy
  std::vector<std::atomic<int>> announce_;       // per process, node ids
  std::vector<std::atomic<int>> head_;           // per process, node ids
  std::vector<std::atomic<int>> next_free_;      // per-process bump allocator
};

}  // namespace rcons::universal

#endif  // RCONS_UNIVERSAL_UNIVERSAL_HPP
