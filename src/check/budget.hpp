// The one definition of "how hard may a checker try": crash model, crash
// budget, and the step/state bounds. Every execution backend — the sequential
// explorer, the parallel engine, the random runner, and scripted replay —
// consumes the same `Budget`, so the knobs cannot drift apart per backend
// (they used to be copied across ExplorerConfig / RandomRunConfig /
// PortfolioConfig).
//
// What counts as a *correct* outcome lives elsewhere: the typed
// `sim::PropertySet` (sim/properties.hpp), carried by `check::ScenarioSystem`
// and routed to the backends by the check:: facade. The budget's
// max_steps_per_run is the default bound the wait-freedom property inherits.
//
// All step/state budgets share one integer width (std::int64_t) so spec
// fields, configs, and comparisons cannot disagree on range.
//
// Backends ignore the fields that do not apply to them (documented on each
// field); the `check::` facade in check/check.hpp is the one entry point that
// routes a Budget to a backend.
#ifndef RCONS_CHECK_BUDGET_HPP
#define RCONS_CHECK_BUDGET_HPP

#include <cstdint>

namespace rcons::check {

enum class CrashModel {
  kIndependent,   // processes crash and recover individually (paper Section 3)
  kSimultaneous,  // all processes crash together (paper Section 2)
};

struct Budget {
  CrashModel crash_model = CrashModel::kIndependent;

  // Exhaustive backends place at most this many crash events per execution;
  // the random runner injects at most this many per run.
  int crash_budget = 2;

  // Recoverable wait-freedom bound: a single run (between crashes) of any
  // process may take at most this many steps before it must decide. The
  // kWaitFreedom property inherits this unless it carries its own bound.
  std::int64_t max_steps_per_run = 500;

  // Exhaustive backends stop (with an explicit "truncated" verdict) after
  // deduplicating this many global states. Ignored by random/replay.
  std::int64_t max_visited = 20'000'000;

  // max_visited as the unsigned cap the explorers' visited counters compare
  // against. Non-positive budgets mean "truncate immediately": the first
  // state inserted during expansion already exceeds the cap, so the explorers
  // stop right away — but they still return the typed truncated verdict
  // (StopReason::kVisitedCap) with whatever partial stats exist, never an
  // empty report (tests/check/robustness_test.cpp pins this edge).
  std::uint64_t visited_cap() const {
    return max_visited < 0 ? 0 : static_cast<std::uint64_t>(max_visited);
  }

  // Wall-clock budget in milliseconds; 0 = unlimited. The exhaustive
  // backends' resource sentinel flips a cooperative stop flag when the run
  // exceeds it, and the run returns a typed truncated verdict
  // (StopReason::kDeadline) with full partial stats — never an abort.
  // Ignored by random/replay (they are bounded by runs/schedule length).
  std::int64_t time_limit_ms = 0;

  // Resident-set budget in MiB; 0 = unlimited. Same sentinel contract as
  // time_limit_ms, with StopReason::kMemory. The sentinel samples the
  // process RSS (engine/sentinel.hpp), so the limit covers the whole
  // process, not just the explorer's tables.
  std::int64_t mem_limit_mb = 0;

  // Whether crash events may hit a process that already decided in its
  // current run (the paper's model allows it; some scenarios disable it).
  bool crash_after_decide = true;
};

}  // namespace rcons::check

#endif  // RCONS_CHECK_BUDGET_HPP
