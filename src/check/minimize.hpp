// Schedule minimization: shrink a violating schedule to a locally minimal
// one by greedy event deletion, verifying every candidate with sim::replay
// on a pristine copy of the system.
//
// The result keeps the *typed property* of the original violation (agreement,
// k-set agreement, validity, wait-freedom, at-most-once decide — the
// sim::Violation::property field) but may blame different processes or
// values — any shortest schedule that breaks the same property is a better
// regression artifact than the explorer's full path. Minimization reaches a
// 1-minimal schedule: deleting any single remaining event no longer
// reproduces the property violation.
#ifndef RCONS_CHECK_MINIMIZE_HPP
#define RCONS_CHECK_MINIMIZE_HPP

#include <cstddef>

#include "check/budget.hpp"
#include "check/check.hpp"
#include "sim/explorer_config.hpp"

namespace rcons::check {

struct MinimizeResult {
  sim::Violation violation;       // the minimized schedule + its typed property
  std::size_t original_events = 0;
  std::size_t removed_events = 0;
  int replays = 0;                // replay executions spent minimizing
};

// Greedily deletes events from `violation.schedule` while replay on a fresh
// copy of `system` still breaks the same property (system.properties is what
// replay verifies; the budget supplies the per-run step bound). A violation
// whose schedule does not reproduce (e.g. one found under symmetry reduction,
// or a property-less marker like the max_visited truncation notice) is
// returned unchanged.
MinimizeResult minimize(const ScenarioSystem& system, const Budget& budget,
                        const sim::Violation& violation);

}  // namespace rcons::check

#endif  // RCONS_CHECK_MINIMIZE_HPP
