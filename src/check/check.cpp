#include "check/check.hpp"

#include <chrono>
#include <utility>

#include "engine/parallel_explorer.hpp"
#include "obs/trace.hpp"
#include "sim/explorer.hpp"
#include "sim/random_runner.hpp"
#include "sim/replay.hpp"
#include "util/assert.hpp"

namespace rcons::check {

namespace {

using Clock = std::chrono::steady_clock;

sim::ExplorerConfig explorer_config(const CheckRequest& request) {
  sim::ExplorerConfig config;
  static_cast<Budget&>(config) = request.budget;
  config.properties = request.system.properties;
  config.node_repr = request.node_repr;
  config.symmetry_classes = request.system.symmetry_classes;
  config.obs = request.obs;
  config.sentinel_interval_ms = request.sentinel_interval_ms;
  config.watchdog_stall_intervals = request.watchdog_stall_intervals;
  config.checkpoint_path = request.checkpoint_path;
  config.checkpoint_every = request.checkpoint_every;
  config.checkpoint_label = request.checkpoint_label;
  config.resume = request.resume;
  config.fault = request.fault;
  return config;
}

CheckReport run_sequential(const CheckRequest& request, std::uint64_t max_visited,
                           const char* span_name = "explore") {
  sim::ExplorerConfig config = explorer_config(request);
  config.max_visited = static_cast<std::int64_t>(max_visited);
  sim::Explorer explorer(request.system.memory, request.system.processes, config);
  CheckReport report;
  report.strategy = Strategy::kSequentialDFS;
  {
    obs::Span span(request.obs.tracer, 0, span_name);
    report.violation = explorer.run();
  }
  report.stats = explorer.stats();
  report.threads_used = 1;
  report.clean = !report.violation.has_value();
  report.complete = !report.stats.truncated;
  return report;
}

CheckReport run_parallel(const CheckRequest& request,
                         std::uint64_t expected_states = 0) {
  engine::ParallelExplorerConfig config;
  static_cast<sim::ExplorerConfig&>(config) = explorer_config(request);
  config.num_threads = request.num_threads;
  config.shard_bits = request.shard_bits;
  config.expected_states = expected_states;
  engine::ParallelExplorer explorer(request.system.memory, request.system.processes,
                                    config);
  CheckReport report;
  report.strategy = Strategy::kParallelBFS;
  {
    obs::Span span(request.obs.tracer, 0, "explore");
    report.violation = explorer.run();
  }
  report.stats = explorer.stats();
  report.threads_used = explorer.num_threads();
  report.clean = !report.violation.has_value();
  report.complete = !report.stats.truncated;
  return report;
}

CheckReport run_randomized(const CheckRequest& request) {
  sim::RandomRunConfig config;
  static_cast<Budget&>(config) = request.budget;
  config.properties = request.system.properties;
  config.crash_per_mille = request.crash_per_mille;
  config.max_total_steps = request.max_total_steps;
  config.obs = request.obs;

  CheckReport report;
  report.strategy = Strategy::kRandomized;
  report.complete = false;  // sampling proves nothing exhaustively
  const int runs = request.runs < 1 ? 1 : request.runs;
  for (int run = 0; run < runs; ++run) {
    config.seed = request.seed + static_cast<std::uint64_t>(run);
    sim::RandomRunReport run_report = sim::run_random(
        request.system.memory, request.system.processes, config);
    report.runs += 1;
    report.total_steps += run_report.steps;
    report.total_crashes += run_report.crashes;
    report.outputs = std::move(run_report.outputs);
    if (run_report.violation.has_value()) {
      report.violation = sim::Violation{std::move(run_report.violation->description),
                                        run_report.violation->property,
                                        run_report.violation->param,
                                        std::move(run_report.schedule)};
      break;
    }
    // A run stopped by a violation is not "incomplete" — that field counts
    // runs that hit max_total_steps without everyone deciding.
    report.incomplete_runs += run_report.all_decided ? 0 : 1;
  }
  report.clean = !report.violation.has_value();
  return report;
}

CheckReport run_replay(const CheckRequest& request) {
  sim::ReplayReport replay_report =
      sim::replay(request.system.memory, request.system.processes, request.schedule,
                  request.system.properties, request.budget.max_steps_per_run,
                  request.obs);
  CheckReport report;
  report.strategy = Strategy::kReplay;
  report.complete = false;  // one schedule, not the whole graph
  report.outputs = std::move(replay_report.outputs);
  report.decisions = std::move(replay_report.decisions);
  if (replay_report.violation.has_value()) {
    report.violation = sim::Violation{std::move(replay_report.violation->description),
                                      replay_report.violation->property,
                                      replay_report.violation->param,
                                      request.schedule};
  }
  report.clean = !report.violation.has_value();
  return report;
}

CheckReport run_auto(const CheckRequest& request) {
  // Checkpointing and resume live in the parallel engine's compact
  // representation only — route straight there, skipping the probe (a probe
  // would waste the budget of exactly the long runs checkpoints exist for).
  if (!request.checkpoint_path.empty() || request.resume != nullptr) {
    return run_parallel(request);
  }
  // Estimate the state-space size with a bounded sequential probe: explore at
  // most `auto_probe_limit` states. A probe that finishes (verdict, clean or
  // not) IS the sequential check of a small instance, so return it directly;
  // a truncated probe means the space is large — hand the full budget to the
  // parallel engine.
  const std::uint64_t probe_limit =
      request.auto_probe_limit < request.budget.visited_cap()
          ? request.auto_probe_limit
          : request.budget.visited_cap();
  CheckReport probe = run_sequential(request, probe_limit, "probe");
  if (!probe.stats.truncated || probe_limit == request.budget.visited_cap()) {
    return probe;  // small instance, or the real budget was the probe budget
  }
  if (request.obs.tracer != nullptr) request.obs.tracer->instant(0, "auto_select");
  if (request.obs.metrics != nullptr) {
    // Keep the probe's count (it is real signal about the instance) but clear
    // its engine/store totals so the escalated run's counters match the
    // winning backend's ExplorerStats exactly.
    request.obs.metrics->counter("check.probe_visited").add(0, probe.stats.visited);
    request.obs.metrics->reset("engine.");
    request.obs.metrics->reset("store.");
  }
  // The probe's visited count is a lower bound on the state space — enough
  // signal for the engine to auto-tune shard_bits (engine::pick_shard_bits).
  return run_parallel(request, probe.stats.visited);
}

}  // namespace

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kAuto:
      return "auto";
    case Strategy::kSequentialDFS:
      return "sequential-dfs";
    case Strategy::kParallelBFS:
      return "parallel-bfs";
    case Strategy::kRandomized:
      return "randomized";
    case Strategy::kReplay:
      return "replay";
  }
  return "unknown";
}

CheckReport check(CheckRequest request) {
  RCONS_ASSERT_MSG(!request.system.processes.empty(),
                   "a CheckRequest needs at least one process");
  const auto start = Clock::now();
  CheckReport report;
  {
    obs::Span span(request.obs.tracer, 0, "check");
    switch (request.strategy) {
      case Strategy::kAuto:
        report = run_auto(request);
        break;
      case Strategy::kSequentialDFS:
        report = run_sequential(request, request.budget.max_visited);
        break;
      case Strategy::kParallelBFS:
        report = run_parallel(request);
        break;
      case Strategy::kRandomized:
        report = run_randomized(request);
        break;
      case Strategy::kReplay:
        report = run_replay(request);
        break;
    }
  }
  if (request.obs.metrics != nullptr) {
    report.metrics = request.obs.metrics->snapshot();
  }
  report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return report;
}

}  // namespace rcons::check
