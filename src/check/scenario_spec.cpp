#include "check/scenario_spec.hpp"

#include <fstream>
#include <sstream>

#include "typesys/zoo.hpp"

namespace rcons::check {

namespace {

// Parses a non-negative integer; returns false on anything else (sign,
// trailing junk, overflow past int64).
bool parse_int(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  std::int64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    if (value > (INT64_MAX - (ch - '0')) / 10) return false;
    value = value * 10 + (ch - '0');
  }
  out = value;
  return true;
}

}  // namespace

const char* scenario_algo_name(ScenarioAlgo algo) {
  switch (algo) {
    case ScenarioAlgo::kTeamConsensus:
      return "team";
    case ScenarioAlgo::kHaltingTournament:
      return "halting";
    case ScenarioAlgo::kNaiveRegister:
      return "naive-register";
    case ScenarioAlgo::kKSetTeamConsensus:
      return "k-set";
  }
  return "unknown";
}

sim::PropertySet spec_properties(const ScenarioSpec& spec) {
  if (spec.properties.empty()) return sim::PropertySet();  // the classic trio
  sim::PropertySet set = sim::PropertySet::none();
  for (const sim::PropertyKind kind : spec.properties) {
    std::int64_t param = 0;
    if (kind == sim::PropertyKind::kKSetAgreement) param = spec.k;
    set.add({kind, param});
  }
  return set;
}

// Parses one spec line already known to be non-blank / non-comment. Errors
// accumulate in `errors` (a line can have several); returns the spec built
// from the fields that did parse.
void parse_scenario_line(const std::string& line, ScenarioSpec& spec,
                         std::vector<std::string>& errors) {
  bool saw_type = false;
  std::istringstream tokens(line);
  std::string token;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      errors.push_back("expected key=value, got '" + token + "'");
      continue;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    std::int64_t number = 0;
    if (key == "type") {
      saw_type = true;  // even an invalid value counts as "type was given"
      if (value.empty()) {
        errors.push_back("type= needs a value");
        continue;
      }
      if (typesys::make_type(value) == nullptr) {
        errors.push_back("unknown type '" + value + "'");
        continue;
      }
      spec.type = value;
    } else if (key == "name") {
      spec.name = value;
    } else if (key == "model") {
      if (value == "independent") {
        spec.crash_model = CrashModel::kIndependent;
      } else if (value == "simultaneous") {
        spec.crash_model = CrashModel::kSimultaneous;
      } else {
        errors.push_back("model must be independent or simultaneous, got '" + value +
                         "'");
      }
    } else if (key == "n") {
      if (!parse_int(value, number) || number < 2 || number > INT32_MAX) {
        errors.push_back("n must be an integer >= 2, got '" + value + "'");
      } else {
        spec.n = static_cast<int>(number);
      }
    } else if (key == "budget") {
      if (!parse_int(value, number) || number > INT32_MAX) {
        errors.push_back("budget must be an integer >= 0, got '" + value + "'");
      } else {
        spec.crash_budget = static_cast<int>(number);
      }
    } else if (key == "max_steps") {
      if (!parse_int(value, number) || number < 1) {
        errors.push_back("max_steps must be an integer >= 1, got '" + value + "'");
      } else {
        spec.max_steps_per_run = number;
      }
    } else if (key == "max_visited") {
      if (!parse_int(value, number) || number < 1) {
        errors.push_back("max_visited must be an integer >= 1, got '" + value + "'");
      } else {
        spec.max_visited = number;
      }
    } else if (key == "time_limit") {
      if (!parse_int(value, number) || number < 1) {
        errors.push_back("time_limit must be an integer >= 1 (milliseconds), got '" +
                         value + "'");
      } else {
        spec.time_limit_ms = number;
      }
    } else if (key == "mem_limit") {
      if (!parse_int(value, number) || number < 1) {
        errors.push_back("mem_limit must be an integer >= 1 (MiB), got '" + value +
                         "'");
      } else {
        spec.mem_limit_mb = number;
      }
    } else if (key == "algo") {
      if (value == "team") {
        spec.algo = ScenarioAlgo::kTeamConsensus;
      } else if (value == "halting") {
        spec.algo = ScenarioAlgo::kHaltingTournament;
      } else if (value == "naive-register") {
        spec.algo = ScenarioAlgo::kNaiveRegister;
      } else if (value == "k-set") {
        spec.algo = ScenarioAlgo::kKSetTeamConsensus;
      } else {
        errors.push_back("algo must be team, halting, naive-register or k-set, got '" +
                         value + "'");
      }
    } else if (key == "k") {
      if (!parse_int(value, number) || number < 2 || number > INT32_MAX) {
        errors.push_back("k must be an integer >= 2, got '" + value + "'");
      } else {
        spec.k = static_cast<int>(number);
      }
    } else if (key == "properties") {
      spec.properties.clear();
      const auto agreementish = [](sim::PropertyKind kind) {
        return kind == sim::PropertyKind::kAgreement ||
               kind == sim::PropertyKind::kKSetAgreement;
      };
      std::size_t begin = 0;
      while (begin <= value.size()) {
        const std::size_t comma = value.find(',', begin);
        const std::string item = value.substr(
            begin, comma == std::string::npos ? std::string::npos : comma - begin);
        begin = comma == std::string::npos ? value.size() + 1 : comma + 1;
        const sim::PropertyKind kind = sim::property_from_name(item);
        if (kind == sim::PropertyKind::kNone) {
          errors.push_back("unknown property '" + item +
                           "' (agreement, k-set-agreement, validity, wait-freedom, "
                           "at-most-once)");
          continue;
        }
        bool item_bad = false;
        for (const sim::PropertyKind seen : spec.properties) {
          if (seen == kind) {
            errors.push_back("duplicate property '" + item + "'");
            item_bad = true;
            break;
          }
          if (agreementish(kind) && agreementish(seen)) {
            errors.push_back("agreement and k-set-agreement are mutually exclusive");
            item_bad = true;
            break;
          }
        }
        if (!item_bad) spec.properties.push_back(kind);
      }
    } else if (key == "symmetry") {
      if (value == "on") {
        spec.symmetry = true;
      } else if (value == "off") {
        spec.symmetry = false;
      } else {
        errors.push_back("symmetry must be on or off, got '" + value + "'");
      }
    } else {
      errors.push_back("unknown key '" + key + "'");
    }
  }
  if (!saw_type) errors.push_back("missing required type=");

  // Cross-field validation (fields may appear in any order, so this must run
  // after the whole line is consumed).
  bool wants_k_set_property = false;
  for (const sim::PropertyKind kind : spec.properties) {
    wants_k_set_property =
        wants_k_set_property || kind == sim::PropertyKind::kKSetAgreement;
  }
  if (wants_k_set_property && spec.k == 0) {
    errors.push_back("properties=k-set-agreement needs k=<int> >= 2");
  }
  if (spec.algo == ScenarioAlgo::kKSetTeamConsensus) {
    if (spec.k == 0) {
      errors.push_back("algo=k-set needs k=<int> >= 2");
    } else if (spec.k > spec.n) {
      errors.push_back("algo=k-set needs k <= n (every group must be non-empty)");
    }
  }
}

std::string format_scenario_line(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "type=" << spec.type << " n=" << spec.n << " model="
      << (spec.crash_model == CrashModel::kIndependent ? "independent"
                                                       : "simultaneous")
      << " budget=" << spec.crash_budget << " algo=" << scenario_algo_name(spec.algo);
  if (spec.k > 0) out << " k=" << spec.k;
  if (!spec.properties.empty()) {
    out << " properties=";
    for (std::size_t i = 0; i < spec.properties.size(); ++i) {
      if (i != 0) out << ",";
      out << sim::property_name(spec.properties[i]);
    }
  }
  if (spec.symmetry) out << " symmetry=on";
  if (spec.max_steps_per_run >= 0) out << " max_steps=" << spec.max_steps_per_run;
  if (spec.max_visited >= 0) out << " max_visited=" << spec.max_visited;
  if (spec.time_limit_ms >= 0) out << " time_limit=" << spec.time_limit_ms;
  if (spec.mem_limit_mb >= 0) out << " mem_limit=" << spec.mem_limit_mb;
  if (!spec.name.empty()) out << " name=" << spec.name;
  return out.str();
}

ScenarioParse parse_scenario_specs(std::istream& in) {
  ScenarioParse result;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    line_number += 1;
    // Strip a trailing comment, then decide whether anything is left.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    ScenarioSpec spec;
    std::vector<std::string> errors;
    parse_scenario_line(line, spec, errors);
    if (errors.empty()) {
      result.specs.push_back(std::move(spec));
    } else {
      for (const std::string& error : errors) {
        result.errors.push_back("line " + std::to_string(line_number) + ": " + error);
      }
    }
  }
  return result;
}

ScenarioParse parse_scenario_specs(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario_specs(in);
}

ScenarioParse load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ScenarioParse result;
    result.errors.push_back("cannot open scenario file: " + path);
    return result;
  }
  return parse_scenario_specs(in);
}

const char* default_scenario_spec_text() {
  return R"(
type=Sn(2) n=2 model=independent budget=3
type=Sn(2) n=2 model=simultaneous budget=3
type=Sn(3) n=3 model=independent budget=2
type=Sn(3) n=3 model=simultaneous budget=2
type=Tn(4) n=2 model=independent budget=3
type=Tn(4) n=2 model=simultaneous budget=3
type=compare-and-swap n=2 model=independent budget=3
type=compare-and-swap n=2 model=simultaneous budget=3
type=compare-and-swap n=3 model=independent budget=2
type=compare-and-swap n=3 model=simultaneous budget=2
type=sticky-bit n=3 model=independent budget=2
type=sticky-bit n=3 model=simultaneous budget=2
type=consensus-object n=2 model=independent budget=3
type=consensus-object n=2 model=simultaneous budget=3
type=readable-stack n=3 model=independent budget=2
type=readable-stack n=3 model=simultaneous budget=2
)";
}

}  // namespace rcons::check
