// Materializes the system a ScenarioSpec describes — the one place the spec
// grammar's `algo=` field is interpreted, shared by engine::Portfolio,
// check_cli, and the tests/corpus/ violation corpus so a spec line means the
// same system everywhere.
//
//   algo=team           — Figure 2 recoverable team consensus over the
//                         spec's type (asserts the type is n-recording);
//                         inputs 101 (team A) / 202 (team B).
//   algo=halting        — Ruppert's halting-model tournament over an
//                         n-discerning type; inputs 1..n. Deliberately not
//                         crash-safe: the halting-TAS agreement violation.
//   algo=naive-register — write-then-read register race; inputs 1..n. The
//                         spec's type is unused (by convention `register`).
//
// `symmetry=on` fills the returned system's symmetry_classes. Team consensus
// groups same-(team, op) roles; the halting tournament attaches its
// staged_symmetry_classes declaration (sound for any chain structure, though
// the binary tournament's distinct inputs and leaf splits make every class a
// singleton — see rc/staged.hpp); the naive register race has no declaration.
#ifndef RCONS_CHECK_SPEC_SYSTEM_HPP
#define RCONS_CHECK_SPEC_SYSTEM_HPP

#include <string>

#include "check/check.hpp"
#include "check/scenario_spec.hpp"

namespace rcons::check {

// Builds the spec's system. Asserts on specs whose type cannot support the
// algorithm (parse validation already guarantees the type exists).
ScenarioSystem build_spec_system(const ScenarioSpec& spec);

// The label shown for a spec in tables and generated file names: the spec's
// own name when given, otherwise "<algo>/<type>/n=N/<model>/c=B".
std::string spec_display_name(const ScenarioSpec& spec);

}  // namespace rcons::check

#endif  // RCONS_CHECK_SPEC_SYSTEM_HPP
