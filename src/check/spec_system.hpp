// Materializes the system a ScenarioSpec describes — the one place the spec
// grammar's `algo=` field is interpreted, shared by engine::Portfolio,
// check_cli, and the tests/corpus/ violation corpus so a spec line means the
// same system everywhere.
//
//   algo=team           — Figure 2 recoverable team consensus over the
//                         spec's type (asserts the type is n-recording);
//                         inputs 101 (team A) / 202 (team B).
//   algo=halting        — Ruppert's halting-model tournament over an
//                         n-discerning type; inputs 1..n. Deliberately not
//                         crash-safe: the halting-TAS agreement violation.
//   algo=naive-register — write-then-read register race; inputs 1..n. The
//                         spec's type is unused (by convention `register`).
//   algo=k-set          — k-group split consensus (rc/k_set.hpp): each group
//                         solves Figure 2 team consensus over the spec's
//                         type among its own members, so at most k distinct
//                         values are ever output. Clean for
//                         properties=k-set-agreement,... and violating for
//                         plain agreement — the verdict pair the typed
//                         property layer exists to express.
//
// The returned system carries the spec's `sim::PropertySet`
// (spec_properties(spec), i.e. `properties=`/`k=`, defaulting to the classic
// trio) with the construction's inputs as the validity set. `symmetry=on`
// fills symmetry_classes: team consensus groups same-(team, op) roles; the
// halting tournament and the k-set split attach their
// staged_symmetry_classes declarations; the naive register race has none.
#ifndef RCONS_CHECK_SPEC_SYSTEM_HPP
#define RCONS_CHECK_SPEC_SYSTEM_HPP

#include <string>

#include "check/check.hpp"
#include "check/scenario_spec.hpp"

namespace rcons::check {

// Builds the spec's system. Asserts on specs whose type cannot support the
// algorithm (parse validation already guarantees the type exists).
ScenarioSystem build_spec_system(const ScenarioSpec& spec);

// The label shown for a spec in tables and generated file names: the spec's
// own name when given, otherwise "<algo>/<type>/n=N/<model>/c=B" (plus
// "/k=K" for k-set specs and "/props=<list>" for non-default property sets).
std::string spec_display_name(const ScenarioSpec& spec);

}  // namespace rcons::check

#endif  // RCONS_CHECK_SPEC_SYSTEM_HPP
