#include "check/spec_system.hpp"

#include <sstream>
#include <utility>

#include "rc/discerning_consensus.hpp"
#include "rc/k_set.hpp"
#include "rc/naive_register.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"
#include "util/assert.hpp"

namespace rcons::check {

namespace {

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

ScenarioSystem build_team(const ScenarioSpec& spec) {
  auto type = typesys::make_type(spec.type);
  RCONS_ASSERT_MSG(type != nullptr, "spec type unknown to the zoo");
  rc::TeamConsensusSystem built =
      rc::make_team_consensus_system(*type, spec.n, kInputA, kInputB);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.properties.valid_outputs = {kInputA, kInputB};
  if (spec.symmetry) system.symmetry_classes = std::move(built.symmetry_classes);
  return system;
}

ScenarioSystem build_halting(const ScenarioSpec& spec) {
  auto type = typesys::make_type(spec.type);
  RCONS_ASSERT_MSG(type != nullptr, "spec type unknown to the zoo");
  std::vector<typesys::Value> inputs;
  for (int i = 0; i < spec.n; ++i) inputs.push_back(i + 1);
  rc::HaltingConsensusSystem built =
      rc::make_halting_consensus(*type, spec.n, inputs);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.properties.valid_outputs = std::move(inputs);
  if (spec.symmetry) system.symmetry_classes = std::move(built.symmetry_classes);
  return system;
}

ScenarioSystem build_naive_register(const ScenarioSpec& spec) {
  rc::NaiveRegisterSystem built = rc::make_naive_register_system(spec.n);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.properties.valid_outputs = std::move(built.inputs);
  return system;
}

ScenarioSystem build_k_set(const ScenarioSpec& spec) {
  auto type = typesys::make_type(spec.type);
  RCONS_ASSERT_MSG(type != nullptr, "spec type unknown to the zoo");
  RCONS_ASSERT_MSG(spec.k >= 2 && spec.k <= spec.n,
                   "algo=k-set needs 2 <= k <= n (parse validates this)");
  rc::KSetTeamSystem built = rc::make_k_set_team_consensus(*type, spec.k, spec.n);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.properties.valid_outputs = std::move(built.inputs);
  if (spec.symmetry) system.symmetry_classes = std::move(built.symmetry_classes);
  return system;
}

}  // namespace

ScenarioSystem build_spec_system(const ScenarioSpec& spec) {
  ScenarioSystem system;
  switch (spec.algo) {
    case ScenarioAlgo::kTeamConsensus:
      system = build_team(spec);
      break;
    case ScenarioAlgo::kHaltingTournament:
      system = build_halting(spec);
      break;
    case ScenarioAlgo::kNaiveRegister:
      system = build_naive_register(spec);
      break;
    case ScenarioAlgo::kKSetTeamConsensus:
      system = build_k_set(spec);
      break;
  }
  RCONS_ASSERT_MSG(!system.processes.empty(), "unknown scenario algo");

  // The spec's property list replaces the default trio; the construction's
  // inputs stay the validity set either way.
  if (!spec.properties.empty()) {
    sim::PropertySet properties = spec_properties(spec);
    properties.valid_outputs = std::move(system.properties.valid_outputs);
    system.properties = std::move(properties);
  }
  return system;
}

std::string spec_display_name(const ScenarioSpec& spec) {
  if (!spec.name.empty()) return spec.name;
  std::ostringstream name;
  name << scenario_algo_name(spec.algo) << "/" << spec.type << "/n=" << spec.n << "/"
       << (spec.crash_model == CrashModel::kIndependent ? "independent"
                                                        : "simultaneous")
       << "/c=" << spec.crash_budget;
  if (spec.k > 0) name << "/k=" << spec.k;
  if (!spec.properties.empty()) {
    name << "/props=";
    for (std::size_t i = 0; i < spec.properties.size(); ++i) {
      if (i != 0) name << ",";
      name << sim::property_name(spec.properties[i]);
    }
  }
  return name.str();
}

}  // namespace rcons::check
