#include "check/spec_system.hpp"

#include <sstream>
#include <utility>

#include "rc/discerning_consensus.hpp"
#include "rc/naive_register.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"
#include "util/assert.hpp"

namespace rcons::check {

namespace {

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

ScenarioSystem build_team(const ScenarioSpec& spec) {
  auto type = typesys::make_type(spec.type);
  RCONS_ASSERT_MSG(type != nullptr, "spec type unknown to the zoo");
  rc::TeamConsensusSystem built =
      rc::make_team_consensus_system(*type, spec.n, kInputA, kInputB);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.valid_outputs = {kInputA, kInputB};
  if (spec.symmetry) system.symmetry_classes = std::move(built.symmetry_classes);
  return system;
}

ScenarioSystem build_halting(const ScenarioSpec& spec) {
  auto type = typesys::make_type(spec.type);
  RCONS_ASSERT_MSG(type != nullptr, "spec type unknown to the zoo");
  std::vector<typesys::Value> inputs;
  for (int i = 0; i < spec.n; ++i) inputs.push_back(i + 1);
  rc::HaltingConsensusSystem built =
      rc::make_halting_consensus(*type, spec.n, inputs);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.valid_outputs = std::move(inputs);
  if (spec.symmetry) system.symmetry_classes = std::move(built.symmetry_classes);
  return system;
}

ScenarioSystem build_naive_register(const ScenarioSpec& spec) {
  rc::NaiveRegisterSystem built = rc::make_naive_register_system(spec.n);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.valid_outputs = std::move(built.inputs);
  return system;
}

}  // namespace

ScenarioSystem build_spec_system(const ScenarioSpec& spec) {
  switch (spec.algo) {
    case ScenarioAlgo::kTeamConsensus:
      return build_team(spec);
    case ScenarioAlgo::kHaltingTournament:
      return build_halting(spec);
    case ScenarioAlgo::kNaiveRegister:
      return build_naive_register(spec);
  }
  RCONS_ASSERT_MSG(false, "unknown scenario algo");
  return {};
}

std::string spec_display_name(const ScenarioSpec& spec) {
  if (!spec.name.empty()) return spec.name;
  std::ostringstream name;
  name << scenario_algo_name(spec.algo) << "/" << spec.type << "/n=" << spec.n << "/"
       << (spec.crash_model == CrashModel::kIndependent ? "independent"
                                                        : "simultaneous")
       << "/c=" << spec.crash_budget;
  return name.str();
}

}  // namespace rcons::check
