// Violation files (`.viol`): spec-like persistence of a violating schedule,
// the scenario it was found on, and the property it broke — the regression
// corpus format under tests/corpus/.
//
// Format (line-oriented, `#` comments and blank lines ignored):
//
//   # halting-model tournament over test-and-set, one crash
//   scenario type=test-and-set n=2 budget=1 algo=halting
//   property agreement
//   description agreement violated: process 1 decided 2 but an earlier ...
//   step 0
//   step 1
//   crash 0
//   crash-all
//
// `scenario` reuses the scenario-spec grammar (check/scenario_spec.hpp), so
// a violation file is self-contained: build_spec_system materializes the
// system, Strategy::kReplay re-executes the schedule, and the violation must
// reproduce with the same typed property. `property` carries the
// sim::PropertyKind name (plus its parameter when non-zero, e.g.
// `property k-set-agreement 2`); files written before the typed layer may
// omit the line, in which case the kind is recovered from the description's
// message prefix. check_cli writes these with --save-viol;
// tests/check/corpus_test.cpp replays every checked-in corpus file.
#ifndef RCONS_CHECK_VIOLATION_IO_HPP
#define RCONS_CHECK_VIOLATION_IO_HPP

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "check/scenario_spec.hpp"
#include "sim/explorer_config.hpp"
#include "sim/schedule.hpp"

namespace rcons::check {

struct ViolationFile {
  ScenarioSpec scenario;
  sim::PropertyKind property = sim::PropertyKind::kNone;
  std::int64_t property_param = 0;
  std::string description;
  std::vector<sim::ScheduleEvent> schedule;
};

struct ViolationParse {
  std::optional<ViolationFile> file;  // set iff errors is empty
  std::vector<std::string> errors;    // "line N: message"

  bool ok() const { return errors.empty(); }
};

// Renders `file` in the format above (with a generated header comment).
std::string format_violation_file(const ViolationFile& file);

ViolationParse parse_violation_file(std::istream& in);
ViolationParse parse_violation_file(const std::string& text);

// Reads and parses `path`; an unopenable file is reported as a parse error.
ViolationParse load_violation_file(const std::string& path);

// Writes format_violation_file(file) to `path`; false on I/O failure.
bool save_violation_file(const std::string& path, const ViolationFile& file);

}  // namespace rcons::check

#endif  // RCONS_CHECK_VIOLATION_IO_HPP
