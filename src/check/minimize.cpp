#include "check/minimize.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "sim/replay.hpp"

namespace rcons::check {

namespace {

// Replays `schedule` on a pristine copy and returns the typed violation when
// the same property breaks, nullopt otherwise.
std::optional<sim::PropertyViolation> reproduces(
    const ScenarioSystem& system, const Budget& budget,
    const std::vector<sim::ScheduleEvent>& schedule, sim::PropertyKind property) {
  sim::ReplayReport report =
      sim::replay(system.memory, system.processes, schedule, system.properties,
                  budget.max_steps_per_run);
  if (!report.violation.has_value()) return std::nullopt;
  if (report.violation->property != property) return std::nullopt;
  return std::move(report.violation);
}

}  // namespace

MinimizeResult minimize(const ScenarioSystem& system, const Budget& budget,
                        const sim::Violation& violation) {
  MinimizeResult result;
  result.violation = violation;
  result.original_events = violation.schedule.size();

  const sim::PropertyKind property = violation.property;
  if (property == sim::PropertyKind::kNone) {
    return result;  // truncation marker etc. — nothing to do
  }

  // The schedule must reproduce as-is before deletion means anything
  // (symmetry-reduced counterexamples may not — see check/check.hpp).
  result.replays += 1;
  if (!reproduces(system, budget, violation.schedule, property)) return result;

  std::vector<sim::ScheduleEvent> schedule = violation.schedule;
  std::vector<sim::ScheduleEvent> candidate;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < schedule.size();) {
      candidate = schedule;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      result.replays += 1;
      if (auto broken = reproduces(system, budget, candidate, property)) {
        schedule.swap(candidate);
        result.violation.description = std::move(broken->description);
        result.violation.property_param = broken->param;
        shrunk = true;
        // retry the same index — it now holds the next event
      } else {
        i += 1;
      }
    }
  }

  result.removed_events = result.original_events - schedule.size();
  result.violation.schedule = std::move(schedule);
  return result;
}

}  // namespace rcons::check
