// The unified checking facade: one entry point over all four execution
// backends.
//
//   CheckRequest  = ScenarioSystem (what to check) + Budget (how hard / what
//                   counts as correct) + Strategy (which backend)
//   check()       = run it
//   CheckReport   = merged superset of the per-backend reports, tagged with
//                   the strategy actually used and the wall time
//
// Strategies:
//   kSequentialDFS — sim::Explorer. Deterministic first-violation DFS; the
//                    right tool when a test pins a specific counterexample.
//   kParallelBFS   — engine::ParallelExplorer. Same deduplicated graph, all
//                    cores; reports the lexicographically lowest violation.
//   kRandomized    — sim::run_random, `runs` seeded executions (seed, seed+1,
//                    ...). Sampling, not proof: `complete` stays false.
//   kReplay        — sim::replay of `schedule`. Deterministic re-execution of
//                    one schedule — e.g. a Violation::schedule from any other
//                    strategy.
//   kAuto          — estimates the state-space size with a bounded sequential
//                    probe (up to `auto_probe_limit` states). If the probe
//                    finishes, the instance was small and the probe's verdict
//                    is returned as kSequentialDFS; otherwise the state space
//                    is large and the check re-runs on the parallel engine.
//
// Every violation carries its typed schedule, so a counterexample found by
// any strategy can be handed back to check() with kReplay (or sim::replay
// directly) for deterministic reproduction — replay verifies agreement,
// validity, and (given the same budget) the wait-freedom bound. The one
// exception is the "exceeded max_visited" truncation marker: it flags an
// exhausted search budget, not a property violation, and its schedule
// replays clean.
#ifndef RCONS_CHECK_CHECK_HPP
#define RCONS_CHECK_CHECK_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/budget.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/schedule.hpp"

namespace rcons::check {

// A materialized system under check: shared memory, the processes, the typed
// property set the outputs are judged against, and (optionally) the system's
// symmetry declaration.
struct ScenarioSystem {
  sim::Memory memory;
  std::vector<sim::Process> processes;

  // What counts as a correct outcome (sim/properties.hpp): the classic trio
  // (agreement, validity, wait-freedom) by default. The validity output set
  // lives inside (`properties.valid_outputs`) — this replaces the old
  // Budget.valid_outputs / system.valid_outputs dual fallback: the system is
  // the one owner of its correctness contract.
  sim::PropertySet properties;

  // Equivalence classes of interchangeable processes (identical programs on
  // identical inputs); empty disables symmetry reduction. The exhaustive
  // backends canonicalize same-class process blocks before fingerprinting, so
  // symmetric states deduplicate to one visited node (engine/node_store.hpp).
  // Verdicts are preserved; a violation schedule found under reduction is
  // valid up to a class permutation and may not replay verbatim.
  std::vector<int> symmetry_classes;
};

enum class Strategy {
  kAuto,
  kSequentialDFS,
  kParallelBFS,
  kRandomized,
  kReplay,
};

const char* strategy_name(Strategy strategy);

struct CheckRequest {
  ScenarioSystem system;
  Budget budget;  // how hard to try; system.properties says what "correct" means
  Strategy strategy = Strategy::kAuto;

  // kAuto: state spaces the bounded sequential probe fully explores within
  // this many states stay sequential; larger ones go to the parallel engine.
  std::uint64_t auto_probe_limit = 200'000;

  // Exhaustive strategies: node representation override (kAuto picks the
  // compact interned store whenever every program supports decode()).
  sim::NodeRepr node_repr = sim::NodeRepr::kAuto;

  // kParallelBFS (and the kAuto escalation path):
  int num_threads = 0;  // 0 = hardware concurrency
  int shard_bits = -1;  // -1 = auto-tune from thread count and probe size

  // kRandomized:
  std::uint64_t seed = 1;
  int runs = 1;  // seeded runs: seed, seed+1, ..., stopping at a violation
  int crash_per_mille = 50;
  std::int64_t max_total_steps = 1'000'000;

  // kReplay:
  std::vector<sim::ScheduleEvent> schedule;

  // Robustness layer (exhaustive strategies; see sim/explorer_config.hpp for
  // the field contracts). Durable checkpoints and resume require the parallel
  // engine's compact representation, so kAuto routes straight to the engine —
  // no probe — whenever checkpoint_path or resume is set. The budget's
  // time_limit_ms / mem_limit_mb ride along inside `budget`.
  int sentinel_interval_ms = 50;
  int watchdog_stall_intervals = 0;
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_label;
  const engine::CheckpointData* resume = nullptr;
  engine::FaultPlan* fault = nullptr;

  // Observability sinks (obs/hooks.hpp), forwarded to whichever backend runs:
  // a metrics registry receives the check./engine./store./random./replay.*
  // taxonomy (obs/session.cpp lists it), a tracer receives phase and worker
  // spans. Null members (the default) disable the instrumentation. The
  // registry is not reset by check() — callers sharing one registry across
  // checks reset between them; the kAuto escalation path does reset the
  // engine.* and store.* prefixes so the winning backend's totals are not
  // polluted by the probe's (the probe's count survives as
  // check.probe_visited).
  obs::Hooks obs;
};

// Merged superset of ExplorerStats / RandomRunReport / ReplayReport.
struct CheckReport {
  Strategy strategy = Strategy::kSequentialDFS;  // strategy actually executed
  bool clean = false;     // no violation found
  bool complete = false;  // exhaustive and untruncated: the verdict is a proof
  std::optional<sim::Violation> violation;

  // Exhaustive strategies (sequential / parallel / auto). `stats.store`
  // carries the compact node-store statistics — states interned, arena bytes
  // per node, canonicalization hit rate — when the run used the interned
  // representation (stats.compact).
  sim::ExplorerStats stats;

  // Worker threads the executed backend actually resolved and ran with:
  // 1 for the sequential strategies (and the kAuto probe verdict), the
  // engine's resolved count — request.num_threads or hardware concurrency —
  // for kParallelBFS and the kAuto escalation. 0 for non-exhaustive
  // strategies. Benchmarks report this, never the requested number.
  int threads_used = 0;

  // kRandomized:
  int runs = 0;             // seeded runs executed
  int incomplete_runs = 0;  // runs that hit max_total_steps before all decided
  std::int64_t total_steps = 0;
  int total_crashes = 0;

  // kReplay (and the violating/last run of kRandomized):
  std::vector<typesys::Value> outputs;
  std::vector<std::optional<typesys::Value>> decisions;

  // Final aggregated state of the request's metrics registry (empty when no
  // registry was installed). Taken after the backend finished, so e.g.
  // engine.visited_states here equals stats.visited for the exhaustive
  // strategies — tests/obs/metrics_test.cpp pins that equality.
  obs::MetricsSnapshot metrics;

  double seconds = 0.0;  // wall time of the whole check
};

// Runs the request through the selected backend. The request is consumed;
// strategies that execute several runs copy the pristine system per run.
CheckReport check(CheckRequest request);

}  // namespace rcons::check

#endif  // RCONS_CHECK_CHECK_HPP
