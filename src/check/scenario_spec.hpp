// File-driven scenario specs: a line-oriented text format describing
// model-checking scenarios, so portfolios sweep scenario sets without
// recompiling.
//
// Grammar (one scenario per line):
//
//   # comment — ignored, as are blank lines
//   type=Sn(2) n=2 model=independent budget=3
//   type=compare-and-swap n=3 model=simultaneous budget=2 name=cas-sim
//   type=Tn(4) n=2 budget=3 max_steps=400 max_visited=1000000
//   type=Sn(4) n=4 budget=1 symmetry=on
//   type=test-and-set n=2 budget=1 algo=halting
//   type=register n=2 budget=0 algo=naive-register
//
// Fields (whitespace-separated key=value pairs, any order):
//   type        (required) zoo type name — typesys::make_type must know it
//   n           process / role count, >= 2          (default 2)
//   model       independent | simultaneous          (default independent)
//   budget      crash budget, >= 0                  (default 2)
//   name        scenario label                      (default: generated)
//   max_steps   per-run wait-freedom bound override (default: inherit)
//   max_visited visited-state cap override          (default: inherit)
//   algo        team | halting | naive-register     (default team)
//   symmetry    on | off                            (default off)
//
// `algo` picks which construction build_spec_system materializes: the
// Figure 2 recoverable team consensus (clean under the type's recording
// level), Ruppert's halting-model tournament (breaks under independent
// crashes — the halting-TAS violation), or the naive write-then-read register
// race (breaks with no crashes). `symmetry=on` attaches the scenario's
// symmetry declaration so the explorers canonicalize interchangeable
// processes (engine/node_store.hpp).
//
// Parsing never aborts: malformed lines are collected as "line N: ..." errors
// and well-formed lines still produce specs, so a sweep can report every
// problem in a file at once.
#ifndef RCONS_CHECK_SCENARIO_SPEC_HPP
#define RCONS_CHECK_SCENARIO_SPEC_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/budget.hpp"

namespace rcons::check {

enum class ScenarioAlgo {
  kTeamConsensus,      // Figure 2 recoverable team consensus (default)
  kHaltingTournament,  // Ruppert's halting-model tournament (crash-unsafe)
  kNaiveRegister,      // write-then-read register race (interleaving-unsafe)
};

const char* scenario_algo_name(ScenarioAlgo algo);

struct ScenarioSpec {
  std::string name;  // empty = let the portfolio generate one
  std::string type;  // zoo type name, validated against typesys::make_type
  int n = 2;
  CrashModel crash_model = CrashModel::kIndependent;
  int crash_budget = 2;
  long max_steps_per_run = -1;         // -1 = inherit the sweep's budget
  std::int64_t max_visited = -1;       // -1 = inherit the sweep's budget
  ScenarioAlgo algo = ScenarioAlgo::kTeamConsensus;
  bool symmetry = false;  // attach the scenario's symmetry declaration

  bool operator==(const ScenarioSpec&) const = default;
};

struct ScenarioParse {
  std::vector<ScenarioSpec> specs;
  std::vector<std::string> errors;  // "line N: message"

  bool ok() const { return errors.empty(); }
};

ScenarioParse parse_scenario_specs(std::istream& in);
ScenarioParse parse_scenario_specs(const std::string& text);

// Parses a single scenario line (no comment stripping) into `spec`,
// appending problems to `errors`. Shared with the `.viol` violation-file
// parser (check/violation_io.hpp), whose `scenario` line uses this grammar.
void parse_scenario_line(const std::string& line, ScenarioSpec& spec,
                         std::vector<std::string>& errors);

// Renders `spec` back into one grammar line (the inverse of
// parse_scenario_line for every field the grammar covers).
std::string format_scenario_line(const ScenarioSpec& spec);

// Reads and parses `path`; a file that cannot be opened is reported as a
// parse error (specs empty).
ScenarioParse load_scenario_file(const std::string& path);

// The built-in default scenario set, in spec grammar. This is the single
// source for the no-argument `portfolio_sweep` run, and
// examples/scenarios/default.spec mirrors it (a test asserts they parse to
// the same scenarios).
const char* default_scenario_spec_text();

}  // namespace rcons::check

#endif  // RCONS_CHECK_SCENARIO_SPEC_HPP
