// File-driven scenario specs: a line-oriented text format describing
// model-checking scenarios, so portfolios sweep scenario sets without
// recompiling.
//
// Grammar (one scenario per line):
//
//   # comment — ignored, as are blank lines
//   type=Sn(2) n=2 model=independent budget=3
//   type=compare-and-swap n=3 model=simultaneous budget=2 name=cas-sim
//   type=Tn(4) n=2 budget=3 max_steps=400 max_visited=1000000
//   type=Sn(4) n=4 budget=1 symmetry=on
//   type=test-and-set n=2 budget=1 algo=halting
//   type=register n=2 budget=0 algo=naive-register
//   type=Sn(2) n=3 k=2 algo=k-set properties=k-set-agreement,validity,wait-freedom
//   type=Sn(2) n=3 k=2 algo=k-set properties=agreement,validity
//
// Fields (whitespace-separated key=value pairs, any order):
//   type        (required) zoo type name — typesys::make_type must know it
//   n           process / role count, >= 2          (default 2)
//   model       independent | simultaneous          (default independent)
//   budget      crash budget, >= 0                  (default 2)
//   name        scenario label                      (default: generated)
//   max_steps   per-run wait-freedom bound override (default: inherit)
//   max_visited visited-state cap override          (default: inherit)
//   time_limit  wall-clock budget override, ms      (default: inherit;
//               the resource sentinel returns a typed truncated verdict)
//   mem_limit   resident-set budget override, MiB   (default: inherit;
//               same sentinel contract, StopReason::kMemory)
//   algo        team | halting | naive-register | k-set   (default team)
//   k           group count for algo=k-set and the k of
//               k-set-agreement, 2 <= k             (required by both)
//   properties  comma-joined property list          (default: the classic trio
//               agreement,validity,wait-freedom; names are the
//               sim::property_name spellings, also: k-set-agreement,
//               at-most-once)
//   symmetry    on | off                            (default off)
//
// `algo` picks which construction build_spec_system materializes: the
// Figure 2 recoverable team consensus (clean under the type's recording
// level), Ruppert's halting-model tournament (breaks under independent
// crashes — the halting-TAS violation), the naive write-then-read register
// race (breaks with no crashes), or the k-group split consensus
// (rc::make_k_set_team_consensus — clean for (k,n)-set agreement, violating
// for plain agreement). `properties` selects which typed properties the
// check verifies (sim/properties.hpp); `symmetry=on` attaches the scenario's
// symmetry declaration so the explorers canonicalize interchangeable
// processes (engine/node_store.hpp).
//
// Parsing never aborts: malformed lines are collected as "line N: ..." errors
// and well-formed lines still produce specs, so a sweep can report every
// problem in a file at once.
#ifndef RCONS_CHECK_SCENARIO_SPEC_HPP
#define RCONS_CHECK_SCENARIO_SPEC_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/budget.hpp"
#include "sim/properties.hpp"

namespace rcons::check {

enum class ScenarioAlgo {
  kTeamConsensus,      // Figure 2 recoverable team consensus (default)
  kHaltingTournament,  // Ruppert's halting-model tournament (crash-unsafe)
  kNaiveRegister,      // write-then-read register race (interleaving-unsafe)
  kKSetTeamConsensus,  // k independent group consensus — (k,n)-set agreement
};

const char* scenario_algo_name(ScenarioAlgo algo);

struct ScenarioSpec {
  std::string name;  // empty = let the portfolio generate one
  std::string type;  // zoo type name, validated against typesys::make_type
  int n = 2;
  CrashModel crash_model = CrashModel::kIndependent;
  int crash_budget = 2;
  std::int64_t max_steps_per_run = -1;  // -1 = inherit the sweep's budget
  std::int64_t max_visited = -1;        // -1 = inherit the sweep's budget
  std::int64_t time_limit_ms = -1;      // -1 = inherit (0 would mean unlimited)
  std::int64_t mem_limit_mb = -1;       // -1 = inherit (0 would mean unlimited)
  ScenarioAlgo algo = ScenarioAlgo::kTeamConsensus;
  int k = 0;  // 0 = unset; required >= 2 by algo=k-set / k-set-agreement
  // Property kinds in the order listed (parameters come from `k` and the
  // budget); empty = the classic trio. spec_properties() materializes the
  // sim::PropertySet.
  std::vector<sim::PropertyKind> properties;
  bool symmetry = false;  // attach the scenario's symmetry declaration

  bool operator==(const ScenarioSpec&) const = default;
};

// The sim::PropertySet a spec's `properties`/`k` fields describe (the classic
// trio when the list is empty). The validity output set is filled in later by
// build_spec_system — it depends on the materialized system's inputs.
sim::PropertySet spec_properties(const ScenarioSpec& spec);

struct ScenarioParse {
  std::vector<ScenarioSpec> specs;
  std::vector<std::string> errors;  // "line N: message"

  bool ok() const { return errors.empty(); }
};

ScenarioParse parse_scenario_specs(std::istream& in);
ScenarioParse parse_scenario_specs(const std::string& text);

// Parses a single scenario line (no comment stripping) into `spec`,
// appending problems to `errors`. Shared with the `.viol` violation-file
// parser (check/violation_io.hpp), whose `scenario` line uses this grammar.
void parse_scenario_line(const std::string& line, ScenarioSpec& spec,
                         std::vector<std::string>& errors);

// Renders `spec` back into one grammar line (the inverse of
// parse_scenario_line for every field the grammar covers).
std::string format_scenario_line(const ScenarioSpec& spec);

// Reads and parses `path`; a file that cannot be opened is reported as a
// parse error (specs empty).
ScenarioParse load_scenario_file(const std::string& path);

// The built-in default scenario set, in spec grammar. This is the single
// source for the no-argument `portfolio_sweep` run, and
// examples/scenarios/default.spec mirrors it (a test asserts they parse to
// the same scenarios).
const char* default_scenario_spec_text();

}  // namespace rcons::check

#endif  // RCONS_CHECK_SCENARIO_SPEC_HPP
