#include "check/violation_io.hpp"

#include <fstream>
#include <sstream>
#include <utility>

namespace rcons::check {

std::string format_violation_file(const ViolationFile& file) {
  std::ostringstream out;
  out << "# rcons violation file — replay with check_cli or Strategy::kReplay\n";
  out << "scenario " << format_scenario_line(file.scenario) << "\n";
  if (file.property != sim::PropertyKind::kNone) {
    out << "property " << sim::property_name(file.property);
    if (file.property_param != 0) out << " " << file.property_param;
    out << "\n";
  }
  out << "description " << file.description << "\n";
  for (const sim::ScheduleEvent& event : file.schedule) {
    switch (event.kind) {
      case sim::ScheduleEvent::Kind::kStep:
        out << "step " << event.process << "\n";
        break;
      case sim::ScheduleEvent::Kind::kCrash:
        out << "crash " << event.process << "\n";
        break;
      case sim::ScheduleEvent::Kind::kCrashAll:
        out << "crash-all\n";
        break;
    }
  }
  return out.str();
}

ViolationParse parse_violation_file(std::istream& in) {
  ViolationParse result;
  ViolationFile file;
  bool saw_scenario = false;
  bool saw_description = false;
  // Event lines can precede the scenario line; remember where each process
  // index came from so out-of-range ones get a line diagnostic at the end.
  std::vector<std::pair<int, int>> event_lines;  // (line number, process)

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    line_number += 1;
    if (!line.empty() && line[0] == '#') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // Trim a trailing carriage return from files written on other platforms.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }

    auto error = [&](const std::string& message) {
      result.errors.push_back("line " + std::to_string(line_number) + ": " + message);
    };

    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    if (keyword == "scenario") {
      std::string rest;
      std::getline(tokens, rest);
      std::vector<std::string> spec_errors;
      parse_scenario_line(rest, file.scenario, spec_errors);
      for (const std::string& message : spec_errors) error(message);
      saw_scenario = true;
    } else if (keyword == "property") {
      std::string name;
      if (!(tokens >> name)) {
        error("property needs a name");
        continue;
      }
      const sim::PropertyKind kind = sim::property_from_name(name);
      if (kind == sim::PropertyKind::kNone) {
        error("unknown property '" + name + "'");
        continue;
      }
      file.property = kind;
      std::int64_t param = 0;
      if (tokens >> param) file.property_param = param;
    } else if (keyword == "description") {
      std::string rest;
      std::getline(tokens, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
      if (rest.empty()) {
        error("description needs text");
      } else {
        file.description = rest;
        saw_description = true;
      }
    } else if (keyword == "step" || keyword == "crash") {
      int process = -1;
      if (!(tokens >> process) || process < 0) {
        error(keyword + " needs a process index >= 0");
        continue;
      }
      file.schedule.push_back(keyword == "step" ? sim::ScheduleEvent::step(process)
                                                : sim::ScheduleEvent::crash(process));
      event_lines.emplace_back(line_number, process);
    } else if (keyword == "crash-all") {
      file.schedule.push_back(sim::ScheduleEvent::crash_all());
    } else {
      error("unknown keyword '" + keyword + "'");
    }
  }

  if (!saw_scenario) result.errors.push_back("missing scenario line");
  if (!saw_description) result.errors.push_back("missing description line");
  if (file.schedule.empty()) result.errors.push_back("schedule has no events");
  if (saw_scenario) {
    // Replay asserts on out-of-range indices; report them as parse errors
    // instead so a corrupted corpus file diagnoses rather than aborts.
    for (const auto& [event_line, process] : event_lines) {
      if (process >= file.scenario.n) {
        result.errors.push_back("line " + std::to_string(event_line) +
                                ": process " + std::to_string(process) +
                                " out of range for n=" +
                                std::to_string(file.scenario.n));
      }
    }
  }
  // Files written before violations were typed carry no property line;
  // recover the kind from the description's message prefix.
  if (file.property == sim::PropertyKind::kNone && saw_description) {
    file.property = sim::property_from_description(file.description);
  }
  if (result.errors.empty()) result.file = std::move(file);
  return result;
}

ViolationParse parse_violation_file(const std::string& text) {
  std::istringstream in(text);
  return parse_violation_file(in);
}

ViolationParse load_violation_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ViolationParse result;
    result.errors.push_back("cannot open violation file: " + path);
    return result;
  }
  return parse_violation_file(in);
}

bool save_violation_file(const std::string& path, const ViolationFile& file) {
  std::ofstream out(path);
  if (!out) return false;
  out << format_violation_file(file);
  return static_cast<bool>(out);
}

}  // namespace rcons::check
