// Precomputed transition closure for lock-free atomic objects.
//
// The thread runtime realizes an "atomic object of type T" as a CAS loop over
// an interned state id. That requires the full set of states reachable from
// the initial states under the candidate operations to be known up front, so
// the transition function can be an immutable table shared by all threads
// without synchronization. The closure is finite for every type the paper's
// constructions run on (T_n, S_n, test-and-set, CAS, sticky bit, bounded
// containers); the builder enforces a cap and reports overflow.
#ifndef RCONS_NVRAM_CLOSED_TABLE_HPP
#define RCONS_NVRAM_CLOSED_TABLE_HPP

#include <memory>
#include <vector>

#include "typesys/transition_cache.hpp"

namespace rcons::nvram {

class ClosedTable {
 public:
  struct Entry {
    typesys::StateId next = typesys::kNoState;
    typesys::Value response = typesys::kAck;
  };

  // Builds the closure of `cache`'s candidate initial states under all of its
  // candidate operations. Throws via assertion if more than `max_states`
  // states are discovered. State ids are shared with `cache` (so witness sets
  // like Q_A remain valid).
  static std::shared_ptr<const ClosedTable> build(
      std::shared_ptr<typesys::TransitionCache> cache, std::size_t max_states = 200'000);

  int num_ops() const { return num_ops_; }
  std::size_t num_states() const { return entries_.size() / static_cast<std::size_t>(num_ops_); }

  // Safe for concurrent use: purely a table lookup.
  Entry apply(typesys::StateId state, typesys::OpId op) const;

  const typesys::TransitionCache& cache() const { return *cache_; }

 private:
  ClosedTable() = default;

  std::shared_ptr<typesys::TransitionCache> cache_;
  int num_ops_ = 0;
  std::vector<Entry> entries_;  // [state * num_ops + op]
};

}  // namespace rcons::nvram

#endif  // RCONS_NVRAM_CLOSED_TABLE_HPP
