#include "nvram/closed_table.hpp"

#include "util/assert.hpp"

namespace rcons::nvram {

std::shared_ptr<const ClosedTable> ClosedTable::build(
    std::shared_ptr<typesys::TransitionCache> cache, std::size_t max_states) {
  RCONS_ASSERT(cache != nullptr);
  auto table = std::shared_ptr<ClosedTable>(new ClosedTable());
  table->cache_ = cache;
  table->num_ops_ = cache->num_ops();

  // BFS over state ids; the cache interns new states densely, so the frontier
  // is just "ids we have not expanded yet".
  std::vector<std::uint8_t> expanded;
  std::vector<typesys::StateId> frontier = cache->initial_states();
  auto ensure = [&](typesys::StateId s) {
    const auto idx = static_cast<std::size_t>(s);
    if (idx >= expanded.size()) expanded.resize(idx + 1, 0);
  };
  for (const typesys::StateId s : frontier) ensure(s);

  std::size_t cursor = 0;
  while (cursor < frontier.size()) {
    const typesys::StateId s = frontier[cursor++];
    ensure(s);
    if (expanded[static_cast<std::size_t>(s)] != 0) continue;
    expanded[static_cast<std::size_t>(s)] = 1;
    RCONS_ASSERT_MSG(cache->discovered_states() <= max_states,
                     "transition closure exceeds max_states; type unsuitable for "
                     "the lock-free runtime");
    for (typesys::OpId op = 0; op < table->num_ops_; ++op) {
      const auto step = cache->apply(s, op);
      ensure(step.next);
      if (expanded[static_cast<std::size_t>(step.next)] == 0) {
        frontier.push_back(step.next);
      }
    }
  }

  // Materialize the dense table for every discovered state.
  const std::size_t num_states = cache->discovered_states();
  table->entries_.resize(num_states * static_cast<std::size_t>(table->num_ops_));
  for (std::size_t s = 0; s < num_states; ++s) {
    for (typesys::OpId op = 0; op < table->num_ops_; ++op) {
      const auto step = cache->apply(static_cast<typesys::StateId>(s), op);
      table->entries_[s * static_cast<std::size_t>(table->num_ops_) +
                      static_cast<std::size_t>(op)] = Entry{step.next, step.response};
    }
  }
  return table;
}

ClosedTable::Entry ClosedTable::apply(typesys::StateId state, typesys::OpId op) const {
  RCONS_ASSERT(op >= 0 && op < num_ops_);
  const std::size_t index =
      static_cast<std::size_t>(state) * static_cast<std::size_t>(num_ops_) +
      static_cast<std::size_t>(op);
  RCONS_ASSERT(index < entries_.size());
  return entries_[index];
}

}  // namespace rcons::nvram
