// Simulated non-volatile shared memory for the real-thread runtime.
//
// The paper's model: shared memory survives crashes, per-process local state
// does not. In the thread runtime a "process crash" unwinds the worker's
// stack (CrashException) and discards all of its locals; these cells and
// objects simply persist. An optional persistence-cost model charges a busy
// wait per persistent store, so benchmarks can expose the qualitative cost a
// real NVRAM flush would add (the paper itself makes no such measurement; the
// knob defaults to zero, i.e. the paper's idealized model).
#ifndef RCONS_NVRAM_NVRAM_HPP
#define RCONS_NVRAM_NVRAM_HPP

#include <atomic>
#include <chrono>
#include <cstdint>

#include "nvram/closed_table.hpp"
#include "typesys/core.hpp"

namespace rcons::nvram {

// All cells use seq_cst: the paper's shared-memory model is sequentially
// consistent, and simulated base-object steps must form one total order.

// Busy-wait persistence model shared by the cells of one heap.
struct PersistenceModel {
  long delay_ns = 0;

  void on_persist() const {
    if (delay_ns <= 0) return;
    const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay_ns);
    while (std::chrono::steady_clock::now() < until) {
    }
  }
};

// A non-volatile atomic word.
class NvRegister {
 public:
  explicit NvRegister(typesys::Value initial = typesys::kBottom,
                      const PersistenceModel* persistence = nullptr)
      : value_(initial), persistence_(persistence) {}

  typesys::Value read() const { return value_.load(std::memory_order_seq_cst); }

  void write(typesys::Value value) {
    value_.store(value, std::memory_order_seq_cst);
    if (persistence_ != nullptr) persistence_->on_persist();
  }

  // Returns the previous value; installs `desired` only if the cell held
  // `expected`. (The primitive behind the RC cell of Section 4.)
  typesys::Value compare_and_swap(typesys::Value expected, typesys::Value desired) {
    typesys::Value current = expected;
    if (value_.compare_exchange_strong(current, desired, std::memory_order_seq_cst,
                                       std::memory_order_seq_cst)) {
      if (persistence_ != nullptr) persistence_->on_persist();
      return expected;
    }
    return current;
  }

 private:
  std::atomic<typesys::Value> value_;
  const PersistenceModel* persistence_;
};

// A non-volatile atomic object of an arbitrary deterministic type, realized
// as a CAS loop over a precomputed transition table (lock-free, linearizable
// at the CAS that installs the successor state).
class NvObject {
 public:
  NvObject(std::shared_ptr<const ClosedTable> table, typesys::StateId q0,
           const PersistenceModel* persistence = nullptr)
      : table_(std::move(table)), state_(q0), persistence_(persistence) {}

  typesys::Value apply(typesys::OpId op) {
    typesys::StateId current = state_.load(std::memory_order_seq_cst);
    for (;;) {
      const ClosedTable::Entry entry = table_->apply(current, op);
      if (state_.compare_exchange_weak(current, entry.next, std::memory_order_seq_cst,
                                       std::memory_order_seq_cst)) {
        if (persistence_ != nullptr) persistence_->on_persist();
        return entry.response;
      }
      // current reloaded by compare_exchange_weak; retry.
    }
  }

  // The Read operation of a readable type.
  typesys::StateId read_state() const { return state_.load(std::memory_order_seq_cst); }

  void reset(typesys::StateId q0) { state_.store(q0, std::memory_order_seq_cst); }

  const ClosedTable& table() const { return *table_; }

 private:
  std::shared_ptr<const ClosedTable> table_;
  std::atomic<typesys::StateId> state_;
  const PersistenceModel* persistence_;
};

}  // namespace rcons::nvram

#endif  // RCONS_NVRAM_NVRAM_HPP
