// Memoized transition function over interned states.
#ifndef RCONS_TYPESYS_TRANSITION_CACHE_HPP
#define RCONS_TYPESYS_TRANSITION_CACHE_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "typesys/object_type.hpp"
#include "typesys/state_space.hpp"

namespace rcons::typesys {

// Binds an ObjectType to a fixed n-process candidate operation list and
// memoizes apply() over interned states. Both the hierarchy checkers and the
// simulator share one cache per (type, n) so each distinct (state, op)
// transition is computed by the sequential specification exactly once.
class TransitionCache {
 public:
  struct Step {
    StateId next = kNoState;
    Value response = kAck;
  };

  // Non-owning: the caller must keep `type` alive for the cache's lifetime.
  TransitionCache(const ObjectType& type, int num_processes);

  // Shared ownership: safe when the type is created ad hoc (e.g. from
  // zoo::make_type) and the cache outlives the creating scope.
  TransitionCache(std::shared_ptr<const ObjectType> type, int num_processes);

  const ObjectType& type() const { return *type_; }
  int num_processes() const { return num_processes_; }

  int num_ops() const { return static_cast<int>(ops_.size()); }
  const Operation& op(OpId id) const { return ops_[static_cast<std::size_t>(id)]; }

  // Candidate initial states, pre-interned.
  const std::vector<StateId>& initial_states() const { return initial_states_; }

  StateId intern(const StateRepr& repr) { return space_.intern(repr); }
  const StateRepr& repr(StateId id) const { return space_.repr(id); }
  std::size_t discovered_states() const { return space_.size(); }

  // Applies candidate operation `op` to interned state `s` (memoized).
  Step apply(StateId s, OpId op);

 private:
  std::shared_ptr<const ObjectType> owner_;  // may be null (non-owning mode)
  const ObjectType* type_;
  int num_processes_;
  std::vector<Operation> ops_;
  std::vector<StateId> initial_states_;
  StateSpace space_;
  std::unordered_map<std::uint64_t, Step> memo_;
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_TRANSITION_CACHE_HPP
