// Interning table mapping canonical state encodings to dense ids.
#ifndef RCONS_TYPESYS_STATE_SPACE_HPP
#define RCONS_TYPESYS_STATE_SPACE_HPP

#include <unordered_map>
#include <vector>

#include "typesys/core.hpp"
#include "util/hash.hpp"

namespace rcons::typesys {

// Assigns dense StateIds to state encodings on first sight. The hierarchy
// checkers and the simulator both run on StateIds so their hot loops compare
// and hash fixed-size integers instead of vectors.
class StateSpace {
 public:
  StateSpace() = default;

  // Returns the id for `repr`, interning it if new.
  StateId intern(const StateRepr& repr);

  // The encoding for an id previously returned by intern().
  const StateRepr& repr(StateId id) const;

  std::size_t size() const { return reprs_.size(); }

 private:
  std::unordered_map<StateRepr, StateId, util::VecHash> ids_;
  std::vector<StateRepr> reprs_;
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_STATE_SPACE_HPP
