#include "typesys/transition_cache.hpp"

#include "util/assert.hpp"

namespace rcons::typesys {

TransitionCache::TransitionCache(const ObjectType& type, int num_processes)
    : type_(&type), num_processes_(num_processes), ops_(type.operations(num_processes)) {
  RCONS_ASSERT(num_processes >= 1);
  RCONS_ASSERT_MSG(!ops_.empty(), "type must offer at least one update operation");
  for (const StateRepr& q : type.initial_states(num_processes)) {
    initial_states_.push_back(space_.intern(q));
  }
  RCONS_ASSERT_MSG(!initial_states_.empty(), "type must offer a candidate initial state");
}

TransitionCache::TransitionCache(std::shared_ptr<const ObjectType> type,
                                 int num_processes)
    : TransitionCache(*type, num_processes) {
  owner_ = std::move(type);
}

TransitionCache::Step TransitionCache::apply(StateId s, OpId op) {
  RCONS_ASSERT(op >= 0 && op < num_ops());
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(op));
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  Transition t = type_->apply(space_.repr(s), ops_[static_cast<std::size_t>(op)]);
  Step step{space_.intern(t.next), t.response};
  memo_.emplace(key, step);
  return step;
}

}  // namespace rcons::typesys
