#include "typesys/state_space.hpp"

#include "util/assert.hpp"

namespace rcons::typesys {

StateId StateSpace::intern(const StateRepr& repr) {
  auto [it, inserted] = ids_.try_emplace(repr, static_cast<StateId>(reprs_.size()));
  if (inserted) reprs_.push_back(repr);
  return it->second;
}

const StateRepr& StateSpace::repr(StateId id) const {
  RCONS_ASSERT(id >= 0 && static_cast<std::size_t>(id) < reprs_.size());
  return reprs_[static_cast<std::size_t>(id)];
}

}  // namespace rcons::typesys
