#include "typesys/types/tn.hpp"

#include "util/assert.hpp"

namespace rcons::typesys {

namespace {
// winner encoding inside StateRepr {winner, row, col}
constexpr Value kWinnerBottom = 0;
constexpr Value kWinnerA = 1;
constexpr Value kWinnerB = 2;

constexpr int kOpA = 0;
constexpr int kOpB = 1;
}  // namespace

TnType::TnType(int n) : n_(n), row_mod_((n + 1) / 2), col_mod_(n / 2) {
  RCONS_ASSERT_MSG(n >= 4, "T_n is defined for n >= 4 (Proposition 19)");
}

std::vector<Operation> TnType::operations(int /*n*/) const {
  return {{kOpA, 0, "opA"}, {kOpB, 0, "opB"}};
}

std::vector<StateRepr> TnType::initial_states(int /*n*/) const {
  // The full (finite) state space, so checker verdicts about T_n are exact.
  std::vector<StateRepr> states;
  states.push_back({kWinnerBottom, 0, 0});
  for (Value winner : {kWinnerA, kWinnerB}) {
    for (Value row = 0; row < row_mod_; ++row) {
      for (Value col = 0; col < col_mod_; ++col) {
        states.push_back({winner, row, col});
      }
    }
  }
  return states;
}

Transition TnType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 3);
  Value winner = state[0];
  Value row = state[1];
  Value col = state[2];
  if (op.kind == kOpA) {
    if (winner == kWinnerBottom) {
      return Transition{{kWinnerA, row, col}, kRespA};
    }
    const Value result = winner == kWinnerA ? kRespA : kRespB;
    col = (col + 1) % col_mod_;
    if (col == 0) {
      winner = kWinnerBottom;
      row = 0;
    }
    return Transition{{winner, row, col}, result};
  }
  RCONS_ASSERT(op.kind == kOpB);
  if (winner == kWinnerBottom) {
    return Transition{{kWinnerB, row, col}, kRespB};
  }
  const Value result = winner == kWinnerA ? kRespA : kRespB;
  row = (row + 1) % row_mod_;
  if (row == 0) {
    winner = kWinnerBottom;
    col = 0;
  }
  return Transition{{winner, row, col}, result};
}

std::string TnType::format_state(const StateRepr& state) const {
  RCONS_ASSERT(state.size() == 3);
  const char* w = state[0] == kWinnerA ? "A" : state[0] == kWinnerB ? "B" : "⊥";
  return std::string("(") + w + "," + std::to_string(state[1]) + "," +
         std::to_string(state[2]) + ")";
}

}  // namespace rcons::typesys
