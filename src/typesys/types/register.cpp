#include "typesys/types/register.hpp"

#include "util/assert.hpp"

namespace rcons::typesys {

std::vector<Operation> RegisterType::operations(int n) const {
  std::vector<Operation> ops;
  ops.reserve(static_cast<std::size_t>(n));
  for (int v = 1; v <= n; ++v) {
    ops.push_back({/*kind=*/0, /*arg=*/v, "Write(" + std::to_string(v) + ")"});
  }
  return ops;
}

std::vector<StateRepr> RegisterType::initial_states(int n) const {
  std::vector<StateRepr> states;
  states.push_back({kBottom});
  for (int v = 1; v <= n; ++v) states.push_back({v});
  return states;
}

Transition RegisterType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 1);
  return Transition{{op.arg}, kAck};
}

}  // namespace rcons::typesys
