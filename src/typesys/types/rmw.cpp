#include "typesys/types/rmw.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcons::typesys {

// --- TestAndSet ---

std::vector<Operation> TestAndSetType::operations(int /*n*/) const {
  return {{0, 0, "TestAndSet"}};
}

std::vector<StateRepr> TestAndSetType::initial_states(int /*n*/) const {
  return {{0}, {1}};
}

Transition TestAndSetType::apply(const StateRepr& state, const Operation& /*op*/) const {
  RCONS_ASSERT(state.size() == 1);
  return Transition{{1}, state[0]};
}

// --- FetchAndIncrement ---

std::vector<Operation> FetchAndIncrementType::operations(int /*n*/) const {
  return {{0, 0, "FetchAndIncrement"}};
}

std::vector<StateRepr> FetchAndIncrementType::initial_states(int /*n*/) const {
  return {{0}};
}

Transition FetchAndIncrementType::apply(const StateRepr& state,
                                        const Operation& /*op*/) const {
  RCONS_ASSERT(state.size() == 1);
  const Value next = modulus_ > 0 ? (state[0] + 1) % modulus_ : state[0] + 1;
  return Transition{{next}, state[0]};
}

// --- Swap ---

std::vector<Operation> SwapType::operations(int n) const {
  std::vector<Operation> ops;
  for (int v = 1; v <= n; ++v) {
    ops.push_back({0, v, "Swap(" + std::to_string(v) + ")"});
  }
  return ops;
}

std::vector<StateRepr> SwapType::initial_states(int n) const {
  std::vector<StateRepr> states;
  states.push_back({kBottom});
  for (int v = 1; v <= n; ++v) states.push_back({v});
  return states;
}

Transition SwapType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 1);
  return Transition{{op.arg}, state[0]};
}

// --- CompareAndSwap ---

std::vector<Operation> CompareAndSwapType::operations(int n) const {
  std::vector<Operation> ops;
  for (int v = 1; v <= n; ++v) {
    ops.push_back({0, v, "CAS(⊥," + std::to_string(v) + ")"});
  }
  return ops;
}

std::vector<StateRepr> CompareAndSwapType::initial_states(int n) const {
  std::vector<StateRepr> states;
  states.push_back({kBottom});
  for (int v = 1; v <= n; ++v) states.push_back({v});
  return states;
}

Transition CompareAndSwapType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 1);
  if (state[0] == kBottom) return Transition{{op.arg}, kBottom};
  return Transition{{state[0]}, state[0]};
}

// --- StickyBit ---

std::vector<Operation> StickyBitType::operations(int /*n*/) const {
  return {{0, 0, "Stick(0)"}, {0, 1, "Stick(1)"}};
}

std::vector<StateRepr> StickyBitType::initial_states(int /*n*/) const {
  return {{kBottom}, {0}, {1}};
}

Transition StickyBitType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 1);
  const Value stored = state[0] == kBottom ? op.arg : state[0];
  return Transition{{stored}, stored};
}

// --- ConsensusObject ---

std::vector<Operation> ConsensusObjectType::operations(int n) const {
  std::vector<Operation> ops;
  for (int v = 1; v <= n; ++v) {
    ops.push_back({0, v, "Propose(" + std::to_string(v) + ")"});
  }
  return ops;
}

std::vector<StateRepr> ConsensusObjectType::initial_states(int n) const {
  std::vector<StateRepr> states;
  states.push_back({kBottom});
  for (int v = 1; v <= n; ++v) states.push_back({v});
  return states;
}

Transition ConsensusObjectType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 1);
  const Value decided = state[0] == kBottom ? op.arg : state[0];
  return Transition{{decided}, decided};
}

// --- Counter ---

std::vector<Operation> CounterType::operations(int /*n*/) const {
  return {{0, 0, "Increment"}};
}

std::vector<StateRepr> CounterType::initial_states(int /*n*/) const {
  return {{0}};
}

Transition CounterType::apply(const StateRepr& state, const Operation& /*op*/) const {
  RCONS_ASSERT(state.size() == 1);
  return Transition{{state[0] + 1}, kAck};
}

// --- MaxRegister ---

std::vector<Operation> MaxRegisterType::operations(int n) const {
  std::vector<Operation> ops;
  for (int v = 1; v <= n; ++v) {
    ops.push_back({0, v, "WriteMax(" + std::to_string(v) + ")"});
  }
  return ops;
}

std::vector<StateRepr> MaxRegisterType::initial_states(int /*n*/) const {
  return {{0}};
}

Transition MaxRegisterType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 1);
  return Transition{{std::max(state[0], op.arg)}, kAck};
}

}  // namespace rcons::typesys
