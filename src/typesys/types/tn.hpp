// The type family T_n from Proposition 19 / Figure 5 of the paper.
//
// T_n separates the consensus and recoverable-consensus hierarchies: it is
// n-discerning (so cons(T_n) = n by Theorem 3) but not (n-1)-recording (so,
// by Theorem 14, T_n cannot solve RC among n processes; rcons(T_n) < n).
#ifndef RCONS_TYPESYS_TYPES_TN_HPP
#define RCONS_TYPESYS_TYPES_TN_HPP

#include "typesys/object_type.hpp"

namespace rcons::typesys {

// States: (winner, row, col) with winner ∈ {⊥, A, B}, 0 ≤ row < ⌈n/2⌉,
// 0 ≤ col < ⌊n/2⌋, where winner = ⊥ only in the single state (⊥,0,0).
// Two update operations opA and opB (Figure 5, lines 53–80):
//
//   opA: if winner = ⊥ then winner ← A; return A
//        else r ← winner; col ← (col+1) mod ⌊n/2⌋;
//             if col = 0 then { winner ← ⊥; row ← 0 }; return r
//   opB: symmetric with row, modulus ⌈n/2⌉.
//
// The object records who updated first, but "forgets" (returns to (⊥,0,0))
// once opA is performed more than ⌊n/2⌋ times or opB more than ⌈n/2⌉ times —
// exactly often enough that n-1 crash-prone processes can erase the evidence,
// while n crash-free processes cannot.
class TnType final : public ObjectType {
 public:
  // Encoded responses of opA/opB when a winner had already been installed.
  static constexpr Value kRespA = 1;
  static constexpr Value kRespB = 2;

  explicit TnType(int n);

  int family_n() const { return n_; }

  std::string name() const override { return "Tn(" + std::to_string(n_) + ")"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
  std::string format_state(const StateRepr& state) const override;

 private:
  int n_;
  int row_mod_;  // ⌈n/2⌉
  int col_mod_;  // ⌊n/2⌋
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_TYPES_TN_HPP
