// The type family S_n from Proposition 21 / Figure 6 of the paper.
//
// S_n populates every level of both hierarchies with equality:
// rcons(S_n) = cons(S_n) = n. It is n-recording (so rcons ≥ n by Theorem 8)
// but not (n+1)-discerning (so cons ≤ n by Theorem 3).
#ifndef RCONS_TYPESYS_TYPES_SN_HPP
#define RCONS_TYPESYS_TYPES_SN_HPP

#include "typesys/object_type.hpp"

namespace rcons::typesys {

// States: (winner, row) with winner ∈ {A, B}, 0 ≤ row < n. Two update
// operations (Figure 6, lines 81–96), both returning ack — the type is only
// useful through its readable state:
//
//   opA: if (winner,row) = (B,0) then winner ← A
//        else { winner ← B; row ← 0 }
//   opB: row ← (row+1) mod n; if row = 0 then winner ← B
//
// From q0 = (B,0), the winner component records which operation came first;
// the object forgets (returns to (B,0)) only after opA runs twice or opB runs
// n times — more operations than n processes performing one update each (one
// opA + at most n-1 opB's) can produce.
class SnType final : public ObjectType {
 public:
  static constexpr Value kWinnerA = 1;
  static constexpr Value kWinnerB = 2;

  explicit SnType(int n);

  int family_n() const { return n_; }

  std::string name() const override { return "Sn(" + std::to_string(n_) + ")"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
  std::string format_state(const StateRepr& state) const override;

 private:
  int n_;
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_TYPES_SN_HPP
