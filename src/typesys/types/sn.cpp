#include "typesys/types/sn.hpp"

#include "util/assert.hpp"

namespace rcons::typesys {

namespace {
constexpr int kOpA = 0;
constexpr int kOpB = 1;
}  // namespace

SnType::SnType(int n) : n_(n) {
  RCONS_ASSERT_MSG(n >= 2, "S_n is defined for n >= 2 (Proposition 21)");
}

std::vector<Operation> SnType::operations(int /*n*/) const {
  return {{kOpA, 0, "opA"}, {kOpB, 0, "opB"}};
}

std::vector<StateRepr> SnType::initial_states(int /*n*/) const {
  // The full (finite) state space, so checker verdicts about S_n are exact.
  std::vector<StateRepr> states;
  for (Value winner : {kWinnerA, kWinnerB}) {
    for (Value row = 0; row < n_; ++row) states.push_back({winner, row});
  }
  return states;
}

Transition SnType::apply(const StateRepr& state, const Operation& op) const {
  RCONS_ASSERT(state.size() == 2);
  Value winner = state[0];
  Value row = state[1];
  if (op.kind == kOpA) {
    if (winner == kWinnerB && row == 0) {
      return Transition{{kWinnerA, row}, kAck};
    }
    return Transition{{kWinnerB, 0}, kAck};
  }
  RCONS_ASSERT(op.kind == kOpB);
  row = (row + 1) % n_;
  if (row == 0) winner = kWinnerB;
  return Transition{{winner, row}, kAck};
}

std::string SnType::format_state(const StateRepr& state) const {
  RCONS_ASSERT(state.size() == 2);
  return std::string("(") + (state[0] == kWinnerA ? "A" : "B") + "," +
         std::to_string(state[1]) + ")";
}

}  // namespace rcons::typesys
