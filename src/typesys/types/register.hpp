// Read/write register: the weakest readable type (consensus number 1).
#ifndef RCONS_TYPESYS_TYPES_REGISTER_HPP
#define RCONS_TYPESYS_TYPES_REGISTER_HPP

#include "typesys/object_type.hpp"

namespace rcons::typesys {

// State: {value}. Operations: Write(v) for one distinct v per process.
// Writes overwrite unconditionally, so neither responses nor the final state
// can reveal which process wrote first: the register is neither 2-discerning
// nor 2-recording (cons = rcons = 1).
class RegisterType final : public ObjectType {
 public:
  std::string name() const override { return "register"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_TYPES_REGISTER_HPP
