#include "typesys/types/containers.hpp"

#include "util/assert.hpp"

namespace rcons::typesys {

namespace {
constexpr int kPush = 0;  // also Enqueue
constexpr int kPop = 1;   // also Dequeue
}  // namespace

// --- StackType ---

std::vector<Operation> StackType::operations(int n) const {
  std::vector<Operation> ops;
  for (int v = 1; v <= n; ++v) {
    ops.push_back({kPush, v, "Push(" + std::to_string(v) + ")"});
  }
  ops.push_back({kPop, 0, "Pop"});
  return ops;
}

std::vector<StateRepr> StackType::initial_states(int /*n*/) const {
  // Empty, a one-element stack (the classic 2-consensus witness pops it) and
  // a two-element stack. Not exhaustive: the state space is unbounded.
  return {StateRepr{}, StateRepr{1}, StateRepr{2, 1}};
}

Transition StackType::apply(const StateRepr& state, const Operation& op) const {
  if (op.kind == kPush) {
    if (state.size() >= static_cast<std::size_t>(capacity_)) {
      return Transition{state, kAck};
    }
    StateRepr next = state;
    next.push_back(op.arg);
    return Transition{std::move(next), kAck};
  }
  RCONS_ASSERT(op.kind == kPop);
  if (state.empty()) return Transition{state, kBottom};
  StateRepr next = state;
  const Value top = next.back();
  next.pop_back();
  return Transition{std::move(next), top};
}

// --- QueueType ---

std::vector<Operation> QueueType::operations(int n) const {
  std::vector<Operation> ops;
  for (int v = 1; v <= n; ++v) {
    ops.push_back({kPush, v, "Enqueue(" + std::to_string(v) + ")"});
  }
  ops.push_back({kPop, 0, "Dequeue"});
  return ops;
}

std::vector<StateRepr> QueueType::initial_states(int /*n*/) const {
  return {StateRepr{}, StateRepr{1}, StateRepr{1, 2}};
}

Transition QueueType::apply(const StateRepr& state, const Operation& op) const {
  if (op.kind == kPush) {
    if (state.size() >= static_cast<std::size_t>(capacity_)) {
      return Transition{state, kAck};
    }
    StateRepr next = state;
    next.push_back(op.arg);
    return Transition{std::move(next), kAck};
  }
  RCONS_ASSERT(op.kind == kPop);
  if (state.empty()) return Transition{state, kBottom};
  StateRepr next(state.begin() + 1, state.end());
  return Transition{std::move(next), state.front()};
}

}  // namespace rcons::typesys
