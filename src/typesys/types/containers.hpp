// Bounded stack and queue types (Appendix H of the paper).
//
// The paper's Appendix H proves rcons(stack) = 1 for the *standard*
// (non-readable) stack via a valency argument, while cons(stack) = 2
// (Herlihy). The bare sequential specification of a stack nonetheless
// satisfies the n-recording property for every n (distinct pushes record the
// full arrival order in the state), which makes the stack the repository's
// showcase for why Theorem 8 requires readability: a readable stack has
// rcons = ∞, the standard stack has rcons = 1. Both variants share one
// specification and differ only in readable().
#ifndef RCONS_TYPESYS_TYPES_CONTAINERS_HPP
#define RCONS_TYPESYS_TYPES_CONTAINERS_HPP

#include "typesys/object_type.hpp"

namespace rcons::typesys {

// State: the stack contents bottom-to-top. Push(v) appends; Pop removes the
// top and returns it (⊥ on empty). Push on a full stack (capacity
// `capacity_`) is a silent no-op so the specification stays total.
class StackType final : public ObjectType {
 public:
  explicit StackType(bool readable, int capacity = 12)
      : readable_(readable), capacity_(capacity) {}

  std::string name() const override {
    return readable_ ? "readable-stack" : "stack";
  }
  bool readable() const override { return readable_; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;

 private:
  bool readable_;
  int capacity_;
};

// State: the queue contents front-to-back. Enqueue(v) appends at the back;
// Dequeue removes the front and returns it (⊥ on empty).
class QueueType final : public ObjectType {
 public:
  explicit QueueType(bool readable, int capacity = 12)
      : readable_(readable), capacity_(capacity) {}

  std::string name() const override {
    return readable_ ? "readable-queue" : "queue";
  }
  bool readable() const override { return readable_; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;

 private:
  bool readable_;
  int capacity_;
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_TYPES_CONTAINERS_HPP
