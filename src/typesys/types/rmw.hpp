// Classic read-modify-write types used throughout the consensus-hierarchy
// literature. Each is given by its sequential specification; expected
// discerning/recording numbers are asserted in tests/hierarchy/.
#ifndef RCONS_TYPESYS_TYPES_RMW_HPP
#define RCONS_TYPESYS_TYPES_RMW_HPP

#include "typesys/object_type.hpp"

namespace rcons::typesys {

// State: {bit}. One operation TestAndSet: returns the old bit, sets it to 1.
// cons = 2 (Herlihy). The post-update state is always {1}, so the state
// records nothing about who updated first: not 2-recording.
class TestAndSetType final : public ObjectType {
 public:
  std::string name() const override { return "test-and-set"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

// State: {counter}. FetchAndIncrement returns the old counter value.
// cons = 2; the state only counts operations (commutative), so not 2-recording.
// A non-zero `modulus` wraps the counter, making the state space finite (as
// required by the lock-free runtime's precomputed transition closure).
class FetchAndIncrementType final : public ObjectType {
 public:
  explicit FetchAndIncrementType(Value modulus = 0) : modulus_(modulus) {}

  std::string name() const override { return "fetch-and-increment"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;

 private:
  Value modulus_;
};

// State: {value}. Swap(v) returns the old value and installs v.
// cons = 2; the final state is the last swapped value (overwriting), so the
// state forgets the first updater: not 2-recording.
class SwapType final : public ObjectType {
 public:
  std::string name() const override { return "swap"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

// State: {value}. CompareAndSwap(expected=⊥, v): installs v if the current
// value is ⊥ and returns the old value. cons = ∞, and the first successful
// CAS is recorded in the state forever: n-recording for every n, hence
// rcons = ∞ as well (the paper's headline "RC is no harder" witness).
class CompareAndSwapType final : public ObjectType {
 public:
  std::string name() const override { return "compare-and-swap"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

// State: {value ∈ {⊥,0,1}}. Stick(v): if unset, sets to v; always returns the
// (possibly just-set) stored value. cons = rcons = ∞.
class StickyBitType final : public ObjectType {
 public:
  std::string name() const override { return "sticky-bit"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

// State: {decision}. Propose(v): decides v if undecided; returns the decision.
// The idealized consensus object; cons = rcons = ∞.
class ConsensusObjectType final : public ObjectType {
 public:
  std::string name() const override { return "consensus-object"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

// State: {count}. Increment returns ack. Commutative and response-free:
// cons = rcons = 1.
class CounterType final : public ObjectType {
 public:
  std::string name() const override { return "counter"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

// State: {max}. WriteMax(v) returns ack. Commutative: cons = rcons = 1.
class MaxRegisterType final : public ObjectType {
 public:
  std::string name() const override { return "max-register"; }
  bool readable() const override { return true; }
  std::vector<Operation> operations(int n) const override;
  std::vector<StateRepr> initial_states(int n) const override;
  Transition apply(const StateRepr& state, const Operation& op) const override;
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_TYPES_RMW_HPP
