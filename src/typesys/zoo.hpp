// The type zoo: every object type studied in this repository, together with
// its expected hierarchy numbers from the paper and the literature. Tests
// assert the checkers reproduce these; the bench harness prints them as the
// Figure 1 / hierarchy table.
#ifndef RCONS_TYPESYS_ZOO_HPP
#define RCONS_TYPESYS_ZOO_HPP

#include <memory>
#include <string>
#include <vector>

#include "typesys/object_type.hpp"

namespace rcons::typesys {

// Sentinel for "n-discerning / n-recording for every n we can check"
// (consensus number ∞ in the paper's terms).
inline constexpr int kUnbounded = -1;

struct ZooEntry {
  std::unique_ptr<ObjectType> type;

  // Largest n (>= 2) for which the type is n-discerning, or 1 if it is not
  // even 2-discerning, or kUnbounded. For readable types this equals cons(T)
  // by Theorem 3.
  int expected_max_discerning = 1;

  // Largest n for which the type is n-recording (same conventions). For
  // readable types, Theorems 8 and 14 bound rcons(T) within
  // [max_recording, max_recording + 1].
  int expected_max_recording = 1;

  // Where the expected numbers come from (paper section or literature).
  std::string provenance;
};

// Builds the full zoo. `family_n` picks the instantiation of the T_n / S_n
// families included (the benches sweep this).
std::vector<ZooEntry> make_zoo(int family_n = 5);

// Convenience: a single zoo type by name (nullptr if unknown). Names follow
// ObjectType::name(): "register", "test-and-set", "Tn(6)", "Sn(4)", ...
std::unique_ptr<ObjectType> make_type(const std::string& name);

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_ZOO_HPP
