// Core vocabulary for deterministic sequential object specifications.
//
// The paper (Section 3) works with deterministic shared object types: a
// sequential specification gives, for each (state, operation) pair, a unique
// response and successor state. We encode abstract states canonically as
// vectors of 64-bit values so that types with structurally different state
// (a register's value, a stack's contents, T_n's (winner,row,col) triple) all
// flow through the same checker and simulator machinery.
#ifndef RCONS_TYPESYS_CORE_HPP
#define RCONS_TYPESYS_CORE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rcons::typesys {

// Values stored in states, passed as operation arguments and returned as
// operation responses.
using Value = std::int64_t;

// Canonical encoding of an object's abstract state. Equal states must have
// equal encodings (the checkers compare states for equality only, never
// interpret the contents).
using StateRepr = std::vector<Value>;

// Distinguished values. kBottom encodes the paper's ⊥ (unwritten register,
// empty-pop response, unset sticky bit). kAck is the information-free
// response of operations like Write.
inline constexpr Value kBottom = INT64_MIN / 2;
inline constexpr Value kAck = INT64_MIN / 2 + 1;

// An update operation with any argument baked in ("Write(42)", "Push(1)",
// "opA"). Definition 2 and Definition 4 quantify over such closed operations.
struct Operation {
  int kind = 0;       // type-private operation code
  Value arg = 0;      // type-private argument (ignored by nullary operations)
  std::string name;   // human-readable rendering, e.g. "Write(42)"
};

// Result of applying one operation to one state.
struct Transition {
  StateRepr next;
  Value response = kAck;
};

// Index of an operation within a type's candidate operation list.
using OpId = int;

// Dense id of an interned state within a StateSpace.
using StateId = std::int32_t;
inline constexpr StateId kNoState = -1;

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_CORE_HPP
