// Deterministic (optionally readable) shared-object types.
#ifndef RCONS_TYPESYS_OBJECT_TYPE_HPP
#define RCONS_TYPESYS_OBJECT_TYPE_HPP

#include <string>
#include <vector>

#include "typesys/core.hpp"

namespace rcons::typesys {

// A deterministic shared object type, given by its sequential specification
// (Section 3 of the paper).
//
// The candidate operation list and candidate initial states are parameterized
// by the number of processes `n` taking part in an analysis: types whose
// operations carry arguments (Write(v), Push(v), CAS(0,v)) supply one distinct
// argument per process, which is sufficient for the paper's properties by the
// usual symmetry argument (processes can only compare values for equality, so
// witnesses are invariant under renaming of arguments). For the finite types
// that carry the paper's named results (T_n, S_n, test-and-set, sticky bit)
// the candidate sets are exhaustive and checker verdicts are exact.
class ObjectType {
 public:
  virtual ~ObjectType() = default;

  ObjectType(const ObjectType&) = delete;
  ObjectType& operator=(const ObjectType&) = delete;

  // Short unique name, e.g. "register", "Tn(6)".
  virtual std::string name() const = 0;

  // True if the type is equipped with a Read operation returning the entire
  // state without changing it. Readability is what makes Theorem 3 / Theorem 8
  // applicable; the bare sequential spec (and hence the checkers) is the same
  // either way.
  virtual bool readable() const = 0;

  // Candidate update operations for an n-process analysis.
  virtual std::vector<Operation> operations(int n) const = 0;

  // Candidate initial states q0 for an n-process analysis.
  virtual std::vector<StateRepr> initial_states(int n) const = 0;

  // The sequential specification: applies `op` to `state`, returning the
  // successor state and the response. Must be deterministic and total.
  virtual Transition apply(const StateRepr& state, const Operation& op) const = 0;

  // Human-readable rendering of a state (for witnesses, traces, diagrams).
  virtual std::string format_state(const StateRepr& state) const;

 protected:
  ObjectType() = default;
};

}  // namespace rcons::typesys

#endif  // RCONS_TYPESYS_OBJECT_TYPE_HPP
