#include "typesys/zoo.hpp"

#include <utility>

#include "typesys/types/containers.hpp"
#include "typesys/types/register.hpp"
#include "typesys/types/rmw.hpp"
#include "typesys/types/sn.hpp"
#include "typesys/types/tn.hpp"
#include "util/assert.hpp"

namespace rcons::typesys {

std::vector<ZooEntry> make_zoo(int family_n) {
  RCONS_ASSERT(family_n >= 4);
  std::vector<ZooEntry> zoo;
  auto add = [&zoo](std::unique_ptr<ObjectType> type, int disc, int rec,
                    std::string provenance) {
    zoo.push_back(ZooEntry{std::move(type), disc, rec, std::move(provenance)});
  };

  add(std::make_unique<RegisterType>(), 1, 1, "Herlihy 1991: cons(register)=1");
  add(std::make_unique<CounterType>(), 1, 1, "commutative, ack responses");
  add(std::make_unique<MaxRegisterType>(), 1, 1, "commutative, ack responses");
  add(std::make_unique<TestAndSetType>(), 2, 1,
      "Herlihy 1991: cons(TAS)=2; state forgets first updater");
  add(std::make_unique<FetchAndIncrementType>(), 2, 1,
      "Herlihy 1991: cons(F&I)=2; state is a pure count");
  add(std::make_unique<SwapType>(), 2, 1,
      "Herlihy 1991: cons(swap)=2; last write wins in state");
  add(std::make_unique<CompareAndSwapType>(), kUnbounded, kUnbounded,
      "Herlihy 1991: cons(CAS)=inf; first CAS recorded forever");
  add(std::make_unique<StickyBitType>(), kUnbounded, kUnbounded,
      "Plotkin sticky bit: cons=inf; recording trivially");
  add(std::make_unique<ConsensusObjectType>(), kUnbounded, kUnbounded,
      "idealized consensus object");
  // Bare stack/queue state machines satisfy n-recording for every n (pushes
  // record arrival order), but only the readable variants may invoke
  // Theorem 8; Appendix H shows rcons(standard stack) = 1.
  add(std::make_unique<StackType>(/*readable=*/false), kUnbounded, kUnbounded,
      "paper App. H: rcons(stack)=1 — Thm 8 inapplicable (not readable)");
  add(std::make_unique<StackType>(/*readable=*/true), kUnbounded, kUnbounded,
      "readable stack: state records push order; rcons=inf");
  add(std::make_unique<QueueType>(/*readable=*/false), kUnbounded, kUnbounded,
      "paper App. H: rcons(queue)=1 — Thm 8 inapplicable (not readable)");
  add(std::make_unique<QueueType>(/*readable=*/true), kUnbounded, kUnbounded,
      "readable queue: state records enqueue order; rcons=inf");
  add(std::make_unique<TnType>(family_n), family_n, family_n - 2,
      "paper Prop. 19: n-discerning, not (n-1)-recording; Thm 16: (n-2)-recording");
  add(std::make_unique<SnType>(family_n), family_n, family_n,
      "paper Prop. 21: n-recording, not (n+1)-discerning");
  return zoo;
}

std::unique_ptr<ObjectType> make_type(const std::string& name) {
  if (name == "register") return std::make_unique<RegisterType>();
  if (name == "counter") return std::make_unique<CounterType>();
  if (name == "max-register") return std::make_unique<MaxRegisterType>();
  if (name == "test-and-set") return std::make_unique<TestAndSetType>();
  if (name == "fetch-and-increment") return std::make_unique<FetchAndIncrementType>();
  if (name == "swap") return std::make_unique<SwapType>();
  if (name == "compare-and-swap") return std::make_unique<CompareAndSwapType>();
  if (name == "sticky-bit") return std::make_unique<StickyBitType>();
  if (name == "consensus-object") return std::make_unique<ConsensusObjectType>();
  if (name == "stack") return std::make_unique<StackType>(false);
  if (name == "readable-stack") return std::make_unique<StackType>(true);
  if (name == "queue") return std::make_unique<QueueType>(false);
  if (name == "readable-queue") return std::make_unique<QueueType>(true);
  if (name.rfind("Tn(", 0) == 0 && name.back() == ')') {
    return std::make_unique<TnType>(std::stoi(name.substr(3, name.size() - 4)));
  }
  if (name.rfind("Sn(", 0) == 0 && name.back() == ')') {
    return std::make_unique<SnType>(std::stoi(name.substr(3, name.size() - 4)));
  }
  return nullptr;
}

}  // namespace rcons::typesys
