#include "typesys/object_type.hpp"

#include <sstream>

namespace rcons::typesys {

std::string ObjectType::format_state(const StateRepr& state) const {
  std::ostringstream out;
  out << '(';
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (i > 0) out << ',';
    if (state[i] == kBottom) {
      out << "⊥";
    } else {
      out << state[i];
    }
  }
  out << ')';
  return out.str();
}

}  // namespace rcons::typesys
