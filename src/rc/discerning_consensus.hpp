// Wait-free consensus from an n-discerning readable type in the HALTING
// failure model — Ruppert's construction behind Theorem 3, which the paper
// uses as its baseline notion of "consensus is solvable".
//
// Each process writes its input to its team's register, applies its witness
// operation to the shared object, then reads the object's state and decides
// based on whether (its operation's response, the observed state) lies in
// R_{A,i} or R_{B,i} — disjoint by Definition 2.
//
// This algorithm is deliberately NOT crash-safe: a crashed process loses its
// operation's response and may apply its operation twice on re-run,
// destroying the evidence. The tests demonstrate exactly this failure under
// independent crashes (the gap the paper's n-recording property closes).
#ifndef RCONS_RC_DISCERNING_CONSENSUS_HPP
#define RCONS_RC_DISCERNING_CONSENSUS_HPP

#include <memory>
#include <vector>

#include "hierarchy/discerning.hpp"
#include "hierarchy/qsets.hpp"
#include "rc/staged.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"

namespace rcons::rc {

struct DiscerningPlan {
  std::shared_ptr<typesys::TransitionCache> cache;
  typesys::StateId q0 = typesys::kNoState;
  std::vector<int> team;
  std::vector<typesys::OpId> ops;
  // R_{A, role} per role; the deciding test is membership of (resp, state).
  std::vector<hierarchy::RespStateSet> r_a_by_role;
  int team_size[2] = {0, 0};

  int n() const { return static_cast<int>(team.size()); }

  static std::shared_ptr<const DiscerningPlan> create(
      std::shared_ptr<typesys::TransitionCache> cache,
      const hierarchy::DiscerningWitness& witness);
};

struct DiscerningInstance {
  std::shared_ptr<const DiscerningPlan> plan;
  sim::ObjId obj = -1;
  sim::RegId reg_a = -1;
  sim::RegId reg_b = -1;
};

DiscerningInstance install_discerning(sim::Memory& memory,
                                      std::shared_ptr<const DiscerningPlan> plan);

class DiscerningConsensusProgram {
 public:
  DiscerningConsensusProgram(DiscerningInstance instance, int role,
                             typesys::Value input);

  sim::StepResult step(sim::Memory& memory);
  void encode(std::vector<typesys::Value>& out) const;
  std::size_t decode(const typesys::Value* data, std::size_t size);

 private:
  DiscerningInstance instance_;
  int role_;
  typesys::Value input_;
  int pc_ = 0;
  typesys::Value response_ = 0;
  typesys::Value q_ = 0;
};

using HaltingTournamentProgram =
    StagedProgram<DiscerningConsensusProgram, DiscerningInstance>;

struct HaltingConsensusSystem {
  std::shared_ptr<const DiscerningPlan> plan;
  sim::Memory memory;
  std::vector<sim::Process> processes;

  // Symmetry declaration (staged_symmetry_classes over the tournament
  // chains): behaviorally identical participants — equal input and
  // stage-wise equal (instance, team, op) — share a class. The binary
  // tournament makes these all-singleton (siblings split onto opposite
  // teams), so attaching it is sound but reduces nothing; `symmetry=on` in a
  // spec is honored uniformly regardless.
  std::vector<int> symmetry_classes;
};

// Full consensus (halting model) for inputs.size() ≤ witness_n processes via
// tournament over the discerning team algorithm.
HaltingConsensusSystem make_halting_consensus(const typesys::ObjectType& type,
                                              int witness_n,
                                              const std::vector<typesys::Value>& inputs);

}  // namespace rcons::rc

#endif  // RCONS_RC_DISCERNING_CONSENSUS_HPP
