// Staged (tournament) composition of two-team consensus protocols.
//
// Proposition 30 (Appendix B) reduces full (recoverable) consensus to team
// consensus: processes agree recursively inside each team, then the two
// teams' representatives run team consensus on the agreed values. The
// recursion bottoms out at singleton groups. Each process therefore executes
// a fixed chain of team-consensus stages along its leaf-to-root path, feeding
// each stage's decision into the next.
//
// The composition is itself recoverable when the inner protocol is: after a
// crash the process re-runs the chain from stage 0, and the inner agreement
// property guarantees each re-run stage re-decides the same value, so the
// inputs fed forward are stable across runs (the paper's footnote on stable
// inputs).
#ifndef RCONS_RC_STAGED_HPP
#define RCONS_RC_STAGED_HPP

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

template <typename InnerInstance>
struct Stage {
  InnerInstance instance;
  int role = 0;
};

// Chains InnerProgram invocations; InnerProgram must be constructible as
// InnerProgram(InnerInstance, int role, Value input) and satisfy the step
// machine concept.
template <typename InnerProgram, typename InnerInstance>
class StagedProgram {
 public:
  StagedProgram(std::shared_ptr<const std::vector<Stage<InnerInstance>>> stages,
                typesys::Value input)
      : stages_(std::move(stages)), input_(input), value_(input) {
    RCONS_ASSERT(stages_ != nullptr);
  }

  sim::StepResult step(sim::Memory& memory) {
    if (stage_index_ >= stages_->size()) {
      // Singleton group: no stages; decide own input without memory access.
      return sim::StepResult::decided(value_);
    }
    if (!inner_.has_value()) {
      const Stage<InnerInstance>& stage = (*stages_)[stage_index_];
      inner_.emplace(stage.instance, stage.role, value_);
    }
    const sim::StepResult result = inner_->step(memory);
    if (result.kind == sim::StepResult::Kind::kDecided) {
      value_ = result.decision;
      inner_.reset();
      stage_index_ += 1;
      if (stage_index_ == stages_->size()) return sim::StepResult::decided(value_);
    }
    return sim::StepResult::running();
  }

  void encode(std::vector<typesys::Value>& out) const {
    out.push_back(static_cast<typesys::Value>(stage_index_));
    out.push_back(value_);
    out.push_back(inner_.has_value() ? 1 : 0);
    if (inner_.has_value()) inner_->encode(out);
  }

  // Inverse of encode(). A running inner is rebuilt from its stage exactly
  // as step() constructs it (value_ is unchanged while an inner runs, so the
  // reconstruction sees the same input) and then decodes its own state.
  std::size_t decode(const typesys::Value* data, std::size_t size)
    requires sim::DecodableProgram<InnerProgram>
  {
    RCONS_ASSERT_MSG(size >= 3, "truncated StagedProgram encoding");
    stage_index_ = static_cast<std::size_t>(data[0]);
    value_ = data[1];
    const bool has_inner = data[2] != 0;
    std::size_t used = 3;
    inner_.reset();
    if (has_inner) {
      RCONS_ASSERT(stage_index_ < stages_->size());
      const Stage<InnerInstance>& stage = (*stages_)[stage_index_];
      inner_.emplace(stage.instance, stage.role, value_);
      used += inner_->decode(data + used, size - used);
    }
    return used;
  }

 private:
  std::shared_ptr<const std::vector<Stage<InnerInstance>>> stages_;
  typesys::Value input_;
  // Volatile run state:
  typesys::Value value_;
  std::size_t stage_index_ = 0;
  std::optional<InnerProgram> inner_;
};

// Builds the tournament stage lists for `k` participants over an inner
// protocol whose witness partitions `role_teams.size()` processes into teams
// given by role_teams (0 = A, 1 = B). `install()` allocates a fresh inner
// instance for each tree node (capturing whatever memory it installs into).
// Returns one stage chain per participant, ordered leaf-to-root.
template <typename InnerInstance, typename Installer>
std::vector<std::vector<Stage<InnerInstance>>> build_tournament_stages(
    int k, const std::vector<int>& role_teams, Installer&& install) {
  RCONS_ASSERT(k >= 1);
  std::vector<int> a_roles;
  std::vector<int> b_roles;
  for (std::size_t r = 0; r < role_teams.size(); ++r) {
    (role_teams[r] == 0 ? a_roles : b_roles).push_back(static_cast<int>(r));
  }
  RCONS_ASSERT(!a_roles.empty() && !b_roles.empty());
  RCONS_ASSERT(k <= static_cast<int>(role_teams.size()));

  std::vector<std::vector<Stage<InnerInstance>>> stages(static_cast<std::size_t>(k));

  // Recursive splitting; participants are [first, first + size).
  auto build = [&](auto&& self, int first, int size) -> void {
    if (size <= 1) return;
    const int a_cap = static_cast<int>(a_roles.size());
    const int b_cap = static_cast<int>(b_roles.size());
    int a = std::max(1, size - b_cap);
    a = std::min({a, a_cap, size - 1});
    self(self, first, a);
    self(self, first + a, size - a);

    const InnerInstance instance = install();
    for (int i = 0; i < a; ++i) {
      stages[static_cast<std::size_t>(first + i)].push_back(
          Stage<InnerInstance>{instance, a_roles[static_cast<std::size_t>(i)]});
    }
    for (int i = 0; i < size - a; ++i) {
      stages[static_cast<std::size_t>(first + a + i)].push_back(
          Stage<InnerInstance>{instance, b_roles[static_cast<std::size_t>(i)]});
    }
  };
  build(build, 0, k);
  return stages;
}

}  // namespace rcons::rc

#endif  // RCONS_RC_STAGED_HPP
