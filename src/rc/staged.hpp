// Staged (tournament) composition of two-team consensus protocols.
//
// Proposition 30 (Appendix B) reduces full (recoverable) consensus to team
// consensus: processes agree recursively inside each team, then the two
// teams' representatives run team consensus on the agreed values. The
// recursion bottoms out at singleton groups. Each process therefore executes
// a fixed chain of team-consensus stages along its leaf-to-root path, feeding
// each stage's decision into the next.
//
// The composition is itself recoverable when the inner protocol is: after a
// crash the process re-runs the chain from stage 0, and the inner agreement
// property guarantees each re-run stage re-decides the same value, so the
// inputs fed forward are stable across runs (the paper's footnote on stable
// inputs).
#ifndef RCONS_RC_STAGED_HPP
#define RCONS_RC_STAGED_HPP

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

template <typename InnerInstance>
struct Stage {
  InnerInstance instance;
  int role = 0;
};

// Chains InnerProgram invocations; InnerProgram must be constructible as
// InnerProgram(InnerInstance, int role, Value input) and satisfy the step
// machine concept.
template <typename InnerProgram, typename InnerInstance>
class StagedProgram {
 public:
  StagedProgram(std::shared_ptr<const std::vector<Stage<InnerInstance>>> stages,
                typesys::Value input)
      : stages_(std::move(stages)), input_(input), value_(input) {
    RCONS_ASSERT(stages_ != nullptr);
  }

  sim::StepResult step(sim::Memory& memory) {
    if (stage_index_ >= stages_->size()) {
      // Singleton group: no stages; decide own input without memory access.
      return sim::StepResult::decided(value_);
    }
    if (!inner_.has_value()) {
      const Stage<InnerInstance>& stage = (*stages_)[stage_index_];
      inner_.emplace(stage.instance, stage.role, value_);
    }
    const sim::StepResult result = inner_->step(memory);
    if (result.kind == sim::StepResult::Kind::kDecided) {
      value_ = result.decision;
      inner_.reset();
      stage_index_ += 1;
      if (stage_index_ == stages_->size()) return sim::StepResult::decided(value_);
    }
    return sim::StepResult::running();
  }

  void encode(std::vector<typesys::Value>& out) const {
    out.push_back(static_cast<typesys::Value>(stage_index_));
    out.push_back(value_);
    out.push_back(inner_.has_value() ? 1 : 0);
    if (inner_.has_value()) inner_->encode(out);
  }

  // Inverse of encode(). A running inner is rebuilt from its stage exactly
  // as step() constructs it (value_ is unchanged while an inner runs, so the
  // reconstruction sees the same input) and then decodes its own state.
  std::size_t decode(const typesys::Value* data, std::size_t size)
    requires sim::DecodableProgram<InnerProgram>
  {
    RCONS_ASSERT_MSG(size >= 3, "truncated StagedProgram encoding");
    stage_index_ = static_cast<std::size_t>(data[0]);
    value_ = data[1];
    const bool has_inner = data[2] != 0;
    std::size_t used = 3;
    inner_.reset();
    if (has_inner) {
      RCONS_ASSERT(stage_index_ < stages_->size());
      const Stage<InnerInstance>& stage = (*stages_)[stage_index_];
      inner_.emplace(stage.instance, stage.role, value_);
      used += inner_->decode(data + used, size - used);
    }
    return used;
  }

 private:
  std::shared_ptr<const std::vector<Stage<InnerInstance>>> stages_;
  typesys::Value input_;
  // Volatile run state:
  typesys::Value value_;
  std::size_t stage_index_ = 0;
  std::optional<InnerProgram> inner_;
};

// Symmetry declaration of a staged system (ExplorerConfig::symmetry_classes):
// two processes belong to the same class iff they run *behaviorally
// identical* programs — equal inputs, and stage chains that agree
// stage-by-stage on the installed instance and on whatever `role_sig`
// appends for the stage's role (the inner-protocol data that determines a
// role's behavior, e.g. (team, op) for Figure 2 team consensus — the
// concrete step function never depends on the role index beyond that).
// Swapping the local states of two such processes maps executions to
// executions, which is exactly the invariance the explorers' canonicalizer
// exploits (engine/node_store.hpp).
//
// Binary tournaments built by build_tournament_stages always yield singleton
// classes: any two participants split at their lowest-common-ancestor node
// onto opposite teams of that node's instance, so their chains are never
// equivalent (the declaration stays sound, it just reduces nothing). *Flat*
// staged systems — many same-team roles sharing one instance, e.g.
// make_staged_team_consensus — get real reductions.
//
// `role_sig(instance, role, sig)` must append the instance identity (the
// memory it installed into) and the role's behavioral key to `sig`.
template <typename InnerInstance, typename RoleSig>
std::vector<int> staged_symmetry_classes(
    const std::vector<std::shared_ptr<const std::vector<Stage<InnerInstance>>>>&
        chains,
    const std::vector<typesys::Value>& inputs, RoleSig&& role_sig) {
  RCONS_ASSERT(chains.size() == inputs.size());
  std::map<std::vector<typesys::Value>, int> classes;
  std::vector<int> result;
  std::vector<typesys::Value> sig;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    sig.clear();
    sig.push_back(inputs[i]);
    RCONS_ASSERT(chains[i] != nullptr);
    for (const Stage<InnerInstance>& stage : *chains[i]) {
      role_sig(stage.instance, stage.role, sig);
    }
    const auto [it, unused] =
        classes.emplace(sig, static_cast<int>(classes.size()));
    result.push_back(it->second);
  }
  return result;
}

// The role signature shared by the repository's team-style inner protocols
// (TeamConsensusInstance, DiscerningInstance — anything exposing
// obj/reg_a/reg_b and a plan with team/ops): the instance's memory identity
// plus the role's (team, op), which is the only role data those programs'
// behavior depends on (for the discerning protocol, R_{A,role} is itself
// determined by the (team, op) class — see DiscerningPlan::create).
template <typename InnerInstance>
void team_op_role_sig(const InnerInstance& instance, int role,
                      std::vector<typesys::Value>& sig) {
  const auto idx = static_cast<std::size_t>(role);
  sig.push_back(instance.obj);
  sig.push_back(instance.reg_a);
  sig.push_back(instance.reg_b);
  sig.push_back(instance.plan->team[idx]);
  sig.push_back(static_cast<typesys::Value>(instance.plan->ops[idx]));
}

// Builds the tournament stage lists for `k` participants over an inner
// protocol whose witness partitions `role_teams.size()` processes into teams
// given by role_teams (0 = A, 1 = B). `install()` allocates a fresh inner
// instance for each tree node (capturing whatever memory it installs into).
// Returns one stage chain per participant, ordered leaf-to-root.
template <typename InnerInstance, typename Installer>
std::vector<std::vector<Stage<InnerInstance>>> build_tournament_stages(
    int k, const std::vector<int>& role_teams, Installer&& install) {
  RCONS_ASSERT(k >= 1);
  std::vector<int> a_roles;
  std::vector<int> b_roles;
  for (std::size_t r = 0; r < role_teams.size(); ++r) {
    (role_teams[r] == 0 ? a_roles : b_roles).push_back(static_cast<int>(r));
  }
  RCONS_ASSERT(!a_roles.empty() && !b_roles.empty());
  RCONS_ASSERT(k <= static_cast<int>(role_teams.size()));

  std::vector<std::vector<Stage<InnerInstance>>> stages(static_cast<std::size_t>(k));

  // Recursive splitting; participants are [first, first + size).
  auto build = [&](auto&& self, int first, int size) -> void {
    if (size <= 1) return;
    const int a_cap = static_cast<int>(a_roles.size());
    const int b_cap = static_cast<int>(b_roles.size());
    int a = std::max(1, size - b_cap);
    a = std::min({a, a_cap, size - 1});
    self(self, first, a);
    self(self, first + a, size - a);

    const InnerInstance instance = install();
    for (int i = 0; i < a; ++i) {
      stages[static_cast<std::size_t>(first + i)].push_back(
          Stage<InnerInstance>{instance, a_roles[static_cast<std::size_t>(i)]});
    }
    for (int i = 0; i < size - a; ++i) {
      stages[static_cast<std::size_t>(first + a + i)].push_back(
          Stage<InnerInstance>{instance, b_roles[static_cast<std::size_t>(i)]});
    }
  };
  build(build, 0, k);
  return stages;
}

}  // namespace rcons::rc

#endif  // RCONS_RC_STAGED_HPP
