#include "rc/tournament.hpp"

#include <algorithm>

#include "hierarchy/recording.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

TournamentSystem make_rc_tournament(const typesys::ObjectType& type, int witness_n,
                                    const std::vector<typesys::Value>& inputs) {
  RCONS_ASSERT(!inputs.empty());
  RCONS_ASSERT(static_cast<int>(inputs.size()) <= witness_n);

  auto cache = std::make_shared<typesys::TransitionCache>(type, witness_n);
  auto witness = hierarchy::find_recording_witness(*cache);
  RCONS_ASSERT_MSG(witness.has_value(), "type is not witness_n-recording");
  auto plan = TeamConsensusPlan::create(cache, *witness);

  TournamentSystem system;
  system.plan = plan;

  int instances = 0;
  auto install = [&]() {
    instances += 1;
    return install_team_consensus(system.memory, plan);
  };
  auto stages = build_tournament_stages<TeamConsensusInstance>(
      static_cast<int>(inputs.size()), plan->team, install);
  system.instances = instances;

  std::vector<std::shared_ptr<const std::vector<Stage<TeamConsensusInstance>>>> chains;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    system.max_stages =
        std::max(system.max_stages, static_cast<int>(stages[i].size()));
    chains.push_back(std::make_shared<const std::vector<Stage<TeamConsensusInstance>>>(
        std::move(stages[i])));
  }
  system.symmetry_classes = staged_symmetry_classes(chains, inputs, team_op_role_sig<TeamConsensusInstance>);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    system.processes.emplace_back(RcTournamentProgram(chains[i], inputs[i]));
  }
  return system;
}

StagedTeamSystem make_staged_team_consensus(const typesys::ObjectType& type, int n,
                                            typesys::Value input_a,
                                            typesys::Value input_b) {
  auto cache = std::make_shared<typesys::TransitionCache>(type, n);
  auto witness = hierarchy::find_recording_witness(*cache);
  RCONS_ASSERT_MSG(witness.has_value(), "type is not n-recording");
  auto plan = TeamConsensusPlan::create(cache, *witness);

  StagedTeamSystem system;
  system.plan = plan;
  const TeamConsensusInstance instance = install_team_consensus(system.memory, plan);

  std::vector<std::shared_ptr<const std::vector<Stage<TeamConsensusInstance>>>> chains;
  for (int role = 0; role < plan->n(); ++role) {
    const auto idx = static_cast<std::size_t>(role);
    system.inputs.push_back(plan->team[idx] == hierarchy::kTeamA ? input_a : input_b);
    chains.push_back(std::make_shared<const std::vector<Stage<TeamConsensusInstance>>>(
        std::vector<Stage<TeamConsensusInstance>>{
            Stage<TeamConsensusInstance>{instance, role}}));
  }
  system.symmetry_classes =
      staged_symmetry_classes(chains, system.inputs, team_op_role_sig<TeamConsensusInstance>);
  for (std::size_t i = 0; i < chains.size(); ++i) {
    system.processes.emplace_back(RcTournamentProgram(chains[i], system.inputs[i]));
  }
  return system;
}

}  // namespace rcons::rc
