#include "rc/tournament.hpp"

#include <algorithm>

#include "hierarchy/recording.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

TournamentSystem make_rc_tournament(const typesys::ObjectType& type, int witness_n,
                                    const std::vector<typesys::Value>& inputs) {
  RCONS_ASSERT(!inputs.empty());
  RCONS_ASSERT(static_cast<int>(inputs.size()) <= witness_n);

  auto cache = std::make_shared<typesys::TransitionCache>(type, witness_n);
  auto witness = hierarchy::find_recording_witness(*cache);
  RCONS_ASSERT_MSG(witness.has_value(), "type is not witness_n-recording");
  auto plan = TeamConsensusPlan::create(cache, *witness);

  TournamentSystem system;
  system.plan = plan;

  int instances = 0;
  auto install = [&]() {
    instances += 1;
    return install_team_consensus(system.memory, plan);
  };
  auto stages = build_tournament_stages<TeamConsensusInstance>(
      static_cast<int>(inputs.size()), plan->team, install);
  system.instances = instances;

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    system.max_stages =
        std::max(system.max_stages, static_cast<int>(stages[i].size()));
    auto chain = std::make_shared<const std::vector<Stage<TeamConsensusInstance>>>(
        std::move(stages[i]));
    system.processes.emplace_back(RcTournamentProgram(chain, inputs[i]));
  }
  return system;
}

}  // namespace rcons::rc
