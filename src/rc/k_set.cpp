#include "rc/k_set.hpp"

#include <map>
#include <memory>
#include <utility>

#include "hierarchy/recording.hpp"
#include "typesys/transition_cache.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

using typesys::Value;

KSetTeamSystem make_k_set_team_consensus(const typesys::ObjectType& type, int k,
                                         int n) {
  RCONS_ASSERT_MSG(k >= 1, "k-set agreement needs k >= 1");
  RCONS_ASSERT_MSG(n >= k, "every group must be non-empty (k <= n)");

  KSetTeamSystem system;
  system.groups = k;
  system.inputs.assign(static_cast<std::size_t>(n), 0);

  // One witness/plan per distinct group size (the witness search is the
  // expensive part; same-size groups share it and differ only in the
  // instance each installs).
  std::map<int, std::shared_ptr<const TeamConsensusPlan>> plans;
  const auto plan_for = [&](int size) {
    auto& plan = plans[size];
    if (plan == nullptr) {
      auto cache = std::make_shared<typesys::TransitionCache>(type, size);
      auto witness = hierarchy::find_recording_witness(*cache);
      RCONS_ASSERT_MSG(witness.has_value(),
                       "type is not recording at some group size");
      plan = TeamConsensusPlan::create(std::move(cache), *witness);
    }
    return plan;
  };

  using Chain = std::vector<Stage<TeamConsensusInstance>>;
  std::vector<std::shared_ptr<const Chain>> chains(static_cast<std::size_t>(n));

  for (int g = 0; g < k; ++g) {
    std::vector<int> members;
    for (int i = g; i < n; i += k) members.push_back(i);
    const Value base = 100 * (g + 1);

    if (members.size() == 1) {
      // Singleton group: an empty stage chain decides the input outright.
      const auto p = static_cast<std::size_t>(members.front());
      system.inputs[p] = base + 1;
      chains[p] = std::make_shared<const Chain>();
      continue;
    }

    auto plan = plan_for(static_cast<int>(members.size()));
    const TeamConsensusInstance instance =
        install_team_consensus(system.memory, plan);
    for (std::size_t role = 0; role < members.size(); ++role) {
      const auto p = static_cast<std::size_t>(members[role]);
      const int team = plan->team[role];
      system.inputs[p] = base + (team == hierarchy::kTeamA ? 1 : 2);
      chains[p] = std::make_shared<const Chain>(
          Chain{Stage<TeamConsensusInstance>{instance, static_cast<int>(role)}});
    }
  }

  system.symmetry_classes = staged_symmetry_classes(
      chains, system.inputs, team_op_role_sig<TeamConsensusInstance>);
  for (std::size_t p = 0; p < chains.size(); ++p) {
    system.processes.emplace_back(RcTournamentProgram(chains[p], system.inputs[p]));
  }
  return system;
}

}  // namespace rcons::rc
