#include "rc/race.hpp"

namespace rcons::rc {

RaceInstance install_race(sim::Memory& memory,
                          std::shared_ptr<typesys::TransitionCache> cache) {
  RCONS_ASSERT(cache != nullptr);
  RaceInstance instance;
  const typesys::StateId q0 = cache->intern({typesys::kBottom});
  instance.obj = memory.add_object(cache, q0);
  instance.cache = std::move(cache);
  return instance;
}

}  // namespace rcons::rc
