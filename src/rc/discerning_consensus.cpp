#include "rc/discerning_consensus.hpp"

#include "util/assert.hpp"

namespace rcons::rc {

using sim::Memory;
using sim::StepResult;
using typesys::Value;

std::shared_ptr<const DiscerningPlan> DiscerningPlan::create(
    std::shared_ptr<typesys::TransitionCache> cache,
    const hierarchy::DiscerningWitness& witness) {
  RCONS_ASSERT(cache != nullptr);
  auto plan = std::make_shared<DiscerningPlan>();
  plan->cache = cache;
  plan->q0 = witness.q0;
  witness.assignment.expand(plan->team, plan->ops);
  for (const int t : plan->team) plan->team_size[t] += 1;

  // R_{A,j} is identical for all j in the same (team, op) class; compute per
  // class and fan out to roles.
  std::size_t role = 0;
  for (std::size_t c = 0; c < witness.assignment.classes.size(); ++c) {
    const auto r_a = hierarchy::r_set_pairs(*cache, witness.q0, witness.assignment, c,
                                            hierarchy::kTeamA);
    for (int i = 0; i < witness.assignment.classes[c].count; ++i) {
      plan->r_a_by_role.push_back(r_a);
      role += 1;
    }
  }
  RCONS_ASSERT(role == plan->team.size());
  return plan;
}

DiscerningInstance install_discerning(Memory& memory,
                                      std::shared_ptr<const DiscerningPlan> plan) {
  RCONS_ASSERT(plan != nullptr);
  DiscerningInstance instance;
  instance.obj = memory.add_object(
      std::shared_ptr<typesys::TransitionCache>(plan, plan->cache.get()), plan->q0);
  instance.reg_a = memory.add_register(typesys::kBottom);
  instance.reg_b = memory.add_register(typesys::kBottom);
  instance.plan = std::move(plan);
  return instance;
}

DiscerningConsensusProgram::DiscerningConsensusProgram(DiscerningInstance instance,
                                                       int role, Value input)
    : instance_(std::move(instance)), role_(role), input_(input) {
  RCONS_ASSERT(instance_.plan != nullptr);
  RCONS_ASSERT(role_ >= 0 && role_ < instance_.plan->n());
}

StepResult DiscerningConsensusProgram::step(Memory& memory) {
  const DiscerningPlan& plan = *instance_.plan;
  const bool on_team_a = plan.team[static_cast<std::size_t>(role_)] == hierarchy::kTeamA;
  enum : int { kAnnounce = 0, kUpdate = 1, kRead = 2, kDecide = 3 };
  switch (pc_) {
    case kAnnounce:
      memory.write(on_team_a ? instance_.reg_a : instance_.reg_b, input_);
      pc_ = kUpdate;
      return StepResult::running();
    case kUpdate:
      response_ = memory.apply(instance_.obj, plan.ops[static_cast<std::size_t>(role_)]);
      pc_ = kRead;
      return StepResult::running();
    case kRead:
      q_ = memory.object_state(instance_.obj);
      pc_ = kDecide;
      return StepResult::running();
    case kDecide: {
      const bool a_won = plan.r_a_by_role[static_cast<std::size_t>(role_)].contains(
          hierarchy::RespState{response_, static_cast<typesys::StateId>(q_)});
      return StepResult::decided(memory.read(a_won ? instance_.reg_a : instance_.reg_b));
    }
    default:
      RCONS_ASSERT_MSG(false, "invalid program counter");
      return StepResult::running();
  }
}

void DiscerningConsensusProgram::encode(std::vector<Value>& out) const {
  out.push_back(pc_);
  out.push_back(response_);
  out.push_back(q_);
}

std::size_t DiscerningConsensusProgram::decode(const Value* data, std::size_t size) {
  RCONS_ASSERT_MSG(size >= 3, "truncated DiscerningConsensusProgram encoding");
  pc_ = static_cast<int>(data[0]);
  response_ = data[1];
  q_ = data[2];
  return 3;
}

HaltingConsensusSystem make_halting_consensus(const typesys::ObjectType& type,
                                              int witness_n,
                                              const std::vector<Value>& inputs) {
  RCONS_ASSERT(!inputs.empty());
  RCONS_ASSERT(static_cast<int>(inputs.size()) <= witness_n);
  auto cache = std::make_shared<typesys::TransitionCache>(type, witness_n);
  auto witness = hierarchy::find_discerning_witness(*cache);
  RCONS_ASSERT_MSG(witness.has_value(), "type is not witness_n-discerning");
  auto plan = DiscerningPlan::create(cache, *witness);

  HaltingConsensusSystem system;
  system.plan = plan;
  auto install = [&]() { return install_discerning(system.memory, plan); };
  auto stages = build_tournament_stages<DiscerningInstance>(
      static_cast<int>(inputs.size()), plan->team, install);
  std::vector<std::shared_ptr<const std::vector<Stage<DiscerningInstance>>>> chains;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    chains.push_back(std::make_shared<const std::vector<Stage<DiscerningInstance>>>(
        std::move(stages[i])));
  }
  system.symmetry_classes = staged_symmetry_classes(
      chains, inputs, team_op_role_sig<DiscerningInstance>);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    system.processes.emplace_back(HaltingTournamentProgram(chains[i], inputs[i]));
  }
  return system;
}

}  // namespace rcons::rc
