// (k, n)-set agreement from types too weak for n-consensus: split the n
// processes into k groups, each group independently solving *recoverable*
// consensus among its own members via the paper's Figure 2 team-consensus
// algorithm over the given type (singleton groups decide their input
// directly, without touching shared memory).
//
// Each group's Figure 2 instance guarantees within-group agreement across
// independent crashes (Theorem 8), so at most one distinct value is ever
// output per group — at most k distinct values overall. That is exactly
// k-set agreement (Chaudhuri's relaxation of consensus), which sits on the
// solvability spectrum the property layer exposes: the same system
//
//   * runs CLEAN under PropertySet {k-set-agreement(k), validity,
//     wait-freedom}, and
//   * VIOLATES plain agreement as soon as two groups with different inputs
//     both decide,
//
// a verdict class a single hardcoded consensus check cannot express. The
// construction only needs the type to be s-recording for each group size
// s >= 2 (e.g. Sn(2) for k=2, n=3 — a type that is provably not 3-recording
// and hence cannot solve 3-process consensus this way at all).
//
// Processes run StagedProgram chains of length <= 1 (rc/staged.hpp), so the
// whole system is decodable and the staged symmetry declaration applies.
#ifndef RCONS_RC_K_SET_HPP
#define RCONS_RC_K_SET_HPP

#include <vector>

#include "rc/tournament.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"

namespace rcons::rc {

struct KSetTeamSystem {
  sim::Memory memory;
  std::vector<sim::Process> processes;  // one per process, groups round-robin
  std::vector<typesys::Value> inputs;   // per process (distinct per group/team)
  int groups = 0;                       // = k

  // staged_symmetry_classes over the per-process chains: same-group,
  // same-(team, op) roles with equal inputs are interchangeable.
  std::vector<int> symmetry_classes;
};

// Builds the k-group split system for n processes over `type`. Process i
// belongs to group i % k; a group of size s >= 2 runs one Figure 2
// team-consensus instance built from an s-recording witness for `type`
// (asserted to exist), a singleton group decides its input directly. Inputs
// are distinct per (group, team): group g announces 100*(g+1)+1 (team A /
// singleton) and 100*(g+1)+2 (team B), and `inputs` doubles as the validity
// set. Requires 1 <= k <= n.
KSetTeamSystem make_k_set_team_consensus(const typesys::ObjectType& type, int k,
                                         int n);

}  // namespace rcons::rc

#endif  // RCONS_RC_K_SET_HPP
