// The classic non-consensus straw man: write your input to one shared
// register, then decide whatever you read back. FLP-style interleaving breaks
// it with no crashes at all (two writers overwrite each other and decide
// different values), which makes it the repository's canonical "register
// race" dirty scenario — the counterpart of the halting-TAS crash violation.
//
// Promoted from an ad-hoc test struct to a library builder so spec files
// (`algo=naive-register`) and the tests/corpus/ violation corpus can
// reference the same system.
#ifndef RCONS_RC_NAIVE_REGISTER_HPP
#define RCONS_RC_NAIVE_REGISTER_HPP

#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

class NaiveRegisterProgram {
 public:
  NaiveRegisterProgram(sim::RegId reg, typesys::Value input)
      : reg_(reg), input_(input) {}

  sim::StepResult step(sim::Memory& memory) {
    if (pc_ == 0) {
      memory.write(reg_, input_);
      pc_ = 1;
      return sim::StepResult::running();
    }
    return sim::StepResult::decided(memory.read(reg_));
  }

  void encode(std::vector<typesys::Value>& out) const { out.push_back(pc_); }

  std::size_t decode(const typesys::Value* data, std::size_t size) {
    RCONS_ASSERT(size >= 1);
    pc_ = static_cast<int>(data[0]);
    return 1;
  }

 private:
  sim::RegId reg_;
  typesys::Value input_;
  int pc_ = 0;
};

struct NaiveRegisterSystem {
  sim::Memory memory;
  std::vector<sim::Process> processes;
  std::vector<typesys::Value> inputs;  // process i proposes i + 1
};

inline NaiveRegisterSystem make_naive_register_system(int n) {
  RCONS_ASSERT(n >= 2);
  NaiveRegisterSystem system;
  const sim::RegId reg = system.memory.add_register();
  for (int i = 0; i < n; ++i) {
    system.inputs.push_back(i + 1);
    system.processes.emplace_back(NaiveRegisterProgram(reg, i + 1));
  }
  return system;
}

}  // namespace rcons::rc

#endif  // RCONS_RC_NAIVE_REGISTER_HPP
