#include "rc/team_consensus.hpp"

#include <map>
#include <utility>

#include "hierarchy/qsets.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

using sim::Memory;
using sim::StepResult;
using typesys::Value;

std::shared_ptr<const TeamConsensusPlan> TeamConsensusPlan::create(
    std::shared_ptr<typesys::TransitionCache> cache,
    const hierarchy::RecordingWitness& witness) {
  RCONS_ASSERT(cache != nullptr);
  auto plan = std::make_shared<TeamConsensusPlan>();
  plan->cache = std::move(cache);
  plan->q0 = witness.q0;
  plan->team = witness.team;
  plan->ops = witness.ops;

  // Figure 2 assumes q0 ∉ Q_B; otherwise the paper swaps the team names.
  // (Condition 1 of Definition 4 rules out q0 being in both sets.)
  const bool swap = witness.q_b.contains(witness.q0);
  RCONS_ASSERT(!(swap && witness.q_a.contains(witness.q0)));
  plan->swapped = swap;
  if (swap) {
    for (int& t : plan->team) t = 1 - t;
    plan->q_a = witness.q_b;
  } else {
    plan->q_a = witness.q_a;
  }
  for (const int t : plan->team) plan->team_size[t] += 1;
  RCONS_ASSERT(plan->team_size[0] >= 1 && plan->team_size[1] >= 1);
  return plan;
}

TeamConsensusInstance install_team_consensus(
    Memory& memory, std::shared_ptr<const TeamConsensusPlan> plan) {
  RCONS_ASSERT(plan != nullptr);
  TeamConsensusInstance instance;
  instance.obj = memory.add_object(
      std::shared_ptr<typesys::TransitionCache>(plan, plan->cache.get()), plan->q0);
  instance.reg_a = memory.add_register(typesys::kBottom);
  instance.reg_b = memory.add_register(typesys::kBottom);
  instance.plan = std::move(plan);
  return instance;
}

TeamConsensusProgram::TeamConsensusProgram(TeamConsensusInstance instance, int role,
                                           Value input)
    : instance_(std::move(instance)), role_(role), input_(input) {
  RCONS_ASSERT(instance_.plan != nullptr);
  RCONS_ASSERT(role_ >= 0 && role_ < instance_.plan->n());
}

StepResult TeamConsensusProgram::step(Memory& memory) {
  const TeamConsensusPlan& plan = *instance_.plan;
  const bool on_team_a = plan.team[static_cast<std::size_t>(role_)] == hierarchy::kTeamA;
  const typesys::OpId my_op = plan.ops[static_cast<std::size_t>(role_)];

  // Program counters; each case performs exactly one shared-memory access.
  // Local control decisions are folded into the step that performs the access.
  enum : int {
    kAnnounce = 0,   // write input to my team's register
    kFirstRead = 1,  // q ← O
    kDefer = 2,      // team B, |B| = 1: read R_A; return it unless ⊥
    kUpdate = 3,     // apply op_i to O
    kSecondRead = 4, // q ← O
    kDecide = 5,     // read the winning team's register and return it
  };
  switch (pc_) {
    case kAnnounce:
      memory.write(on_team_a ? instance_.reg_a : instance_.reg_b, input_);
      pc_ = kFirstRead;
      return StepResult::running();
    case kFirstRead: {
      q_ = memory.object_state(instance_.obj);
      if (q_ != plan.q0) {
        pc_ = kDecide;
      } else if (!on_team_a && plan.team_size[hierarchy::kTeamB] == 1) {
        pc_ = kDefer;
      } else {
        pc_ = kUpdate;
      }
      return StepResult::running();
    }
    case kDefer: {
      const Value announced = memory.read(instance_.reg_a);
      if (announced != typesys::kBottom) return StepResult::decided(announced);
      pc_ = kUpdate;
      return StepResult::running();
    }
    case kUpdate:
      memory.apply(instance_.obj, my_op);
      pc_ = kSecondRead;
      return StepResult::running();
    case kSecondRead:
      q_ = memory.object_state(instance_.obj);
      pc_ = kDecide;
      return StepResult::running();
    case kDecide: {
      const bool a_won = plan.q_a.contains(static_cast<typesys::StateId>(q_));
      return StepResult::decided(memory.read(a_won ? instance_.reg_a : instance_.reg_b));
    }
    default:
      RCONS_ASSERT_MSG(false, "invalid program counter");
      return StepResult::running();
  }
}

void TeamConsensusProgram::encode(std::vector<Value>& out) const {
  out.push_back(pc_);
  out.push_back(q_);
}

std::size_t TeamConsensusProgram::decode(const Value* data, std::size_t size) {
  RCONS_ASSERT_MSG(size >= 2, "truncated TeamConsensusProgram encoding");
  pc_ = static_cast<int>(data[0]);
  q_ = data[1];
  return 2;
}

TeamConsensusSystem make_team_consensus_system(const typesys::ObjectType& type, int n,
                                               Value input_a, Value input_b) {
  auto cache = std::make_shared<typesys::TransitionCache>(type, n);
  auto witness = hierarchy::find_recording_witness(*cache);
  RCONS_ASSERT_MSG(witness.has_value(), "type is not n-recording");
  auto plan = TeamConsensusPlan::create(cache, *witness);

  TeamConsensusSystem system;
  system.plan = plan;
  const TeamConsensusInstance instance = install_team_consensus(system.memory, plan);
  // Dense class ids per distinct (team, op): roles sharing both run the same
  // program on the same input, i.e. they are interchangeable.
  std::map<std::pair<int, typesys::OpId>, int> class_ids;
  for (int role = 0; role < plan->n(); ++role) {
    const auto idx = static_cast<std::size_t>(role);
    const Value input = plan->team[idx] == hierarchy::kTeamA ? input_a : input_b;
    system.inputs.push_back(input);
    system.processes.emplace_back(TeamConsensusProgram(instance, role, input));
    const auto key = std::make_pair(plan->team[idx], plan->ops[idx]);
    const auto [it, unused] =
        class_ids.emplace(key, static_cast<int>(class_ids.size()));
    system.symmetry_classes.push_back(it->second);
  }
  return system;
}

}  // namespace rcons::rc
