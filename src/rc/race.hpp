// One-step racing consensus on a "recording-forever" object (compare-and-swap
// or an idealized consensus object).
//
// The baseline showing why rcons(CAS) = ∞: a single CAS(⊥, v) both decides
// and durably records the decision, so the algorithm is trivially recoverable
// — a re-run after a crash just observes the recorded winner. Inputs must be
// drawn from {1..n} so they map onto the type's candidate operations
// CAS(⊥,1)…CAS(⊥,n) / Propose(1)…Propose(n).
#ifndef RCONS_RC_RACE_HPP
#define RCONS_RC_RACE_HPP

#include <memory>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

struct RaceInstance {
  std::shared_ptr<typesys::TransitionCache> cache;
  sim::ObjId obj = -1;
};

// Installs one race object initialized to the ⊥ state.
RaceInstance install_race(sim::Memory& memory,
                          std::shared_ptr<typesys::TransitionCache> cache);

class RaceConsensusProgram {
 public:
  // `role` is unused (present for StagedProgram/Figure-4 compatibility).
  RaceConsensusProgram(RaceInstance instance, int role, typesys::Value input)
      : instance_(std::move(instance)), input_(input) {
    (void)role;
    RCONS_ASSERT(input_ >= 1 && input_ <= instance_.cache->num_ops());
  }

  sim::StepResult step(sim::Memory& memory) {
    // Candidate op `input-1` is CAS(⊥, input) / Propose(input). A ⊥ response
    // means the object was unset — our value won; any other response is the
    // recorded winner.
    const typesys::Value response =
        memory.apply(instance_.obj, static_cast<typesys::OpId>(input_ - 1));
    return sim::StepResult::decided(response == typesys::kBottom ? input_ : response);
  }

  void encode(std::vector<typesys::Value>& out) const { out.push_back(0); }

  // Stateless between accesses: decode only consumes the placeholder.
  std::size_t decode(const typesys::Value* data, std::size_t size) {
    (void)data;
    RCONS_ASSERT(size >= 1);
    return 1;
  }

 private:
  RaceInstance instance_;
  typesys::Value input_;
};

}  // namespace rcons::rc

#endif  // RCONS_RC_RACE_HPP
