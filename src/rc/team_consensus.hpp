// Recoverable team consensus from an n-recording readable type — the paper's
// Figure 2 algorithm, which proves the sufficiency direction of the
// characterization (Theorem 8).
//
// Given a type T with an n-recording witness (q0, teams A/B, ops), n
// processes solve team consensus (all of a team share one input) despite
// independent crash/recovery:
//
//   shared: object O of type T in state q0; registers R_A, R_B = ⊥
//
//   Decide(v), process p_i on team A:            (teams normalized so q0 ∉ Q_B)
//     R_A ← v
//     q ← O
//     if q = q0 then { apply op_i to O; q ← O }
//     return q ∈ Q_A ? R_A : R_B
//
//   Decide(v), process p_i on team B:
//     R_B ← v
//     q ← O
//     if q = q0 then
//       if |B| = 1 and R_A ≠ ⊥ then return R_A      // defer to team A
//       apply op_i to O; q ← O
//     return q ∈ Q_A ? R_A : R_B
#ifndef RCONS_RC_TEAM_CONSENSUS_HPP
#define RCONS_RC_TEAM_CONSENSUS_HPP

#include <memory>
#include <unordered_set>
#include <vector>

#include "hierarchy/recording.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"

namespace rcons::rc {

// Immutable, shareable description of one team-consensus protocol: the
// normalized witness (teams swapped if needed so that q0 ∉ Q_B) plus the
// materialized Q_A membership set the deciding reads test against.
struct TeamConsensusPlan {
  std::shared_ptr<typesys::TransitionCache> cache;
  typesys::StateId q0 = typesys::kNoState;
  std::vector<int> team;           // normalized team of each role
  std::vector<typesys::OpId> ops;  // op of each role
  std::unordered_set<typesys::StateId> q_a;  // normalized Q_A
  int team_size[2] = {0, 0};
  bool swapped = false;  // true if A/B were exchanged during normalization

  int n() const { return static_cast<int>(team.size()); }

  // Builds a plan from a recording witness found by the hierarchy checker.
  static std::shared_ptr<const TeamConsensusPlan> create(
      std::shared_ptr<typesys::TransitionCache> cache,
      const hierarchy::RecordingWitness& witness);
};

// One installed instance of the protocol: the object and the two registers.
struct TeamConsensusInstance {
  std::shared_ptr<const TeamConsensusPlan> plan;
  sim::ObjId obj = -1;
  sim::RegId reg_a = -1;
  sim::RegId reg_b = -1;
};

// Allocates the shared object (in state q0) and both registers in `memory`.
TeamConsensusInstance install_team_consensus(
    sim::Memory& memory, std::shared_ptr<const TeamConsensusPlan> plan);

// The per-process step machine (role = index into the witness's processes).
class TeamConsensusProgram {
 public:
  TeamConsensusProgram(TeamConsensusInstance instance, int role, typesys::Value input);

  sim::StepResult step(sim::Memory& memory);
  void encode(std::vector<typesys::Value>& out) const;
  std::size_t decode(const typesys::Value* data, std::size_t size);

 private:
  TeamConsensusInstance instance_;
  int role_;
  typesys::Value input_;
  // Volatile run state (lost on crash):
  int pc_ = 0;
  typesys::Value q_ = 0;  // last observed object state (StateId)
};

// Convenience builder used by tests and benches: finds an n-recording witness
// for `type` (asserting one exists), installs one instance, and creates one
// process per role with the team's input value.
struct TeamConsensusSystem {
  std::shared_ptr<const TeamConsensusPlan> plan;
  sim::Memory memory;
  std::vector<sim::Process> processes;
  std::vector<typesys::Value> inputs;  // per role, after normalization

  // Symmetry declaration: roles with the same (team, witness op) run
  // identical programs (inputs are per team), so global states are invariant
  // under permuting them — the explorers' canonicalizer consumes this
  // (ExplorerConfig::symmetry_classes). Classes are dense ints, one per
  // distinct (team, op) pair.
  std::vector<int> symmetry_classes;
};

TeamConsensusSystem make_team_consensus_system(const typesys::ObjectType& type, int n,
                                               typesys::Value input_a,
                                               typesys::Value input_b);

}  // namespace rcons::rc

#endif  // RCONS_RC_TEAM_CONSENSUS_HPP
