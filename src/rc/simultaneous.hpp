// Recoverable consensus under SIMULTANEOUS crashes from ordinary consensus —
// the paper's Figure 4 algorithm (Appendix A), which proves Theorem 1: with
// simultaneous crashes, the RC hierarchy collapses onto the consensus
// hierarchy.
//
//   shared: Round[1..n] registers (0), D[1..∞] registers (⊥),
//           consensus instances C_1, C_2, …
//
//   Decide(v), process p_j:
//     pref ← v; r ← 1
//     loop
//       if Round[j] < r then
//         Round[j] ← r
//         if r > 1 and D[r-1] ≠ ⊥ then pref ← D[r-1]
//         pref ← C_r.Decide(pref)
//         D[r] ← pref
//         if ∀k, Round[k] ≤ r then return pref
//       else if r > 1 and D[r-1] ≠ ⊥ then pref ← D[r-1]
//       r ← r + 1
//
// The Round registers ensure no process calls C_r twice (Lemma 27), so any
// halting-model consensus works as C_r. Under *independent* crashes the
// algorithm is not safe when C_r is not itself recoverable — the tests
// exhibit a concrete agreement violation, motivating the paper's study of
// the independent-crash hierarchy.
#ifndef RCONS_RC_SIMULTANEOUS_HPP
#define RCONS_RC_SIMULTANEOUS_HPP

#include <memory>
#include <optional>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/assert.hpp"

namespace rcons::rc {

// Shared layout of one Figure-4 system. `rounds` holds pre-installed inner
// consensus instances C_1..C_max (the paper allows an unbounded supply; the
// simulator pre-allocates enough for the crash budget under test).
template <typename InnerInstance>
struct SimultaneousLayout {
  int n = 0;
  std::vector<InnerInstance> rounds;
  std::vector<sim::RegId> round_regs;  // Round[1..n], zero-initialized
  std::vector<sim::RegId> d_regs;      // D[1..max], ⊥-initialized

  int max_rounds() const { return static_cast<int>(rounds.size()); }
};

template <typename InnerProgram, typename InnerInstance>
class SimultaneousRCProgram {
 public:
  SimultaneousRCProgram(std::shared_ptr<const SimultaneousLayout<InnerInstance>> layout,
                        int id, typesys::Value input)
      : layout_(std::move(layout)), id_(id), input_(input), pref_(input) {
    RCONS_ASSERT(layout_ != nullptr);
    RCONS_ASSERT(id_ >= 0 && id_ < layout_->n);
  }

  sim::StepResult step(sim::Memory& memory) {
    const auto& layout = *layout_;
    // Each loop iteration either performs exactly one shared-memory access
    // and returns, or takes a purely local transition and continues.
    for (;;) {
      RCONS_ASSERT_MSG(round_ <= layout.max_rounds(),
                       "round budget exceeded; enlarge the layout");
      switch (pc_) {
        case kCheckRound: {
          const typesys::Value seen =
              memory.read(layout.round_regs[static_cast<std::size_t>(id_)]);
          pc_ = seen < round_ ? kWriteRound : kElseReadPrev;
          return sim::StepResult::running();
        }
        case kWriteRound:
          memory.write(layout.round_regs[static_cast<std::size_t>(id_)], round_);
          pc_ = round_ > 1 ? kReadPrev : kInner;
          return sim::StepResult::running();
        case kReadPrev: {
          const typesys::Value d =
              memory.read(layout.d_regs[static_cast<std::size_t>(round_ - 2)]);
          if (d != typesys::kBottom) pref_ = d;
          pc_ = kInner;
          return sim::StepResult::running();
        }
        case kInner: {
          if (!inner_.has_value()) {
            inner_.emplace(layout.rounds[static_cast<std::size_t>(round_ - 1)], id_,
                           pref_);
          }
          const sim::StepResult result = inner_->step(memory);
          if (result.kind == sim::StepResult::Kind::kDecided) {
            pref_ = result.decision;
            inner_.reset();
            pc_ = kWriteD;
          }
          return sim::StepResult::running();
        }
        case kWriteD:
          memory.write(layout.d_regs[static_cast<std::size_t>(round_ - 1)], pref_);
          scan_ = 0;
          pc_ = kScan;
          return sim::StepResult::running();
        case kScan: {
          const typesys::Value seen =
              memory.read(layout.round_regs[static_cast<std::size_t>(scan_)]);
          if (seen > round_) {
            round_ += 1;
            pc_ = kCheckRound;
            return sim::StepResult::running();
          }
          scan_ += 1;
          if (scan_ == layout.n) return sim::StepResult::decided(pref_);
          return sim::StepResult::running();
        }
        case kElseReadPrev: {
          if (round_ == 1) {  // no D[0]; purely local transition
            round_ += 1;
            pc_ = kCheckRound;
            continue;
          }
          const typesys::Value d =
              memory.read(layout.d_regs[static_cast<std::size_t>(round_ - 2)]);
          if (d != typesys::kBottom) pref_ = d;
          round_ += 1;
          pc_ = kCheckRound;
          return sim::StepResult::running();
        }
        default:
          RCONS_ASSERT_MSG(false, "invalid program counter");
      }
    }
  }

  void encode(std::vector<typesys::Value>& out) const {
    out.push_back(pc_);
    out.push_back(round_);
    out.push_back(pref_);
    out.push_back(scan_);
    out.push_back(inner_.has_value() ? 1 : 0);
    if (inner_.has_value()) inner_->encode(out);
  }

  // Inverse of encode(). A running inner is rebuilt exactly as step()'s
  // kInner case constructs it (pref_ is unchanged while an inner runs) and
  // then decodes its own state.
  std::size_t decode(const typesys::Value* data, std::size_t size)
    requires sim::DecodableProgram<InnerProgram>
  {
    RCONS_ASSERT_MSG(size >= 5, "truncated SimultaneousRCProgram encoding");
    pc_ = static_cast<int>(data[0]);
    round_ = data[1];
    pref_ = data[2];
    scan_ = static_cast<int>(data[3]);
    const bool has_inner = data[4] != 0;
    std::size_t used = 5;
    inner_.reset();
    if (has_inner) {
      RCONS_ASSERT(round_ >= 1 && round_ <= layout_->max_rounds());
      inner_.emplace(layout_->rounds[static_cast<std::size_t>(round_ - 1)], id_,
                     pref_);
      used += inner_->decode(data + used, size - used);
    }
    return used;
  }

 private:
  enum : int {
    kCheckRound = 0,
    kWriteRound = 1,
    kReadPrev = 2,
    kInner = 3,
    kWriteD = 4,
    kScan = 5,
    kElseReadPrev = 6,
  };

  std::shared_ptr<const SimultaneousLayout<InnerInstance>> layout_;
  int id_;
  typesys::Value input_;
  // Volatile run state:
  int pc_ = kCheckRound;
  typesys::Value round_ = 1;
  typesys::Value pref_;
  int scan_ = 0;
  std::optional<InnerProgram> inner_;
};

// Installs Round/D registers and `max_rounds` inner instances created by
// `install() -> InnerInstance` (capturing whatever memory it installs into).
template <typename InnerInstance, typename Installer>
std::shared_ptr<const SimultaneousLayout<InnerInstance>> install_simultaneous(
    sim::Memory& memory, int n, int max_rounds, Installer&& install) {
  RCONS_ASSERT(n >= 1 && max_rounds >= 1);
  auto layout = std::make_shared<SimultaneousLayout<InnerInstance>>();
  layout->n = n;
  for (int i = 0; i < n; ++i) layout->round_regs.push_back(memory.add_register(0));
  for (int r = 0; r < max_rounds; ++r) {
    layout->d_regs.push_back(memory.add_register(typesys::kBottom));
    layout->rounds.push_back(install());
  }
  return layout;
}

}  // namespace rcons::rc

#endif  // RCONS_RC_SIMULTANEOUS_HPP
