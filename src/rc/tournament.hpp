// Full n-process recoverable consensus from an n-recording readable type:
// Figure 2 team consensus composed through the Proposition 30 tournament.
// This realizes the sufficiency direction of Theorem 8 end-to-end.
#ifndef RCONS_RC_TOURNAMENT_HPP
#define RCONS_RC_TOURNAMENT_HPP

#include <memory>
#include <vector>

#include "rc/staged.hpp"
#include "rc/team_consensus.hpp"

namespace rcons::rc {

using RcTournamentProgram = StagedProgram<TeamConsensusProgram, TeamConsensusInstance>;

struct TournamentSystem {
  std::shared_ptr<const TeamConsensusPlan> plan;
  sim::Memory memory;
  std::vector<sim::Process> processes;  // one per input
  int instances = 0;                    // team-consensus instances allocated
  int max_stages = 0;                   // tournament depth (longest chain)

  // Symmetry declaration (staged_symmetry_classes over the participants'
  // chains): behaviorally identical participants share a class. For the
  // binary tournament this is always all-singleton — siblings split onto
  // opposite teams at their lowest common ancestor — but attaching it keeps
  // `symmetry=on` sound and uniform across algorithms.
  std::vector<int> symmetry_classes;
};

// Builds recoverable consensus for inputs.size() ≤ witness_n participants
// using an n-recording witness for `type` with n = witness_n. Asserts the
// witness exists (check is_recording(type, witness_n) first if unsure).
TournamentSystem make_rc_tournament(const typesys::ObjectType& type, int witness_n,
                                    const std::vector<typesys::Value>& inputs);

// Flat staged composition: every role of the n-recording witness runs a
// single-stage chain over ONE shared team-consensus instance (inputs per
// team, as in make_team_consensus_system, but through the StagedProgram
// wrapper — the depth-1 degenerate tournament). This is the staged system
// with *non-trivial* symmetry: same-team same-op roles are interchangeable,
// and symmetry_classes declares it.
struct StagedTeamSystem {
  std::shared_ptr<const TeamConsensusPlan> plan;
  sim::Memory memory;
  std::vector<sim::Process> processes;
  std::vector<typesys::Value> inputs;  // per role, after normalization
  std::vector<int> symmetry_classes;
};

StagedTeamSystem make_staged_team_consensus(const typesys::ObjectType& type, int n,
                                            typesys::Value input_a,
                                            typesys::Value input_b);

}  // namespace rcons::rc

#endif  // RCONS_RC_TOURNAMENT_HPP
