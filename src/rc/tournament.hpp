// Full n-process recoverable consensus from an n-recording readable type:
// Figure 2 team consensus composed through the Proposition 30 tournament.
// This realizes the sufficiency direction of Theorem 8 end-to-end.
#ifndef RCONS_RC_TOURNAMENT_HPP
#define RCONS_RC_TOURNAMENT_HPP

#include <memory>
#include <vector>

#include "rc/staged.hpp"
#include "rc/team_consensus.hpp"

namespace rcons::rc {

using RcTournamentProgram = StagedProgram<TeamConsensusProgram, TeamConsensusInstance>;

struct TournamentSystem {
  std::shared_ptr<const TeamConsensusPlan> plan;
  sim::Memory memory;
  std::vector<sim::Process> processes;  // one per input
  int instances = 0;                    // team-consensus instances allocated
  int max_stages = 0;                   // tournament depth (longest chain)
};

// Builds recoverable consensus for inputs.size() ≤ witness_n participants
// using an n-recording witness for `type` with n = witness_n. Asserts the
// witness exists (check is_recording(type, witness_n) first if unsure).
TournamentSystem make_rc_tournament(const typesys::ObjectType& type, int witness_n,
                                    const std::vector<typesys::Value>& inputs);

}  // namespace rcons::rc

#endif  // RCONS_RC_TOURNAMENT_HPP
