// Shared contract of the exhaustive explorers (sequential `sim::Explorer` and
// parallel `engine::ParallelExplorer`): the violation report and run
// statistics. The tunable knobs live in `check::Budget` (check/budget.hpp),
// which both explorer configs derive from so the fields cannot drift.
//
// These live in their own header so `engine/` can depend on the contract
// without pulling in the sequential explorer (and vice versa).
#ifndef RCONS_SIM_EXPLORER_CONFIG_HPP
#define RCONS_SIM_EXPLORER_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "check/budget.hpp"
#include "sim/schedule.hpp"

namespace rcons::sim {

// Historical spelling of the crash models; the definition now lives with the
// rest of the shared budget in check/budget.hpp.
using CrashModel = check::CrashModel;

struct ExplorerConfig : check::Budget {};

// A property violation plus the typed schedule that produced it. The schedule
// round-trips through `sim::replay` (same event vocabulary), so any
// explorer-found counterexample can be re-executed deterministically for
// debugging, minimization, or regression capture.
struct Violation {
  std::string description;
  std::vector<ScheduleEvent> schedule;

  // Human-readable rendering of the schedule.
  std::string trace() const;
};

struct ExplorerStats {
  std::uint64_t visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t terminal_states = 0;
  bool truncated = false;  // hit max_visited — verdict incomplete
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_EXPLORER_CONFIG_HPP
