// Shared contract of the exhaustive explorers (sequential `sim::Explorer` and
// parallel `engine::ParallelExplorer`): crash models, configuration, the
// violation report, and run statistics.
//
// These live in their own header so `engine/` can depend on the contract
// without pulling in the sequential explorer (and vice versa).
#ifndef RCONS_SIM_EXPLORER_CONFIG_HPP
#define RCONS_SIM_EXPLORER_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "typesys/core.hpp"

namespace rcons::sim {

enum class CrashModel {
  kIndependent,   // processes crash and recover individually (paper Section 3)
  kSimultaneous,  // all processes crash together (paper Section 2)
};

struct ExplorerConfig {
  CrashModel crash_model = CrashModel::kIndependent;
  int crash_budget = 2;
  long max_steps_per_run = 500;
  std::uint64_t max_visited = 20'000'000;
  std::vector<typesys::Value> valid_outputs;  // empty disables the validity check
  bool crash_after_decide = true;
};

struct Violation {
  std::string description;
  std::string trace;  // the event schedule that produced it
};

struct ExplorerStats {
  std::uint64_t visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t terminal_states = 0;
  bool truncated = false;  // hit max_visited — verdict incomplete
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_EXPLORER_CONFIG_HPP
