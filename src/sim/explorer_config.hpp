// Shared contract of the exhaustive explorers (sequential `sim::Explorer` and
// parallel `engine::ParallelExplorer`): the violation report and run
// statistics. The tunable knobs live in `check::Budget` (check/budget.hpp),
// which both explorer configs derive from so the fields cannot drift.
//
// These live in their own header so `engine/` can depend on the contract
// without pulling in the sequential explorer (and vice versa).
#ifndef RCONS_SIM_EXPLORER_CONFIG_HPP
#define RCONS_SIM_EXPLORER_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "check/budget.hpp"
#include "obs/hooks.hpp"
#include "sim/properties.hpp"
#include "sim/schedule.hpp"

namespace rcons::engine {
class FaultPlan;        // engine/fault_inject.hpp
struct CheckpointData;  // engine/checkpoint.hpp
}  // namespace rcons::engine

namespace rcons::sim {

// Why an exhaustive run stopped before draining the state space. kNone means
// it did not stop early (the verdict is exhaustive). Every other reason
// produces the typed truncated verdict: a sim::Violation with
// PropertyKind::kNone whose description names the reason, full partial stats,
// and ExplorerStats::stop_reason carrying the enum — never an abort.
enum class StopReason {
  kNone,        // ran to completion (or to a property violation)
  kVisitedCap,  // Budget::max_visited exhausted
  kDeadline,    // Budget::time_limit_ms exceeded (resource sentinel)
  kMemory,      // Budget::mem_limit_mb exceeded, or an allocation failed
  kWatchdog,    // a worker made no progress for N sentinel intervals
  kForcedStop,  // external cooperative stop (fault injection / harness)
};

const char* stop_reason_name(StopReason reason);

// Historical spelling of the crash models; the definition now lives with the
// rest of the shared budget in check/budget.hpp.
using CrashModel = check::CrashModel;

// How the explorers represent nodes internally (engine/node_store.hpp):
//   kAuto    — compact interned encodings when every process is decodable,
//              clone-based nodes otherwise (the pre-node-store behaviour).
//   kCompact — force the interned representation; asserts if any process
//              lacks decode() support.
//   kLegacy  — force clone-based nodes (differential testing / debugging).
// Both representations explore the identical deduplicated graph;
// tests/engine/differential_test.cpp pins this.
enum class NodeRepr { kAuto, kCompact, kLegacy };

struct ExplorerConfig : check::Budget {
  // What counts as a correct outcome (sim/properties.hpp): the classic trio
  // by default. The validity set lives inside (properties.valid_outputs); the
  // wait-freedom property inherits Budget::max_steps_per_run unless it
  // carries its own bound.
  PropertySet properties;

  NodeRepr node_repr = NodeRepr::kAuto;

  // Symmetry declaration: symmetry_classes[i] is the equivalence class of
  // process i, where processes in the same class run *identical* programs
  // (same team, same operation, same input — e.g. same-team processes of the
  // Figure 2 algorithm). Empty disables symmetry reduction. When non-empty,
  // the explorers canonicalize the per-process blocks of each node encoding
  // (sorting same-class blocks) before fingerprinting, so states that differ
  // only by permuting interchangeable processes deduplicate to one visited
  // node. Verdicts are unaffected; violation schedules are then valid up to a
  // class permutation and may not replay verbatim (see engine/node_store.hpp).
  std::vector<int> symmetry_classes;

  // Observability sinks (obs/hooks.hpp): the metrics registry the explorers
  // flush their counters into at batch boundaries and the tracer that
  // receives worker spans. Null members (the default) disable the
  // corresponding instrumentation entirely — the hot loops keep counting in
  // their plain per-worker locals either way, so a disabled sink costs
  // nothing per state.
  obs::Hooks obs;

  // --- robustness layer (engine/sentinel.hpp, engine/checkpoint.hpp) ------

  // Resource-sentinel sampling period. The parallel engine runs a monitor
  // thread at this cadence whenever a time/memory limit, the watchdog, or
  // periodic checkpointing is enabled; the sequential explorer polls its
  // limits inline at the same granularity as its obs flushes. Hot paths with
  // everything off never touch a clock.
  int sentinel_interval_ms = 50;

  // Watchdog: fail the run (StopReason::kWatchdog, with a per-worker
  // heartbeat dump in the verdict description) when any live worker's
  // heartbeat does not advance for this many consecutive sentinel intervals.
  // 0 disables the watchdog.
  int watchdog_stall_intervals = 0;

  // Durable checkpoints (parallel engine, compact representation only):
  // when checkpoint_path is non-empty the run writes a final checkpoint at
  // exit, plus an intermediate one each time `checkpoint_every` further
  // states have been visited (0 = final only). `resume`, when non-null,
  // seeds the run from a previously loaded checkpoint instead of the root;
  // the caller must have validated the checkpoint's config hash
  // (engine::checkpoint_config_hash).
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  // Caller-chosen identity line stored in every checkpoint (the CLI uses the
  // formatted scenario spec) so a resume can reject a mismatched file with a
  // human-readable diff, not just a hash mismatch.
  std::string checkpoint_label;
  const engine::CheckpointData* resume = nullptr;

  // Deterministic fault injection (engine/fault_inject.hpp). Null — the
  // default — is the zero-cost path: one predicted null check per injection
  // point.
  engine::FaultPlan* fault = nullptr;
};

// A property violation plus the typed schedule that produced it. The schedule
// round-trips through `sim::replay` (same event vocabulary), so any
// explorer-found counterexample can be re-executed deterministically for
// debugging, minimization, or regression capture. `property` is the typed
// identity of the broken property — it survives check::minimize, `.viol`
// round-trips, and cross-backend replay (kNone marks non-property reports
// like the max_visited truncation notice).
struct Violation {
  std::string description;
  PropertyKind property = PropertyKind::kNone;
  std::int64_t property_param = 0;  // k for k-set agreement, bound for wait-freedom
  std::vector<ScheduleEvent> schedule;

  // Human-readable rendering of the schedule.
  std::string trace() const;
};

// Statistics of the compact interned node store (engine/node_store.hpp).
// All-zero when the run used the clone-based legacy representation.
struct NodeStoreStats {
  std::uint64_t nodes = 0;        // unique states interned (incl. the root)
  std::uint64_t value_bytes = 0;  // arena payload bytes across all records
  std::uint64_t encodes = 0;      // node encodings produced during the run
  std::uint64_t canonical_hits = 0;  // encodings the canonicalizer permuted

  double bytes_per_node() const {
    return nodes == 0 ? 0.0
                      : static_cast<double>(value_bytes) / static_cast<double>(nodes);
  }
  double canonical_hit_rate() const {
    return encodes == 0
               ? 0.0
               : static_cast<double>(canonical_hits) / static_cast<double>(encodes);
  }
};

// Per-state cost counters of the batched, allocation-free hot path
// (engine/frontier.hpp, engine/flat_table.hpp, engine/path_arena.hpp). The
// parallel engine fills all of them; the sequential explorer fills the
// probe-length counters (its dedup tables are the same flat open-addressing
// tables) and leaves the frontier/arena/cache counters at zero.
struct HotPathStats {
  // Per-item heap allocations the pre-batching hot path would have made:
  // one `unique_ptr` wrapper per frontier item plus one `shared_ptr<PathLink>`
  // control block per push, now served by inline storage and arena links.
  std::uint64_t allocations_avoided = 0;

  std::uint64_t batches = 0;        // successor batches submitted to the frontier
  std::uint64_t batched_items = 0;  // items across those batches

  // Per-worker recently-inserted fingerprint cache, consulted before the
  // sharded store: a hit short-circuits the shard lock + probe entirely.
  std::uint64_t dedup_cache_probes = 0;
  std::uint64_t dedup_cache_hits = 0;

  // Probing across the visited/NodeStore dedup tables (legacy: FlatTable;
  // compact/parallel: the lock-free CasTable, counted per worker).
  std::uint64_t probe_total = 0;  // slots inspected
  std::uint64_t probe_ops = 0;    // operations that probed
  std::uint64_t max_probe = 0;    // longest single probe sequence
  std::uint64_t rehashes = 0;     // table growth epochs

  // Lock-free table contention (zero on the single-threaded paths):
  // slot-claim CASes lost to a racing worker, and growth stripes migrated
  // cooperatively while helping an epoch-based table resize.
  std::uint64_t cas_retries = 0;
  std::uint64_t migration_stripes = 0;

  double avg_batch() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(batched_items) / static_cast<double>(batches);
  }
  double cache_hit_rate() const {
    return dedup_cache_probes == 0 ? 0.0
                                   : static_cast<double>(dedup_cache_hits) /
                                         static_cast<double>(dedup_cache_probes);
  }
  double avg_probe() const {
    return probe_ops == 0
               ? 0.0
               : static_cast<double>(probe_total) / static_cast<double>(probe_ops);
  }
};

struct ExplorerStats {
  std::uint64_t visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t terminal_states = 0;

  // Per-process events dropped because their process was a non-representative
  // member of a stabilizer orbit (symmetry reduction only; see
  // engine::Canonicalizer::orbit_mask). Counted as transitions, so
  // transitions == visited + duplicates + violation_edges + orbit_skipped.
  std::uint64_t orbit_skipped = 0;

  bool truncated = false;  // stopped early — verdict incomplete

  // Why the run stopped early (kNone when !truncated). The legacy boolean is
  // kept in sync so existing callers keep working: truncated == (stop_reason
  // != kNone).
  StopReason stop_reason = StopReason::kNone;

  // Durable checkpoints written during the run (0 when checkpointing is off
  // or every write was faulted away).
  std::uint64_t checkpoints_written = 0;

  bool compact = false;  // ran on the interned node representation
  NodeStoreStats store;
  HotPathStats hot;
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_EXPLORER_CONFIG_HPP
