#include "sim/random_runner.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rcons::sim {

using typesys::Value;

RandomRunReport run_random(Memory memory, std::vector<Process> processes,
                           const RandomRunConfig& config) {
  RCONS_ASSERT(!processes.empty());
  RCONS_ASSERT_MSG(config.crash_per_mille >= 0 && config.crash_per_mille <= 1000,
                   "crash_per_mille is a numerator over 1000");
  util::Rng rng(config.seed);
  const int n = static_cast<int>(processes.size());
  std::vector<std::uint8_t> done(processes.size(), 0);
  std::vector<long> steps_in_run(processes.size(), 0);
  RandomRunReport report;

  auto check_output = [&](int process, Value value) -> bool {
    report.outputs.push_back(value);
    if (!config.valid_outputs.empty()) {
      bool valid = false;
      for (const Value v : config.valid_outputs) valid = valid || v == value;
      if (!valid) {
        report.violation = "validity violated by process " + std::to_string(process) +
                           ": output " + std::to_string(value);
        return false;
      }
    }
    if (report.outputs.front() != value) {
      report.violation = "agreement violated by process " + std::to_string(process) +
                         ": output " + std::to_string(value) + " vs earlier " +
                         std::to_string(report.outputs.front());
      return false;
    }
    return true;
  };

  while (report.steps < config.max_total_steps) {
    // Count runnable processes.
    int runnable = 0;
    for (int i = 0; i < n; ++i) runnable += done[static_cast<std::size_t>(i)] == 0;
    if (runnable == 0) {
      report.all_decided = true;
      return report;
    }

    // Crash injection.
    if (report.crashes < config.max_crashes &&
        rng.chance(static_cast<std::uint64_t>(config.crash_per_mille), 1000)) {
      if (config.crash_model == CrashModel::kSimultaneous) {
        for (int i = 0; i < n; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          processes[idx].reset();
          done[idx] = 0;
          steps_in_run[idx] = 0;
        }
        report.crashes += 1;
        continue;
      }
      const int victim = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const auto idx = static_cast<std::size_t>(victim);
      if (done[idx] == 0 || config.crash_after_decide) {
        processes[idx].reset();
        done[idx] = 0;
        steps_in_run[idx] = 0;
        report.crashes += 1;
        continue;
      }
    }

    // Pick a runnable process uniformly.
    int pick = static_cast<int>(rng.below(static_cast<std::uint64_t>(runnable)));
    int chosen = -1;
    for (int i = 0; i < n; ++i) {
      if (done[static_cast<std::size_t>(i)] != 0) continue;
      if (pick-- == 0) {
        chosen = i;
        break;
      }
    }
    RCONS_ASSERT(chosen >= 0);

    const auto idx = static_cast<std::size_t>(chosen);
    const StepResult result = processes[idx].step(memory);
    report.steps += 1;
    steps_in_run[idx] += 1;
    if (result.kind == StepResult::Kind::kDecided) {
      done[idx] = 1;
      steps_in_run[idx] = 0;
      if (!check_output(chosen, result.decision)) return report;
    }
  }
  return report;  // all_decided stays false: starvation/livelock suspicion
}

}  // namespace rcons::sim
