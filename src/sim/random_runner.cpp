#include "sim/random_runner.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rcons::sim {

using typesys::Value;

namespace {

RandomRunReport run_random_impl(Memory& memory, std::vector<Process>& processes,
                                const RandomRunConfig& config) {
  RCONS_ASSERT(!processes.empty());
  RCONS_ASSERT_MSG(config.crash_per_mille >= 0 && config.crash_per_mille <= 1000,
                   "crash_per_mille is a numerator over 1000");
  util::Rng rng(config.seed);
  const int n = static_cast<int>(processes.size());
  std::vector<std::uint8_t> done(processes.size(), 0);
  std::vector<std::int64_t> steps_in_run(processes.size(), 0);
  RandomRunReport report;

  // Property tracking state (sim/properties.hpp): the sorted distinct-output
  // set and, when at-most-once decide is on, the per-process output memory
  // (which crashes must not clear).
  std::vector<Value> distinct_outputs;
  std::vector<std::uint8_t> ever_output;
  std::vector<Value> last_output;
  if (config.properties.at_most_once()) {
    ever_output.assign(processes.size(), 0);
    last_output.assign(processes.size(), 0);
  }

  while (report.steps < config.max_total_steps) {
    // Count runnable processes.
    int runnable = 0;
    for (int i = 0; i < n; ++i) runnable += done[static_cast<std::size_t>(i)] == 0;
    if (runnable == 0) {
      report.all_decided = true;
      return report;
    }

    // Crash injection.
    if (report.crashes < config.crash_budget &&
        rng.chance(static_cast<std::uint64_t>(config.crash_per_mille), 1000)) {
      if (config.crash_model == CrashModel::kSimultaneous) {
        for (int i = 0; i < n; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          processes[idx].reset();
          done[idx] = 0;
          steps_in_run[idx] = 0;
        }
        report.crashes += 1;
        report.schedule.push_back(ScheduleEvent::crash_all());
        continue;
      }
      const int victim = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const auto idx = static_cast<std::size_t>(victim);
      if (done[idx] == 0 || config.crash_after_decide) {
        processes[idx].reset();
        done[idx] = 0;
        steps_in_run[idx] = 0;
        report.crashes += 1;
        report.schedule.push_back(ScheduleEvent::crash(victim));
        continue;
      }
    }

    // Pick a runnable process uniformly.
    int pick = static_cast<int>(rng.below(static_cast<std::uint64_t>(runnable)));
    int chosen = -1;
    for (int i = 0; i < n; ++i) {
      if (done[static_cast<std::size_t>(i)] != 0) continue;
      if (pick-- == 0) {
        chosen = i;
        break;
      }
    }
    RCONS_ASSERT(chosen >= 0);

    const auto idx = static_cast<std::size_t>(chosen);
    const StepResult result = processes[idx].step(memory);
    report.steps += 1;
    steps_in_run[idx] += 1;
    report.schedule.push_back(ScheduleEvent::step(chosen));
    if (auto violation = check_wait_freedom(config.properties, chosen,
                                            steps_in_run[idx],
                                            config.max_steps_per_run)) {
      report.violation = std::move(violation);
      return report;
    }
    if (result.kind == StepResult::Kind::kDecided) {
      done[idx] = 1;
      steps_in_run[idx] = 0;
      report.outputs.push_back(result.decision);
      if (auto violation =
              check_output(config.properties, chosen, result.decision,
                           distinct_outputs, ever_output, last_output)) {
        report.violation = std::move(violation);
        return report;
      }
    }
  }
  return report;  // all_decided stays false: starvation/livelock suspicion
}

}  // namespace

RandomRunReport run_random(Memory memory, std::vector<Process> processes,
                           const RandomRunConfig& config) {
  // One "random_run" span per call on the coordinator lane; run_random is
  // called from one thread at a time (the check loop), matching the tracer's
  // single-writer-per-lane contract.
  obs::Span span(config.obs.tracer, 0, "random_run");
  RandomRunReport report = run_random_impl(memory, processes, config);
  if (config.obs.metrics != nullptr) {
    obs::MetricsRegistry& registry = *config.obs.metrics;
    registry.counter("random.runs").add(0, 1);
    if (report.steps > 0) {
      registry.counter("random.steps")
          .add(0, static_cast<std::uint64_t>(report.steps));
    }
    if (report.crashes > 0) {
      registry.counter("random.crashes")
          .add(0, static_cast<std::uint64_t>(report.crashes));
    }
    if (report.violation.has_value()) registry.counter("random.violations").add(0, 1);
  }
  return report;
}

}  // namespace rcons::sim
