// Exhaustive model checking of step-machine algorithms under crashes.
//
// The explorer enumerates every interleaving of process steps and every
// placement of up to `crash_budget` crash events (independent per-process
// crashes, or simultaneous all-process crashes — the paper's two failure
// models), checking:
//
//   * Agreement  — all outputs ever produced (across processes and across
//     multiple runs of the same process) are equal.
//   * Validity   — every output is in the configured input set.
//   * Recoverable wait-freedom — no run of any process exceeds the configured
//     per-run step bound without crashing or deciding.
//
// Exploration deduplicates global states (shared memory + every process's
// local state + crash budget + decision constraint), which keeps the search
// tractable; dedup keys are 128-bit hashes of the canonical encoding, making
// a pruning collision astronomically unlikely (documented trade-off).
#ifndef RCONS_SIM_EXPLORER_HPP
#define RCONS_SIM_EXPLORER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"

namespace rcons::sim {

enum class CrashModel {
  kIndependent,   // processes crash and recover individually (paper Section 3)
  kSimultaneous,  // all processes crash together (paper Section 2)
};

struct ExplorerConfig {
  CrashModel crash_model = CrashModel::kIndependent;
  int crash_budget = 2;
  long max_steps_per_run = 500;
  std::uint64_t max_visited = 20'000'000;
  std::vector<typesys::Value> valid_outputs;  // empty disables the validity check
  bool crash_after_decide = true;
};

struct Violation {
  std::string description;
  std::string trace;  // the event schedule that produced it
};

struct ExplorerStats {
  std::uint64_t visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t terminal_states = 0;
  bool truncated = false;  // hit max_visited — verdict incomplete
};

class Explorer {
 public:
  Explorer(Memory initial, std::vector<Process> processes, ExplorerConfig config);

  // Explores the full (deduplicated) execution tree. Returns the first
  // violation found, or nullopt if every execution satisfies the properties.
  std::optional<Violation> run();

  const ExplorerStats& stats() const { return stats_; }

 private:
  struct Node {
    Memory memory;
    std::vector<Process> processes;
    std::vector<std::uint8_t> done;
    std::vector<long> steps_in_run;
    int crashes_used = 0;
    bool has_decision = false;
    typesys::Value decision = 0;
  };

  struct Event {
    enum class Kind { kStep, kCrash, kCrashAll };
    Kind kind;
    int process;
  };

  std::optional<Violation> dfs(const Node& node);
  std::optional<Violation> apply_step(Node& node, int process) const;
  bool insert_visited(const Node& node);
  std::string format_trace() const;
  Violation make_violation(std::string description) const;

  Memory initial_memory_;
  std::vector<Process> initial_processes_;
  ExplorerConfig config_;
  ExplorerStats stats_;
  struct U128 {
    std::uint64_t lo, hi;
    bool operator==(const U128&) const = default;
  };
  struct U128Hash {
    std::size_t operator()(const U128& v) const { return v.lo ^ (v.hi * 0x9e3779b97f4a7c15ULL); }
  };
  std::unordered_set<U128, U128Hash> visited_;
  std::vector<Event> path_;
  std::vector<typesys::Value> scratch_;
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_EXPLORER_HPP
