// Exhaustive model checking of step-machine algorithms under crashes.
//
// The explorer enumerates every interleaving of process steps and every
// placement of up to `crash_budget` crash events (independent per-process
// crashes, or simultaneous all-process crashes — the paper's two failure
// models), checking:
//
//   * Agreement  — all outputs ever produced (across processes and across
//     multiple runs of the same process) are equal.
//   * Validity   — every output is in the configured input set.
//   * Recoverable wait-freedom — no run of any process exceeds the configured
//     per-run step bound without crashing or deciding.
//
// Exploration deduplicates global states (shared memory + every process's
// local state + crash budget + decision constraint), which keeps the search
// tractable; dedup keys are 128-bit hashes of the canonical encoding, making
// a pruning collision astronomically unlikely (documented trade-off).
//
// Two node representations share the depth-first traversal (NodeRepr in
// sim/explorer_config.hpp selects): the compact path interns each state's
// encoding once in an engine::NodeStore and re-decodes into a reusable
// scratch node per successor, while the legacy path clones the full Node.
// Both visit the identical deduplicated graph; the compact path additionally
// honours ExplorerConfig::symmetry_classes (canonical fingerprints — see
// engine/node_store.hpp).
//
// This is the single-threaded traversal; node expansion, property checking,
// and fingerprinting are shared with the multi-threaded
// `engine::ParallelExplorer` through `engine/expand.hpp`.
#ifndef RCONS_SIM_EXPLORER_HPP
#define RCONS_SIM_EXPLORER_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/expand.hpp"
#include "engine/flat_table.hpp"
#include "engine/node_store.hpp"
#include "engine/obs_cells.hpp"
#include "sim/explorer_config.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "util/hash.hpp"

namespace rcons::sim {

class Explorer {
 public:
  Explorer(Memory initial, std::vector<Process> processes, ExplorerConfig config);

  // Explores the full (deduplicated) execution tree. Returns the first
  // violation found, or nullopt if every execution satisfies the properties.
  std::optional<Violation> run();

  const ExplorerStats& stats() const { return stats_; }

  // Whether run() uses the compact interned representation (resolved from
  // config.node_repr and the processes' decode support).
  bool compact() const { return compact_; }

 private:
  std::optional<Violation> dfs(const engine::Node& node);
  bool insert_visited(const engine::Node& node);

  // Resource sentinels, polled inline every kLimitPollTransitions transitions
  // (the sequential explorer has no monitor thread). Returns the typed
  // truncated verdict when a limit tripped; the hot path with no limits set
  // never touches a clock.
  std::optional<Violation> poll_limits();

  std::optional<Violation> run_compact();
  std::optional<Violation> dfs_compact(const typesys::Value* record,
                                       std::size_t size);

  Memory initial_memory_;
  std::vector<Process> initial_processes_;
  ExplorerConfig config_;
  bool compact_ = false;
  ExplorerStats stats_;
  // Legacy-path visited set: the same flat open-addressing table the engine
  // shards (engine/flat_table.hpp) — no per-insert node allocation.
  engine::FlatTable visited_;
  std::vector<engine::Event> path_;
  // Per-depth event buffers, reused across siblings. A deque because deeper
  // recursion grows it while shallower frames hold references into it, and
  // deque growth at the end never invalidates existing elements.
  std::deque<std::vector<engine::Event>> events_pool_;
  std::vector<typesys::Value> scratch_;

  // Compact-representation state (unused on the legacy path): the interning
  // store, one decoded scratch node shared by every depth (restored from the
  // parent's record between successors — see NodeCodec::restore), and the
  // codec with its canonicalizer. Parent records are read in place from the
  // store arena (stable, immutable — NodeStore::Intern), so recursion holds
  // pointers instead of per-depth record copies. Probe/CAS work accumulates
  // caller-side in table_ops_ (the lock-free table keeps no shared tallies);
  // orbit_skip_ is the per-expansion stabilizer mask, fully consumed by
  // enumerate_events before any recursion can overwrite it.
  std::unique_ptr<engine::NodeStore> store_;
  std::unique_ptr<engine::NodeCodec> codec_;
  engine::Node scratch_node_;
  std::vector<typesys::Value> encode_scratch_;
  std::vector<std::uint8_t> orbit_skip_;
  engine::CasTable::OpStats table_ops_;
  bool orbit_reduction_ = false;

  // Resource-sentinel state for poll_limits(): the absolute deadline and RSS
  // cap resolved from the budget at run() (0 = unlimited), and the next
  // transition count at which to sample the clock.
  static constexpr std::uint64_t kLimitPollTransitions = 1024;
  std::int64_t deadline_ms_ = 0;
  std::uint64_t rss_cap_bytes_ = 0;
  std::uint64_t next_limit_poll_ = 0;

  // Observability (engine/obs_cells.hpp): the sequential traversal publishes
  // the same engine.*/store.* taxonomy the parallel workers do, all on lane 0.
  // Totals mostly live in stats_ already; the few facts stats_ only learns at
  // the end (duplicates, violating edges, live store size) get their own
  // running tallies so flush_obs() can stream deltas every
  // kObsFlushTransitions transitions plus exactly once at the end of run().
  void flush_obs();
  static constexpr std::uint64_t kObsFlushTransitions = 1024;
  engine::ObsCells obs_cells_;
  engine::ObsDeltas obs_flushed_;
  std::uint64_t obs_duplicates_ = 0;
  std::uint64_t obs_violation_edges_ = 0;
  std::uint64_t obs_store_nodes_ = 0;
  std::uint64_t obs_store_bytes_ = 0;
  std::uint64_t obs_last_flush_transitions_ = 0;
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_EXPLORER_HPP
