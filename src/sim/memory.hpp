// Simulated non-volatile shared memory for the single-threaded simulator.
//
// Matches the paper's model: registers and typed objects live here and are
// never affected by crashes; the simulator discards process-local state (the
// step machines) instead. Memory has value semantics so the exhaustive
// explorer can snapshot global states cheaply; object behaviour is shared
// through a TransitionCache, so copies stay small (interned state ids).
#ifndef RCONS_SIM_MEMORY_HPP
#define RCONS_SIM_MEMORY_HPP

#include <memory>
#include <vector>

#include "typesys/transition_cache.hpp"

namespace rcons::sim {

using RegId = int;
using ObjId = int;

class Memory {
 public:
  Memory() = default;

  // --- layout construction (before simulation starts) ---

  RegId add_register(typesys::Value initial = typesys::kBottom);

  // Adds an object of the cache's type, initialized to state `q0`.
  ObjId add_object(std::shared_ptr<typesys::TransitionCache> cache, typesys::StateId q0);

  // --- simulated accesses (each counts as one shared-memory step) ---

  typesys::Value read(RegId reg) const;
  void write(RegId reg, typesys::Value value);

  // Applies the cache-candidate operation `op` and returns its response.
  typesys::Value apply(ObjId obj, typesys::OpId op);

  // Read operation of a readable type: returns the interned current state.
  typesys::StateId object_state(ObjId obj) const;

  typesys::TransitionCache& cache(ObjId obj) const;

  int num_registers() const { return static_cast<int>(registers_.size()); }
  int num_objects() const { return static_cast<int>(objects_.size()); }

  // Canonical encoding of the entire shared state (for visited-state sets).
  void encode(std::vector<typesys::Value>& out) const;

  // Number of values encode() appends: one per register plus one per object.
  std::size_t encoded_width() const { return registers_.size() + objects_.size(); }

  // Inverse of encode(): restores register values and object states from an
  // encode() image of a memory with the same layout. Returns the number of
  // values consumed (== encoded_width()).
  std::size_t decode(const typesys::Value* data, std::size_t size);

 private:
  struct Object {
    std::shared_ptr<typesys::TransitionCache> cache;
    typesys::StateId state = typesys::kNoState;
  };

  std::vector<typesys::Value> registers_;
  std::vector<Object> objects_;
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_MEMORY_HPP
