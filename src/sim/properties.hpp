// The typed property layer: which correctness notions a check verifies.
//
// A `PropertySet` is a small enum-tagged vector of `PropertySpec{kind, param}`
// entries plus the validity output set — the one description of "what counts
// as correct" that every execution backend consumes. The explorers' expansion
// core (engine/expand.cpp), the random runner, and scripted replay all
// evaluate properties through the shared helpers below, so a violation found
// by one backend carries the same typed identity and describes itself
// identically when reproduced by another (the replay round-trip the check::
// facade advertises).
//
// Properties:
//   kAgreement        — all outputs ever produced are equal (consensus).
//   kKSetAgreement    — at most `param` = k >= 2 distinct values are ever
//                       output ((k,n)-set agreement; Chaudhuri's relaxation).
//                       Mutually exclusive with kAgreement in one set.
//   kValidity         — every output is in `valid_outputs` (an empty set
//                       disables the check; `param` reserved for the validity
//                       variants of Civit et al., 0 = "output was proposed").
//   kWaitFreedom      — no run of a process exceeds the per-run step bound
//                       (`param` > 0 overrides; 0 inherits Budget's
//                       max_steps_per_run) — recoverable wait-freedom.
//   kAtMostOnceDecide — per-process output stability: a process that decides
//                       again after a crash must re-decide the same value.
//                       Catches anomalies k-set agreement alone cannot see.
//
// The default-constructed set is the classic trio (agreement, validity,
// wait-freedom) — the contract every pre-existing scenario checked.
//
// Hot-path discipline: the set pre-computes flat flags on construction, so
// the per-step/per-decide evaluation below is branch-on-int work with no
// virtual dispatch and no allocation (the distinct-output set lives in the
// caller's node or tracker and is bounded by k).
#ifndef RCONS_SIM_PROPERTIES_HPP
#define RCONS_SIM_PROPERTIES_HPP

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "typesys/core.hpp"
#include "util/assert.hpp"

namespace rcons::sim {

enum class PropertyKind : std::uint8_t {
  kNone = 0,  // not a property (e.g. the max_visited truncation marker)
  kAgreement,
  kKSetAgreement,
  kValidity,
  kWaitFreedom,
  kAtMostOnceDecide,
};

// Canonical spelling used by the spec grammar (`properties=` lists), `.viol`
// files, and check_cli --list.
const char* property_name(PropertyKind kind);

// Inverse of property_name; kNone for unknown spellings.
PropertyKind property_from_name(const std::string& name);

// Classifies a violation description by its message prefix — the migration
// path for artifacts written before violations carried a typed property
// (old `.viol` files). kNone for non-property markers.
PropertyKind property_from_description(const std::string& description);

struct PropertySpec {
  PropertyKind kind = PropertyKind::kNone;
  // kKSetAgreement: k. kWaitFreedom: per-run bound (0 = inherit the budget).
  // kValidity: variant (0 = "every output was proposed"). Others: unused.
  std::int64_t param = 0;

  bool operator==(const PropertySpec&) const = default;
};

// A typed violation verdict: which property broke, with what parameter, and
// the human-readable description the legacy string-only API reported.
struct PropertyViolation {
  PropertyKind property = PropertyKind::kNone;
  std::int64_t param = 0;
  std::string description;

  bool operator==(const PropertyViolation&) const = default;
};

class PropertySet {
  struct EmptyTag {};
  explicit PropertySet(EmptyTag) {}

 public:
  // The classic trio: agreement, validity, recoverable wait-freedom.
  PropertySet() {
    add({PropertyKind::kAgreement, 0});
    add({PropertyKind::kValidity, 0});
    add({PropertyKind::kWaitFreedom, 0});
  }

  // Outputs the validity property checks against. Empty disables the check
  // even when kValidity is in the set (matching the pre-typed behaviour where
  // an empty valid set meant "validity not constrained").
  std::vector<typesys::Value> valid_outputs;

  static PropertySet classic(std::vector<typesys::Value> valid = {}) {
    PropertySet set;
    set.valid_outputs = std::move(valid);
    return set;
  }

  // An empty set: nothing is checked until add() is called.
  static PropertySet none() { return PropertySet(EmptyTag{}); }

  // Adds one property. Asserts on contradictory sets (agreement combined
  // with k-set agreement, k < 2, duplicate kinds).
  void add(PropertySpec spec) {
    RCONS_ASSERT_MSG(spec.kind != PropertyKind::kNone, "kNone is not a property");
    for (const PropertySpec& existing : specs_) {
      RCONS_ASSERT_MSG(existing.kind != spec.kind, "duplicate property kind");
    }
    switch (spec.kind) {
      case PropertyKind::kAgreement:
        RCONS_ASSERT_MSG(agreement_k_ == 0,
                         "agreement and k-set agreement are mutually exclusive");
        agreement_k_ = 1;
        break;
      case PropertyKind::kKSetAgreement:
        RCONS_ASSERT_MSG(agreement_k_ == 0,
                         "agreement and k-set agreement are mutually exclusive");
        RCONS_ASSERT_MSG(spec.param >= 2, "k-set agreement needs param k >= 2");
        agreement_k_ = static_cast<int>(spec.param);
        break;
      case PropertyKind::kValidity:
        validity_ = true;
        break;
      case PropertyKind::kWaitFreedom:
        RCONS_ASSERT_MSG(spec.param >= 0, "wait-freedom bound must be >= 0");
        wait_param_ = spec.param;
        break;
      case PropertyKind::kAtMostOnceDecide:
        at_most_once_ = true;
        break;
      case PropertyKind::kNone:
        break;
    }
    specs_.push_back(spec);
  }

  const std::vector<PropertySpec>& specs() const { return specs_; }

  // --- pre-computed hot-path accessors --------------------------------------

  // 0 = no output-agreement constraint; 1 = consensus agreement; k >= 2 =
  // k-set agreement. Doubles as the capacity of the distinct-output set the
  // backends track.
  int agreement_k() const { return agreement_k_; }

  bool checks_validity() const { return validity_; }

  // Effective per-run step bound: -1 = wait-freedom not in the set (no
  // check); otherwise the property's own bound, falling back to `fallback`
  // (the Budget's max_steps_per_run) when the property carries 0.
  std::int64_t wait_bound(std::int64_t fallback) const {
    if (wait_param_ < 0) return -1;
    return wait_param_ > 0 ? wait_param_ : fallback;
  }

  bool at_most_once() const { return at_most_once_; }

  // Comma-joined property names in add() order, e.g.
  // "agreement,validity,wait-freedom" — the spec grammar's `properties=`
  // value and the portfolio table label.
  std::string label() const {
    std::string out;
    for (const PropertySpec& spec : specs_) {
      if (!out.empty()) out += ",";
      out += property_name(spec.kind);
    }
    return out;
  }

 private:
  std::vector<PropertySpec> specs_;
  int agreement_k_ = 0;
  bool validity_ = false;
  std::int64_t wait_param_ = -1;
  bool at_most_once_ = false;
};

inline const char* property_name(PropertyKind kind) {
  switch (kind) {
    case PropertyKind::kNone:
      return "none";
    case PropertyKind::kAgreement:
      return "agreement";
    case PropertyKind::kKSetAgreement:
      return "k-set-agreement";
    case PropertyKind::kValidity:
      return "validity";
    case PropertyKind::kWaitFreedom:
      return "wait-freedom";
    case PropertyKind::kAtMostOnceDecide:
      return "at-most-once";
  }
  return "none";
}

inline PropertyKind property_from_name(const std::string& name) {
  if (name == "agreement") return PropertyKind::kAgreement;
  if (name == "k-set-agreement") return PropertyKind::kKSetAgreement;
  if (name == "validity") return PropertyKind::kValidity;
  if (name == "wait-freedom") return PropertyKind::kWaitFreedom;
  if (name == "at-most-once") return PropertyKind::kAtMostOnceDecide;
  return PropertyKind::kNone;
}

inline PropertyKind property_from_description(const std::string& description) {
  const auto starts_with = [&](const char* prefix) {
    return description.rfind(prefix, 0) == 0;
  };
  if (starts_with("agreement")) return PropertyKind::kAgreement;
  if (starts_with("k-set agreement")) return PropertyKind::kKSetAgreement;
  if (starts_with("validity")) return PropertyKind::kValidity;
  if (starts_with("recoverable wait-freedom")) return PropertyKind::kWaitFreedom;
  if (starts_with("at-most-once decide")) return PropertyKind::kAtMostOnceDecide;
  return PropertyKind::kNone;
}

// --- shared evaluation helpers ----------------------------------------------
//
// Every backend funnels its property checks through these two functions, so
// the typed identity and the message of a violation are byte-identical across
// backends. The mutable tracking state lives with the caller: the explorers
// keep it inside each Node (it is part of the deduplicated global state), the
// random runner and replay keep per-execution vectors.

// Recoverable wait-freedom, checked after every step. `fallback_bound` is the
// Budget's max_steps_per_run; a non-positive effective bound disables the
// check (replay's historical "0 = unbounded" contract).
inline std::optional<PropertyViolation> check_wait_freedom(
    const PropertySet& properties, int process, std::int64_t steps_in_run,
    std::int64_t fallback_bound) {
  const std::int64_t bound = properties.wait_bound(fallback_bound);
  if (bound <= 0 || steps_in_run <= bound) return std::nullopt;
  return PropertyViolation{
      PropertyKind::kWaitFreedom, bound,
      "recoverable wait-freedom violated: process " + std::to_string(process) +
          " exceeded " + std::to_string(bound) + " steps in a single run"};
}

// The output-event properties, checked when `process` decides `value`:
// validity, then agreement / k-set agreement, then at-most-once decide.
//
// `distinct_outputs` is the sorted set of distinct values output so far
// (bounded by agreement_k(); untouched when no agreement property is set).
// `ever_output` / `last_output` are the per-process stability memory for
// kAtMostOnceDecide (pass empty vectors when the property is off — the
// explorers size them from the PropertySet in make_root so crash events
// cannot erase them). All three are updated in place when the checks pass.
inline std::optional<PropertyViolation> check_output(
    const PropertySet& properties, int process, typesys::Value value,
    std::vector<typesys::Value>& distinct_outputs,
    std::vector<std::uint8_t>& ever_output,
    std::vector<typesys::Value>& last_output) {
  if (properties.checks_validity() && !properties.valid_outputs.empty()) {
    bool valid = false;
    for (const typesys::Value v : properties.valid_outputs) {
      if (v == value) {
        valid = true;
        break;
      }
    }
    if (!valid) {
      return PropertyViolation{
          PropertyKind::kValidity, 0,
          "validity violated: process " + std::to_string(process) + " decided " +
              std::to_string(value) + ", which is not among the inputs"};
    }
  }

  const int k = properties.agreement_k();
  if (k > 0) {
    const auto it =
        std::lower_bound(distinct_outputs.begin(), distinct_outputs.end(), value);
    if (it == distinct_outputs.end() || *it != value) {
      if (static_cast<int>(distinct_outputs.size()) >= k) {
        if (k == 1) {
          return PropertyViolation{
              PropertyKind::kAgreement, 1,
              "agreement violated: process " + std::to_string(process) +
                  " decided " + std::to_string(value) +
                  " but an earlier output was " +
                  std::to_string(distinct_outputs.front())};
        }
        return PropertyViolation{
            PropertyKind::kKSetAgreement, k,
            "k-set agreement violated (k=" + std::to_string(k) + "): process " +
                std::to_string(process) + " decided " + std::to_string(value) +
                ", a " + std::to_string(k + 1) + "th distinct output"};
      }
      distinct_outputs.insert(it, value);
    }
  }

  if (properties.at_most_once() && !ever_output.empty()) {
    const auto idx = static_cast<std::size_t>(process);
    RCONS_ASSERT(idx < ever_output.size() && idx < last_output.size());
    if (ever_output[idx] != 0 && last_output[idx] != value) {
      return PropertyViolation{
          PropertyKind::kAtMostOnceDecide, 0,
          "at-most-once decide violated: process " + std::to_string(process) +
              " decided " + std::to_string(value) + " after deciding " +
              std::to_string(last_output[idx]) + " in an earlier run"};
    }
    ever_output[idx] = 1;
    last_output[idx] = value;
  }

  return std::nullopt;
}

}  // namespace rcons::sim

#endif  // RCONS_SIM_PROPERTIES_HPP
