// The one source of the verified properties' violation checks and messages.
// All three execution paths that judge outputs — the explorers' expansion
// core (engine/expand.cpp), the random runner, and scripted replay — go
// through these helpers, so a violation found by one backend describes
// itself identically when reproduced by another (the replay round-trip the
// check:: facade advertises).
#ifndef RCONS_SIM_PROPERTIES_HPP
#define RCONS_SIM_PROPERTIES_HPP

#include <optional>
#include <string>
#include <vector>

#include "typesys/core.hpp"

namespace rcons::sim {

// Validity: `value` must be in `valid` (empty set disables the check).
// Returns the violation description, or nullopt when the property holds.
inline std::optional<std::string> validity_violation(
    int process, typesys::Value value, const std::vector<typesys::Value>& valid) {
  if (valid.empty()) return std::nullopt;
  for (const typesys::Value v : valid) {
    if (v == value) return std::nullopt;
  }
  return "validity violated: process " + std::to_string(process) + " decided " +
         std::to_string(value) + ", which is not among the inputs";
}

// Agreement: `value` must equal the earlier output `earlier`.
inline std::optional<std::string> agreement_violation(int process,
                                                      typesys::Value value,
                                                      typesys::Value earlier) {
  if (value == earlier) return std::nullopt;
  return "agreement violated: process " + std::to_string(process) + " decided " +
         std::to_string(value) + " but an earlier output was " +
         std::to_string(earlier);
}

// Recoverable wait-freedom: a single run took `steps_in_run` > `bound` steps.
inline std::optional<std::string> wait_freedom_violation(int process,
                                                         long steps_in_run,
                                                         long bound) {
  if (steps_in_run <= bound) return std::nullopt;
  return "recoverable wait-freedom violated: process " + std::to_string(process) +
         " exceeded " + std::to_string(bound) + " steps in a single run";
}

}  // namespace rcons::sim

#endif  // RCONS_SIM_PROPERTIES_HPP
