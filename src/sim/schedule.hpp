// The typed event vocabulary shared by every execution backend: a schedule is
// a sequence of process steps and crash events. Explorer-found violations
// carry their schedule in this form (sim/explorer_config.hpp), so any
// counterexample can be fed straight back into sim::replay for minimization
// and regression capture; the engine's expansion core uses the same type for
// its search paths (engine/expand.hpp aliases it), which is what makes the
// round-trip lossless.
#ifndef RCONS_SIM_SCHEDULE_HPP
#define RCONS_SIM_SCHEDULE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rcons::sim {

struct ScheduleEvent {
  enum class Kind : std::uint8_t { kStep = 0, kCrash = 1, kCrashAll = 2 };
  Kind kind = Kind::kStep;
  int process = -1;  // victim / stepper; -1 for kCrashAll

  static ScheduleEvent step(int p) { return {Kind::kStep, p}; }
  static ScheduleEvent crash(int p) { return {Kind::kCrash, p}; }
  static ScheduleEvent crash_all() { return {Kind::kCrashAll, -1}; }

  bool operator==(const ScheduleEvent&) const = default;
};

// Human-readable rendering, e.g. "step(p0) CRASH(p1) step(p0) ".
std::string format_schedule(const std::vector<ScheduleEvent>& schedule);

}  // namespace rcons::sim

#endif  // RCONS_SIM_SCHEDULE_HPP
