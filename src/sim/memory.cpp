#include "sim/memory.hpp"

#include "util/assert.hpp"

namespace rcons::sim {

RegId Memory::add_register(typesys::Value initial) {
  registers_.push_back(initial);
  return static_cast<RegId>(registers_.size()) - 1;
}

ObjId Memory::add_object(std::shared_ptr<typesys::TransitionCache> cache,
                         typesys::StateId q0) {
  RCONS_ASSERT(cache != nullptr);
  objects_.push_back(Object{std::move(cache), q0});
  return static_cast<ObjId>(objects_.size()) - 1;
}

typesys::Value Memory::read(RegId reg) const {
  RCONS_ASSERT(reg >= 0 && reg < num_registers());
  return registers_[static_cast<std::size_t>(reg)];
}

void Memory::write(RegId reg, typesys::Value value) {
  RCONS_ASSERT(reg >= 0 && reg < num_registers());
  registers_[static_cast<std::size_t>(reg)] = value;
}

typesys::Value Memory::apply(ObjId obj, typesys::OpId op) {
  RCONS_ASSERT(obj >= 0 && obj < num_objects());
  Object& object = objects_[static_cast<std::size_t>(obj)];
  const auto step = object.cache->apply(object.state, op);
  object.state = step.next;
  return step.response;
}

typesys::StateId Memory::object_state(ObjId obj) const {
  RCONS_ASSERT(obj >= 0 && obj < num_objects());
  return objects_[static_cast<std::size_t>(obj)].state;
}

typesys::TransitionCache& Memory::cache(ObjId obj) const {
  RCONS_ASSERT(obj >= 0 && obj < num_objects());
  return *objects_[static_cast<std::size_t>(obj)].cache;
}

void Memory::encode(std::vector<typesys::Value>& out) const {
  out.insert(out.end(), registers_.begin(), registers_.end());
  for (const Object& object : objects_) out.push_back(object.state);
}

std::size_t Memory::decode(const typesys::Value* data, std::size_t size) {
  const std::size_t width = encoded_width();
  RCONS_ASSERT_MSG(size >= width, "truncated memory encoding");
  for (std::size_t i = 0; i < registers_.size(); ++i) registers_[i] = data[i];
  for (std::size_t j = 0; j < objects_.size(); ++j) {
    objects_[j].state = static_cast<typesys::StateId>(data[registers_.size() + j]);
  }
  return width;
}

}  // namespace rcons::sim
