// Seeded random executions with crash injection, for instances too large to
// explore exhaustively. Any reported violation is reproducible from the seed,
// and every run records its schedule, so a violating run also replays exactly
// through sim::replay (the two backends share the ScheduleEvent vocabulary).
//
// The run evaluates the configured `sim::PropertySet` through the same
// helpers the explorers inline (sim/properties.hpp), so a violation carries
// the identical typed property and description across backends.
#ifndef RCONS_SIM_RANDOM_RUNNER_HPP
#define RCONS_SIM_RANDOM_RUNNER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/hooks.hpp"
#include "sim/explorer.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/properties.hpp"
#include "sim/schedule.hpp"

namespace rcons::sim {

// The shared `check::Budget` fields are interpreted as: `crash_budget` caps
// the crashes injected per run, `max_steps_per_run` is the wait-freedom bound
// the kWaitFreedom property inherits, `max_visited` is ignored (random runs
// do not deduplicate states).
struct RandomRunConfig : check::Budget {
  // What counts as a correct outcome; the classic trio by default.
  PropertySet properties;

  // Observability sinks (obs/hooks.hpp). A non-null metrics registry receives
  // the random.* counters after each run; a non-null tracer gets one
  // "random_run" span per call. Null (the default) disables both.
  obs::Hooks obs;

  std::uint64_t seed = 1;
  // Probability (numerator / 1000) that a scheduling slot injects a crash
  // instead of a step, while crash budget remains. Must be in [0, 1000]
  // (asserted by run_random): 0 never crashes, 1000 crashes every slot until
  // the crash budget is spent.
  int crash_per_mille = 50;
  std::int64_t max_total_steps = 1'000'000;

  RandomRunConfig() { crash_budget = 8; }
};

struct RandomRunReport {
  bool all_decided = false;
  std::vector<typesys::Value> outputs;  // every output event, in order
  std::int64_t steps = 0;
  int crashes = 0;
  std::optional<PropertyViolation> violation;
  // The schedule actually executed, replayable through sim::replay.
  std::vector<ScheduleEvent> schedule;
};

// Runs one randomly scheduled execution to completion (all processes decided)
// or until max_total_steps.
RandomRunReport run_random(Memory memory, std::vector<Process> processes,
                           const RandomRunConfig& config);

}  // namespace rcons::sim

#endif  // RCONS_SIM_RANDOM_RUNNER_HPP
