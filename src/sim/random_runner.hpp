// Seeded random executions with crash injection, for instances too large to
// explore exhaustively. Any reported violation is reproducible from the seed.
#ifndef RCONS_SIM_RANDOM_RUNNER_HPP
#define RCONS_SIM_RANDOM_RUNNER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/explorer.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"

namespace rcons::sim {

struct RandomRunConfig {
  std::uint64_t seed = 1;
  CrashModel crash_model = CrashModel::kIndependent;
  // Probability (numerator / 1000) that a scheduling slot injects a crash
  // instead of a step, while crash budget remains. Must be in [0, 1000]
  // (asserted by run_random): 0 never crashes, 1000 crashes every slot until
  // max_crashes is spent.
  int crash_per_mille = 50;
  int max_crashes = 8;
  long max_total_steps = 1'000'000;
  std::vector<typesys::Value> valid_outputs;
  bool crash_after_decide = true;
};

struct RandomRunReport {
  bool all_decided = false;
  std::vector<typesys::Value> outputs;  // every output event, in order
  long steps = 0;
  int crashes = 0;
  std::optional<std::string> violation;
};

// Runs one randomly scheduled execution to completion (all processes decided)
// or until max_total_steps.
RandomRunReport run_random(Memory memory, std::vector<Process> processes,
                           const RandomRunConfig& config);

}  // namespace rcons::sim

#endif  // RCONS_SIM_RANDOM_RUNNER_HPP
