#include "sim/explorer.hpp"

#include <new>

#include "engine/sentinel.hpp"
#include "util/assert.hpp"

namespace rcons::sim {

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kVisitedCap:
      return "visited-cap";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kMemory:
      return "memory";
    case StopReason::kWatchdog:
      return "watchdog";
    case StopReason::kForcedStop:
      return "forced-stop";
  }
  return "unknown";
}

Explorer::Explorer(Memory initial, std::vector<Process> processes, ExplorerConfig config)
    : initial_memory_(std::move(initial)),
      initial_processes_(std::move(processes)),
      config_(std::move(config)) {
  RCONS_ASSERT(!initial_processes_.empty());
  RCONS_ASSERT(config_.crash_budget >= 0);
  RCONS_ASSERT_MSG(config_.symmetry_classes.empty() ||
                       config_.symmetry_classes.size() == initial_processes_.size(),
                   "symmetry_classes must be empty or name every process");
  compact_ = engine::resolve_compact_repr(config_.node_repr, initial_processes_);
}

namespace {

void fill_probe_stats(ExplorerStats& stats, const engine::FlatTable::Stats& probes) {
  stats.hot.probe_total = probes.probe_total;
  stats.hot.probe_ops = probes.probe_ops;
  stats.hot.max_probe = probes.max_probe;
  stats.hot.rehashes = probes.rehashes;
}

}  // namespace

std::optional<Violation> Explorer::run() {
  stats_ = ExplorerStats{};
  visited_ = engine::FlatTable();
  path_.clear();
  table_ops_ = engine::CasTable::OpStats{};

  obs_cells_ = engine::ObsCells::resolve(config_.obs.metrics);
  obs_flushed_ = engine::ObsDeltas{};
  obs_duplicates_ = 0;
  obs_violation_edges_ = 0;
  obs_store_nodes_ = 0;
  obs_store_bytes_ = 0;
  obs_last_flush_transitions_ = 0;
  if (obs_cells_.active) {
    obs_cells_.visited_cap->set(static_cast<std::int64_t>(config_.visited_cap()));
    obs_cells_.num_threads->set(1);
  }

  deadline_ms_ = config_.time_limit_ms > 0
                     ? engine::steady_now_ms() + config_.time_limit_ms
                     : 0;
  rss_cap_bytes_ = config_.mem_limit_mb > 0
                       ? static_cast<std::uint64_t>(config_.mem_limit_mb) << 20
                       : 0;
  next_limit_poll_ = kLimitPollTransitions;

  std::optional<Violation> result;
  try {
    if (compact_) {
      result = run_compact();
    } else {
      engine::Node root =
          engine::make_root(initial_memory_, initial_processes_, config_.properties);
      insert_visited(root);
      result = dfs(root);
      fill_probe_stats(stats_, visited_.stats());
    }
  } catch (const std::bad_alloc&) {
    // An allocation failure becomes the typed truncated verdict with whatever
    // partial stats accumulated — never an abort.
    stats_.truncated = true;
    stats_.stop_reason = StopReason::kMemory;
    result = Violation{
        "memory limit exceeded or allocation failed (mem_limit_mb=" +
            std::to_string(config_.mem_limit_mb) + "); verdict incomplete",
        PropertyKind::kNone, 0, path_};
  }

  if (obs_cells_.active) {
    flush_obs();
    if (stats_.hot.rehashes != 0) {
      obs_cells_.store_rehashes->add(0, stats_.hot.rehashes);
    }
  }
  return result;
}

void Explorer::flush_obs() {
  engine::ObsDeltas totals;
  totals.visited = stats_.visited;
  totals.transitions = stats_.transitions;
  totals.decisions = stats_.decisions;
  totals.terminal_states = stats_.terminal_states;
  totals.duplicates = obs_duplicates_;
  totals.violation_edges = obs_violation_edges_;
  totals.encodes = stats_.store.encodes;
  totals.canonical_hits = stats_.store.canonical_hits;
  totals.nodes = obs_store_nodes_;
  totals.value_bytes = obs_store_bytes_;
  totals.orbit_skipped = stats_.orbit_skipped;
  totals.cas_retries = table_ops_.cas_retries;
  totals.migration_stripes = table_ops_.migration_stripes;

  engine::ObsDeltas delta;
  delta.visited = totals.visited - obs_flushed_.visited;
  delta.transitions = totals.transitions - obs_flushed_.transitions;
  delta.decisions = totals.decisions - obs_flushed_.decisions;
  delta.terminal_states = totals.terminal_states - obs_flushed_.terminal_states;
  delta.duplicates = totals.duplicates - obs_flushed_.duplicates;
  delta.violation_edges = totals.violation_edges - obs_flushed_.violation_edges;
  delta.encodes = totals.encodes - obs_flushed_.encodes;
  delta.canonical_hits = totals.canonical_hits - obs_flushed_.canonical_hits;
  delta.nodes = totals.nodes - obs_flushed_.nodes;
  delta.value_bytes = totals.value_bytes - obs_flushed_.value_bytes;
  delta.orbit_skipped = totals.orbit_skipped - obs_flushed_.orbit_skipped;
  delta.cas_retries = totals.cas_retries - obs_flushed_.cas_retries;
  delta.migration_stripes =
      totals.migration_stripes - obs_flushed_.migration_stripes;
  obs_cells_.flush(0, delta);
  obs_flushed_ = totals;
  obs_last_flush_transitions_ = stats_.transitions;
}

bool Explorer::insert_visited(const engine::Node& node) {
  return visited_.insert(engine::fingerprint(node, scratch_), 0).inserted;
}

std::optional<Violation> Explorer::poll_limits() {
  if (deadline_ms_ == 0 && rss_cap_bytes_ == 0) return std::nullopt;
  if (stats_.transitions < next_limit_poll_) return std::nullopt;
  next_limit_poll_ = stats_.transitions + kLimitPollTransitions;
  if (deadline_ms_ != 0 && engine::steady_now_ms() >= deadline_ms_) {
    stats_.truncated = true;
    stats_.stop_reason = StopReason::kDeadline;
    return Violation{"time limit exceeded (time_limit_ms=" +
                         std::to_string(config_.time_limit_ms) +
                         "); verdict incomplete",
                     PropertyKind::kNone, 0, path_};
  }
  if (rss_cap_bytes_ != 0) {
    const std::uint64_t rss = engine::current_rss_bytes();
    // A 0 reading means RSS is unavailable on this platform; never trip.
    if (rss != 0 && rss > rss_cap_bytes_) {
      stats_.truncated = true;
      stats_.stop_reason = StopReason::kMemory;
      return Violation{"memory limit exceeded or allocation failed (mem_limit_mb=" +
                           std::to_string(config_.mem_limit_mb) +
                           "); verdict incomplete",
                       PropertyKind::kNone, 0, path_};
    }
  }
  return std::nullopt;
}

std::optional<Violation> Explorer::dfs(const engine::Node& node) {
  // Depth-indexed scratch: one event buffer per recursion level, reused
  // across siblings so expansion does not allocate per node.
  const std::size_t depth = path_.size();
  while (events_pool_.size() <= depth) events_pool_.emplace_back();
  std::vector<engine::Event>& events = events_pool_[depth];
  engine::enumerate_events(node, config_, events);
  if (engine::is_terminal(node)) stats_.terminal_states += 1;

  for (const engine::Event& event : events) {
    engine::Node child = node;
    path_.push_back(event);
    stats_.transitions += 1;
    if (obs_cells_.active &&
        stats_.transitions - obs_last_flush_transitions_ >= kObsFlushTransitions) {
      flush_obs();
    }
    if (auto truncated = poll_limits()) {
      path_.pop_back();
      return truncated;
    }
    if (auto broken = engine::apply_event(child, event, config_)) {
      obs_violation_edges_ += 1;
      Violation violation{std::move(broken->description), broken->property,
                          broken->param, path_};
      path_.pop_back();
      return violation;
    }
    if (child.decisions.size() > node.decisions.size()) stats_.decisions += 1;
    if (insert_visited(child)) {
      stats_.visited += 1;
      if (stats_.visited > config_.visited_cap()) {
        stats_.truncated = true;
        stats_.stop_reason = StopReason::kVisitedCap;
        Violation violation{"state space exceeded max_visited; verdict incomplete",
                            PropertyKind::kNone, 0, path_};
        path_.pop_back();
        return violation;
      }
      if (auto violation = dfs(child)) {
        path_.pop_back();
        return violation;
      }
    } else {
      obs_duplicates_ += 1;
    }
    path_.pop_back();
  }

  return std::nullopt;
}

std::optional<Violation> Explorer::run_compact() {
  // Single shard, single arena: the sequential traversal has no concurrent
  // inserters (the lock-free table degenerates to plain probes).
  store_ = std::make_unique<engine::NodeStore>(0);
  codec_ = std::make_unique<engine::NodeCodec>(config_.symmetry_classes);
  orbit_reduction_ = codec_->canonicalizing();
  scratch_node_ =
      engine::make_root(initial_memory_, initial_processes_, config_.properties);

  const engine::NodeCodec::Encoded encoded =
      codec_->encode(scratch_node_, encode_scratch_);
  stats_.store.encodes += 1;
  if (encoded.permuted) stats_.store.canonical_hits += 1;
  const engine::NodeStore::Intern root =
      store_->intern(encoded.fingerprint, encode_scratch_, 0, &table_ops_);
  obs_store_nodes_ += 1;
  obs_store_bytes_ += static_cast<std::uint64_t>(root.length) * sizeof(typesys::Value);

  std::optional<Violation> result = dfs_compact(root.record, root.length);

  stats_.compact = true;
  const engine::NodeStore::Stats store_stats = store_->stats();
  stats_.store.nodes = store_stats.nodes;
  stats_.store.value_bytes = store_stats.value_bytes;
  stats_.hot.probe_total = table_ops_.probe_total;
  stats_.hot.probe_ops = table_ops_.probe_ops;
  stats_.hot.max_probe = table_ops_.max_probe;
  stats_.hot.cas_retries = table_ops_.cas_retries;
  stats_.hot.migration_stripes = table_ops_.migration_stripes;
  stats_.hot.rehashes = store_stats.rehashes;
  store_.reset();  // release the arena; the stats survive in stats_
  codec_.reset();
  return result;
}

std::optional<Violation> Explorer::dfs_compact(const typesys::Value* record,
                                               std::size_t size) {
  // Same traversal as dfs(), but the parent is its interned record, read in
  // place from the store arena — no Memory/Process clones, no per-depth
  // record copies. Between successors the one scratch node diverges from the
  // record only where the previous event touched it, so restore() refills
  // just that (one program decode per successor instead of n), and
  // per-process successors patch-encode by copying the n-1 unchanged blocks
  // from the parent record.
  const std::size_t depth = path_.size();
  while (events_pool_.size() <= depth) events_pool_.emplace_back();
  std::vector<engine::Event>& events = events_pool_[depth];

  codec_->decode(record, size, scratch_node_);
  // Stabilizer orbits: enumerate one representative event per orbit of
  // interchangeable processes; skipped siblings still count as transitions
  // (edges of the unreduced graph) plus orbit_skipped. The mask is consumed
  // by enumerate_events here, before recursion can overwrite the buffer.
  const std::uint64_t orbit_before = stats_.orbit_skipped;
  const int orbit_count =
      orbit_reduction_ ? codec_->orbit_skip_mask(record, orbit_skip_) : 0;
  engine::enumerate_events(scratch_node_, config_, events,
                           orbit_count > 0 ? &orbit_skip_ : nullptr,
                           &stats_.orbit_skipped);
  stats_.transitions += stats_.orbit_skipped - orbit_before;
  if (engine::is_terminal(scratch_node_)) stats_.terminal_states += 1;
  // Codec header layout: record[1] counts the distinct outputs so far.
  const auto parent_decisions = static_cast<std::size_t>(record[1]);

  int dirty = engine::NodeCodec::kDirtyNone;
  for (const engine::Event& event : events) {
    path_.push_back(event);
    stats_.transitions += 1;
    if (obs_cells_.active &&
        stats_.transitions - obs_last_flush_transitions_ >= kObsFlushTransitions) {
      flush_obs();
    }
    if (auto truncated = poll_limits()) {
      path_.pop_back();
      return truncated;
    }
    if (dirty != engine::NodeCodec::kDirtyNone) {
      codec_->restore(record, size, scratch_node_, dirty);
    }
    dirty = event.kind == engine::Event::Kind::kCrashAll
                ? engine::NodeCodec::kDirtyAll
                : event.process;
    if (auto broken = engine::apply_event(scratch_node_, event, config_)) {
      obs_violation_edges_ += 1;
      Violation violation{std::move(broken->description), broken->property,
                          broken->param, path_};
      path_.pop_back();
      return violation;
    }
    if (scratch_node_.decisions.size() > parent_decisions) stats_.decisions += 1;
    const engine::NodeCodec::Encoded encoded =
        event.kind == engine::Event::Kind::kCrashAll
            ? codec_->encode(scratch_node_, encode_scratch_)
            : codec_->encode_successor(record, size, scratch_node_,
                                       event.process, encode_scratch_);
    stats_.store.encodes += 1;
    if (encoded.permuted) stats_.store.canonical_hits += 1;
    const engine::NodeStore::Intern interned =
        store_->intern(encoded.fingerprint, encode_scratch_, 0, &table_ops_);
    if (interned.inserted) {
      obs_store_nodes_ += 1;
      obs_store_bytes_ +=
          static_cast<std::uint64_t>(interned.length) * sizeof(typesys::Value);
      stats_.visited += 1;
      if (stats_.visited > config_.visited_cap()) {
        stats_.truncated = true;
        stats_.stop_reason = StopReason::kVisitedCap;
        Violation violation{"state space exceeded max_visited; verdict incomplete",
                            PropertyKind::kNone, 0, path_};
        path_.pop_back();
        return violation;
      }
      if (auto violation = dfs_compact(interned.record, interned.length)) {
        path_.pop_back();
        return violation;
      }
      // Recursion re-pointed the codec's captured layout at descendant
      // records; a full re-decode (restore with kDirtyAll) re-captures this
      // record's layout before the next sibling.
      dirty = engine::NodeCodec::kDirtyAll;
    } else {
      obs_duplicates_ += 1;
    }
    path_.pop_back();
  }

  return std::nullopt;
}

}  // namespace rcons::sim
