#include "sim/explorer.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace rcons::sim {

using typesys::Value;

Explorer::Explorer(Memory initial, std::vector<Process> processes, ExplorerConfig config)
    : initial_memory_(std::move(initial)),
      initial_processes_(std::move(processes)),
      config_(std::move(config)) {
  RCONS_ASSERT(!initial_processes_.empty());
  RCONS_ASSERT(config_.crash_budget >= 0);
}

std::optional<Violation> Explorer::run() {
  stats_ = ExplorerStats{};
  visited_.clear();
  path_.clear();

  Node root;
  root.memory = initial_memory_;
  root.processes = initial_processes_;
  root.done.assign(initial_processes_.size(), 0);
  root.steps_in_run.assign(initial_processes_.size(), 0);
  insert_visited(root);
  return dfs(root);
}

std::optional<Violation> Explorer::apply_step(Node& node, int process) const {
  const auto idx = static_cast<std::size_t>(process);
  const StepResult result = node.processes[idx].step(node.memory);
  node.steps_in_run[idx] += 1;
  if (node.steps_in_run[idx] > config_.max_steps_per_run) {
    return Violation{"recoverable wait-freedom violated: process " +
                         std::to_string(process) + " exceeded " +
                         std::to_string(config_.max_steps_per_run) +
                         " steps in a single run",
                     ""};
  }
  if (result.kind == StepResult::Kind::kDecided) {
    if (!config_.valid_outputs.empty()) {
      bool valid = false;
      for (const Value v : config_.valid_outputs) valid = valid || v == result.decision;
      if (!valid) {
        return Violation{"validity violated: process " + std::to_string(process) +
                             " decided " + std::to_string(result.decision) +
                             ", which is not among the inputs",
                         ""};
      }
    }
    if (node.has_decision && node.decision != result.decision) {
      return Violation{"agreement violated: process " + std::to_string(process) +
                           " decided " + std::to_string(result.decision) +
                           " but an earlier output was " + std::to_string(node.decision),
                       ""};
    }
    node.has_decision = true;
    node.decision = result.decision;
    node.done[idx] = 1;
    node.steps_in_run[idx] = 0;
    // Canonicalize the local state of decided processes so equivalent global
    // states deduplicate regardless of how the decision was reached.
    node.processes[idx].reset();
  }
  return std::nullopt;
}

bool Explorer::insert_visited(const Node& node) {
  scratch_.clear();
  scratch_.push_back(node.crashes_used);
  scratch_.push_back(node.has_decision ? 1 : 0);
  scratch_.push_back(node.has_decision ? node.decision : 0);
  node.memory.encode(scratch_);
  for (std::size_t i = 0; i < node.processes.size(); ++i) {
    scratch_.push_back(node.done[i] != 0 ? 1 : 0);
    node.processes[i].encode(scratch_);
  }
  const std::uint64_t lo = util::hash_range(scratch_.data(), scratch_.size());
  // Independent second hash: remix every element with a different stream.
  std::uint64_t hi = 0x6a09e667f3bcc909ULL ^ scratch_.size();
  for (const Value v : scratch_) {
    hi = util::mix64(hi + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(v + 1));
  }
  return visited_.insert(U128{lo, hi}).second;
}

std::string Explorer::format_trace() const {
  std::ostringstream out;
  for (const Event& event : path_) {
    switch (event.kind) {
      case Event::Kind::kStep:
        out << "step(p" << event.process << ") ";
        break;
      case Event::Kind::kCrash:
        out << "CRASH(p" << event.process << ") ";
        break;
      case Event::Kind::kCrashAll:
        out << "CRASH(all) ";
        break;
    }
  }
  return out.str();
}

Violation Explorer::make_violation(std::string description) const {
  return Violation{std::move(description), format_trace()};
}

std::optional<Violation> Explorer::dfs(const Node& node) {
  const int n = static_cast<int>(node.processes.size());
  bool terminal = true;

  // Step moves.
  for (int i = 0; i < n; ++i) {
    if (node.done[static_cast<std::size_t>(i)] != 0) continue;
    terminal = false;
    Node child = node;
    path_.push_back(Event{Event::Kind::kStep, i});
    stats_.transitions += 1;
    if (auto violation = apply_step(child, i)) {
      violation->trace = format_trace();
      path_.pop_back();
      return violation;
    }
    if (child.has_decision && !node.has_decision) stats_.decisions += 1;
    if (insert_visited(child)) {
      stats_.visited += 1;
      if (stats_.visited > config_.max_visited) {
        stats_.truncated = true;
        path_.pop_back();
        return make_violation("state space exceeded max_visited; verdict incomplete");
      }
      if (auto violation = dfs(child)) {
        path_.pop_back();
        return violation;
      }
    }
    path_.pop_back();
  }

  // Crash moves.
  if (node.crashes_used < config_.crash_budget) {
    if (config_.crash_model == CrashModel::kIndependent) {
      for (int i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool is_done = node.done[idx] != 0;
        if (is_done && !config_.crash_after_decide) continue;
        // Crashing a process that has not taken a step in its current run
        // only burns budget; the resulting state is strictly weaker.
        if (!is_done && node.steps_in_run[idx] == 0) continue;
        Node child = node;
        child.crashes_used += 1;
        child.done[idx] = 0;
        child.steps_in_run[idx] = 0;
        child.processes[idx].reset();
        path_.push_back(Event{Event::Kind::kCrash, i});
        stats_.transitions += 1;
        if (insert_visited(child)) {
          stats_.visited += 1;
          if (auto violation = dfs(child)) {
            path_.pop_back();
            return violation;
          }
        }
        path_.pop_back();
      }
    } else {
      bool useful = false;
      for (int i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        useful = useful || node.done[idx] != 0 || node.steps_in_run[idx] > 0;
      }
      if (useful) {
        Node child = node;
        child.crashes_used += 1;
        for (int i = 0; i < n; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          child.done[idx] = 0;
          child.steps_in_run[idx] = 0;
          child.processes[idx].reset();
        }
        path_.push_back(Event{Event::Kind::kCrashAll, -1});
        stats_.transitions += 1;
        if (insert_visited(child)) {
          stats_.visited += 1;
          if (auto violation = dfs(child)) {
            path_.pop_back();
            return violation;
          }
        }
        path_.pop_back();
      }
    }
  }

  if (terminal) stats_.terminal_states += 1;
  return std::nullopt;
}

}  // namespace rcons::sim
