#include "sim/explorer.hpp"

#include "util/assert.hpp"

namespace rcons::sim {

Explorer::Explorer(Memory initial, std::vector<Process> processes, ExplorerConfig config)
    : initial_memory_(std::move(initial)),
      initial_processes_(std::move(processes)),
      config_(std::move(config)) {
  RCONS_ASSERT(!initial_processes_.empty());
  RCONS_ASSERT(config_.crash_budget >= 0);
}

std::optional<Violation> Explorer::run() {
  stats_ = ExplorerStats{};
  visited_.clear();
  path_.clear();

  engine::Node root = engine::make_root(initial_memory_, initial_processes_);
  insert_visited(root);
  return dfs(root);
}

bool Explorer::insert_visited(const engine::Node& node) {
  return visited_.insert(engine::fingerprint(node, scratch_)).second;
}

std::optional<Violation> Explorer::dfs(const engine::Node& node) {
  // Depth-indexed scratch: one event buffer per recursion level, reused
  // across siblings so expansion does not allocate per node.
  const std::size_t depth = path_.size();
  while (events_pool_.size() <= depth) events_pool_.emplace_back();
  std::vector<engine::Event>& events = events_pool_[depth];
  engine::enumerate_events(node, config_, events);
  if (engine::is_terminal(node)) stats_.terminal_states += 1;

  for (const engine::Event& event : events) {
    engine::Node child = node;
    path_.push_back(event);
    stats_.transitions += 1;
    if (auto description = engine::apply_event(child, event, config_)) {
      Violation violation{std::move(*description), path_};
      path_.pop_back();
      return violation;
    }
    if (child.has_decision && !node.has_decision) stats_.decisions += 1;
    if (insert_visited(child)) {
      stats_.visited += 1;
      if (stats_.visited > config_.max_visited) {
        stats_.truncated = true;
        Violation violation{"state space exceeded max_visited; verdict incomplete",
                            path_};
        path_.pop_back();
        return violation;
      }
      if (auto violation = dfs(child)) {
        path_.pop_back();
        return violation;
      }
    }
    path_.pop_back();
  }

  return std::nullopt;
}

}  // namespace rcons::sim
