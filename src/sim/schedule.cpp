#include "sim/schedule.hpp"

#include <sstream>

#include "sim/explorer_config.hpp"

namespace rcons::sim {

std::string format_schedule(const std::vector<ScheduleEvent>& schedule) {
  std::ostringstream out;
  for (const ScheduleEvent& event : schedule) {
    switch (event.kind) {
      case ScheduleEvent::Kind::kStep:
        out << "step(p" << event.process << ") ";
        break;
      case ScheduleEvent::Kind::kCrash:
        out << "CRASH(p" << event.process << ") ";
        break;
      case ScheduleEvent::Kind::kCrashAll:
        out << "CRASH(all) ";
        break;
    }
  }
  return out.str();
}

std::string Violation::trace() const { return format_schedule(schedule); }

}  // namespace rcons::sim
