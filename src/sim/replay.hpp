// Scripted schedules: deterministic replay of a fixed event sequence.
// Used for regression tests of the specific adversarial scenarios discussed
// in the paper (Section 3.1's two "bad scenario" discussions) and for
// debugging explorer-found traces.
#ifndef RCONS_SIM_REPLAY_HPP
#define RCONS_SIM_REPLAY_HPP

#include <optional>
#include <string>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"

namespace rcons::sim {

struct ScheduleEvent {
  enum class Kind { kStep, kCrash, kCrashAll };
  Kind kind = Kind::kStep;
  int process = 0;

  static ScheduleEvent step(int p) { return {Kind::kStep, p}; }
  static ScheduleEvent crash(int p) { return {Kind::kCrash, p}; }
  static ScheduleEvent crash_all() { return {Kind::kCrashAll, -1}; }
};

struct ReplayReport {
  // Latest decision per process (nullopt if none yet in its current run).
  std::vector<std::optional<typesys::Value>> decisions;
  // Every output event across all runs, in schedule order.
  std::vector<typesys::Value> outputs;
  std::optional<std::string> violation;  // agreement violation, if any
  Memory final_memory;
};

// Runs the events in order. Stepping a process that already decided in its
// current run is ignored (it has returned).
ReplayReport replay(Memory memory, std::vector<Process> processes,
                    const std::vector<ScheduleEvent>& schedule);

}  // namespace rcons::sim

#endif  // RCONS_SIM_REPLAY_HPP
