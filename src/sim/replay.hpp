// Scripted schedules: deterministic replay of a fixed event sequence.
// Used for regression tests of the specific adversarial scenarios discussed
// in the paper (Section 3.1's two "bad scenario" discussions) and for
// re-executing explorer-found violation schedules (sim::Violation::schedule
// uses the same ScheduleEvent vocabulary).
//
// Replay evaluates the given `sim::PropertySet` through the same helpers the
// other backends use, so a violation of any property reproduces from its
// schedule with the identical typed identity and description.
#ifndef RCONS_SIM_REPLAY_HPP
#define RCONS_SIM_REPLAY_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/hooks.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/properties.hpp"
#include "sim/schedule.hpp"

namespace rcons::sim {

struct ReplayReport {
  // Latest decision per process (nullopt if none yet in its current run).
  std::vector<std::optional<typesys::Value>> decisions;
  // Every output event across all runs, in schedule order.
  std::vector<typesys::Value> outputs;
  std::optional<PropertyViolation> violation;  // first broken property, if any
  Memory final_memory;
};

// Runs the events in order. Stepping a process that already decided in its
// current run is ignored (it has returned). `properties` selects what is
// verified (the classic trio by default; an empty valid set disables the
// validity check); `max_steps_per_run` is the bound the wait-freedom property
// inherits — non-positive leaves per-run steps unbounded, the historical
// replay default. `obs` (obs/hooks.hpp) optionally receives the replay.*
// counters and one "replay" span per call; the default disables both.
ReplayReport replay(Memory memory, std::vector<Process> processes,
                    const std::vector<ScheduleEvent>& schedule,
                    const PropertySet& properties = {},
                    std::int64_t max_steps_per_run = 0, obs::Hooks obs = {});

}  // namespace rcons::sim

#endif  // RCONS_SIM_REPLAY_HPP
