// Scripted schedules: deterministic replay of a fixed event sequence.
// Used for regression tests of the specific adversarial scenarios discussed
// in the paper (Section 3.1's two "bad scenario" discussions) and for
// re-executing explorer-found violation schedules (sim::Violation::schedule
// uses the same ScheduleEvent vocabulary).
#ifndef RCONS_SIM_REPLAY_HPP
#define RCONS_SIM_REPLAY_HPP

#include <optional>
#include <string>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/schedule.hpp"

namespace rcons::sim {

struct ReplayReport {
  // Latest decision per process (nullopt if none yet in its current run).
  std::vector<std::optional<typesys::Value>> decisions;
  // Every output event across all runs, in schedule order.
  std::vector<typesys::Value> outputs;
  std::optional<std::string> violation;  // agreement/validity violation, if any
  Memory final_memory;
};

// Runs the events in order. Stepping a process that already decided in its
// current run is ignored (it has returned). When `valid_outputs` is non-empty
// every output is additionally checked against it, and when
// `max_steps_per_run` is positive the per-run step bound is enforced — the
// same validity and recoverable-wait-freedom properties the explorers
// verify, so violations of any property reproduce from their schedule.
ReplayReport replay(Memory memory, std::vector<Process> processes,
                    const std::vector<ScheduleEvent>& schedule,
                    const std::vector<typesys::Value>& valid_outputs = {},
                    long max_steps_per_run = 0);

}  // namespace rcons::sim

#endif  // RCONS_SIM_REPLAY_HPP
