#include "sim/replay.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace rcons::sim {

using typesys::Value;

ReplayReport replay(Memory memory, std::vector<Process> processes,
                    const std::vector<ScheduleEvent>& schedule,
                    const PropertySet& properties, std::int64_t max_steps_per_run,
                    obs::Hooks obs) {
  obs::Span span(obs.tracer, 0, "replay");
  ReplayReport report;
  report.decisions.assign(processes.size(), std::nullopt);
  std::vector<std::uint8_t> done(processes.size(), 0);
  std::vector<std::int64_t> steps_in_run(processes.size(), 0);

  // Property tracking state (sim/properties.hpp); the at-most-once memory is
  // per-process and survives crash events.
  std::vector<Value> distinct_outputs;
  std::vector<std::uint8_t> ever_output;
  std::vector<Value> last_output;
  if (properties.at_most_once()) {
    ever_output.assign(processes.size(), 0);
    last_output.assign(processes.size(), 0);
  }

  for (const ScheduleEvent& event : schedule) {
    switch (event.kind) {
      case ScheduleEvent::Kind::kStep: {
        RCONS_ASSERT(event.process >= 0 &&
                     event.process < static_cast<int>(processes.size()));
        const auto idx = static_cast<std::size_t>(event.process);
        if (done[idx] != 0) break;
        const StepResult result = processes[idx].step(memory);
        steps_in_run[idx] += 1;
        if (!report.violation) {
          if (auto violation = check_wait_freedom(
                  properties, event.process, steps_in_run[idx], max_steps_per_run)) {
            report.violation = std::move(violation);
          }
        }
        if (result.kind == StepResult::Kind::kDecided) {
          steps_in_run[idx] = 0;
          done[idx] = 1;
          report.decisions[idx] = result.decision;
          report.outputs.push_back(result.decision);
          if (!report.violation) {
            if (auto violation =
                    check_output(properties, event.process, result.decision,
                                 distinct_outputs, ever_output, last_output)) {
              report.violation = std::move(violation);
            }
          } else {
            // Keep the constraint state advancing past an already-reported
            // violation so later decisions don't re-trip it spuriously.
            check_output(properties, event.process, result.decision,
                         distinct_outputs, ever_output, last_output);
          }
        }
        break;
      }
      case ScheduleEvent::Kind::kCrash: {
        RCONS_ASSERT(event.process >= 0 &&
                     event.process < static_cast<int>(processes.size()));
        const auto idx = static_cast<std::size_t>(event.process);
        processes[idx].reset();
        done[idx] = 0;
        steps_in_run[idx] = 0;
        report.decisions[idx] = std::nullopt;
        break;
      }
      case ScheduleEvent::Kind::kCrashAll: {
        for (std::size_t idx = 0; idx < processes.size(); ++idx) {
          processes[idx].reset();
          done[idx] = 0;
          steps_in_run[idx] = 0;
          report.decisions[idx] = std::nullopt;
        }
        break;
      }
    }
  }
  report.final_memory = std::move(memory);
  if (obs.metrics != nullptr) {
    obs::MetricsRegistry& registry = *obs.metrics;
    if (!schedule.empty()) {
      registry.counter("replay.steps").add(0, schedule.size());
    }
    if (!report.outputs.empty()) {
      registry.counter("replay.outputs").add(0, report.outputs.size());
    }
    if (report.violation.has_value()) registry.counter("replay.violations").add(0, 1);
  }
  return report;
}

}  // namespace rcons::sim
