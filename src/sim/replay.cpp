#include "sim/replay.hpp"

#include "util/assert.hpp"

namespace rcons::sim {

ReplayReport replay(Memory memory, std::vector<Process> processes,
                    const std::vector<ScheduleEvent>& schedule) {
  ReplayReport report;
  report.decisions.assign(processes.size(), std::nullopt);
  std::vector<std::uint8_t> done(processes.size(), 0);

  for (const ScheduleEvent& event : schedule) {
    switch (event.kind) {
      case ScheduleEvent::Kind::kStep: {
        RCONS_ASSERT(event.process >= 0 &&
                     event.process < static_cast<int>(processes.size()));
        const auto idx = static_cast<std::size_t>(event.process);
        if (done[idx] != 0) break;
        const StepResult result = processes[idx].step(memory);
        if (result.kind == StepResult::Kind::kDecided) {
          done[idx] = 1;
          report.decisions[idx] = result.decision;
          report.outputs.push_back(result.decision);
          if (report.outputs.front() != result.decision && !report.violation) {
            report.violation = "agreement violated: process " +
                               std::to_string(event.process) + " output " +
                               std::to_string(result.decision) + " vs earlier " +
                               std::to_string(report.outputs.front());
          }
        }
        break;
      }
      case ScheduleEvent::Kind::kCrash: {
        RCONS_ASSERT(event.process >= 0 &&
                     event.process < static_cast<int>(processes.size()));
        const auto idx = static_cast<std::size_t>(event.process);
        processes[idx].reset();
        done[idx] = 0;
        report.decisions[idx] = std::nullopt;
        break;
      }
      case ScheduleEvent::Kind::kCrashAll: {
        for (std::size_t idx = 0; idx < processes.size(); ++idx) {
          processes[idx].reset();
          done[idx] = 0;
          report.decisions[idx] = std::nullopt;
        }
        break;
      }
    }
  }
  report.final_memory = std::move(memory);
  return report;
}

}  // namespace rcons::sim
