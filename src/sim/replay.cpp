#include "sim/replay.hpp"

#include "sim/properties.hpp"
#include "util/assert.hpp"

namespace rcons::sim {

ReplayReport replay(Memory memory, std::vector<Process> processes,
                    const std::vector<ScheduleEvent>& schedule,
                    const std::vector<typesys::Value>& valid_outputs,
                    long max_steps_per_run) {
  ReplayReport report;
  report.decisions.assign(processes.size(), std::nullopt);
  std::vector<std::uint8_t> done(processes.size(), 0);
  std::vector<long> steps_in_run(processes.size(), 0);

  for (const ScheduleEvent& event : schedule) {
    switch (event.kind) {
      case ScheduleEvent::Kind::kStep: {
        RCONS_ASSERT(event.process >= 0 &&
                     event.process < static_cast<int>(processes.size()));
        const auto idx = static_cast<std::size_t>(event.process);
        if (done[idx] != 0) break;
        const StepResult result = processes[idx].step(memory);
        steps_in_run[idx] += 1;
        if (max_steps_per_run > 0 && !report.violation) {
          if (auto violation = wait_freedom_violation(
                  event.process, steps_in_run[idx], max_steps_per_run)) {
            report.violation = std::move(*violation);
          }
        }
        if (result.kind == StepResult::Kind::kDecided) {
          steps_in_run[idx] = 0;
          done[idx] = 1;
          report.decisions[idx] = result.decision;
          report.outputs.push_back(result.decision);
          if (!report.violation) {
            if (auto violation = validity_violation(event.process, result.decision,
                                                    valid_outputs)) {
              report.violation = std::move(*violation);
            }
          }
          if (!report.violation) {
            if (auto violation = agreement_violation(event.process, result.decision,
                                                     report.outputs.front())) {
              report.violation = std::move(*violation);
            }
          }
        }
        break;
      }
      case ScheduleEvent::Kind::kCrash: {
        RCONS_ASSERT(event.process >= 0 &&
                     event.process < static_cast<int>(processes.size()));
        const auto idx = static_cast<std::size_t>(event.process);
        processes[idx].reset();
        done[idx] = 0;
        steps_in_run[idx] = 0;
        report.decisions[idx] = std::nullopt;
        break;
      }
      case ScheduleEvent::Kind::kCrashAll: {
        for (std::size_t idx = 0; idx < processes.size(); ++idx) {
          processes[idx].reset();
          done[idx] = 0;
          steps_in_run[idx] = 0;
          report.decisions[idx] = std::nullopt;
        }
        break;
      }
    }
  }
  report.final_memory = std::move(memory);
  return report;
}

}  // namespace rcons::sim
