// Value-semantic step-machine processes.
//
// Every algorithm in this repository is written once, as a copyable struct
// whose step() performs *exactly one* shared-memory access (local computation
// is folded into the adjacent access, matching the usual atomic-step model).
// A Process type-erases such a program while keeping value semantics, and
// remembers the pristine initial program so that a crash — which in the
// paper's model wipes local memory including the program counter — is
// modelled by reset() back to the initial invocation.
//
// Program concept:
//   struct P {
//     StepResult step(Memory& memory);            // one access per call
//     void encode(std::vector<Value>& out) const; // canonical local state
//     // optional — enables the engine's compact interned node representation:
//     std::size_t decode(const Value* data, std::size_t size);
//   };
//
// decode() is the inverse of encode(): it restores the current run's volatile
// local state from the values encode() produced and returns how many values
// it consumed (encodings are self-delimiting, so composed programs can chain
// decodes). Programs that implement it are "decodable"; the explorers then
// store nodes as interned value vectors and rebuild process state in place
// instead of cloning type-erased programs on every expansion
// (engine/node_store.hpp). Programs without decode() still work — the
// explorers fall back to the clone-based representation.
#ifndef RCONS_SIM_PROCESS_HPP
#define RCONS_SIM_PROCESS_HPP

#include <concepts>
#include <memory>
#include <utility>
#include <vector>

#include "sim/memory.hpp"
#include "util/assert.hpp"

namespace rcons::sim {

struct StepResult {
  enum class Kind { kRunning, kDecided };
  Kind kind = Kind::kRunning;
  typesys::Value decision = 0;  // meaningful when kind == kDecided

  static StepResult running() { return {Kind::kRunning, 0}; }
  static StepResult decided(typesys::Value value) { return {Kind::kDecided, value}; }
};

// Detects the optional decode() half of the program concept.
template <typename P>
concept DecodableProgram =
    requires(P& program, const typesys::Value* data, std::size_t size) {
      { program.decode(data, size) } -> std::same_as<std::size_t>;
    };

class Process {
 public:
  template <typename P>
  explicit Process(P program)
      : initial_(std::make_unique<Model<P>>(program)),
        current_(std::make_unique<Model<P>>(std::move(program))) {}

  Process(const Process& other)
      : initial_(other.initial_->clone()), current_(other.current_->clone()) {}
  Process& operator=(const Process& other) {
    if (this != &other) {
      initial_ = other.initial_->clone();
      current_ = other.current_->clone();
    }
    return *this;
  }
  Process(Process&&) noexcept = default;
  Process& operator=(Process&&) noexcept = default;

  // Performs the next shared-memory access of the current run.
  StepResult step(Memory& memory) { return current_->step(memory); }

  // Crash: discard all local state; the next step() begins a fresh run of the
  // algorithm from the top (shared memory is untouched). Copy-assigns the
  // pristine program into the existing model — crashes and decided-run resets
  // sit on the explorers' hot path, and `initial_`/`current_` are always the
  // same Model<P> (constructed together, cloned pairwise), so no allocation.
  void reset() { current_->assign_from(*initial_); }

  // Canonical encoding of the current run's local state.
  void encode(std::vector<typesys::Value>& out) const { current_->encode(out); }

  // Whether the underlying program supports decode() (see header comment).
  bool decodable() const { return current_->decodable(); }

  // Restores the current run's local state from an encode() image, returning
  // the number of values consumed. Asserts when the program is not decodable.
  std::size_t decode(const typesys::Value* data, std::size_t size) {
    return current_->decode(data, size);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual std::unique_ptr<Concept> clone() const = 0;
    virtual void assign_from(const Concept& other) = 0;
    virtual StepResult step(Memory& memory) = 0;
    virtual void encode(std::vector<typesys::Value>& out) const = 0;
    virtual bool decodable() const = 0;
    virtual std::size_t decode(const typesys::Value* data, std::size_t size) = 0;
  };

  template <typename P>
  struct Model final : Concept {
    explicit Model(P p) : program(std::move(p)) {}
    std::unique_ptr<Concept> clone() const override {
      return std::make_unique<Model<P>>(program);
    }
    void assign_from(const Concept& other) override {
      program = static_cast<const Model<P>&>(other).program;
    }
    StepResult step(Memory& memory) override { return program.step(memory); }
    void encode(std::vector<typesys::Value>& out) const override {
      program.encode(out);
    }
    bool decodable() const override { return DecodableProgram<P>; }
    std::size_t decode(const typesys::Value* data, std::size_t size) override {
      if constexpr (DecodableProgram<P>) {
        return program.decode(data, size);
      } else {
        (void)data;
        (void)size;
        RCONS_ASSERT_MSG(false, "program does not implement decode()");
        return 0;
      }
    }
    P program;
  };

  std::unique_ptr<Concept> initial_;
  std::unique_ptr<Concept> current_;
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_PROCESS_HPP
