// Value-semantic step-machine processes.
//
// Every algorithm in this repository is written once, as a copyable struct
// whose step() performs *exactly one* shared-memory access (local computation
// is folded into the adjacent access, matching the usual atomic-step model).
// A Process type-erases such a program while keeping value semantics, and
// remembers the pristine initial program so that a crash — which in the
// paper's model wipes local memory including the program counter — is
// modelled by reset() back to the initial invocation.
//
// Program concept:
//   struct P {
//     StepResult step(Memory& memory);            // one access per call
//     void encode(std::vector<Value>& out) const; // canonical local state
//   };
#ifndef RCONS_SIM_PROCESS_HPP
#define RCONS_SIM_PROCESS_HPP

#include <memory>
#include <utility>
#include <vector>

#include "sim/memory.hpp"
#include "util/assert.hpp"

namespace rcons::sim {

struct StepResult {
  enum class Kind { kRunning, kDecided };
  Kind kind = Kind::kRunning;
  typesys::Value decision = 0;  // meaningful when kind == kDecided

  static StepResult running() { return {Kind::kRunning, 0}; }
  static StepResult decided(typesys::Value value) { return {Kind::kDecided, value}; }
};

class Process {
 public:
  template <typename P>
  explicit Process(P program)
      : initial_(std::make_unique<Model<P>>(program)),
        current_(std::make_unique<Model<P>>(std::move(program))) {}

  Process(const Process& other)
      : initial_(other.initial_->clone()), current_(other.current_->clone()) {}
  Process& operator=(const Process& other) {
    if (this != &other) {
      initial_ = other.initial_->clone();
      current_ = other.current_->clone();
    }
    return *this;
  }
  Process(Process&&) noexcept = default;
  Process& operator=(Process&&) noexcept = default;

  // Performs the next shared-memory access of the current run.
  StepResult step(Memory& memory) { return current_->step(memory); }

  // Crash: discard all local state; the next step() begins a fresh run of the
  // algorithm from the top (shared memory is untouched).
  void reset() { current_ = initial_->clone(); }

  // Canonical encoding of the current run's local state.
  void encode(std::vector<typesys::Value>& out) const { current_->encode(out); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual std::unique_ptr<Concept> clone() const = 0;
    virtual StepResult step(Memory& memory) = 0;
    virtual void encode(std::vector<typesys::Value>& out) const = 0;
  };

  template <typename P>
  struct Model final : Concept {
    explicit Model(P p) : program(std::move(p)) {}
    std::unique_ptr<Concept> clone() const override {
      return std::make_unique<Model<P>>(program);
    }
    StepResult step(Memory& memory) override { return program.step(memory); }
    void encode(std::vector<typesys::Value>& out) const override {
      program.encode(out);
    }
    P program;
  };

  std::unique_ptr<Concept> initial_;
  std::unique_ptr<Concept> current_;
};

}  // namespace rcons::sim

#endif  // RCONS_SIM_PROCESS_HPP
