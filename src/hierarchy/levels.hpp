// Hierarchy levels: the largest n for which a type is n-discerning or
// n-recording, and the cons/rcons bounds the paper derives from them.
#ifndef RCONS_HIERARCHY_LEVELS_HPP
#define RCONS_HIERARCHY_LEVELS_HPP

#include <string>

#include "typesys/object_type.hpp"

namespace rcons::hierarchy {

// Result of a bounded max-level scan. `level` is the largest n in [2, cap]
// for which the property holds, or 1 if it fails already at n = 2. When
// `capped` is true the property still held at n = cap, so the true level is
// "at least cap" (finitely checkable fragment of consensus number ∞).
struct Level {
  int level = 1;
  bool capped = false;

  std::string format() const;
};

// Scans n = 2, 3, …, cap, stopping at the first failure. Stopping is exact:
// by Observation 6 (and its analogue for the discerning property), failing at
// n implies failing at every n' > n.
Level max_discerning_level(const typesys::ObjectType& type, int cap);
Level max_recording_level(const typesys::ObjectType& type, int cap);

// cons/rcons bounds implied by the paper for a *readable* type with the given
// levels (Theorems 3, 8, 14): cons = disc level exactly; rcons is in
// [recording level, recording level + 1], additionally clipped from above by
// cons (Corollary 17).
struct HierarchyBounds {
  int cons = 1;              // exact (Theorem 3), kUnboundedLevel if capped
  int rcons_lo = 1;          // Theorem 8
  int rcons_hi = 1;          // Theorem 14 + Corollary 17
};
inline constexpr int kUnboundedLevel = -1;

HierarchyBounds bounds_for_readable(const Level& discerning, const Level& recording);

}  // namespace rcons::hierarchy

#endif  // RCONS_HIERARCHY_LEVELS_HPP
