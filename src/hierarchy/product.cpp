#include "hierarchy/product.hpp"

#include "util/assert.hpp"

namespace rcons::hierarchy {

using typesys::Operation;
using typesys::StateRepr;
using typesys::Transition;

namespace {
// Operation kinds route to a component; the component's own kind/arg are
// rebuilt from the encoded composite kind.
constexpr int kComponentStride = 1 << 20;
}  // namespace

ProductType::ProductType(std::unique_ptr<typesys::ObjectType> first,
                         std::unique_ptr<typesys::ObjectType> second)
    : first_(std::move(first)), second_(std::move(second)) {
  RCONS_ASSERT(first_ != nullptr && second_ != nullptr);
}

std::string ProductType::name() const {
  return first_->name() + "x" + second_->name();
}

bool ProductType::readable() const {
  return first_->readable() && second_->readable();
}

std::vector<Operation> ProductType::operations(int n) const {
  std::vector<Operation> ops;
  for (const Operation& op : first_->operations(n)) {
    ops.push_back({op.kind, op.arg, op.name + "@1"});
  }
  for (const Operation& op : second_->operations(n)) {
    ops.push_back({op.kind + kComponentStride, op.arg, op.name + "@2"});
  }
  return ops;
}

std::vector<StateRepr> ProductType::initial_states(int n) const {
  std::vector<StateRepr> states;
  for (const StateRepr& a : first_->initial_states(n)) {
    for (const StateRepr& b : second_->initial_states(n)) {
      states.push_back(join(a, b));
    }
  }
  return states;
}

Transition ProductType::apply(const StateRepr& state, const Operation& op) const {
  const Split parts = split(state);
  if (op.kind < kComponentStride) {
    Transition t = first_->apply(parts.first, {op.kind, op.arg, op.name});
    return Transition{join(t.next, parts.second), t.response};
  }
  Transition t =
      second_->apply(parts.second, {op.kind - kComponentStride, op.arg, op.name});
  return Transition{join(parts.first, t.next), t.response};
}

std::string ProductType::format_state(const StateRepr& state) const {
  const Split parts = split(state);
  return first_->format_state(parts.first) + "x" + second_->format_state(parts.second);
}

ProductType::Split ProductType::split(const StateRepr& state) const {
  RCONS_ASSERT(!state.empty());
  const auto len = static_cast<std::size_t>(state[0]);
  RCONS_ASSERT(state.size() >= 1 + len);
  Split parts;
  parts.first.assign(state.begin() + 1, state.begin() + 1 + static_cast<long>(len));
  parts.second.assign(state.begin() + 1 + static_cast<long>(len), state.end());
  return parts;
}

StateRepr ProductType::join(const StateRepr& first, const StateRepr& second) {
  StateRepr state;
  state.reserve(1 + first.size() + second.size());
  state.push_back(static_cast<typesys::Value>(first.size()));
  state.insert(state.end(), first.begin(), first.end());
  state.insert(state.end(), second.begin(), second.end());
  return state;
}

}  // namespace rcons::hierarchy
