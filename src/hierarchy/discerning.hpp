// The n-discerning property (Definition 2) — Ruppert's characterization of
// deterministic readable types that solve n-process wait-free consensus
// (Theorem 3: a readable type solves n-process consensus iff n-discerning).
#ifndef RCONS_HIERARCHY_DISCERNING_HPP
#define RCONS_HIERARCHY_DISCERNING_HPP

#include <optional>
#include <string>

#include "hierarchy/assignment.hpp"
#include "typesys/transition_cache.hpp"

namespace rcons::hierarchy {

// A witness for Definition 2: an initial state q0 and a team/op assignment
// under which R_{A,j} ∩ R_{B,j} = ∅ for every process j.
struct DiscerningWitness {
  typesys::StateId q0 = typesys::kNoState;
  Assignment assignment;

  std::string format(const typesys::TransitionCache& cache) const;
};

// Checks whether a specific (q0, assignment) pair satisfies Definition 2.
bool check_discerning_assignment(typesys::TransitionCache& cache, typesys::StateId q0,
                                 const Assignment& assignment);

// Searches all candidate initial states and multiset assignments; returns a
// witness iff the type is n-discerning (relative to the type's candidate
// operation/state sets — exact for finite types; see DESIGN.md).
std::optional<DiscerningWitness> find_discerning_witness(typesys::TransitionCache& cache);

// Convenience entry point building its own cache.
bool is_discerning(const typesys::ObjectType& type, int n);

}  // namespace rcons::hierarchy

#endif  // RCONS_HIERARCHY_DISCERNING_HPP
