// Product types: a pair of objects of two base types viewed as one object,
// each operation acting on one component. Used to probe Theorem 22
// experimentally: a set of readable types used together can solve RC for at
// most one more process than the strongest member alone, so the recording
// level of product(T1, T2) must not exceed max(level(T1), level(T2)) + 1.
#ifndef RCONS_HIERARCHY_PRODUCT_HPP
#define RCONS_HIERARCHY_PRODUCT_HPP

#include <memory>

#include "typesys/object_type.hpp"

namespace rcons::hierarchy {

class ProductType final : public typesys::ObjectType {
 public:
  ProductType(std::unique_ptr<typesys::ObjectType> first,
              std::unique_ptr<typesys::ObjectType> second);

  std::string name() const override;
  bool readable() const override;
  std::vector<typesys::Operation> operations(int n) const override;
  std::vector<typesys::StateRepr> initial_states(int n) const override;
  typesys::Transition apply(const typesys::StateRepr& state,
                            const typesys::Operation& op) const override;
  std::string format_state(const typesys::StateRepr& state) const override;

 private:
  // State encoding: {len_first, <first component...>, <second component...>}.
  struct Split {
    typesys::StateRepr first;
    typesys::StateRepr second;
  };
  Split split(const typesys::StateRepr& state) const;
  static typesys::StateRepr join(const typesys::StateRepr& first,
                                 const typesys::StateRepr& second);

  std::unique_ptr<typesys::ObjectType> first_;
  std::unique_ptr<typesys::ObjectType> second_;
};

}  // namespace rcons::hierarchy

#endif  // RCONS_HIERARCHY_PRODUCT_HPP
