// Reachable-state and response-state sets underlying the paper's two
// characterizations.
//
// Q_X(q0, op_1, …, op_n)  (Definition 4 notation): the set of states q such
// that some sequence of operations by *distinct* processes, whose first
// performer is on team X, takes an object from q0 to q.
//
// R_{X,j}  (Definition 2 notation): the set of (response, state) pairs (r, q)
// such that some sequence of operations by distinct processes including p_j,
// whose first performer is on team X, takes the object from q0 to q while
// p_j's operation returns r.
//
// Both sets are computed by depth-first search over (object state, per-class
// usage counts) — processes in the same (team, op) class are interchangeable,
// so tracking counts instead of process sets is exact and exponentially
// smaller.
#ifndef RCONS_HIERARCHY_QSETS_HPP
#define RCONS_HIERARCHY_QSETS_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "hierarchy/assignment.hpp"
#include "typesys/transition_cache.hpp"

namespace rcons::hierarchy {

// Encoded (response, final-state) pair for R-set membership.
using RPair = std::uint64_t;

constexpr RPair encode_rpair(int response_index, typesys::StateId state) {
  return (static_cast<RPair>(static_cast<std::uint32_t>(response_index)) << 32) |
         static_cast<std::uint32_t>(state);
}

// Q_X for team `team` (kTeamA or kTeamB).
std::unordered_set<typesys::StateId> q_set(typesys::TransitionCache& cache,
                                           typesys::StateId q0,
                                           const Assignment& assignment, int team);

// Interns response values so R-sets for teams A and B of the same process
// class are comparable. One instance must be shared across the paired calls.
class ResponseIntern {
 public:
  int intern(typesys::Value response);

  // Interned values by id (for decoding RPairs back to raw responses).
  const std::vector<typesys::Value>& values() const { return values_; }

 private:
  std::unordered_map<typesys::Value, int> ids_;
  std::vector<typesys::Value> values_;
};

// R_{X,c}: the R-set of a distinguished process of class `cls_index` when the
// first mover must belong to `team`.
std::unordered_set<RPair> r_set(typesys::TransitionCache& cache, typesys::StateId q0,
                                const Assignment& assignment, std::size_t cls_index,
                                int team, ResponseIntern& responses);

// Decoded R-set entry: raw response value plus final object state. Used by
// the Theorem 3 consensus algorithm, which tests (response, state) membership
// at runtime.
struct RespState {
  typesys::Value response = 0;
  typesys::StateId state = typesys::kNoState;
  bool operator==(const RespState&) const = default;
};
struct RespStateHash {
  std::size_t operator()(const RespState& p) const {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(p.response) * 0x9e3779b97f4a7c15ULL) ^
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.state)));
  }
};
using RespStateSet = std::unordered_set<RespState, RespStateHash>;

// R_{X,c} with raw (response, state) pairs.
RespStateSet r_set_pairs(typesys::TransitionCache& cache, typesys::StateId q0,
                         const Assignment& assignment, std::size_t cls_index, int team);

}  // namespace rcons::hierarchy

#endif  // RCONS_HIERARCHY_QSETS_HPP
