// The n-recording property (Definition 4) — this paper's characterization of
// readable types that solve n-process recoverable consensus with independent
// crashes (sufficient by Theorem 8; (n-1)-recording necessary by Theorem 14).
#ifndef RCONS_HIERARCHY_RECORDING_HPP
#define RCONS_HIERARCHY_RECORDING_HPP

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "hierarchy/assignment.hpp"
#include "typesys/transition_cache.hpp"

namespace rcons::hierarchy {

// A witness for Definition 4, expanded into the form the Figure 2 algorithm
// consumes: per-process teams/ops plus the materialized Q_A and Q_B sets used
// for the algorithm's "which team updated first?" membership tests.
struct RecordingWitness {
  int n = 0;
  typesys::StateId q0 = typesys::kNoState;
  Assignment assignment;
  std::vector<int> team;           // team[i] ∈ {kTeamA, kTeamB}
  std::vector<typesys::OpId> ops;  // ops[i]
  std::unordered_set<typesys::StateId> q_a;
  std::unordered_set<typesys::StateId> q_b;

  std::string format(const typesys::TransitionCache& cache) const;
};

// Checks whether a specific (q0, assignment) pair satisfies the three
// conditions of Definition 4.
bool check_recording_assignment(typesys::TransitionCache& cache, typesys::StateId q0,
                                const Assignment& assignment);

// Searches candidate initial states and multiset assignments; returns a fully
// expanded witness iff the type is n-recording (relative to the candidate
// sets — exact for finite types; see DESIGN.md).
std::optional<RecordingWitness> find_recording_witness(typesys::TransitionCache& cache);

// Convenience entry point building its own cache.
bool is_recording(const typesys::ObjectType& type, int n);

}  // namespace rcons::hierarchy

#endif  // RCONS_HIERARCHY_RECORDING_HPP
