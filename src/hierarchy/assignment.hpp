// Team/operation assignments for Definition 2 (n-discerning) and
// Definition 4 (n-recording) witnesses.
//
// Both definitions quantify over a partition of n processes into two
// non-empty teams and an assignment of one candidate operation to each
// process. Processes with the same (team, operation) pair are
// interchangeable in both definitions — the reachable-state sets and
// response sets depend only on how many such processes exist — so the
// checkers enumerate multiset assignments ("classes" with counts) instead of
// the exponentially larger space of raw per-process assignments.
#ifndef RCONS_HIERARCHY_ASSIGNMENT_HPP
#define RCONS_HIERARCHY_ASSIGNMENT_HPP

#include <functional>
#include <string>
#include <vector>

#include "typesys/transition_cache.hpp"

namespace rcons::hierarchy {

inline constexpr int kTeamA = 0;
inline constexpr int kTeamB = 1;

// One equivalence class of processes: every process in the class is on
// `team` and is assigned candidate operation `op`.
struct ProcessClass {
  int team = kTeamA;
  typesys::OpId op = 0;
  int count = 0;
};

// A multiset assignment of n processes to (team, op) classes.
struct Assignment {
  std::vector<ProcessClass> classes;  // only classes with count > 0
  int team_size[2] = {0, 0};

  int num_processes() const { return team_size[0] + team_size[1]; }

  // Expands to per-process arrays (team[i], op[i]) in class order.
  void expand(std::vector<int>& team, std::vector<typesys::OpId>& ops) const;

  std::string format(const typesys::TransitionCache& cache) const;
};

// Invokes `visit` for every assignment of `n` processes to two non-empty
// teams with operations drawn from `num_ops` candidates. Returns early (and
// returns true) if `visit` returns true ("witness found").
bool for_each_assignment(int n, int num_ops,
                         const std::function<bool(const Assignment&)>& visit);

// Heuristic pre-pass: the handful of assignment shapes that witness every
// classic type (one-vs-rest with distinct or uniform operations, balanced
// two-op splits). Checking these first makes the common "property holds"
// case fast; the exhaustive enumeration remains the fallback that makes
// "property fails" verdicts exact.
bool for_each_likely_assignment(int n, int num_ops,
                                const std::function<bool(const Assignment&)>& visit);

}  // namespace rcons::hierarchy

#endif  // RCONS_HIERARCHY_ASSIGNMENT_HPP
