#include "hierarchy/recording.hpp"

#include "hierarchy/qsets.hpp"
#include "util/assert.hpp"

namespace rcons::hierarchy {

using typesys::StateId;
using typesys::TransitionCache;

std::string RecordingWitness::format(const TransitionCache& cache) const {
  return "q0=" + cache.type().format_state(cache.repr(q0)) + " " +
         assignment.format(cache) + " |Q_A|=" + std::to_string(q_a.size()) +
         " |Q_B|=" + std::to_string(q_b.size());
}

bool check_recording_assignment(TransitionCache& cache, StateId q0,
                                const Assignment& assignment) {
  const auto q_a = q_set(cache, q0, assignment, kTeamA);
  const auto q_b = q_set(cache, q0, assignment, kTeamB);
  // Condition 1: Q_A ∩ Q_B = ∅.
  const auto& small = q_a.size() <= q_b.size() ? q_a : q_b;
  const auto& large = q_a.size() <= q_b.size() ? q_b : q_a;
  for (const StateId q : small) {
    if (large.contains(q)) return false;
  }
  // Condition 2: q0 ∉ Q_A or |B| = 1.
  if (q_a.contains(q0) && assignment.team_size[kTeamB] != 1) return false;
  // Condition 3: q0 ∉ Q_B or |A| = 1.
  if (q_b.contains(q0) && assignment.team_size[kTeamA] != 1) return false;
  return true;
}

std::optional<RecordingWitness> find_recording_witness(TransitionCache& cache) {
  const int n = cache.num_processes();
  std::optional<RecordingWitness> witness;
  auto visit_with = [&](StateId q0) {
    return [&cache, &witness, q0, n](const Assignment& assignment) {
      if (!check_recording_assignment(cache, q0, assignment)) return false;
      RecordingWitness w;
      w.n = n;
      w.q0 = q0;
      w.assignment = assignment;
      assignment.expand(w.team, w.ops);
      w.q_a = q_set(cache, q0, assignment, kTeamA);
      w.q_b = q_set(cache, q0, assignment, kTeamB);
      RCONS_ASSERT(static_cast<int>(w.team.size()) == n);
      witness = std::move(w);
      return true;
    };
  };
  std::vector<StateId> candidates;
  std::unordered_set<StateId> seen;
  for (const StateId q0 : cache.initial_states()) {
    if (seen.insert(q0).second) candidates.push_back(q0);
  }
  for (const StateId q0 : candidates) {
    if (for_each_likely_assignment(n, cache.num_ops(), visit_with(q0))) return witness;
  }
  for (const StateId q0 : candidates) {
    if (for_each_assignment(n, cache.num_ops(), visit_with(q0))) return witness;
  }
  return std::nullopt;
}

bool is_recording(const typesys::ObjectType& type, int n) {
  TransitionCache cache(type, n);
  return find_recording_witness(cache).has_value();
}

}  // namespace rcons::hierarchy
