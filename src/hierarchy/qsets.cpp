#include "hierarchy/qsets.hpp"

#include <vector>

#include "util/assert.hpp"

namespace rcons::hierarchy {

using typesys::StateId;
using typesys::TransitionCache;

namespace {

// Mixed-radix encoding of per-class usage counts.
struct CountCodec {
  std::vector<std::uint64_t> stride;
  std::vector<int> cap;  // max usable processes per class
  std::uint64_t total = 1;

  CountCodec(const Assignment& assignment, int excluded_class) {
    stride.reserve(assignment.classes.size());
    cap.reserve(assignment.classes.size());
    for (std::size_t c = 0; c < assignment.classes.size(); ++c) {
      int capacity = assignment.classes[c].count;
      if (static_cast<int>(c) == excluded_class) capacity -= 1;
      stride.push_back(total);
      cap.push_back(capacity);
      total *= static_cast<std::uint64_t>(capacity) + 1;
    }
  }
};

}  // namespace

std::unordered_set<StateId> q_set(TransitionCache& cache, StateId q0,
                                  const Assignment& assignment, int team) {
  const CountCodec codec(assignment, /*excluded_class=*/-1);
  std::unordered_set<std::uint64_t> visited;
  std::unordered_set<StateId> result;

  struct Node {
    StateId state;
    std::uint64_t idx;
    std::vector<int> used;
  };
  std::vector<Node> stack;

  auto try_push = [&](StateId state, std::uint64_t idx, std::vector<int> used) {
    const std::uint64_t key = static_cast<std::uint64_t>(static_cast<std::uint32_t>(state)) *
                                  codec.total +
                              idx;
    if (visited.insert(key).second) {
      result.insert(state);
      stack.push_back(Node{state, idx, std::move(used)});
    }
  };

  // Seed with every possible first move by a process on `team`.
  for (std::size_t c = 0; c < assignment.classes.size(); ++c) {
    if (assignment.classes[c].team != team || codec.cap[c] < 1) continue;
    const auto step = cache.apply(q0, assignment.classes[c].op);
    std::vector<int> used(assignment.classes.size(), 0);
    used[c] = 1;
    try_push(step.next, codec.stride[c], std::move(used));
  }

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    for (std::size_t c = 0; c < assignment.classes.size(); ++c) {
      if (node.used[c] >= codec.cap[c]) continue;
      const auto step = cache.apply(node.state, assignment.classes[c].op);
      std::vector<int> used = node.used;
      used[c] += 1;
      try_push(step.next, node.idx + codec.stride[c], std::move(used));
    }
  }
  return result;
}

int ResponseIntern::intern(typesys::Value response) {
  auto [it, inserted] = ids_.try_emplace(response, static_cast<int>(ids_.size()));
  if (inserted) values_.push_back(response);
  return it->second;
}

RespStateSet r_set_pairs(TransitionCache& cache, StateId q0, const Assignment& assignment,
                         std::size_t cls_index, int team) {
  ResponseIntern responses;
  const auto encoded = r_set(cache, q0, assignment, cls_index, team, responses);
  RespStateSet result;
  result.reserve(encoded.size());
  for (const RPair pair : encoded) {
    const int resp_id = static_cast<int>(pair >> 32);
    const auto state = static_cast<StateId>(static_cast<std::uint32_t>(pair));
    result.insert(RespState{responses.values()[static_cast<std::size_t>(resp_id)], state});
  }
  return result;
}

std::unordered_set<RPair> r_set(TransitionCache& cache, StateId q0,
                                const Assignment& assignment, std::size_t cls_index,
                                int team, ResponseIntern& responses) {
  RCONS_ASSERT(cls_index < assignment.classes.size());
  RCONS_ASSERT(assignment.classes[cls_index].count >= 1);
  const CountCodec codec(assignment, static_cast<int>(cls_index));
  const typesys::OpId my_op = assignment.classes[cls_index].op;
  const int my_team = assignment.classes[cls_index].team;
  constexpr int kNoResponse = -1;

  // Visited sets per response layer (layer 0 = distinguished process not yet
  // applied; layer r+1 = applied with interned response r).
  std::vector<std::unordered_set<std::uint64_t>> visited;
  std::unordered_set<RPair> result;

  struct Node {
    StateId state;
    std::uint64_t idx;
    int resp;
    std::vector<int> used;
  };
  std::vector<Node> stack;

  auto try_push = [&](StateId state, std::uint64_t idx, int resp, std::vector<int> used) {
    const std::size_t layer = static_cast<std::size_t>(resp + 1);
    if (visited.size() <= layer) visited.resize(layer + 1);
    const std::uint64_t key = static_cast<std::uint64_t>(static_cast<std::uint32_t>(state)) *
                                  codec.total +
                              idx;
    if (visited[layer].insert(key).second) {
      if (resp != kNoResponse) result.insert(encode_rpair(resp, state));
      stack.push_back(Node{state, idx, resp, std::move(used)});
    }
  };

  // Seeds: the distinguished process moves first (allowed when its team is
  // the required first-mover team), or any classmate/other-class process on
  // the required team moves first.
  if (my_team == team) {
    const auto step = cache.apply(q0, my_op);
    try_push(step.next, 0, responses.intern(step.response),
             std::vector<int>(assignment.classes.size(), 0));
  }
  for (std::size_t c = 0; c < assignment.classes.size(); ++c) {
    if (assignment.classes[c].team != team || codec.cap[c] < 1) continue;
    const auto step = cache.apply(q0, assignment.classes[c].op);
    std::vector<int> used(assignment.classes.size(), 0);
    used[c] = 1;
    try_push(step.next, codec.stride[c], kNoResponse, std::move(used));
  }

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.resp == kNoResponse) {
      const auto step = cache.apply(node.state, my_op);
      try_push(step.next, node.idx, responses.intern(step.response), node.used);
    }
    for (std::size_t c = 0; c < assignment.classes.size(); ++c) {
      if (node.used[c] >= codec.cap[c]) continue;
      const auto step = cache.apply(node.state, assignment.classes[c].op);
      std::vector<int> used = node.used;
      used[c] += 1;
      try_push(step.next, node.idx + codec.stride[c], node.resp, std::move(used));
    }
  }
  return result;
}

}  // namespace rcons::hierarchy
