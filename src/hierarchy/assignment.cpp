#include "hierarchy/assignment.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace rcons::hierarchy {

void Assignment::expand(std::vector<int>& team, std::vector<typesys::OpId>& ops) const {
  team.clear();
  ops.clear();
  for (const ProcessClass& cls : classes) {
    for (int i = 0; i < cls.count; ++i) {
      team.push_back(cls.team);
      ops.push_back(cls.op);
    }
  }
}

std::string Assignment::format(const typesys::TransitionCache& cache) const {
  std::ostringstream out;
  for (int t : {kTeamA, kTeamB}) {
    out << (t == kTeamA ? "A:{" : " B:{");
    bool first = true;
    for (const ProcessClass& cls : classes) {
      if (cls.team != t) continue;
      if (!first) out << ",";
      first = false;
      out << cls.count << "x" << cache.op(cls.op).name;
    }
    out << "}";
  }
  return out.str();
}

namespace {

// Recursively distributes the remaining process budget over cells
// (team-major, then op). Cells with zero count are omitted from the result.
bool enumerate_cells(int cell, int num_cells, int num_ops, int remaining,
                     Assignment& partial,
                     const std::function<bool(const Assignment&)>& visit) {
  if (cell == num_cells) {
    if (remaining != 0) return false;
    if (partial.team_size[0] == 0 || partial.team_size[1] == 0) return false;
    return visit(partial);
  }
  const int team = cell / num_ops;
  const typesys::OpId op = cell % num_ops;
  // Count 0 for this cell.
  if (enumerate_cells(cell + 1, num_cells, num_ops, remaining, partial, visit)) {
    return true;
  }
  for (int count = 1; count <= remaining; ++count) {
    partial.classes.push_back({team, op, count});
    partial.team_size[team] += count;
    const bool done =
        enumerate_cells(cell + 1, num_cells, num_ops, remaining - count, partial, visit);
    partial.team_size[team] -= count;
    partial.classes.pop_back();
    if (done) return true;
  }
  return false;
}

Assignment make_assignment(std::vector<ProcessClass> classes) {
  Assignment a;
  for (const ProcessClass& cls : classes) {
    if (cls.count == 0) continue;
    a.team_size[cls.team] += cls.count;
    a.classes.push_back(cls);
  }
  return a;
}

}  // namespace

bool for_each_assignment(int n, int num_ops,
                         const std::function<bool(const Assignment&)>& visit) {
  RCONS_ASSERT(n >= 2);
  RCONS_ASSERT(num_ops >= 1);
  Assignment partial;
  return enumerate_cells(0, 2 * num_ops, num_ops, n, partial, visit);
}

bool for_each_likely_assignment(int n, int num_ops,
                                const std::function<bool(const Assignment&)>& visit) {
  RCONS_ASSERT(n >= 2);
  // Shape 1: one process per distinct op where possible, split 1 vs rest.
  // (The CAS / sticky-bit / container witnesses.)
  if (num_ops >= n) {
    std::vector<ProcessClass> classes;
    classes.push_back({kTeamA, 0, 1});
    for (int i = 1; i < n; ++i) classes.push_back({kTeamB, i, 1});
    if (visit(make_assignment(std::move(classes)))) return true;
  }
  // Shape 2: 1-vs-rest and rest-vs-1 with uniform ops per team, all op pairs.
  // (The S_n witness: A = {p1} with opA, B = everyone else with opB.)
  for (int op_a = 0; op_a < num_ops; ++op_a) {
    for (int op_b = 0; op_b < num_ops; ++op_b) {
      if (visit(make_assignment({{kTeamA, op_a, 1}, {kTeamB, op_b, n - 1}}))) return true;
      if (n >= 3 &&
          visit(make_assignment({{kTeamA, op_a, n - 1}, {kTeamB, op_b, 1}}))) {
        return true;
      }
    }
  }
  // Shape 3: balanced split with uniform ops per team, all op pairs.
  // (The T_n discerning witness: |A| = ⌊n/2⌋ with opA, |B| = ⌈n/2⌉ with opB.)
  if (n >= 4) {
    for (int op_a = 0; op_a < num_ops; ++op_a) {
      for (int op_b = 0; op_b < num_ops; ++op_b) {
        if (visit(make_assignment({{kTeamA, op_a, n / 2}, {kTeamB, op_b, n - n / 2}}))) {
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace rcons::hierarchy
