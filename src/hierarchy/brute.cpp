#include "hierarchy/brute.hpp"

#include <unordered_set>

#include "hierarchy/qsets.hpp"
#include "util/assert.hpp"

namespace rcons::hierarchy {

using typesys::OpId;
using typesys::StateId;
using typesys::TransitionCache;

namespace {

// Walks every sequence of distinct process indices from q0 (depth-first over
// bitmasks), invoking `visit(first, state, mask, responses)` after each
// applied operation. `responses[i]` is the response p_i's operation returned,
// meaningful where mask includes i.
template <typename Visit>
void walk(TransitionCache& cache, StateId q0, const std::vector<OpId>& ops,
          Visit&& visit) {
  const int n = static_cast<int>(ops.size());
  struct Node {
    StateId state;
    unsigned mask;
    int first;
    std::vector<typesys::Value> responses;
  };
  std::vector<Node> stack;
  for (int i = 0; i < n; ++i) {
    const auto step = cache.apply(q0, ops[static_cast<std::size_t>(i)]);
    std::vector<typesys::Value> responses(static_cast<std::size_t>(n), 0);
    responses[static_cast<std::size_t>(i)] = step.response;
    visit(i, step.next, 1u << i, responses);
    stack.push_back(Node{step.next, 1u << i, i, std::move(responses)});
  }
  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    for (int i = 0; i < n; ++i) {
      if (node.mask & (1u << i)) continue;
      const auto step = cache.apply(node.state, ops[static_cast<std::size_t>(i)]);
      std::vector<typesys::Value> responses = node.responses;
      responses[static_cast<std::size_t>(i)] = step.response;
      const unsigned mask = node.mask | (1u << i);
      visit(node.first, step.next, mask, responses);
      stack.push_back(Node{step.next, mask, node.first, std::move(responses)});
    }
  }
}

}  // namespace

bool brute_check_recording(TransitionCache& cache, StateId q0,
                           const std::vector<int>& team, const std::vector<OpId>& ops) {
  RCONS_ASSERT(team.size() == ops.size());
  int team_size[2] = {0, 0};
  for (const int t : team) team_size[t] += 1;
  RCONS_ASSERT(team_size[0] >= 1 && team_size[1] >= 1);

  std::unordered_set<StateId> q_by_team[2];
  walk(cache, q0, ops,
       [&](int first, StateId state, unsigned /*mask*/,
           const std::vector<typesys::Value>& /*responses*/) {
         q_by_team[team[static_cast<std::size_t>(first)]].insert(state);
       });
  for (const StateId q : q_by_team[kTeamA]) {
    if (q_by_team[kTeamB].contains(q)) return false;  // condition 1
  }
  if (q_by_team[kTeamA].contains(q0) && team_size[kTeamB] != 1) return false;  // cond 2
  if (q_by_team[kTeamB].contains(q0) && team_size[kTeamA] != 1) return false;  // cond 3
  return true;
}

bool brute_check_discerning(TransitionCache& cache, StateId q0,
                            const std::vector<int>& team, const std::vector<OpId>& ops) {
  RCONS_ASSERT(team.size() == ops.size());
  const int n = static_cast<int>(ops.size());
  // r_sets[X][j]: the literal R_{X,j} as (response, final state) pairs.
  std::vector<std::unordered_set<RPair>> r_sets[2];
  r_sets[0].resize(static_cast<std::size_t>(n));
  r_sets[1].resize(static_cast<std::size_t>(n));
  ResponseIntern responses_intern;

  walk(cache, q0, ops,
       [&](int first, StateId state, unsigned mask,
           const std::vector<typesys::Value>& responses) {
         const int x = team[static_cast<std::size_t>(first)];
         for (int j = 0; j < n; ++j) {
           if (!(mask & (1u << j))) continue;
           const int resp_id =
               responses_intern.intern(responses[static_cast<std::size_t>(j)]);
           r_sets[x][static_cast<std::size_t>(j)].insert(encode_rpair(resp_id, state));
         }
       });
  for (int j = 0; j < n; ++j) {
    for (const RPair pair : r_sets[kTeamA][static_cast<std::size_t>(j)]) {
      if (r_sets[kTeamB][static_cast<std::size_t>(j)].contains(pair)) return false;
    }
  }
  return true;
}

}  // namespace rcons::hierarchy
