// Brute-force transcriptions of Definitions 2 and 4.
//
// These enumerate raw sequences of distinct process indices with bitmasks —
// no class symmetry, no memoized reachability — and exist purely to
// cross-check the optimized checkers in qsets/discerning/recording. They are
// exponential in n and intended for n ≤ 6.
#ifndef RCONS_HIERARCHY_BRUTE_HPP
#define RCONS_HIERARCHY_BRUTE_HPP

#include "hierarchy/assignment.hpp"
#include "typesys/transition_cache.hpp"

namespace rcons::hierarchy {

// Literal Definition 4 evaluation for a per-process assignment.
bool brute_check_recording(typesys::TransitionCache& cache, typesys::StateId q0,
                           const std::vector<int>& team,
                           const std::vector<typesys::OpId>& ops);

// Literal Definition 2 evaluation for a per-process assignment.
bool brute_check_discerning(typesys::TransitionCache& cache, typesys::StateId q0,
                            const std::vector<int>& team,
                            const std::vector<typesys::OpId>& ops);

}  // namespace rcons::hierarchy

#endif  // RCONS_HIERARCHY_BRUTE_HPP
