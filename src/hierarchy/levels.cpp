#include "hierarchy/levels.hpp"

#include <algorithm>

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "util/assert.hpp"

namespace rcons::hierarchy {

std::string Level::format() const {
  if (capped) return ">=" + std::to_string(level);
  return std::to_string(level);
}

namespace {

template <typename CheckFn>
Level scan(const typesys::ObjectType& type, int cap, CheckFn check) {
  RCONS_ASSERT(cap >= 2);
  Level result;
  for (int n = 2; n <= cap; ++n) {
    if (!check(type, n)) return result;
    result.level = n;
  }
  result.capped = true;
  return result;
}

}  // namespace

Level max_discerning_level(const typesys::ObjectType& type, int cap) {
  return scan(type, cap, [](const typesys::ObjectType& t, int n) {
    return is_discerning(t, n);
  });
}

Level max_recording_level(const typesys::ObjectType& type, int cap) {
  return scan(type, cap, [](const typesys::ObjectType& t, int n) {
    return is_recording(t, n);
  });
}

HierarchyBounds bounds_for_readable(const Level& discerning, const Level& recording) {
  HierarchyBounds b;
  b.cons = discerning.capped ? kUnboundedLevel : discerning.level;
  b.rcons_lo = recording.level;  // Theorem 8 (1 means "registers only")
  if (recording.capped) {
    b.rcons_hi = kUnboundedLevel;
  } else if (b.cons == kUnboundedLevel) {
    b.rcons_hi = recording.level + 1;  // Theorem 14
  } else {
    b.rcons_hi = std::min(recording.level + 1, b.cons);  // Thm 14 + Cor 17
  }
  return b;
}

}  // namespace rcons::hierarchy
