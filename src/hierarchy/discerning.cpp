#include "hierarchy/discerning.hpp"

#include <unordered_set>

#include "hierarchy/qsets.hpp"

namespace rcons::hierarchy {

using typesys::StateId;
using typesys::TransitionCache;

std::string DiscerningWitness::format(const TransitionCache& cache) const {
  return "q0=" + cache.type().format_state(cache.repr(q0)) + " " +
         assignment.format(cache);
}

bool check_discerning_assignment(TransitionCache& cache, StateId q0,
                                 const Assignment& assignment) {
  // Definition 2 requires R_{A,j} ∩ R_{B,j} = ∅ for every process j; by class
  // symmetry it suffices to check one distinguished process per class.
  for (std::size_t c = 0; c < assignment.classes.size(); ++c) {
    ResponseIntern responses;
    const auto r_a = r_set(cache, q0, assignment, c, kTeamA, responses);
    const auto r_b = r_set(cache, q0, assignment, c, kTeamB, responses);
    const auto& small = r_a.size() <= r_b.size() ? r_a : r_b;
    const auto& large = r_a.size() <= r_b.size() ? r_b : r_a;
    for (const RPair pair : small) {
      if (large.contains(pair)) return false;
    }
  }
  return true;
}

std::optional<DiscerningWitness> find_discerning_witness(TransitionCache& cache) {
  const int n = cache.num_processes();
  std::optional<DiscerningWitness> witness;
  auto visit_with = [&](StateId q0) {
    return [&cache, &witness, q0](const Assignment& assignment) {
      if (!check_discerning_assignment(cache, q0, assignment)) return false;
      witness = DiscerningWitness{q0, assignment};
      return true;
    };
  };
  // De-duplicate candidate initial states (types may legitimately repeat).
  std::vector<StateId> candidates;
  std::unordered_set<StateId> seen;
  for (const StateId q0 : cache.initial_states()) {
    if (seen.insert(q0).second) candidates.push_back(q0);
  }
  for (const StateId q0 : candidates) {
    if (for_each_likely_assignment(n, cache.num_ops(), visit_with(q0))) return witness;
  }
  for (const StateId q0 : candidates) {
    if (for_each_assignment(n, cache.num_ops(), visit_with(q0))) return witness;
  }
  return std::nullopt;
}

bool is_discerning(const typesys::ObjectType& type, int n) {
  TransitionCache cache(type, n);
  return find_discerning_witness(cache).has_value();
}

}  // namespace rcons::hierarchy
