// Crash storm: adversarial validation of the paper's headline algorithm,
// driven entirely through the check:: facade.
//
// Runs the Figure 2 + tournament stack through (a) exhaustive model checking
// (Strategy::kAuto picks the backend from the state-space size) of a small
// instance, and (b) thousands of seeded random executions with heavy crash
// injection for a larger one, reporting the state-space and violation
// statistics.
//
//   $ ./crash_storm [runs]
#include <cstdlib>
#include <iostream>

#include "check/check.hpp"
#include "rc/tournament.hpp"
#include "typesys/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rcons;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 2000;

  std::cout << "phase 1: exhaustive model check — Sn(3), 3 processes, 2 crashes\n";
  {
    std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(3)");
    rc::TournamentSystem system = rc::make_rc_tournament(*type, 3, {11, 22, 33});

    check::CheckRequest request;
    request.system.memory = std::move(system.memory);
    request.system.processes = std::move(system.processes);
    request.system.properties.valid_outputs = {11, 22, 33};
    request.budget.crash_budget = 2;
    request.strategy = check::Strategy::kAuto;

    const check::CheckReport report = check::check(std::move(request));
    std::cout << "  strategy:        " << check::strategy_name(report.strategy) << "\n"
              << "  states visited:  " << report.stats.visited << "\n"
              << "  transitions:     " << report.stats.transitions << "\n"
              << "  decision events: " << report.stats.decisions << "\n"
              << "  verdict:         "
              << (report.clean ? "no violation — proof by exhaustion for this instance"
                               : report.violation->description)
              << "\n";
    if (!report.clean) {
      std::cout << "  schedule:        " << report.violation->trace() << "\n";
      return 1;
    }
  }

  std::cout << "\nphase 2: random storm — Sn(6), 6 processes, up to 18 crashes/run\n";
  {
    std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(6)");
    rc::TournamentSystem system =
        rc::make_rc_tournament(*type, 6, {1, 2, 3, 4, 5, 6});

    check::CheckRequest request;
    request.system.memory = std::move(system.memory);
    request.system.processes = std::move(system.processes);
    request.system.properties.valid_outputs = {1, 2, 3, 4, 5, 6};
    request.budget.crash_budget = 18;
    request.strategy = check::Strategy::kRandomized;
    request.runs = runs;
    request.seed = 1;
    request.crash_per_mille = 180;

    const check::CheckReport report = check::check(std::move(request));
    std::cout << "  runs:            " << report.runs << "\n"
              << "  avg steps/run:   " << report.total_steps / std::max(report.runs, 1)
              << "\n"
              << "  avg crashes/run: " << report.total_crashes / std::max(report.runs, 1)
              << "\n"
              << "  incomplete runs: " << report.incomplete_runs << "\n"
              << "  violations:      " << (report.clean ? 0 : 1) << "\n";
    if (!report.clean) {
      // Any random-run violation replays deterministically from its schedule.
      std::cout << "  violating schedule: " << report.violation->trace() << "\n";
      return 1;
    }
    if (report.incomplete_runs > 0) return 1;
  }
  return 0;
}
