// Crash storm: adversarial validation of the paper's headline algorithm.
//
// Runs the Figure 2 + tournament stack through (a) exhaustive model checking
// of every interleaving and crash placement for a small instance, and (b)
// thousands of seeded random executions with heavy crash injection for a
// larger one, reporting the state-space and violation statistics.
//
//   $ ./crash_storm [runs]
#include <cstdlib>
#include <iostream>

#include "rc/tournament.hpp"
#include "sim/explorer.hpp"
#include "sim/random_runner.hpp"
#include "typesys/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rcons;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 2000;

  std::cout << "phase 1: exhaustive model check — Sn(3), 3 processes, 2 crashes\n";
  {
    std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(3)");
    rc::TournamentSystem system = rc::make_rc_tournament(*type, 3, {11, 22, 33});
    sim::ExplorerConfig config;
    config.crash_budget = 2;
    config.valid_outputs = {11, 22, 33};
    sim::Explorer explorer(std::move(system.memory), std::move(system.processes),
                           config);
    const auto violation = explorer.run();
    std::cout << "  states visited:  " << explorer.stats().visited << "\n"
              << "  transitions:     " << explorer.stats().transitions << "\n"
              << "  decision events: " << explorer.stats().decisions << "\n"
              << "  verdict:         "
              << (violation ? violation->description : "no violation — proof by "
                                                       "exhaustion for this instance")
              << "\n";
    if (violation) return 1;
  }

  std::cout << "\nphase 2: random storm — Sn(6), 6 processes, up to 18 crashes/run\n";
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(6)");
  long total_steps = 0;
  long total_crashes = 0;
  int violations = 0;
  int incomplete = 0;
  for (int run = 0; run < runs; ++run) {
    rc::TournamentSystem system =
        rc::make_rc_tournament(*type, 6, {1, 2, 3, 4, 5, 6});
    sim::RandomRunConfig config;
    config.seed = static_cast<std::uint64_t>(run) + 1;
    config.crash_per_mille = 180;
    config.max_crashes = 18;
    config.valid_outputs = {1, 2, 3, 4, 5, 6};
    const auto report =
        run_random(std::move(system.memory), std::move(system.processes), config);
    total_steps += report.steps;
    total_crashes += report.crashes;
    violations += report.violation.has_value() ? 1 : 0;
    incomplete += report.all_decided ? 0 : 1;
  }
  std::cout << "  runs:            " << runs << "\n"
            << "  avg steps/run:   " << total_steps / std::max(runs, 1) << "\n"
            << "  avg crashes/run: " << total_crashes / std::max(runs, 1) << "\n"
            << "  incomplete runs: " << incomplete << "\n"
            << "  violations:      " << violations << "\n";
  return violations == 0 && incomplete == 0 ? 0 : 1;
}
