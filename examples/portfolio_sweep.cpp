// Sweeps a portfolio of recoverable-consensus model-checking scenarios
// through the check:: facade (Strategy::kAuto per scenario) and prints the
// verdict table.
//
// Scenario sets are file-driven: pass a spec file (see
// examples/scenarios/default.spec for the grammar) to sweep any scenario set
// without recompiling. With no file argument the built-in default set — the
// same scenarios as examples/scenarios/default.spec — is used.
//
// Usage: portfolio_sweep [scenario-file] [num_threads]
#include <cstdlib>
#include <iostream>

#include "check/scenario_spec.hpp"
#include "engine/portfolio.hpp"

int main(int argc, char** argv) {
  using namespace rcons;

  const char* scenario_file = argc > 1 ? argv[1] : nullptr;
  engine::PortfolioConfig config;
  if (argc > 2) config.num_threads = std::atoi(argv[2]);

  const check::ScenarioParse parse =
      scenario_file != nullptr
          ? check::load_scenario_file(scenario_file)
          : check::parse_scenario_specs(check::default_scenario_spec_text());
  if (!parse.ok()) {
    for (const std::string& error : parse.errors) std::cerr << error << "\n";
    return 2;
  }

  engine::Portfolio portfolio(config);
  portfolio.add_specs(parse.specs);

  std::cout << "Running " << portfolio.size() << " scenarios ("
            << (scenario_file != nullptr ? scenario_file : "built-in default set")
            << ") through check::kAuto...\n\n";
  const auto results = portfolio.run_all();
  engine::Portfolio::verdict_table(results).print(std::cout);

  int violations = 0;
  for (const auto& result : results) violations += result.clean ? 0 : 1;
  std::cout << "\n" << results.size() - violations << "/" << results.size()
            << " scenarios clean"
            << (scenario_file == nullptr
                    ? " (Figure 2 algorithm should pass them all)"
                    : "")
            << ".\n";
  return violations == 0 ? 0 : 1;
}
