// Sweeps a portfolio of recoverable-consensus model-checking scenarios —
// every combination of object type, crash model, and crash budget below —
// through the parallel exploration engine and prints the verdict table.
//
// Usage: portfolio_sweep [num_threads]
#include <cstdlib>
#include <iostream>

#include "engine/portfolio.hpp"
#include "typesys/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rcons;

  engine::PortfolioConfig config;
  if (argc > 1) config.num_threads = std::atoi(argv[1]);

  engine::Portfolio portfolio(config);

  struct Entry {
    const char* type_name;
    int n;
    int crash_budget;
  };
  // Small enough to finish in seconds, large enough to exercise the engine;
  // mirrors the spectrum covered by tests/rc/team_consensus_test.cpp.
  const Entry entries[] = {
      {"Sn(2)", 2, 3},           {"Sn(3)", 3, 2},        {"Tn(4)", 2, 3},
      {"compare-and-swap", 2, 3}, {"compare-and-swap", 3, 2}, {"sticky-bit", 3, 2},
      {"consensus-object", 2, 3}, {"readable-stack", 3, 2},
  };
  for (const Entry& entry : entries) {
    auto type = typesys::make_type(entry.type_name);
    if (type == nullptr) {
      std::cerr << "unknown type: " << entry.type_name << "\n";
      return 1;
    }
    portfolio.add_team_consensus(*type, entry.n, sim::CrashModel::kIndependent,
                                 entry.crash_budget);
    portfolio.add_team_consensus(*type, entry.n, sim::CrashModel::kSimultaneous,
                                 entry.crash_budget);
  }

  std::cout << "Running " << portfolio.size()
            << " scenarios through the parallel engine...\n\n";
  const auto results = portfolio.run_all();
  engine::Portfolio::verdict_table(results).print(std::cout);

  int violations = 0;
  for (const auto& result : results) violations += result.clean ? 0 : 1;
  std::cout << "\n" << results.size() - violations << "/" << results.size()
            << " scenarios clean (Figure 2 algorithm should pass them all).\n";
  return violations == 0 ? 0 : 1;
}
