// Quickstart: solve recoverable consensus among 4 crash-prone threads.
//
// Step 1 — verify: the check:: facade model-checks the S_4 protocol core
// (the paper's Figure 2 algorithm) exhaustively, every interleaving and crash
// placement, picking the execution backend automatically.
//
// Step 2 — run: four worker threads propose different values; each may
// "crash" (stack unwind + restart, losing all local state) multiple times
// mid-protocol. They agree anyway, because the shared S_4 object records
// which team updated it first — Figure 2 composed through the Proposition 30
// tournament.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "check/check.hpp"
#include "rc/team_consensus.hpp"
#include "runtime/harness.hpp"
#include "runtime/recoverable.hpp"
#include "typesys/types/sn.hpp"

int main(int argc, char** argv) {
  using namespace rcons;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2022;

  constexpr int kProcesses = 4;
  // S_4 is 4-recording (Proposition 21), hence rcons(S_4) = 4: exactly enough
  // for 4 processes. Any type the checker proves 4-recording would do.
  typesys::SnType s4(4);

  std::cout << "step 1: model-check the S_4 core (all interleavings, 1 crash)\n";
  {
    rc::TeamConsensusSystem core = rc::make_team_consensus_system(s4, 4, 1001, 2002);
    check::CheckRequest request;
    request.system.memory = std::move(core.memory);
    request.system.processes = std::move(core.processes);
    request.system.properties.valid_outputs = {1001, 2002};
    request.budget.crash_budget = 1;
    request.strategy = check::Strategy::kAuto;
    const check::CheckReport report = check::check(std::move(request));
    std::cout << "  " << report.stats.visited << " states via "
              << check::strategy_name(report.strategy) << ": "
              << (report.clean ? "clean" : report.violation->description) << "\n";
    if (!report.clean) {
      std::cout << "  schedule: " << report.violation->trace() << "\n";
      return 1;
    }
  }

  std::cout << "\nstep 2: run it on 4 real crash-prone threads\n";
  runtime::RTournament consensus(s4, /*witness_n=*/4, /*participants=*/kProcesses);

  const std::vector<typesys::Value> proposals = {1001, 1002, 1003, 1004};
  std::cout << "  4 crash-prone threads propose: ";
  for (const auto v : proposals) std::cout << v << " ";
  std::cout << "\n";

  const runtime::HarnessReport report = runtime::run_crashy_workers(
      kProcesses,
      [&](int role, runtime::CrashInjector& crash) {
        // decide() throws CrashException at injected crash points; the
        // harness restarts the call — the model's crash/recover loop.
        return consensus.decide(role, proposals[static_cast<std::size_t>(role)], crash);
      },
      seed, /*crash_per_mille=*/250, /*max_crashes_per_worker=*/6);

  std::cout << "  crashes injected: " << report.total_crashes << "\n";
  for (int role = 0; role < kProcesses; ++role) {
    std::cout << "  thread " << role << " decided "
              << report.outputs[static_cast<std::size_t>(role)] << "\n";
  }
  if (!report.agreement || !report.valid_against(proposals)) {
    std::cout << "ERROR: consensus violated!\n";
    return 1;
  }
  std::cout << "  agreement + validity hold despite crashes.\n";
  return 0;
}
