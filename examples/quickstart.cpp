// Quickstart: solve recoverable consensus among 4 crash-prone threads.
//
// Four worker threads propose different values; each may "crash" (stack
// unwind + restart, losing all local state) multiple times mid-protocol.
// They agree anyway, because the shared S_4 object records which team
// updated it first — the paper's Figure 2 algorithm, composed through the
// Proposition 30 tournament.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "runtime/harness.hpp"
#include "runtime/recoverable.hpp"
#include "typesys/types/sn.hpp"

int main(int argc, char** argv) {
  using namespace rcons;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2022;

  constexpr int kProcesses = 4;
  // S_4 is 4-recording (Proposition 21), hence rcons(S_4) = 4: exactly enough
  // for 4 processes. Any type the checker proves 4-recording would do.
  typesys::SnType s4(4);
  runtime::RTournament consensus(s4, /*witness_n=*/4, /*participants=*/kProcesses);

  const std::vector<typesys::Value> proposals = {1001, 1002, 1003, 1004};
  std::cout << "4 crash-prone threads propose: ";
  for (const auto v : proposals) std::cout << v << " ";
  std::cout << "\n";

  const runtime::HarnessReport report = runtime::run_crashy_workers(
      kProcesses,
      [&](int role, runtime::CrashInjector& crash) {
        // decide() throws CrashException at injected crash points; the
        // harness restarts the call — the model's crash/recover loop.
        return consensus.decide(role, proposals[static_cast<std::size_t>(role)], crash);
      },
      seed, /*crash_per_mille=*/250, /*max_crashes_per_worker=*/6);

  std::cout << "crashes injected: " << report.total_crashes << "\n";
  for (int role = 0; role < kProcesses; ++role) {
    std::cout << "  thread " << role << " decided "
              << report.outputs[static_cast<std::size_t>(role)] << "\n";
  }
  if (!report.agreement || !report.valid_against(proposals)) {
    std::cout << "ERROR: consensus violated!\n";
    return 1;
  }
  std::cout << "agreement + validity hold despite crashes.\n";
  return 0;
}
