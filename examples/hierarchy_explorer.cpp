// Hierarchy explorer: interrogate any zoo type about the paper's properties.
//
//   $ ./hierarchy_explorer <type> [max_n]
//   $ ./hierarchy_explorer Tn(6) 8
//
// Prints the maximum discerning/recording levels, the implied cons/rcons
// bounds, and the concrete witnesses (initial state, teams, operations) that
// the checker found — the objects one would instantiate to actually run
// consensus / recoverable consensus at those levels.
#include <cstdlib>
#include <iostream>

#include "hierarchy/discerning.hpp"
#include "hierarchy/levels.hpp"
#include "hierarchy/recording.hpp"
#include "typesys/zoo.hpp"

namespace {

void list_types() {
  std::cout << "known types:\n";
  for (const auto& entry : rcons::typesys::make_zoo(5)) {
    std::cout << "  " << entry.type->name() << "\n";
  }
  std::cout << "  Tn(k) for k >= 4, Sn(k) for k >= 2\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcons;
  if (argc < 2) {
    std::cout << "usage: hierarchy_explorer <type> [max_n]\n";
    list_types();
    return 0;
  }
  auto type = typesys::make_type(argv[1]);
  if (type == nullptr) {
    std::cout << "unknown type: " << argv[1] << "\n";
    list_types();
    return 1;
  }
  const int cap = argc > 2 ? std::atoi(argv[2]) : 7;

  const hierarchy::Level disc = hierarchy::max_discerning_level(*type, cap);
  const hierarchy::Level rec = hierarchy::max_recording_level(*type, cap);
  std::cout << type->name() << " (readable: " << (type->readable() ? "yes" : "no")
            << ")\n";
  std::cout << "  max n-discerning: " << disc.format() << "\n";
  std::cout << "  max n-recording:  " << rec.format() << "\n";

  if (type->readable()) {
    const hierarchy::HierarchyBounds bounds = hierarchy::bounds_for_readable(disc, rec);
    auto fmt = [](int v) {
      return v == hierarchy::kUnboundedLevel ? std::string("inf") : std::to_string(v);
    };
    std::cout << "  cons  (Theorem 3):             " << fmt(bounds.cons) << "\n";
    std::cout << "  rcons (Theorems 8/14, Cor 17): [" << fmt(bounds.rcons_lo) << ", "
              << fmt(bounds.rcons_hi) << "]\n";
  } else {
    std::cout << "  (not readable: Theorems 3/8 do not apply; see Appendix H)\n";
  }

  for (int n = 2; n <= std::min(cap, rec.level); ++n) {
    typesys::TransitionCache cache(*type, n);
    const auto witness = hierarchy::find_recording_witness(cache);
    if (!witness.has_value()) break;
    std::cout << "  " << n << "-recording witness: " << witness->format(cache) << "\n";
  }
  for (int n = 2; n <= std::min(cap, disc.level); ++n) {
    typesys::TransitionCache cache(*type, n);
    const auto witness = hierarchy::find_discerning_witness(cache);
    if (!witness.has_value()) break;
    std::cout << "  " << n << "-discerning witness: " << witness->format(cache) << "\n";
  }
  return 0;
}
