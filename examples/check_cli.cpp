// check_cli: run a scenario spec file through the check:: facade with any
// strategy — the command-line face of check(CheckRequest).
//
//   $ check_cli scenarios.spec                    # Strategy::kAuto
//   $ check_cli scenarios.spec --strategy=dfs     # force sequential DFS
//   $ check_cli scenarios.spec --strategy=bfs --threads=8
//   $ check_cli scenarios.spec --strategy=random --runs=500 --seed=7
//   $ check_cli scenarios.spec --minimize --save-viol=corpus/
//   $ check_cli scenarios.spec --progress         # live stderr heartbeat
//   $ check_cli scenarios.spec --trace-out=trace.json --metrics-out=m.jsonl
//   $ check_cli corpus/register_race.viol         # replay a violation file
//   $ check_cli --list                            # grammar + obs vocabulary
//   $ check_cli one.spec --checkpoint-out=run.ckpt --checkpoint-every=10000
//   $ check_cli one.spec --resume=run.ckpt --checkpoint-out=run.ckpt
//   $ check_cli one.spec --fault-inject=die@batch=50   # deterministic faults
//
// Each line of the spec file describes one scenario (see
// examples/scenarios/default.spec for the grammar; algo= selects the
// construction, properties=/k= the typed property set, time_limit=/mem_limit=
// the resource-sentinel budgets). `--list` prints the vocabulary spec authors
// need: every zoo type name, the algo= values, the property names, the budget
// keys, and the strategies. A `.viol` argument instead replays one persisted
// violation (check/violation_io.hpp) and verifies it still reproduces the
// recorded typed property. On violations, --minimize greedily shrinks the
// schedule (check/minimize.hpp) before printing/saving, and --save-viol=DIR
// persists each violation as DIR/<scenario>.viol.
//
// Exit-code contract (pinned by tests/cli/exit_code_test.cpp):
//   0 = every scenario clean (or, for a .viol input, the violation reproduced)
//   1 = a property violation was found (or a .viol failed to reproduce);
//       takes precedence over truncation
//   2 = bad usage or invalid input (unparsable spec, unknown flag, corrupt or
//       mismatched checkpoint without --resume-or-fresh, bad fault plan)
//   3 = no violation, but at least one scenario was truncated (visited cap,
//       time/memory sentinel, watchdog, or forced stop — the verdict names
//       the reason); the verdict is incomplete, not a proof
//
// Crash-recoverable checking: --checkpoint-out=F writes a durable checkpoint
// (temp file + rename, CRC-framed) at exit and — with --checkpoint-every=N —
// every N further visited states; --resume=F seeds the run from F (the
// scenario line and config hash must match, else exit 2), while
// --resume-or-fresh=F falls back to a fresh run when F is missing or corrupt.
// Checkpointing needs a single-scenario spec file and an exhaustive parallel
// strategy (auto/bfs). --fault-inject=PLAN arms the deterministic fault
// harness (engine/fault_inject.hpp: alloc|stall|stop|die|trunc at
// batch|intern|ckpt-write).
//
// Observability (obs/session.hpp): --progress prints a rate-limited stderr
// heartbeat (states/s, frontier size, dedup rate, ETA vs budget),
// --trace-out=F exports phase + worker spans as Chrome trace-event JSON
// (load F in https://ui.perfetto.dev), --metrics-out=F streams periodic
// JSONL registry snapshots, --obs-interval-ms=N tunes the sampler period.
// The written trace is self-validated (obs::validate_chrome_trace); an
// invalid or unwritable trace exits 2. `--list` also prints every documented
// metric and span name.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "check/check.hpp"
#include "check/minimize.hpp"
#include "check/scenario_spec.hpp"
#include "check/spec_system.hpp"
#include "check/violation_io.hpp"
#include "engine/checkpoint.hpp"
#include "engine/fault_inject.hpp"
#include "obs/session.hpp"
#include "sim/replay.hpp"
#include "typesys/zoo.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

struct CliOptions {
  std::string input_file;
  check::Strategy strategy = check::Strategy::kAuto;
  int num_threads = 0;
  int runs = 200;
  std::uint64_t seed = 1;
  bool show_trace = false;
  bool minimize = false;
  bool list = false;
  std::string save_viol_dir;
  bool progress = false;
  std::string trace_out;
  std::string metrics_out;
  int obs_interval_ms = 500;
  std::string checkpoint_out;
  std::uint64_t checkpoint_every = 0;
  std::string resume_path;
  bool resume_or_fresh = false;
  std::string fault_plan_text;
  int sentinel_interval_ms = 50;
  int watchdog_stall_intervals = 0;
};

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--strategy=", 0) == 0) {
      const std::string name = arg.substr(11);
      if (name == "auto") {
        options.strategy = check::Strategy::kAuto;
      } else if (name == "dfs") {
        options.strategy = check::Strategy::kSequentialDFS;
      } else if (name == "bfs") {
        options.strategy = check::Strategy::kParallelBFS;
      } else if (name == "random") {
        options.strategy = check::Strategy::kRandomized;
      } else {
        std::cerr << "unknown strategy '" << name << "' (auto|dfs|bfs|random)\n";
        return false;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.num_threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--runs=", 0) == 0) {
      options.runs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--trace") {
      options.show_trace = true;
    } else if (arg == "--minimize") {
      options.minimize = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg.rfind("--save-viol=", 0) == 0) {
      options.save_viol_dir = arg.substr(12);
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
    } else if (arg.rfind("--obs-interval-ms=", 0) == 0) {
      options.obs_interval_ms = std::atoi(arg.c_str() + 18);
      if (options.obs_interval_ms <= 0) {
        std::cerr << "--obs-interval-ms needs a positive integer\n";
        return false;
      }
    } else if (arg.rfind("--checkpoint-out=", 0) == 0) {
      options.checkpoint_out = arg.substr(17);
      if (options.checkpoint_out.empty()) {
        std::cerr << "--checkpoint-out needs a file path\n";
        return false;
      }
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      options.checkpoint_every = std::strtoull(arg.c_str() + 19, nullptr, 10);
      if (options.checkpoint_every == 0) {
        std::cerr << "--checkpoint-every needs a positive state count\n";
        return false;
      }
    } else if (arg.rfind("--resume=", 0) == 0) {
      options.resume_path = arg.substr(9);
      options.resume_or_fresh = false;
      if (options.resume_path.empty()) {
        std::cerr << "--resume needs a checkpoint path\n";
        return false;
      }
    } else if (arg.rfind("--resume-or-fresh=", 0) == 0) {
      options.resume_path = arg.substr(18);
      options.resume_or_fresh = true;
      if (options.resume_path.empty()) {
        std::cerr << "--resume-or-fresh needs a checkpoint path\n";
        return false;
      }
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      options.watchdog_stall_intervals = std::atoi(arg.c_str() + 11);
      if (options.watchdog_stall_intervals <= 0) {
        std::cerr << "--watchdog needs a positive interval count\n";
        return false;
      }
    } else if (arg.rfind("--sentinel-interval-ms=", 0) == 0) {
      options.sentinel_interval_ms = std::atoi(arg.c_str() + 23);
      if (options.sentinel_interval_ms <= 0) {
        std::cerr << "--sentinel-interval-ms needs a positive integer\n";
        return false;
      }
    } else if (arg.rfind("--fault-inject=", 0) == 0) {
      options.fault_plan_text = arg.substr(15);
      if (options.fault_plan_text.empty()) {
        std::cerr << "--fault-inject needs a plan (e.g. die@batch=50)\n";
        return false;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return false;
    } else if (options.input_file.empty()) {
      options.input_file = arg;
    } else {
      std::cerr << "unexpected argument " << arg << "\n";
      return false;
    }
  }
  if (options.input_file.empty() && !options.list) {
    std::cerr << "usage: check_cli <scenario-file|violation.viol>\n"
                 "                 [--strategy=auto|dfs|bfs|random] [--threads=N]\n"
                 "                 [--runs=R] [--seed=S] [--trace] [--minimize]\n"
                 "                 [--save-viol=DIR]\n"
                 "                 [--progress] [--trace-out=FILE.json]\n"
                 "                 [--metrics-out=FILE.jsonl] [--obs-interval-ms=N]\n"
                 "                 [--checkpoint-out=FILE.ckpt] [--checkpoint-every=N]\n"
                 "                 [--resume=FILE.ckpt | --resume-or-fresh=FILE.ckpt]\n"
                 "                 [--fault-inject=action@site=N]\n"
                 "                 [--sentinel-interval-ms=N] [--watchdog=INTERVALS]\n"
                 "       check_cli --list   # spec grammar + observability vocabulary\n";
    return false;
  }
  if (options.checkpoint_every != 0 && options.checkpoint_out.empty()) {
    std::cerr << "--checkpoint-every needs --checkpoint-out=FILE\n";
    return false;
  }
  return true;
}

// The spec-grammar vocabulary: everything a `.spec` author can write without
// reading source code.
int print_list() {
  std::cout << "zoo types (type=...):\n";
  for (const typesys::ZooEntry& entry : typesys::make_zoo(5)) {
    std::cout << "  " << entry.type->name() << "\n";
  }
  std::cout << "  (Tn(k) / Sn(k) take any family size k >= 2)\n";

  std::cout << "\nalgorithms (algo=...):\n"
            << "  team            Figure 2 recoverable team consensus (default;\n"
            << "                  needs an n-recording type)\n"
            << "  halting         Ruppert halting-model tournament (crash-unsafe)\n"
            << "  naive-register  write-then-read register race (race-unsafe)\n"
            << "  k-set           k-group split consensus; needs k=<int>, 2 <= k <= n\n";

  std::cout << "\nproperties (properties=comma,separated,list; default "
            << sim::PropertySet().label() << "):\n";
  for (const sim::PropertyKind kind :
       {sim::PropertyKind::kAgreement, sim::PropertyKind::kKSetAgreement,
        sim::PropertyKind::kValidity, sim::PropertyKind::kWaitFreedom,
        sim::PropertyKind::kAtMostOnceDecide}) {
    std::cout << "  " << sim::property_name(kind);
    if (kind == sim::PropertyKind::kKSetAgreement) std::cout << " (needs k=<int>)";
    std::cout << "\n";
  }

  std::cout << "\nbudget keys (per scenario line; -1/absent = inherit):\n"
            << "  max_steps=N    per-run wait-freedom bound\n"
            << "  max_visited=N  visited-state cap (typed TRUNCATED verdict)\n"
            << "  time_limit=N   wall-clock budget in ms (resource sentinel;\n"
            << "                 typed TRUNCATED(deadline) verdict, exit 3)\n"
            << "  mem_limit=N    resident-set budget in MiB (TRUNCATED(memory))\n";

  std::cout << "\nstrategies (--strategy=...):\n"
            << "  auto | dfs | bfs | random (plus .viol replay via a file argument)\n";

  std::cout << "\nexit codes:\n"
            << "  0 clean   1 violation   2 invalid input   3 truncated\n";

  std::cout << "\nmetrics (--metrics-out / --progress / CheckReport.metrics):\n";
  for (const obs::NameDoc& doc : obs::metric_names()) {
    std::cout << "  " << doc.name << "  " << doc.doc << "\n";
  }
  std::cout << "\nspans (--trace-out):\n";
  for (const obs::NameDoc& doc : obs::span_names()) {
    std::cout << "  " << doc.name << "  " << doc.doc << "\n";
  }
  return 0;
}

std::string sanitize_filename(std::string name) {
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '-' && ch != '.') {
      ch = '_';
    }
  }
  return name;
}

check::Budget spec_budget(const check::ScenarioSpec& spec) {
  check::Budget budget;
  budget.crash_model = spec.crash_model;
  budget.crash_budget = spec.crash_budget;
  if (spec.max_steps_per_run >= 0) budget.max_steps_per_run = spec.max_steps_per_run;
  if (spec.max_visited >= 0) budget.max_visited = spec.max_visited;
  if (spec.time_limit_ms >= 0) budget.time_limit_ms = spec.time_limit_ms;
  if (spec.mem_limit_mb >= 0) budget.mem_limit_mb = spec.mem_limit_mb;
  return budget;
}

// The identity a checkpoint's config hash covers, rebuilt exactly the way
// check::check() builds the explorer config (so the CLI can reject a
// mismatched resume gracefully instead of tripping the engine's assert).
std::uint64_t spec_config_hash(const check::ScenarioSystem& system,
                               const check::Budget& budget) {
  sim::ExplorerConfig config;
  static_cast<check::Budget&>(config) = budget;
  config.properties = system.properties;
  config.symmetry_classes = system.symmetry_classes;
  return engine::checkpoint_config_hash(config);
}

// Replays one persisted violation file and reports whether it reproduces.
int replay_violation_file(const CliOptions& options, obs::Hooks hooks) {
  const check::ViolationParse parse = check::load_violation_file(options.input_file);
  if (!parse.ok()) {
    for (const std::string& error : parse.errors) std::cerr << error << "\n";
    return 2;
  }
  const check::ViolationFile& file = *parse.file;

  check::CheckRequest request;
  request.system = check::build_spec_system(file.scenario);
  request.budget = spec_budget(file.scenario);
  request.strategy = check::Strategy::kReplay;
  request.schedule = file.schedule;
  request.obs = hooks;
  const check::CheckReport report = check::check(std::move(request));

  std::cout << check::spec_display_name(file.scenario) << ": ";
  if (report.violation.has_value() && report.violation->property == file.property) {
    std::cout << "violation reproduced (" << report.violation->description << ")\n";
    return 0;
  }
  std::cout << "violation did NOT reproduce (expected "
            << sim::property_name(file.property) << ")\n";
  return 1;
}

// Runs every scenario of a spec file; returns the process exit code.
int run_spec_file(const CliOptions& options, obs::Hooks hooks) {
  check::ScenarioParse parse;
  {
    obs::Span span(hooks.tracer, 0, "spec_parse");
    parse = check::load_scenario_file(options.input_file);
  }
  if (!parse.ok()) {
    for (const std::string& error : parse.errors) std::cerr << error << "\n";
    return 2;
  }

  const bool checkpointing =
      !options.checkpoint_out.empty() || !options.resume_path.empty();
  if (checkpointing) {
    if (parse.specs.size() != 1) {
      std::cerr << "checkpoint/resume needs a spec file with exactly one "
                   "scenario, got "
                << parse.specs.size() << "\n";
      return 2;
    }
    if (options.strategy != check::Strategy::kAuto &&
        options.strategy != check::Strategy::kParallelBFS) {
      std::cerr << "checkpoint/resume needs --strategy=auto or bfs (the "
                   "parallel engine owns the checkpoint format)\n";
      return 2;
    }
  }

  engine::FaultPlan fault_plan;
  bool have_fault = false;
  if (!options.fault_plan_text.empty()) {
    std::string error;
    if (!engine::parse_fault_plan(options.fault_plan_text, fault_plan, error)) {
      std::cerr << error << "\n";
      return 2;
    }
    have_fault = true;
  }

  engine::CheckpointData resume_data;
  bool have_resume = false;
  if (!options.resume_path.empty()) {
    std::string error;
    const engine::CheckpointLoad load =
        engine::load_checkpoint(options.resume_path, resume_data, error);
    if (load == engine::CheckpointLoad::kOk) {
      have_resume = true;
    } else if (options.resume_or_fresh) {
      std::cerr << "resume: " << error << " — starting fresh\n";
    } else {
      std::cerr << "resume: " << error << "\n";
      return 2;
    }
  }

  if (hooks.metrics != nullptr) {
    hooks.metrics->gauge("portfolio.scenarios_total")
        .set(static_cast<std::int64_t>(parse.specs.size()));
  }

  util::Table table(
      {"scenario", "strategy", "verdict", "visited", "runs", "time(s)"});
  int violations = 0;
  int truncations = 0;
  std::size_t scenario_index = 0;
  for (const check::ScenarioSpec& spec : parse.specs) {
    scenario_index += 1;
    if (hooks.metrics != nullptr) {
      // Per-scenario counters, same contract as Portfolio::run_all(): clear
      // the previous scenario's totals, keep the portfolio.* gauges.
      hooks.metrics->reset("check.");
      hooks.metrics->reset("engine.");
      hooks.metrics->reset("store.");
      hooks.metrics->reset("random.");
      hooks.metrics->reset("replay.");
      hooks.metrics->gauge("portfolio.scenario_index")
          .set(static_cast<std::int64_t>(scenario_index));
    }
    check::CheckRequest request;
    request.system = check::build_spec_system(spec);
    request.budget = spec_budget(spec);
    request.strategy = options.strategy;
    request.num_threads = options.num_threads;
    request.runs = options.runs;
    request.seed = options.seed;
    request.obs = hooks;
    request.sentinel_interval_ms = options.sentinel_interval_ms;
    request.watchdog_stall_intervals = options.watchdog_stall_intervals;
    if (have_fault) request.fault = &fault_plan;
    if (checkpointing) {
      request.checkpoint_path = options.checkpoint_out;
      request.checkpoint_every = options.checkpoint_every;
      request.checkpoint_label = check::format_scenario_line(spec);
      if (have_resume) {
        // Reject a checkpoint from a different scenario or config before the
        // engine ever sees it — a human-readable label diff plus the exact
        // config hash the checkpoint was written under.
        if (resume_data.label != request.checkpoint_label) {
          std::cerr << "resume: checkpoint is from a different scenario\n"
                    << "  checkpoint: " << resume_data.label << "\n"
                    << "  requested:  " << request.checkpoint_label << "\n";
          return 2;
        }
        if (resume_data.config_hash !=
            spec_config_hash(request.system, request.budget)) {
          std::cerr << "resume: checkpoint config hash mismatch (different "
                       "budget/properties/symmetry)\n";
          return 2;
        }
        request.resume = &resume_data;
      }
    }

    // minimize/save need a pristine copy after check() consumes the request.
    const check::ScenarioSystem pristine =
        (options.minimize || !options.save_viol_dir.empty())
            ? request.system
            : check::ScenarioSystem{};
    const check::Budget budget = request.budget;

    const check::CheckReport report = check::check(std::move(request));

    const std::string name = check::spec_display_name(spec);
    std::ostringstream time;
    time.precision(3);
    time << std::fixed << report.seconds;
    // A report can be both truncated and violating (the parallel engine keeps
    // the best violation found before the stop); a real property violation
    // always wins — in the verdict column and in the exit code.
    const bool real_violation =
        report.violation.has_value() &&
        report.violation->property != sim::PropertyKind::kNone;
    std::string verdict = "clean";
    if (real_violation) {
      verdict = std::string("VIOLATION(") +
                sim::property_name(report.violation->property) + ")";
    } else if (report.stats.truncated) {
      verdict = std::string("TRUNCATED(") +
                sim::stop_reason_name(report.stats.stop_reason) + ")";
      truncations += 1;
      if (report.violation.has_value()) {
        std::cerr << name << ": " << report.violation->description << "\n";
      }
    }
    table.add_row({name, check::strategy_name(report.strategy), verdict,
                   std::to_string(report.stats.visited), std::to_string(report.runs),
                   time.str()});
    if (real_violation) {
      violations += 1;
      sim::Violation violation = *report.violation;
      if (options.minimize) {
        obs::Span span(hooks.tracer, 0, "minimize");
        const check::MinimizeResult minimized =
            check::minimize(pristine, budget, violation);
        std::cerr << name << ": minimized " << minimized.original_events << " -> "
                  << minimized.violation.schedule.size() << " events ("
                  << minimized.replays << " replays)\n";
        violation = minimized.violation;
      }
      std::cerr << name << ": " << violation.description << "\n";
      if (options.show_trace) {
        std::cerr << "  schedule: " << violation.trace() << "\n";
      }
      if (!options.save_viol_dir.empty() &&
          violation.property != sim::PropertyKind::kNone) {
        // A corpus file must honour the replay contract; schedules found
        // under symmetry reduction are only valid up to a class permutation
        // and may not reproduce — verify before persisting.
        const sim::ReplayReport replayed =
            sim::replay(pristine.memory, pristine.processes, violation.schedule,
                        pristine.properties, budget.max_steps_per_run);
        if (!replayed.violation.has_value() ||
            replayed.violation->property != violation.property) {
          std::cerr << name << ": schedule does not replay (symmetry-reduced "
                       "counterexample?) — not saved\n";
        } else {
          check::ViolationFile file;
          file.scenario = spec;
          file.property = violation.property;
          file.property_param = violation.property_param;
          file.description = violation.description;
          file.schedule = violation.schedule;
          const std::string path =
              options.save_viol_dir + "/" + sanitize_filename(name) + ".viol";
          if (check::save_violation_file(path, file)) {
            std::cerr << name << ": saved " << path << "\n";
          } else {
            std::cerr << name << ": could not write " << path << "\n";
          }
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n"
            << parse.specs.size() - static_cast<std::size_t>(violations) -
                   static_cast<std::size_t>(truncations)
            << "/" << parse.specs.size() << " scenarios clean";
  if (truncations != 0) std::cout << " (" << truncations << " truncated)";
  std::cout << ".\n";
  // Exit contract: violations dominate truncations (a found bug is a found
  // bug even if the search also hit a budget).
  if (violations != 0) return 1;
  return truncations != 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) return 2;
  if (options.list) return print_list();

  obs::SessionOptions session_options;
  session_options.progress = options.progress;
  session_options.trace_out = options.trace_out;
  session_options.metrics_out = options.metrics_out;
  session_options.interval_ms = options.obs_interval_ms;
  std::optional<obs::Session> session;
  if (session_options.any_enabled()) session.emplace(std::move(session_options));
  const obs::Hooks hooks = session.has_value() ? session->hooks() : obs::Hooks{};

  int exit_code;
  if (options.input_file.size() > 5 &&
      options.input_file.rfind(".viol") == options.input_file.size() - 5) {
    exit_code = replay_violation_file(options, hooks);
  } else {
    exit_code = run_spec_file(options, hooks);
  }

  if (session.has_value()) {
    std::string error;
    if (!session->finish(&error)) {
      std::cerr << "obs: " << error << "\n";
      return 2;
    }
    if (!options.trace_out.empty()) {
      // Self-check the exported trace so a broken trace fails loudly here
      // rather than silently in a viewer (CI relies on this exit code).
      std::ifstream in(options.trace_out);
      if (!in.is_open()) {
        std::cerr << "obs: cannot reopen trace file " << options.trace_out << "\n";
        return 2;
      }
      if (!obs::validate_chrome_trace(in, &error)) {
        std::cerr << "obs: invalid trace " << options.trace_out << ": " << error
                  << "\n";
        return 2;
      }
    }
  }
  return exit_code;
}
