// check_cli: run a scenario spec file through the check:: facade with any
// strategy — the command-line face of check(CheckRequest).
//
//   $ check_cli scenarios.spec                    # Strategy::kAuto
//   $ check_cli scenarios.spec --strategy=dfs     # force sequential DFS
//   $ check_cli scenarios.spec --strategy=bfs --threads=8
//   $ check_cli scenarios.spec --strategy=random --runs=500 --seed=7
//
// Each line of the spec file describes one team-consensus scenario (see
// examples/scenarios/default.spec for the grammar). Exit codes: 0 = all
// scenarios clean, 1 = at least one violation, 2 = bad usage or spec file.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "check/check.hpp"
#include "check/scenario_spec.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

struct CliOptions {
  std::string scenario_file;
  check::Strategy strategy = check::Strategy::kAuto;
  int num_threads = 0;
  int runs = 200;
  std::uint64_t seed = 1;
  bool show_trace = false;
};

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--strategy=", 0) == 0) {
      const std::string name = arg.substr(11);
      if (name == "auto") {
        options.strategy = check::Strategy::kAuto;
      } else if (name == "dfs") {
        options.strategy = check::Strategy::kSequentialDFS;
      } else if (name == "bfs") {
        options.strategy = check::Strategy::kParallelBFS;
      } else if (name == "random") {
        options.strategy = check::Strategy::kRandomized;
      } else {
        std::cerr << "unknown strategy '" << name << "' (auto|dfs|bfs|random)\n";
        return false;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.num_threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--runs=", 0) == 0) {
      options.runs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--trace") {
      options.show_trace = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return false;
    } else if (options.scenario_file.empty()) {
      options.scenario_file = arg;
    } else {
      std::cerr << "unexpected argument " << arg << "\n";
      return false;
    }
  }
  if (options.scenario_file.empty()) {
    std::cerr << "usage: check_cli <scenario-file> [--strategy=auto|dfs|bfs|random]\n"
                 "                 [--threads=N] [--runs=R] [--seed=S] [--trace]\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) return 2;

  const check::ScenarioParse parse = check::load_scenario_file(options.scenario_file);
  if (!parse.ok()) {
    for (const std::string& error : parse.errors) std::cerr << error << "\n";
    return 2;
  }

  util::Table table(
      {"scenario", "strategy", "verdict", "visited", "runs", "time(s)"});
  int violations = 0;
  for (const check::ScenarioSpec& spec : parse.specs) {
    auto type = typesys::make_type(spec.type);
    rc::TeamConsensusSystem system =
        rc::make_team_consensus_system(*type, spec.n, 101, 202);

    check::CheckRequest request;
    request.system.memory = std::move(system.memory);
    request.system.processes = std::move(system.processes);
    request.system.valid_outputs = {101, 202};
    request.budget.crash_model = spec.crash_model;
    request.budget.crash_budget = spec.crash_budget;
    if (spec.max_steps_per_run >= 0) {
      request.budget.max_steps_per_run = spec.max_steps_per_run;
    }
    if (spec.max_visited >= 0) {
      request.budget.max_visited = static_cast<std::uint64_t>(spec.max_visited);
    }
    request.strategy = options.strategy;
    request.num_threads = options.num_threads;
    request.runs = options.runs;
    request.seed = options.seed;

    const check::CheckReport report = check::check(std::move(request));

    std::string name = spec.name;
    if (name.empty()) {
      std::ostringstream generated;
      generated << spec.type << "/n=" << spec.n << "/c=" << spec.crash_budget;
      name = generated.str();
    }
    std::ostringstream time;
    time.precision(3);
    time << std::fixed << report.seconds;
    std::string verdict = report.clean ? "clean" : "VIOLATION";
    if (report.stats.truncated) verdict = "TRUNCATED";
    table.add_row({name, check::strategy_name(report.strategy), verdict,
                   std::to_string(report.stats.visited), std::to_string(report.runs),
                   time.str()});
    if (!report.clean) {
      violations += 1;
      std::cerr << name << ": " << report.violation->description << "\n";
      if (options.show_trace) {
        std::cerr << "  schedule: " << report.violation->trace() << "\n";
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n" << parse.specs.size() - static_cast<std::size_t>(violations) << "/"
            << parse.specs.size() << " scenarios clean.\n";
  return violations == 0 ? 0 : 1;
}
