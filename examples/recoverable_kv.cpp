// A recoverable key-value store built on RUniversal (paper Section 4).
//
// The KV store is just a deterministic sequential object type (fixed small
// key/value domain); RUniversal turns it into a wait-free, linearizable,
// crash-recoverable concurrent object. Worker threads hammer it with Put/Get
// while crashing randomly; detectable recovery tells each worker whether its
// in-flight operation took effect. At the end, the construction's own
// certificate (the operation list) is replayed to validate linearizability.
//
//   $ ./recoverable_kv [seed]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "typesys/object_type.hpp"
#include "universal/certify.hpp"
#include "universal/universal.hpp"
#include "util/rng.hpp"

namespace {

using namespace rcons;

constexpr int kKeys = 3;
constexpr int kValues = 4;  // 0 = absent

// State: {v_0, …, v_{kKeys-1}}. Operations: Put(k,v) (returns old value) and
// Get(k) (an update-flavoured read: returns the value, state unchanged).
class KvType final : public typesys::ObjectType {
 public:
  std::string name() const override { return "kv-store"; }
  bool readable() const override { return true; }

  std::vector<typesys::Operation> operations(int) const override {
    std::vector<typesys::Operation> ops;
    for (int k = 0; k < kKeys; ++k) {
      for (int v = 1; v < kValues; ++v) {
        ops.push_back({0, k * kValues + v,
                       "Put(" + std::to_string(k) + "," + std::to_string(v) + ")"});
      }
    }
    for (int k = 0; k < kKeys; ++k) {
      ops.push_back({1, k, "Get(" + std::to_string(k) + ")"});
    }
    return ops;
  }

  std::vector<typesys::StateRepr> initial_states(int) const override {
    return {typesys::StateRepr(kKeys, 0)};
  }

  typesys::Transition apply(const typesys::StateRepr& state,
                            const typesys::Operation& op) const override {
    if (op.kind == 0) {
      const auto key = static_cast<std::size_t>(op.arg / kValues);
      const typesys::Value value = op.arg % kValues;
      typesys::StateRepr next = state;
      const typesys::Value old = next[key];
      next[key] = value;
      return {std::move(next), old};
    }
    return {state, state[static_cast<std::size_t>(op.arg)]};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;

  auto cache = std::make_shared<typesys::TransitionCache>(
      std::make_shared<const KvType>(), kThreads);
  const int num_ops = cache->num_ops();
  const typesys::StateId q0 = cache->initial_states().front();
  auto table = nvram::ClosedTable::build(cache);
  std::cout << "kv-store closure: " << table->num_states() << " states x " << num_ops
            << " ops\n";

  universal::Universal::Options options;
  options.nodes_per_process = 4 * kOpsPerThread;
  universal::Universal kv(table, q0, kThreads, options);

  std::atomic<long> clock{0};
  std::atomic<int> crashes{0};
  std::atomic<int> not_executed{0};
  std::vector<std::vector<universal::OpRecord>> records(kThreads);

  std::vector<std::thread> workers;
  for (int p = 0; p < kThreads; ++p) {
    workers.emplace_back([&, p] {
      util::Rng rng(seed + static_cast<std::uint64_t>(p) * 131);
      runtime::CrashInjector injector(seed ^ static_cast<std::uint64_t>(p),
                                      /*per_mille=*/40, /*max_crashes=*/kOpsPerThread);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto op = static_cast<typesys::OpId>(
            rng.below(static_cast<std::uint64_t>(num_ops)));
        universal::OpRecord record;
        record.process = p;
        record.invoke_ts = clock.fetch_add(1, std::memory_order_seq_cst);
        const int before = kv.last_announced(p);
        try {
          const auto completion = kv.invoke(p, op, injector);
          record.node = completion.node;
          record.response = completion.response;
          record.completed = true;
        } catch (const runtime::CrashException&) {
          crashes.fetch_add(1, std::memory_order_relaxed);  // stat; read after join
          if (kv.last_announced(p) != before) {
            // Detectable recovery: the op was announced, so finish it.
            runtime::CrashInjector clean = runtime::CrashInjector::none();
            const auto completion = kv.recover(p, clean);
            record.node = completion.node;
            record.response = completion.response;
            record.completed = true;
          } else {
            not_executed.fetch_add(1, std::memory_order_relaxed);  // stat; read after join
            record.completed = false;  // op never took effect — caller knows
          }
        }
        record.return_ts = clock.fetch_add(1, std::memory_order_seq_cst);
        records[static_cast<std::size_t>(p)].push_back(record);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  std::vector<universal::OpRecord> all;
  for (const auto& per_thread : records) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  const universal::CertResult cert = universal::certify_history(kv, all);

  std::cout << "ops attempted:   " << kThreads * kOpsPerThread << "\n"
            << "crashes:         " << crashes.load(std::memory_order_relaxed) << "\n"
            << "ops not executed (detected on recovery): " << not_executed.load(std::memory_order_relaxed)
            << "\n"
            << "linearized ops:  " << cert.list_length << "\n"
            << "linearizability: " << (cert.ok ? "CERTIFIED" : cert.error) << "\n";

  // Show the final state reached by the linearization.
  const auto order = kv.list_order();
  if (!order.empty()) {
    const auto final_state = table->cache().repr(kv.node_info(order.back()).new_state);
    std::cout << "final store:     ";
    for (int k = 0; k < kKeys; ++k) {
      std::cout << "k" << k << "=" << final_state[static_cast<std::size_t>(k)] << " ";
    }
    std::cout << "\n";
  }
  return cert.ok ? 0 : 1;
}
