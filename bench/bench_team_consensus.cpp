// Experiment E2 — the Figure 2 algorithm as executable code: decide latency
// of recoverable team consensus over different n-recording types, solo and
// with all roles participating.
#include <benchmark/benchmark.h>

#include <iostream>

#include "hierarchy/recording.hpp"
#include "nvram/closed_table.hpp"
#include "runtime/recoverable.hpp"
#include "typesys/zoo.hpp"

namespace {

using namespace rcons;

struct Fixture {
  std::shared_ptr<const rc::TeamConsensusPlan> plan;
  std::unique_ptr<runtime::RTeamConsensus> consensus;

  static Fixture make(const std::string& type_name, int n) {
    std::shared_ptr<const typesys::ObjectType> type = typesys::make_type(type_name);
    auto cache = std::make_shared<typesys::TransitionCache>(type, n);
    auto witness = hierarchy::find_recording_witness(*cache);
    RCONS_ASSERT(witness.has_value());
    Fixture fixture;
    fixture.plan = rc::TeamConsensusPlan::create(cache, *witness);
    fixture.consensus = std::make_unique<runtime::RTeamConsensus>(
        fixture.plan, nvram::ClosedTable::build(cache));
    return fixture;
  }
};

void BM_SoloDecide(benchmark::State& state, const std::string& type_name, int n) {
  Fixture fixture = Fixture::make(type_name, n);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  for (auto _ : state) {
    fixture.consensus->reset();
    benchmark::DoNotOptimize(fixture.consensus->decide(0, 1, none));
  }
  state.SetLabel(type_name + " n=" + std::to_string(n));
}

void BM_AllRolesSequential(benchmark::State& state, const std::string& type_name,
                           int n) {
  Fixture fixture = Fixture::make(type_name, n);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  for (auto _ : state) {
    fixture.consensus->reset();
    for (int role = 0; role < n; ++role) {
      benchmark::DoNotOptimize(fixture.consensus->decide(role, role + 1, none));
    }
  }
  state.SetLabel(type_name + " n=" + std::to_string(n));
}

void BM_DecideWithCrashRetries(benchmark::State& state, int crash_per_mille) {
  Fixture fixture = Fixture::make("Sn(4)", 4);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fixture.consensus->reset();
    runtime::CrashInjector injector(seed++, crash_per_mille, 8);
    for (int role = 0; role < 4; ++role) {
      for (;;) {
        try {
          benchmark::DoNotOptimize(fixture.consensus->decide(role, role + 1, injector));
          break;
        } catch (const runtime::CrashException&) {
        }
      }
    }
  }
  state.SetLabel("crash_rate=" + std::to_string(crash_per_mille) + "/1000");
}

}  // namespace

BENCHMARK_CAPTURE(BM_SoloDecide, Sn2, std::string("Sn(2)"), 2);
BENCHMARK_CAPTURE(BM_SoloDecide, Sn4, std::string("Sn(4)"), 4);
BENCHMARK_CAPTURE(BM_SoloDecide, Sn6, std::string("Sn(6)"), 6);
BENCHMARK_CAPTURE(BM_SoloDecide, cas4, std::string("compare-and-swap"), 4);
BENCHMARK_CAPTURE(BM_SoloDecide, sticky4, std::string("sticky-bit"), 4);
BENCHMARK_CAPTURE(BM_AllRolesSequential, Sn2, std::string("Sn(2)"), 2);
BENCHMARK_CAPTURE(BM_AllRolesSequential, Sn4, std::string("Sn(4)"), 4);
BENCHMARK_CAPTURE(BM_AllRolesSequential, Sn6, std::string("Sn(6)"), 6);
BENCHMARK_CAPTURE(BM_AllRolesSequential, Sn8, std::string("Sn(8)"), 8);
BENCHMARK_CAPTURE(BM_AllRolesSequential, cas8, std::string("compare-and-swap"), 8);
BENCHMARK_CAPTURE(BM_DecideWithCrashRetries, none, 0);
BENCHMARK_CAPTURE(BM_DecideWithCrashRetries, light, 50);
BENCHMARK_CAPTURE(BM_DecideWithCrashRetries, heavy, 300);

int main(int argc, char** argv) {
  std::cout << "=== E2: Figure 2 recoverable team consensus — decide latency ===\n"
            << "Shape: latency is flat in n (constant number of shared accesses\n"
            << "per Decide); crash retries add proportional overhead.\n\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
