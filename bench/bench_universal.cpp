// Experiment E10 — Section 4: the recoverable universal construction.
// Throughput of an implemented fetch-and-increment object: Herlihy baseline
// (halting model, volatile), RUniversal in the paper's idealized NVRAM model,
// and RUniversal with a synthetic persistence cost — the qualitative "cost
// of recoverability" axis.
#include <benchmark/benchmark.h>

#include <atomic>
#include <iostream>
#include <thread>

#include "typesys/types/rmw.hpp"
#include "universal/universal.hpp"

namespace {

using namespace rcons;

std::shared_ptr<const nvram::ClosedTable> counter_table(int n, int capacity) {
  auto cache = std::make_shared<typesys::TransitionCache>(
      std::make_shared<const typesys::FetchAndIncrementType>(capacity + 2), n);
  return nvram::ClosedTable::build(cache, static_cast<std::size_t>(capacity) + 8);
}

// Throughput with `threads` workers performing ops concurrently.
void run_concurrent(universal::Universal& universal, int threads, int ops_per_thread,
                    int crash_per_mille, std::uint64_t seed) {
  std::vector<std::thread> workers;
  for (int p = 0; p < threads; ++p) {
    workers.emplace_back([&, p] {
      runtime::CrashInjector injector(seed + static_cast<std::uint64_t>(p),
                                      crash_per_mille, 2 * ops_per_thread);
      for (int i = 0; i < ops_per_thread; ++i) {
        const int before = universal.last_announced(p);
        for (;;) {
          try {
            universal.invoke(p, 0, injector);
            break;
          } catch (const runtime::CrashException&) {
            if (universal.last_announced(p) != before) {
              for (;;) {
                try {
                  universal.recover(p, injector);
                  break;
                } catch (const runtime::CrashException&) {
                }
              }
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

void BM_UniversalThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kOps = 200;
  std::uint64_t seed = 11;
  for (auto _ : state) {
    state.PauseTiming();
    auto table = counter_table(threads, threads * kOps);
    universal::Universal::Options options;
    options.nodes_per_process = kOps + 4;
    universal::Universal universal(table, 0, threads, options);
    state.ResumeTiming();
    run_concurrent(universal, threads, kOps, /*crash=*/0, seed++);
  }
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * threads * kOps,
      benchmark::Counter::kIsRate);
}

void BM_UniversalWithPersistCost(benchmark::State& state) {
  const long persist_ns = state.range(0);
  constexpr int kThreads = 4;
  constexpr int kOps = 100;
  const nvram::PersistenceModel persistence{persist_ns};
  std::uint64_t seed = 3;
  for (auto _ : state) {
    state.PauseTiming();
    auto table = counter_table(kThreads, kThreads * kOps);
    universal::Universal::Options options;
    options.nodes_per_process = kOps + 4;
    options.persistence = persist_ns > 0 ? &persistence : nullptr;
    universal::Universal universal(table, 0, kThreads, options);
    state.ResumeTiming();
    run_concurrent(universal, kThreads, kOps, /*crash=*/0, seed++);
  }
  state.SetLabel(persist_ns == 0 ? "Herlihy baseline (volatile)"
                                 : "RUniversal persist=" + std::to_string(persist_ns) +
                                       "ns");
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kThreads * kOps,
      benchmark::Counter::kIsRate);
}

void BM_UniversalUnderCrashes(benchmark::State& state) {
  const int crash_per_mille = static_cast<int>(state.range(0));
  constexpr int kThreads = 4;
  constexpr int kOps = 100;
  std::uint64_t seed = 29;
  for (auto _ : state) {
    state.PauseTiming();
    auto table = counter_table(kThreads, 4 * kThreads * kOps);
    universal::Universal::Options options;
    options.nodes_per_process = 4 * kOps + 8;
    universal::Universal universal(table, 0, kThreads, options);
    state.ResumeTiming();
    run_concurrent(universal, kThreads, kOps, crash_per_mille, seed++);
  }
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kThreads * kOps,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_UniversalThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_UniversalWithPersistCost)->Arg(0)->Arg(100)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_UniversalUnderCrashes)->Arg(0)->Arg(20)->Arg(60)->Arg(150)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  std::cout
      << "=== E10: RUniversal (Figure 7) throughput ===\n"
      << "Shapes: throughput degrades smoothly with simulated persistence cost\n"
      << "and with crash rate; the zero-cost, zero-crash configuration is the\n"
      << "Herlihy halting-model baseline.\n\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
