// Experiment E3 — the Proposition 30 tournament: full recoverable consensus
// latency as the participant count grows. The paper treats this
// qualitatively; the executable shape is ⌈log2 k⌉ team-consensus stages per
// decide (printed below), with latency growing logarithmically.
#include <benchmark/benchmark.h>

#include <iostream>

#include "runtime/harness.hpp"
#include "runtime/recoverable.hpp"
#include "typesys/types/rmw.hpp"
#include "typesys/types/sn.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

void print_depth_table() {
  util::Table table({"participants k", "witness", "instances", "depth (stages)"});
  for (int k = 2; k <= 8; ++k) {
    typesys::SnType sn(k);
    runtime::RTournament tournament(sn, k, k);
    table.add_row({std::to_string(k), "Sn(" + std::to_string(k) + ")",
                   std::to_string(tournament.instances()),
                   std::to_string(tournament.depth())});
  }
  std::cout << "=== E3: tournament structure (depth ~ log2 k over balanced "
               "witnesses; k-1 instances) ===\n\n";
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_TournamentAllDecideSequential(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  typesys::SnType sn(k);
  runtime::RTournament tournament(sn, k, k);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  for (auto _ : state) {
    tournament.reset();
    for (int p = 0; p < k; ++p) {
      benchmark::DoNotOptimize(tournament.decide(p, p + 1, none));
    }
  }
  state.counters["per_decide_ns"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * k, benchmark::Counter::kIsRate |
                                                       benchmark::Counter::kInvert);
}

void BM_TournamentCasWitness(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  typesys::CompareAndSwapType cas;
  runtime::RTournament tournament(cas, k, k);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  for (auto _ : state) {
    tournament.reset();
    for (int p = 0; p < k; ++p) {
      benchmark::DoNotOptimize(tournament.decide(p, p + 1, none));
    }
  }
}

void BM_TournamentConcurrentThreads(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  typesys::SnType sn(k);
  runtime::RTournament tournament(sn, k, k);
  std::uint64_t seed = 42;
  for (auto _ : state) {
    tournament.reset();
    const runtime::HarnessReport report = runtime::run_crashy_workers(
        k,
        [&](int role, runtime::CrashInjector& crash) {
          return tournament.decide(role, role + 1, crash);
        },
        seed++, /*crash_per_mille=*/0, /*max_crashes=*/0);
    benchmark::DoNotOptimize(report.outputs.front());
  }
}

}  // namespace

BENCHMARK(BM_TournamentAllDecideSequential)->DenseRange(2, 8);
BENCHMARK(BM_TournamentCasWitness)->DenseRange(2, 8);
BENCHMARK(BM_TournamentConcurrentThreads)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->Iterations(200);

int main(int argc, char** argv) {
  print_depth_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
