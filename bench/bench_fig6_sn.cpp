// Experiment E6 — Figure 6 / Proposition 21: the S_n family populates every
// level of the recoverable consensus hierarchy with rcons = cons = n.
#include <benchmark/benchmark.h>

#include <iostream>

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "typesys/types/sn.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

void print_transition_diagram(int n) {
  typesys::SnType sn(n);
  const auto ops = sn.operations(n);
  std::cout << "--- S_" << n << " transition table (Figure 6; all ops return ack) ---\n";
  for (const typesys::StateRepr& q : sn.initial_states(n)) {
    std::cout << sn.format_state(q) << ":";
    for (const typesys::Operation& op : ops) {
      std::cout << "  " << op.name << "-> " << sn.format_state(sn.apply(q, op).next);
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

void print_sweep() {
  util::Table table({"n", "n-recording", "(n+1)-recording", "(n+1)-discerning",
                     "rcons(Sn)", "cons(Sn)"});
  for (int n = 2; n <= 8; ++n) {
    typesys::SnType sn(n);
    const bool rec_n = hierarchy::is_recording(sn, n);
    const bool rec_n1 = hierarchy::is_recording(sn, n + 1);
    const bool disc_n1 = hierarchy::is_discerning(sn, n + 1);
    table.add_row({std::to_string(n), rec_n ? "yes" : "NO",
                   rec_n1 ? "YES (unexpected)" : "no",
                   disc_n1 ? "YES (unexpected)" : "no", std::to_string(n),
                   std::to_string(n)});
  }
  std::cout << "=== Proposition 21 sweep: rcons(Sn) = cons(Sn) = n ===\n\n";
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_SnRecordingCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::SnType sn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_recording(sn, n));
  }
}

void BM_SnNotDiscerningCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::SnType sn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_discerning(sn, n + 1));
  }
}

}  // namespace

BENCHMARK(BM_SnRecordingCheck)->DenseRange(2, 8);
BENCHMARK(BM_SnNotDiscerningCheck)->DenseRange(2, 8);

int main(int argc, char** argv) {
  print_transition_diagram(4);
  print_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
