// Speedup benchmark: Strategy::kSequentialDFS vs Strategy::kParallelBFS at
// 1/2/4/8 threads through the check:: facade, on exhaustive team-consensus
// instances (the acceptance instance is Sn(3) with 3 processes and crash
// budget 2), plus a Strategy::kAuto row showing what the facade picks.
// Verifies that every configuration reports the same verdict and
// visited-state count before trusting a timing.
//
// Since the compact node-store refactor the rows also report states/sec and
// the interned bytes/node, and a final section measures symmetry reduction:
// the team-consensus n=4 instance re-checked with its symmetry declaration
// attached must shrink the visited set without changing the verdict.
//
// Plain chrono timing rather than Google Benchmark: each run is seconds long
// and we want a speedup table, not per-iteration statistics. Every timed
// configuration gets one untimed warmup run first (page cache, allocator
// arenas, branch predictors), then `repeats` samples whose *median* is
// reported. Results are also written machine-readably to
// BENCH_parallel_engine.json so the perf trajectory accumulates across
// revisions; the rows carry the hot-path counters (allocations avoided,
// batch sizes, dedup-cache hit rate, probe lengths) introduced with the
// batched engine.
//
// Usage: bench_parallel_engine [--repeats N] [--filter SUBSTR] [N]
//   --repeats N     timed samples per configuration (default 3, min 1)
//   --filter SUBSTR only run instances whose label contains SUBSTR
//   N               positional alias for --repeats (back-compat)
//
// Exits non-zero when any configuration disagrees on verdict or
// visited-state count (verdicts_consistent:false in the JSON) — the CI bench
// smoke job relies on this.
//
// Every JSON row carries `hardware_concurrency` and a `wall_clock` stamp so
// an archived artifact is self-describing: a t=8 row produced on a 1-core
// runner is detectable (and such rows are flagged `oversubscribed`; the
// table prints their speedup as "-" since a thread count above the core
// count measures scheduler thrash, not parallel scaling).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

struct Instance {
  std::string label;
  rc::TeamConsensusSystem system;
  int crash_budget;
};

Instance make_instance(const std::string& type_name, int n, int crash_budget) {
  auto type = typesys::make_type(type_name);
  RCONS_ASSERT(type != nullptr);
  Instance instance;
  instance.label = type_name + " n=" + std::to_string(n) +
                   " crashes=" + std::to_string(crash_budget);
  instance.system = rc::make_team_consensus_system(*type, n, kInputA, kInputB);
  instance.crash_budget = crash_budget;
  return instance;
}

double median_seconds(std::vector<double> samples) {
  for (std::size_t i = 1; i < samples.size(); ++i) {
    for (std::size_t j = i; j > 0 && samples[j] < samples[j - 1]; --j) {
      std::swap(samples[j], samples[j - 1]);
    }
  }
  return samples[samples.size() / 2];
}

check::CheckRequest make_request(const Instance& instance, check::Strategy strategy,
                                 int threads, bool symmetry = false) {
  check::CheckRequest request;
  request.system.memory = instance.system.memory;
  request.system.processes = instance.system.processes;
  request.system.properties.valid_outputs = {kInputA, kInputB};
  if (symmetry) request.system.symmetry_classes = instance.system.symmetry_classes;
  request.budget.crash_budget = instance.crash_budget;
  request.strategy = strategy;
  request.num_threads = threads;
  return request;
}

struct RunOutcome {
  bool clean = false;
  std::uint64_t visited = 0;
  check::Strategy strategy = check::Strategy::kAuto;
  // Worker threads the backend actually resolved and ran with
  // (CheckReport::threads_used) — rows report this, never the requested
  // count, so a "threads=0 (auto)" request still produces an honest row.
  int threads_used = 0;
  double seconds = 0.0;
  sim::ExplorerStats stats;
};

RunOutcome timed(const Instance& instance, check::Strategy strategy, int threads,
                 int repeats, bool symmetry = false) {
  RunOutcome outcome;
  // One untimed warmup run, then `repeats` timed samples; the median is
  // reported so a single noisy sample cannot fake (or hide) a regression.
  check::check(make_request(instance, strategy, threads, symmetry));
  std::vector<double> samples;
  for (int i = 0; i < repeats; ++i) {
    const check::CheckReport report =
        check::check(make_request(instance, strategy, threads, symmetry));
    samples.push_back(report.seconds);
    outcome.clean = report.clean;
    outcome.visited = report.stats.visited;
    outcome.strategy = report.strategy;
    outcome.threads_used = report.threads_used;
    outcome.stats = report.stats;
  }
  outcome.seconds = median_seconds(std::move(samples));
  return outcome;
}

std::string fixed(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed << value;
  return out.str();
}

// UTC wall-clock stamp (ISO 8601) so archived bench artifacts are dateable.
std::string iso8601_now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

double states_per_sec(const RunOutcome& outcome) {
  return outcome.seconds > 0.0
             ? static_cast<double>(outcome.visited) / outcome.seconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 3;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      // A typo'd or value-less flag must not silently become "repeats=0".
      std::cerr << "unknown or incomplete argument: " << arg
                << "\nusage: bench_parallel_engine [--repeats N] "
                   "[--filter SUBSTR] [N]\n";
      return 2;
    } else {
      repeats = std::atoi(argv[i]);  // positional back-compat
    }
  }
  if (repeats < 1) repeats = 1;

  std::cout << "=== Parallel exploration engine — speedup via the check:: facade ===\n"
            << "Hardware concurrency: " << std::thread::hardware_concurrency()
            << " (speedup beyond that count is not expected)\n"
            << "Repeats: " << repeats << " (median of timed samples, after one "
            << "warmup run per configuration)\n\n";

  // 3-process, crash-budget-2 team-consensus instances (readable-stack has
  // the largest state space of the 3-recording zoo types), plus a 4-process
  // instance for a larger-state-space scaling read.
  std::vector<Instance> instances;
  instances.push_back(make_instance("readable-stack", 3, 2));
  instances.push_back(make_instance("Sn(3)", 3, 2));
  instances.push_back(make_instance("Sn(4)", 4, 1));
  if (!filter.empty()) {
    std::erase_if(instances, [&](const Instance& instance) {
      return instance.label.find(filter) == std::string::npos;
    });
    if (instances.empty()) {
      std::cerr << "--filter '" << filter << "' matches no instance\n";
      return 2;
    }
  }

  util::Table table({"instance", "config", "verdict", "visited", "time(s)",
                     "states/s", "B/node", "batch", "cache%", "probe", "speedup"});
  bool verdicts_consistent = true;

  const unsigned hardware_threads = std::thread::hardware_concurrency();

  std::ofstream json_file("BENCH_parallel_engine.json");
  util::JsonWriter json(json_file);
  json.begin_object();
  json.key_value("bench", "parallel_engine");
  json.key_value("repeats", repeats);
  json.key_value("hardware_concurrency",
                 static_cast<std::uint64_t>(hardware_threads));
  json.key_value("wall_clock", iso8601_now());
  json.key("rows");
  json.begin_array();

  auto emit = [&](const Instance& instance, const std::string& config_label,
                  const RunOutcome& outcome, double speedup) {
    const sim::HotPathStats& hot = outcome.stats.hot;
    const int threads = outcome.threads_used;
    // Running more workers than the machine has cores measures scheduler
    // thrash, not scaling: flag the row and withhold the speedup figure.
    const bool oversubscribed =
        threads > 0 && static_cast<unsigned>(threads) > hardware_threads;
    table.add_row({instance.label,
                   oversubscribed ? config_label + " (oversub)" : config_label,
                   outcome.clean ? "clean" : "VIOLATION",
                   std::to_string(outcome.visited), fixed(outcome.seconds, 3),
                   fixed(states_per_sec(outcome), 0),
                   fixed(outcome.stats.store.bytes_per_node(), 1),
                   fixed(hot.avg_batch(), 1),
                   fixed(100.0 * hot.cache_hit_rate(), 0),
                   fixed(hot.avg_probe(), 2),
                   oversubscribed ? "-" : fixed(speedup, 3) + "x"});
    json.begin_object();
    json.key_value("instance", instance.label);
    json.key_value("config", config_label);
    json.key_value("strategy", check::strategy_name(outcome.strategy));
    json.key_value("threads", threads);
    json.key_value("hardware_concurrency",
                   static_cast<std::uint64_t>(hardware_threads));
    json.key_value("wall_clock", iso8601_now());
    json.key_value("oversubscribed", oversubscribed);
    json.key_value("verdict", outcome.clean ? "clean" : "violation");
    json.key_value("visited", outcome.visited);
    json.key_value("seconds", outcome.seconds);
    json.key_value("states_per_sec", states_per_sec(outcome));
    json.key_value("speedup", speedup);
    json.key_value("compact", outcome.stats.compact);
    json.key_value("store_nodes", outcome.stats.store.nodes);
    json.key_value("store_bytes_per_node", outcome.stats.store.bytes_per_node());
    json.key_value("canonical_hit_rate", outcome.stats.store.canonical_hit_rate());
    json.key_value("allocations_avoided", hot.allocations_avoided);
    json.key_value("avg_push_batch", hot.avg_batch());
    json.key_value("dedup_cache_hit_rate", hot.cache_hit_rate());
    json.key_value("avg_probe_length", hot.avg_probe());
    json.key_value("max_probe_length", hot.max_probe);
    json.key_value("table_rehashes", hot.rehashes);
    json.key_value("orbit_skipped", outcome.stats.orbit_skipped);
    json.key_value("cas_retries", hot.cas_retries);
    json.key_value("migration_stripes", hot.migration_stripes);
    json.end_object();
  };

  for (const Instance& instance : instances) {
    const RunOutcome sequential =
        timed(instance, check::Strategy::kSequentialDFS, 0, repeats);
    emit(instance, "sequential", sequential, 1.0);

    for (const int threads : {1, 2, 4, 8}) {
      const RunOutcome parallel =
          timed(instance, check::Strategy::kParallelBFS, threads, repeats);
      if (parallel.clean != sequential.clean ||
          parallel.visited != sequential.visited) {
        verdicts_consistent = false;
      }
      emit(instance, "parallel t=" + std::to_string(threads), parallel,
           sequential.seconds / parallel.seconds);
    }

    // What does kAuto do with this instance? (Probe + escalation included in
    // its wall time.)
    const RunOutcome automatic = timed(instance, check::Strategy::kAuto, 0, repeats);
    if (automatic.clean != sequential.clean ||
        automatic.visited != sequential.visited) {
      verdicts_consistent = false;
    }
    emit(instance,
         std::string("auto -> ") + check::strategy_name(automatic.strategy),
         automatic, sequential.seconds / automatic.seconds);
  }

  // --- Symmetry reduction on the n=4 acceptance instance ------------------
  //
  // The Sn(4) n=4 team-consensus instance re-checked with its symmetry
  // declaration: interchangeable same-team roles canonicalize, so the
  // visited set must shrink (the verdict must not change). The row joins the
  // main array (emit writes into it); the summary gets its own object below.
  const Instance& n4 = instances.back();
  const RunOutcome plain = timed(n4, check::Strategy::kParallelBFS, 0, repeats);
  const RunOutcome reduced =
      timed(n4, check::Strategy::kParallelBFS, 0, repeats, /*symmetry=*/true);
  const bool symmetry_ok =
      reduced.clean == plain.clean && reduced.visited <= plain.visited;
  verdicts_consistent = verdicts_consistent && symmetry_ok;
  // Speedup baseline: the plain parallel run at the same resolved thread
  // count, so the figure isolates what the reduction itself buys.
  emit(n4, "parallel+symmetry", reduced,
       plain.seconds > 0 ? plain.seconds / reduced.seconds : 0.0);

  json.end_array();

  json.key("canonicalization");
  json.begin_object();
  json.key_value("instance", n4.label);
  json.key_value("visited_plain", plain.visited);
  json.key_value("visited_reduced", reduced.visited);
  json.key_value("reduction",
                 plain.visited > 0
                     ? 1.0 - static_cast<double>(reduced.visited) /
                                 static_cast<double>(plain.visited)
                     : 0.0);
  json.key_value("canonical_hit_rate", reduced.stats.store.canonical_hit_rate());
  json.key_value("verdict_preserved", reduced.clean == plain.clean);
  json.end_object();

  json.key_value("verdicts_consistent", verdicts_consistent);
  json.end_object();
  json_file << "\n";

  table.print(std::cout);
  std::cout << "\nSymmetry reduction on " << n4.label << ": " << plain.visited
            << " -> " << reduced.visited << " states ("
            << fixed(plain.visited > 0
                         ? 100.0 * (1.0 - static_cast<double>(reduced.visited) /
                                              static_cast<double>(plain.visited))
                         : 0.0,
                     1)
            << "% fewer)\n";
  if (!verdicts_consistent) {
    std::cout << "\nERROR: configurations disagreed on verdict or visited-state "
                 "count (or symmetry reduction grew the visited set).\n";
    return 1;
  }
  std::cout << "\nAll configurations agree on verdict and visited-state count.\n"
            << "Machine-readable results: BENCH_parallel_engine.json\n";
  return 0;
}
