// Speedup benchmark: sequential `sim::Explorer` vs `engine::ParallelExplorer`
// at 1/2/4/8 threads, on exhaustive team-consensus instances (the acceptance
// instance is Sn(3) with 3 processes and crash budget 2). Verifies that every
// configuration reports the same verdict and visited-state count before
// trusting a timing.
//
// Plain chrono timing rather than Google Benchmark: each run is seconds long
// and we want a speedup table, not per-iteration statistics.
//
// Usage: bench_parallel_engine [repeats]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/parallel_explorer.hpp"
#include "rc/team_consensus.hpp"
#include "sim/explorer.hpp"
#include "typesys/zoo.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

struct Instance {
  std::string label;
  rc::TeamConsensusSystem system;
  int crash_budget;
};

Instance make_instance(const std::string& type_name, int n, int crash_budget) {
  auto type = typesys::make_type(type_name);
  RCONS_ASSERT(type != nullptr);
  Instance instance;
  instance.label = type_name + " n=" + std::to_string(n) +
                   " crashes=" + std::to_string(crash_budget);
  instance.system = rc::make_team_consensus_system(*type, n, kInputA, kInputB);
  instance.crash_budget = crash_budget;
  return instance;
}

double median_seconds(const std::vector<double>& samples) {
  std::vector<double> sorted = samples;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    for (std::size_t j = i; j > 0 && sorted[j] < sorted[j - 1]; --j) {
      std::swap(sorted[j], sorted[j - 1]);
    }
  }
  return sorted[sorted.size() / 2];
}

struct RunOutcome {
  bool clean = false;
  std::uint64_t visited = 0;
  double seconds = 0.0;
};

template <typename F>
RunOutcome timed(int repeats, F&& run_once) {
  RunOutcome outcome;
  std::vector<double> samples;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto [clean, visited] = run_once();
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(end - start).count());
    outcome.clean = clean;
    outcome.visited = visited;
  }
  outcome.seconds = median_seconds(samples);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = argc > 1 ? std::atoi(argv[1]) : 3;
  if (repeats < 1) repeats = 1;

  std::cout << "=== Parallel exploration engine — speedup vs sequential Explorer ===\n"
            << "Hardware concurrency: " << std::thread::hardware_concurrency()
            << " (speedup beyond that count is not expected)\n\n";

  // 3-process, crash-budget-2 team-consensus instances (readable-stack has
  // the largest state space of the 3-recording zoo types), plus a 4-process
  // instance for a larger-state-space scaling read.
  std::vector<Instance> instances;
  instances.push_back(make_instance("readable-stack", 3, 2));
  instances.push_back(make_instance("Sn(3)", 3, 2));
  instances.push_back(make_instance("Sn(4)", 4, 1));

  util::Table table({"instance", "config", "verdict", "visited", "time(s)", "speedup"});
  bool verdicts_consistent = true;

  for (const Instance& instance : instances) {
    sim::ExplorerConfig base;
    base.crash_budget = instance.crash_budget;
    base.valid_outputs = {kInputA, kInputB};

    const RunOutcome sequential = timed(repeats, [&] {
      sim::Explorer explorer(instance.system.memory, instance.system.processes, base);
      const bool clean = !explorer.run().has_value();
      return std::pair<bool, std::uint64_t>(clean, explorer.stats().visited);
    });
    std::ostringstream seq_time;
    seq_time.precision(3);
    seq_time << std::fixed << sequential.seconds;
    table.add_row({instance.label, "sequential", sequential.clean ? "clean" : "VIOLATION",
                   std::to_string(sequential.visited), seq_time.str(), "1.00x"});

    for (const int threads : {1, 2, 4, 8}) {
      engine::ParallelExplorerConfig config;
      static_cast<sim::ExplorerConfig&>(config) = base;
      config.num_threads = threads;
      const RunOutcome parallel = timed(repeats, [&] {
        engine::ParallelExplorer explorer(instance.system.memory,
                                          instance.system.processes, config);
        const bool clean = !explorer.run().has_value();
        return std::pair<bool, std::uint64_t>(clean, explorer.stats().visited);
      });
      if (parallel.clean != sequential.clean || parallel.visited != sequential.visited) {
        verdicts_consistent = false;
      }
      std::ostringstream time, speedup;
      time.precision(3);
      time << std::fixed << parallel.seconds;
      speedup.precision(2);
      speedup << std::fixed << (sequential.seconds / parallel.seconds) << "x";
      table.add_row({instance.label, "parallel t=" + std::to_string(threads),
                     parallel.clean ? "clean" : "VIOLATION",
                     std::to_string(parallel.visited), time.str(), speedup.str()});
    }
  }

  table.print(std::cout);
  if (!verdicts_consistent) {
    std::cout << "\nERROR: parallel and sequential disagreed on verdict or "
                 "visited-state count.\n";
    return 1;
  }
  std::cout << "\nAll configurations agree on verdict and visited-state count.\n";
  return 0;
}
