// Experiment E4 — Theorem 1 / Figure 4: the simultaneous-crash transform.
// Prints the measured relationship between the number of simultaneous crash
// events and the rounds/steps the algorithm consumes (the paper's Appendix A
// notes the construction inherently uses more consensus instances as crashes
// accumulate — Golab proved unboundedly many are necessary).
#include <benchmark/benchmark.h>

#include <iostream>

#include "rc/race.hpp"
#include "rc/simultaneous.hpp"
#include "sim/random_runner.hpp"
#include "typesys/zoo.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

using Fig4 = rc::SimultaneousRCProgram<rc::RaceConsensusProgram, rc::RaceInstance>;

std::pair<sim::Memory, std::vector<sim::Process>> make_fig4(int n, int max_rounds) {
  sim::Memory memory;
  std::shared_ptr<const typesys::ObjectType> type =
      typesys::make_type("consensus-object");
  auto cache = std::make_shared<typesys::TransitionCache>(type, n);
  auto layout = rc::install_simultaneous<rc::RaceInstance>(
      memory, n, max_rounds, [&]() { return rc::install_race(memory, cache); });
  std::vector<sim::Process> processes;
  for (int i = 0; i < n; ++i) processes.emplace_back(Fig4(layout, i, i + 1));
  return {std::move(memory), std::move(processes)};
}

void print_crash_sweep() {
  const int n = 4;
  util::Table table({"max simultaneous crashes", "avg steps", "avg crashes",
                     "completed (of 40 seeds)"});
  for (const int crashes : {0, 1, 2, 4, 8}) {
    long total_steps = 0;
    long total_crashes = 0;
    int completed = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      auto [memory, processes] = make_fig4(n, crashes + 3);
      sim::RandomRunConfig config;
      config.seed = seed;
      config.crash_model = sim::CrashModel::kSimultaneous;
      config.crash_per_mille = crashes == 0 ? 0 : 60;
      config.max_crashes = crashes;
      const auto report = sim::run_random(std::move(memory), std::move(processes),
                                          config);
      total_steps += report.steps;
      total_crashes += report.crashes;
      completed += report.all_decided ? 1 : 0;
    }
    table.add_row({std::to_string(crashes), std::to_string(total_steps / 40),
                   std::to_string(total_crashes / 40), std::to_string(completed)});
  }
  std::cout << "=== E4: Figure 4 under simultaneous crashes (n=4) ===\n"
            << "Shape: steps grow with crash count — each crash burst forces a\n"
            << "new round and a fresh consensus instance (Appendix A).\n\n";
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_Fig4FullDecide(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto [memory, processes] = make_fig4(n, 2);
    sim::RandomRunConfig config;
    config.seed = 7;
    config.crash_per_mille = 0;
    benchmark::DoNotOptimize(
        sim::run_random(std::move(memory), std::move(processes), config));
  }
}

void BM_Fig4WithCrashes(benchmark::State& state) {
  const int crashes = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto [memory, processes] = make_fig4(4, crashes + 3);
    sim::RandomRunConfig config;
    config.seed = seed++;
    config.crash_model = sim::CrashModel::kSimultaneous;
    config.crash_per_mille = crashes == 0 ? 0 : 80;
    config.max_crashes = crashes;
    benchmark::DoNotOptimize(
        sim::run_random(std::move(memory), std::move(processes), config));
  }
}

}  // namespace

BENCHMARK(BM_Fig4FullDecide)->DenseRange(2, 8);
BENCHMARK(BM_Fig4WithCrashes)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

int main(int argc, char** argv) {
  print_crash_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
