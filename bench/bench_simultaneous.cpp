// Experiment E4 — Theorem 1 / Figure 4: the simultaneous-crash transform.
// Prints the measured relationship between the number of simultaneous crash
// events and the rounds/steps the algorithm consumes (the paper's Appendix A
// notes the construction inherently uses more consensus instances as crashes
// accumulate — Golab proved unboundedly many are necessary). Random
// executions run through the check:: facade (Strategy::kRandomized).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "check/check.hpp"
#include "rc/race.hpp"
#include "rc/simultaneous.hpp"
#include "typesys/zoo.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

using Fig4 = rc::SimultaneousRCProgram<rc::RaceConsensusProgram, rc::RaceInstance>;

check::ScenarioSystem make_fig4(int n, int max_rounds) {
  check::ScenarioSystem system;
  std::shared_ptr<const typesys::ObjectType> type =
      typesys::make_type("consensus-object");
  auto cache = std::make_shared<typesys::TransitionCache>(type, n);
  auto layout = rc::install_simultaneous<rc::RaceInstance>(
      system.memory, n, max_rounds, [&]() { return rc::install_race(system.memory, cache); });
  for (int i = 0; i < n; ++i) {
    system.processes.emplace_back(Fig4(layout, i, i + 1));
    system.properties.valid_outputs.push_back(i + 1);
  }
  return system;
}

check::CheckRequest make_random_request(check::ScenarioSystem system, int crashes,
                                        int crash_per_mille, int runs,
                                        std::uint64_t seed) {
  check::CheckRequest request;
  request.system = std::move(system);
  request.budget.crash_model = check::CrashModel::kSimultaneous;
  request.budget.crash_budget = crashes;
  request.strategy = check::Strategy::kRandomized;
  request.crash_per_mille = crash_per_mille;
  request.runs = runs;
  request.seed = seed;
  return request;
}

void print_crash_sweep() {
  const int n = 4;
  util::Table table({"max simultaneous crashes", "avg steps", "avg crashes",
                     "completed (of 40 seeds)"});
  for (const int crashes : {0, 1, 2, 4, 8}) {
    const check::CheckReport report = check::check(make_random_request(
        make_fig4(n, crashes + 3), crashes, crashes == 0 ? 0 : 60, 40, 1));
    const int runs = std::max(report.runs, 1);  // stops early on a violation
    table.add_row({std::to_string(crashes), std::to_string(report.total_steps / runs),
                   std::to_string(report.total_crashes / runs),
                   std::to_string(report.runs - report.incomplete_runs)});
  }
  std::cout << "=== E4: Figure 4 under simultaneous crashes (n=4) ===\n"
            << "Shape: steps grow with crash count — each crash burst forces a\n"
            << "new round and a fresh consensus instance (Appendix A).\n\n";
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_Fig4FullDecide(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    check::CheckRequest request = make_random_request(make_fig4(n, 2), 0, 0, 1, 7);
    request.budget.crash_model = check::CrashModel::kIndependent;
    benchmark::DoNotOptimize(check::check(std::move(request)).clean);
  }
}

void BM_Fig4WithCrashes(benchmark::State& state) {
  const int crashes = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check::check(make_random_request(make_fig4(4, crashes + 3), crashes,
                                         crashes == 0 ? 0 : 80, 1, seed++))
            .clean);
  }
}

}  // namespace

BENCHMARK(BM_Fig4FullDecide)->DenseRange(2, 8);
BENCHMARK(BM_Fig4WithCrashes)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

int main(int argc, char** argv) {
  print_crash_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
