// Experiment E5 — Figure 5 / Proposition 19: the T_n family separates the
// hierarchies. Regenerates the transition diagram for T_6 and the sweep
// "T_n is n-discerning, (n-2)-recording, but not (n-1)-recording".
#include <benchmark/benchmark.h>

#include <iostream>

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "typesys/types/tn.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

void print_transition_diagram(int n) {
  typesys::TnType tn(n);
  const auto ops = tn.operations(n);
  std::cout << "--- T_" << n << " transition table (Figure 5) ---\n";
  for (const typesys::StateRepr& q : tn.initial_states(n)) {
    std::cout << tn.format_state(q) << ":";
    for (const typesys::Operation& op : ops) {
      const typesys::Transition t = tn.apply(q, op);
      const char* resp = t.response == typesys::TnType::kRespA ? "A" : "B";
      std::cout << "  " << op.name << "-> " << tn.format_state(t.next) << " (ret "
                << resp << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

void print_sweep() {
  util::Table table({"n", "n-discerning", "(n-1)-recording", "(n-2)-recording",
                     "cons(Tn)", "rcons(Tn) range"});
  for (int n = 4; n <= 8; ++n) {
    typesys::TnType tn(n);
    const bool disc_n = hierarchy::is_discerning(tn, n);
    const bool rec_n1 = hierarchy::is_recording(tn, n - 1);
    const bool rec_n2 = hierarchy::is_recording(tn, n - 2);
    table.add_row({std::to_string(n), disc_n ? "yes" : "NO",
                   rec_n1 ? "YES (unexpected)" : "no", rec_n2 ? "yes" : "NO",
                   std::to_string(n),
                   "[" + std::to_string(n - 2) + "," + std::to_string(n - 1) + "]"});
  }
  std::cout << "=== Proposition 19 sweep: rcons(Tn) < cons(Tn) = n ===\n\n";
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_TnDiscerningCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::TnType tn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_discerning(tn, n));
  }
}

void BM_TnNotRecordingCheck(benchmark::State& state) {
  // The exhaustive failure proof — the expensive direction.
  const int n = static_cast<int>(state.range(0));
  typesys::TnType tn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_recording(tn, n - 1));
  }
}

}  // namespace

BENCHMARK(BM_TnDiscerningCheck)->DenseRange(4, 8);
BENCHMARK(BM_TnNotRecordingCheck)->DenseRange(4, 8);

int main(int argc, char** argv) {
  print_transition_diagram(6);
  print_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
