// Experiment E1/E7/E8/E9 — the hierarchy table behind Figure 1.
//
// Prints, for every zoo type, the maximum n-discerning and n-recording levels
// the checkers find, the implied cons(T) (Theorem 3) and rcons(T) bounds
// (Theorems 8 + 14, Corollary 17), and where the numbers come from. Then
// benchmarks the level computations.
#include <benchmark/benchmark.h>

#include <iostream>

#include "hierarchy/levels.hpp"
#include "typesys/zoo.hpp"
#include "util/table.hpp"

namespace {

constexpr int kCap = 6;

std::string bound_str(int value) {
  return value == rcons::hierarchy::kUnboundedLevel ? "inf" : std::to_string(value);
}

void print_table() {
  using namespace rcons;
  util::Table table({"type", "readable", "max disc.", "max rec.", "cons",
                     "rcons range", "provenance"});
  for (const typesys::ZooEntry& entry : typesys::make_zoo(5)) {
    const hierarchy::Level disc = hierarchy::max_discerning_level(*entry.type, kCap);
    const hierarchy::Level rec = hierarchy::max_recording_level(*entry.type, kCap);
    std::string cons = "n/a";
    std::string rcons_range = "n/a";
    if (entry.type->readable()) {
      const hierarchy::HierarchyBounds b = hierarchy::bounds_for_readable(disc, rec);
      cons = bound_str(b.cons);
      rcons_range = "[" + bound_str(b.rcons_lo) + "," + bound_str(b.rcons_hi) + "]";
    }
    table.add_row({entry.type->name(), entry.type->readable() ? "yes" : "no",
                   disc.format(), rec.format(), cons, rcons_range, entry.provenance});
  }
  std::cout << "\n=== Hierarchy table (Figure 1 companion; cap=" << kCap << ") ===\n";
  std::cout << "cons from Theorem 3; rcons range from Theorems 8/14 + Corollary 17.\n";
  std::cout << "Non-readable types: characterizations do not apply (Appendix H).\n\n";
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_MaxDiscerningLevel(benchmark::State& state, const std::string& name) {
  auto type = rcons::typesys::make_type(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::hierarchy::max_discerning_level(*type, kCap));
  }
}

void BM_MaxRecordingLevel(benchmark::State& state, const std::string& name) {
  auto type = rcons::typesys::make_type(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::hierarchy::max_recording_level(*type, kCap));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_MaxDiscerningLevel, register, std::string("register"));
BENCHMARK_CAPTURE(BM_MaxDiscerningLevel, tas, std::string("test-and-set"));
BENCHMARK_CAPTURE(BM_MaxDiscerningLevel, cas, std::string("compare-and-swap"));
BENCHMARK_CAPTURE(BM_MaxDiscerningLevel, Tn5, std::string("Tn(5)"));
BENCHMARK_CAPTURE(BM_MaxDiscerningLevel, Sn5, std::string("Sn(5)"));
BENCHMARK_CAPTURE(BM_MaxRecordingLevel, register, std::string("register"));
BENCHMARK_CAPTURE(BM_MaxRecordingLevel, tas, std::string("test-and-set"));
BENCHMARK_CAPTURE(BM_MaxRecordingLevel, cas, std::string("compare-and-swap"));
BENCHMARK_CAPTURE(BM_MaxRecordingLevel, Tn5, std::string("Tn(5)"));
BENCHMARK_CAPTURE(BM_MaxRecordingLevel, Sn5, std::string("Sn(5)"));

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
