// Experiment E12 — methodological: the cost of deciding the paper's
// properties. Positive verdicts (witness exists) are found via the heuristic
// pre-pass; negative verdicts require the exhaustive multiset enumeration and
// dominate. Also benchmarks the model-checking facade (check::check with
// Strategy::kAuto) on the Figure 2 algorithm, the repository's most expensive
// verification, and writes the facade timings machine-readably to
// BENCH_checker.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <ctime>
#include <fstream>
#include <iostream>
#include <thread>

#include "check/check.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/types/sn.hpp"
#include "typesys/types/tn.hpp"
#include "typesys/zoo.hpp"
#include "util/json.hpp"

namespace {

using namespace rcons;

check::CheckRequest make_team_request(int crash_budget) {
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(3)");
  rc::TeamConsensusSystem system = rc::make_team_consensus_system(*type, 3, 1, 2);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {1, 2};
  request.budget.crash_budget = crash_budget;
  request.strategy = check::Strategy::kAuto;
  return request;
}

void BM_PositiveRecording(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::SnType sn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_recording(sn, n));
  }
}

void BM_NegativeRecording(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::SnType sn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_recording(sn, n + 1));
  }
}

void BM_NegativeDiscerning(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::TnType tn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_discerning(tn, n + 1));
  }
}

void BM_CheckTeamConsensus(benchmark::State& state) {
  const int crash_budget = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const check::CheckReport report = check::check(make_team_request(crash_budget));
    benchmark::DoNotOptimize(report.clean);
    state.counters["states"] = static_cast<double>(report.stats.visited);
  }
}

// UTC wall-clock for the JSON rows: comparing artifacts from different
// machines/runs needs to know *when* and on *how many cores* each was made.
std::string iso8601_now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

// The facade path timed once per budget, written to BENCH_checker.json so the
// perf trajectory accumulates without parsing benchmark text output. Every row
// carries hardware_concurrency + wall_clock so artifacts produced on small CI
// runners are detectable after the fact.
void write_checker_json() {
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::ofstream json_file("BENCH_checker.json");
  util::JsonWriter json(json_file);
  json.begin_object();
  json.key_value("bench", "checker");
  json.key_value("hardware_concurrency", static_cast<std::int64_t>(hardware_threads));
  json.key_value("wall_clock", iso8601_now());
  json.key("rows");
  json.begin_array();
  for (int crash_budget = 0; crash_budget <= 3; ++crash_budget) {
    const check::CheckReport report = check::check(make_team_request(crash_budget));
    json.begin_object();
    json.key_value("type", "Sn(3)");
    json.key_value("n", 3);
    json.key_value("crash_budget", crash_budget);
    json.key_value("strategy", check::strategy_name(report.strategy));
    json.key_value("verdict", report.clean ? "clean" : "violation");
    json.key_value("visited", report.stats.visited);
    json.key_value("seconds", report.seconds);
    json.key_value("hardware_concurrency",
                   static_cast<std::int64_t>(hardware_threads));
    json.key_value("wall_clock", iso8601_now());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file << "\n";
}

}  // namespace

BENCHMARK(BM_PositiveRecording)->DenseRange(2, 8);
BENCHMARK(BM_NegativeRecording)->DenseRange(2, 8);
BENCHMARK(BM_NegativeDiscerning)->DenseRange(4, 8);
BENCHMARK(BM_CheckTeamConsensus)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::cout << "=== E12: decision-procedure cost ===\n"
            << "Positive checks short-circuit via the heuristic pre-pass;\n"
            << "negative checks pay for exhaustive enumeration; facade cost\n"
            << "grows with the crash budget.\n\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_checker_json();
  std::cout << "\nMachine-readable facade timings: BENCH_checker.json\n";
  return 0;
}
