// Experiment E12 — methodological: the cost of deciding the paper's
// properties. Positive verdicts (witness exists) are found via the heuristic
// pre-pass; negative verdicts require the exhaustive multiset enumeration and
// dominate. Also benchmarks the model-checking explorer on the Figure 2
// algorithm, the repository's most expensive verification.
#include <benchmark/benchmark.h>

#include <iostream>

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "rc/team_consensus.hpp"
#include "sim/explorer.hpp"
#include "typesys/types/sn.hpp"
#include "typesys/types/tn.hpp"
#include "typesys/zoo.hpp"

namespace {

using namespace rcons;

void BM_PositiveRecording(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::SnType sn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_recording(sn, n));
  }
}

void BM_NegativeRecording(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::SnType sn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_recording(sn, n + 1));
  }
}

void BM_NegativeDiscerning(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  typesys::TnType tn(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy::is_discerning(tn, n + 1));
  }
}

void BM_ExplorerTeamConsensus(benchmark::State& state) {
  const int crash_budget = static_cast<int>(state.range(0));
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(3)");
  for (auto _ : state) {
    rc::TeamConsensusSystem system = rc::make_team_consensus_system(*type, 3, 1, 2);
    sim::ExplorerConfig config;
    config.crash_budget = crash_budget;
    config.valid_outputs = {1, 2};
    sim::Explorer explorer(std::move(system.memory), std::move(system.processes),
                           config);
    benchmark::DoNotOptimize(explorer.run());
    state.counters["states"] = static_cast<double>(explorer.stats().visited);
  }
}

}  // namespace

BENCHMARK(BM_PositiveRecording)->DenseRange(2, 8);
BENCHMARK(BM_NegativeRecording)->DenseRange(2, 8);
BENCHMARK(BM_NegativeDiscerning)->DenseRange(4, 8);
BENCHMARK(BM_ExplorerTeamConsensus)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::cout << "=== E12: decision-procedure cost ===\n"
            << "Positive checks short-circuit via the heuristic pre-pass;\n"
            << "negative checks pay for exhaustive enumeration; explorer cost\n"
            << "grows with the crash budget.\n\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
