#!/usr/bin/env python3
"""Non-gating throughput guard for bench_parallel_engine results.

Compares a freshly produced BENCH_parallel_engine.json against the checked-in
baseline, row by row, and emits a GitHub Actions `::warning::` annotation for
every row whose states/s dropped by more than the threshold. Rows are matched
on (instance, config, threads) so a run is only ever judged against a
baseline with the same thread count; oversubscribed rows (threads > cores)
are skipped on either side — they measure scheduler thrash, not the engine.

Always exits 0: shared CI runners are far too noisy for a hard gate, the
point is a visible annotation on the PR, not a red X. A baseline produced on
a machine with a different core count still compares at matching thread
counts, but the mismatch is called out so readers can discount the numbers.

Usage: perf_guard.py BASELINE.json CURRENT.json [--threshold 0.25]
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return data


def row_key(row):
    return (row.get("instance"), row.get("config"), row.get("threads"))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional states/s drop that triggers a warning (default 0.25)",
    )
    args = parser.parse_args()

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, json.JSONDecodeError) as error:
        # A missing or malformed artifact must not break the build — the
        # bench's own verdict-consistency exit code is the gating check.
        print(f"perf_guard: skipping comparison ({error})")
        return 0

    base_hw = baseline.get("hardware_concurrency")
    cur_hw = current.get("hardware_concurrency")
    if base_hw != cur_hw:
        print(
            f"perf_guard: baseline ran on {base_hw} core(s), this run on "
            f"{cur_hw}; comparing matching thread counts only — discount "
            "absolute numbers accordingly."
        )

    by_key = {row_key(row): row for row in baseline.get("rows", [])}
    compared = 0
    regressions = 0
    for row in current.get("rows", []):
        base = by_key.get(row_key(row))
        if base is None:
            continue
        if row.get("oversubscribed") or base.get("oversubscribed"):
            continue
        base_rate = base.get("states_per_sec", 0.0)
        cur_rate = row.get("states_per_sec", 0.0)
        if base_rate <= 0.0:
            continue
        compared += 1
        ratio = cur_rate / base_rate
        label = f"{row.get('instance')} [{row.get('config')}]"
        if ratio < 1.0 - args.threshold:
            regressions += 1
            print(
                f"::warning title=bench regression::{label}: "
                f"{cur_rate:,.0f} states/s vs baseline {base_rate:,.0f} "
                f"({(1.0 - ratio) * 100.0:.1f}% slower)"
            )
        else:
            print(f"perf_guard: {label}: {ratio:.2f}x of baseline ok")

    print(
        f"perf_guard: {compared} row(s) compared, {regressions} regression(s) "
        f"beyond {args.threshold * 100.0:.0f}% (non-gating)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
