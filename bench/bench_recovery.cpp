// Crash-rate sensitivity sweep: how decide latency of the full recoverable
// consensus stack degrades as the per-access crash probability rises. The
// paper proves safety is unconditional; this measures the liveness-side cost
// (re-runs) that recoverable wait-freedom permits.
#include <benchmark/benchmark.h>

#include <iostream>

#include "runtime/harness.hpp"
#include "runtime/recoverable.hpp"
#include "typesys/types/rmw.hpp"
#include "typesys/types/sn.hpp"
#include "util/table.hpp"

namespace {

using namespace rcons;

void print_retry_sweep() {
  typesys::SnType sn(4);
  util::Table table({"crash rate (/1000 accesses)", "avg crashes per decide-round",
                     "agreement violations (of 200 rounds)"});
  for (const int rate : {0, 25, 100, 250, 500}) {
    runtime::RTournament tournament(sn, 4, 4);
    long crashes = 0;
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
      tournament.reset();
      const runtime::HarnessReport report = runtime::run_crashy_workers(
          4,
          [&](int role, runtime::CrashInjector& crash) {
            return tournament.decide(role, role + 1, crash);
          },
          seed, rate, /*max_crashes_per_worker=*/10);
      crashes += report.total_crashes;
      violations += report.agreement ? 0 : 1;
    }
    table.add_row({std::to_string(rate), std::to_string(crashes / 200.0).substr(0, 5),
                   std::to_string(violations)});
  }
  std::cout << "=== Recovery sweep: tournament (Sn(4), 4 threads) vs crash rate ===\n"
            << "Safety holds at every rate (0 violations); crashes only cost "
               "re-runs.\n\n";
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_TournamentUnderCrashRate(benchmark::State& state) {
  const int rate = static_cast<int>(state.range(0));
  typesys::SnType sn(4);
  runtime::RTournament tournament(sn, 4, 4);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    tournament.reset();
    const runtime::HarnessReport report = runtime::run_crashy_workers(
        4,
        [&](int role, runtime::CrashInjector& crash) {
          return tournament.decide(role, role + 1, crash);
        },
        seed++, rate, /*max_crashes_per_worker=*/10);
    benchmark::DoNotOptimize(report.total_crashes);
  }
}

void BM_RaceUnderCrashRate(benchmark::State& state) {
  const int rate = static_cast<int>(state.range(0));
  runtime::RRaceConsensus race;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    race.reset();
    const runtime::HarnessReport report = runtime::run_crashy_workers(
        4,
        [&](int role, runtime::CrashInjector& crash) {
          return race.decide(role + 1, crash);
        },
        seed++, rate, /*max_crashes_per_worker=*/10);
    benchmark::DoNotOptimize(report.total_crashes);
  }
}

}  // namespace

BENCHMARK(BM_TournamentUnderCrashRate)->Arg(0)->Arg(50)->Arg(200)->Arg(500)
    ->Unit(benchmark::kMicrosecond)->Iterations(300)->UseRealTime();
BENCHMARK(BM_RaceUnderCrashRate)->Arg(0)->Arg(200)->Arg(500)
    ->Unit(benchmark::kMicrosecond)->Iterations(300)->UseRealTime();

int main(int argc, char** argv) {
  print_retry_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
