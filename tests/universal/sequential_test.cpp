// Single-process conformance of the universal construction: implemented
// objects must behave exactly like their sequential specification.
#include "universal/universal.hpp"

#include <gtest/gtest.h>

#include "support/helpers.hpp"
#include "typesys/types/containers.hpp"
#include "typesys/types/register.hpp"
#include "typesys/types/rmw.hpp"
#include "typesys/zoo.hpp"

namespace rcons::universal {
namespace {

std::shared_ptr<const nvram::ClosedTable> table_for(const typesys::ObjectType& type,
                                                    int n) {
  auto cache = std::make_shared<typesys::TransitionCache>(type, n);
  return nvram::ClosedTable::build(cache);
}

TEST(UniversalSequentialTest, ImplementsTestAndSet) {
  typesys::TestAndSetType tas;
  auto table = table_for(tas, 2);
  auto cache_q0 = table->cache().initial_states().front();
  Universal universal(table, cache_q0, 2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  EXPECT_EQ(universal.invoke(0, 0, none).response, 0);
  EXPECT_EQ(universal.invoke(0, 0, none).response, 1);
  EXPECT_EQ(universal.invoke(1, 0, none).response, 1);
}

TEST(UniversalSequentialTest, ImplementsBoundedQueueFifo) {
  typesys::QueueType queue(/*readable=*/true, /*capacity=*/8);
  auto cache = std::make_shared<typesys::TransitionCache>(queue, 3);
  const typesys::StateId empty = cache->intern({});
  auto table = nvram::ClosedTable::build(cache, /*max_states=*/100'000);
  Universal universal(table, empty, 2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  // Candidate ops: Enqueue(1), Enqueue(2), Enqueue(3), Dequeue.
  universal.invoke(0, 0, none);  // Enqueue(1)
  universal.invoke(0, 1, none);  // Enqueue(2)
  EXPECT_EQ(universal.invoke(1, 3, none).response, 1);  // Dequeue → 1 (FIFO)
  EXPECT_EQ(universal.invoke(1, 3, none).response, 2);
  EXPECT_EQ(universal.invoke(1, 3, none).response, typesys::kBottom);
}

TEST(UniversalSequentialTest, ListOrderMatchesInvocationOrder) {
  typesys::FetchAndIncrementType fai(64);
  auto cache = std::make_shared<typesys::TransitionCache>(fai, 2);
  const typesys::StateId zero = cache->intern({0});
  auto table = nvram::ClosedTable::build(cache);
  Universal universal(table, zero, 2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(universal.invoke(0, 0, none).response, i);
  }
  const std::vector<int> order = universal.list_order();
  EXPECT_EQ(order.size(), 5u);
  long seq = 2;  // dummy is 1
  for (const int node : order) {
    EXPECT_EQ(universal.node_info(node).seq, seq++);
  }
}

TEST(UniversalSequentialTest, RecoverAfterCrashCompletesAnnouncedOp) {
  typesys::FetchAndIncrementType fai(64);
  auto cache = std::make_shared<typesys::TransitionCache>(fai, 2);
  const typesys::StateId zero = cache->intern({0});
  auto table = nvram::ClosedTable::build(cache);
  Universal universal(table, zero, 2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  universal.invoke(0, 0, none);  // response 0

  // Crash at every possible point of the next invocation; recovery must
  // yield a consistent world: the op executed iff it was announced
  // (detectability, via the NRL property of Section 4).
  typesys::Value expected_next = 1;
  for (int crash_at = 1; crash_at <= 12; ++crash_at) {
    const int before = universal.last_announced(0);
    const long ops_before = static_cast<long>(universal.list_order().size());
    runtime::CrashInjector exact = runtime::CrashInjector::at(crash_at);
    bool crashed = false;
    typesys::Value response = -1;
    try {
      response = universal.invoke(0, 0, exact).response;
    } catch (const runtime::CrashException&) {
      crashed = true;
    }
    runtime::CrashInjector clean = runtime::CrashInjector::none();
    if (!crashed) {
      EXPECT_EQ(response, expected_next);
      expected_next += 1;
    } else if (universal.last_announced(0) != before) {
      // Announced: recovery must complete it with the next counter value.
      const Universal::Completion completion = universal.recover(0, clean);
      EXPECT_EQ(universal.last_announced(0), completion.node);
      EXPECT_EQ(completion.response, expected_next);
      expected_next += 1;
    } else {
      // Not announced: the op never happened.
      EXPECT_EQ(static_cast<long>(universal.list_order().size()), ops_before);
    }
  }
}

TEST(UniversalSequentialTest, NodeInfoConformsAfterManyOps) {
  typesys::RegisterType reg;
  auto cache = std::make_shared<typesys::TransitionCache>(reg, 3);
  const typesys::StateId bottom = cache->intern({typesys::kBottom});
  auto table = nvram::ClosedTable::build(cache);
  Universal universal(table, bottom, 3);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  universal.invoke(0, 0, none);  // Write(1)
  universal.invoke(1, 1, none);  // Write(2)
  universal.invoke(2, 2, none);  // Write(3)
  const auto order = universal.list_order();
  ASSERT_EQ(order.size(), 3u);
  // Final state must be the last write in list order.
  const auto last = universal.node_info(order.back());
  const auto& final_state = table->cache().repr(last.new_state);
  EXPECT_EQ(final_state.size(), 1u);
  EXPECT_GT(final_state[0], 0);
}

}  // namespace
}  // namespace rcons::universal
