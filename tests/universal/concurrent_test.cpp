// Concurrent linearizability of the universal construction, with and without
// crash injection, certified via the construction's own linearization
// certificate (see certify.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "typesys/types/rmw.hpp"
#include "universal/certify.hpp"
#include "universal/universal.hpp"

namespace rcons::universal {
namespace {

struct WorkerResult {
  std::vector<OpRecord> records;
};

// Runs `n` worker threads, each performing `ops` F&I operations with crash
// injection, using the detectable-recovery protocol from Section 4.
std::vector<OpRecord> run_workload(Universal& universal, int n, int ops,
                                   std::uint64_t seed, int crash_per_mille) {
  std::atomic<long> clock{0};
  std::vector<WorkerResult> results(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  for (int p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      runtime::CrashInjector injector(seed + static_cast<std::uint64_t>(p) * 7919,
                                      crash_per_mille, /*max_crashes=*/4 * ops);
      for (int i = 0; i < ops; ++i) {
        OpRecord record;
        record.process = p;
        record.invoke_ts = clock.fetch_add(1, std::memory_order_seq_cst);
        const int before = universal.last_announced(p);
        for (;;) {
          try {
            const Universal::Completion completion = universal.invoke(p, 0, injector);
            record.node = completion.node;
            record.response = completion.response;
            record.completed = true;
            break;
          } catch (const runtime::CrashException&) {
            if (universal.last_announced(p) != before) {
              // Announced: recovery finishes it (retrying recovery itself on
              // further crashes; the shared injector budget guarantees
              // termination).
              for (;;) {
                try {
                  const Universal::Completion completion = universal.recover(p, injector);
                  record.node = completion.node;
                  record.response = completion.response;
                  record.completed = true;
                  break;
                } catch (const runtime::CrashException&) {
                }
              }
              break;
            }
            // Not announced: simply re-invoke (the op never took effect).
          }
        }
        record.return_ts = clock.fetch_add(1, std::memory_order_seq_cst);
        results[static_cast<std::size_t>(p)].records.push_back(record);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<OpRecord> all;
  for (const WorkerResult& result : results) {
    all.insert(all.end(), result.records.begin(), result.records.end());
  }
  return all;
}

Universal make_counter_universal(int n, int capacity_ops) {
  auto cache = std::make_shared<typesys::TransitionCache>(
      std::make_shared<const typesys::FetchAndIncrementType>(capacity_ops + 2), n);
  const typesys::StateId zero = cache->intern({0});
  auto table =
      nvram::ClosedTable::build(cache, static_cast<std::size_t>(capacity_ops) + 16);
  return Universal(table, zero, n);
}

TEST(UniversalConcurrentTest, LinearizableWithoutCrashes) {
  const int n = 4, ops = 120;
  Universal universal = make_counter_universal(n, n * ops);
  const auto records = run_workload(universal, n, ops, /*seed=*/3, /*crash=*/0);
  const CertResult cert = certify_history(universal, records);
  EXPECT_TRUE(cert.ok) << cert.error;
  EXPECT_EQ(cert.list_length, static_cast<std::size_t>(n * ops));
}

TEST(UniversalConcurrentTest, LinearizableUnderCrashStorm) {
  const int n = 4, ops = 60;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Universal universal = make_counter_universal(n, n * ops);
    const auto records = run_workload(universal, n, ops, seed, /*crash=*/60);
    const CertResult cert = certify_history(universal, records);
    EXPECT_TRUE(cert.ok) << "seed " << seed << ": " << cert.error;
    // Every completed op is on the list; crashes may leave extra helped-in
    // nodes but never lose a completed one.
    EXPECT_GE(cert.list_length, static_cast<std::size_t>(n) * 1u);
  }
}

TEST(UniversalConcurrentTest, ResponsesAreUniqueForCounter) {
  // F&I through the universal construction: all completed responses distinct
  // (the linearization gives each op a unique predecessor count).
  const int n = 3, ops = 100;
  Universal universal = make_counter_universal(n, n * ops);
  const auto records = run_workload(universal, n, ops, /*seed=*/11, /*crash=*/40);
  std::vector<bool> seen(static_cast<std::size_t>(n * ops) + 8, false);
  for (const OpRecord& record : records) {
    if (!record.completed) continue;
    ASSERT_GE(record.response, 0);
    ASSERT_LT(record.response, static_cast<typesys::Value>(seen.size()));
    EXPECT_FALSE(seen[static_cast<std::size_t>(record.response)])
        << "duplicate response " << record.response;
    seen[static_cast<std::size_t>(record.response)] = true;
  }
}

TEST(UniversalConcurrentTest, HelpingEnsuresProgressForSlowProcess) {
  // A process that announces and then stalls is helped: its node is appended
  // by others (wait-freedom of Figure 7's round-robin priority).
  const int n = 2;
  Universal universal = make_counter_universal(n, 64);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  // p0 announces but crashes immediately after the announce (crash point 3 is
  // right after the announce store; points 1,2 are before/at node prep).
  runtime::CrashInjector after_announce = runtime::CrashInjector::at(3);
  bool crashed = false;
  try {
    universal.invoke(0, 0, after_announce);
  } catch (const runtime::CrashException&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  ASSERT_NE(universal.last_announced(0), 0);  // announce happened
  // p1 performs operations; the round-robin priority must append p0's node.
  for (int i = 0; i < 4; ++i) universal.invoke(1, 0, none);
  bool p0_node_on_list = false;
  for (const int node : universal.list_order()) {
    p0_node_on_list = p0_node_on_list || node == universal.last_announced(0);
  }
  EXPECT_TRUE(p0_node_on_list);
  // And p0's recovery returns its persisted response.
  const Universal::Completion completion = universal.recover(0, none);
  EXPECT_EQ(completion.node, universal.last_announced(0));
}

}  // namespace
}  // namespace rcons::universal
