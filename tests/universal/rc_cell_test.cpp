#include "universal/rc_cell.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rcons::universal {
namespace {

TEST(RcCellTest, FirstProposalWins) {
  RcCell cell;
  EXPECT_EQ(cell.peek(), typesys::kBottom);
  EXPECT_EQ(cell.decide(5), 5);
  EXPECT_EQ(cell.decide(9), 5);
  EXPECT_EQ(cell.peek(), 5);
}

TEST(RcCellTest, IdempotentAcrossReRuns) {
  RcCell cell;
  const typesys::Value first = cell.decide(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cell.decide(3), first);  // same process re-running after crashes
  }
}

TEST(RcCellTest, ConcurrentRacersAgree) {
  for (int round = 0; round < 50; ++round) {
    RcCell cell;
    constexpr int kThreads = 8;
    std::vector<typesys::Value> outcomes(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        outcomes[static_cast<std::size_t>(t)] = cell.decide(100 + t);
      });
    }
    for (auto& thread : threads) thread.join();
    for (const typesys::Value outcome : outcomes) {
      EXPECT_EQ(outcome, outcomes.front());
      EXPECT_GE(outcome, 100);
      EXPECT_LT(outcome, 100 + kThreads);
    }
  }
}

}  // namespace
}  // namespace rcons::universal
