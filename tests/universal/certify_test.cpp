// The certifier must reject corrupted histories — otherwise the green
// concurrent tests prove nothing.
#include "universal/certify.hpp"

#include <gtest/gtest.h>

#include "typesys/types/rmw.hpp"
#include "universal/universal.hpp"

namespace rcons::universal {
namespace {

Universal make_counter(int n) {
  auto cache = std::make_shared<typesys::TransitionCache>(
      std::make_shared<const typesys::FetchAndIncrementType>(128), n);
  const typesys::StateId zero = cache->intern({0});
  auto table = nvram::ClosedTable::build(cache);
  return Universal(table, zero, n);
}

TEST(CertifyTest, AcceptsHonestHistory) {
  Universal universal = make_counter(2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  std::vector<OpRecord> records;
  long clock = 0;
  for (int i = 0; i < 6; ++i) {
    OpRecord record;
    record.process = 0;
    record.invoke_ts = clock++;
    const Universal::Completion completion = universal.invoke(0, 0, none);
    record.node = completion.node;
    record.response = completion.response;
    record.return_ts = clock++;
    record.completed = true;
    records.push_back(record);
  }
  const CertResult cert = certify_history(universal, records);
  EXPECT_TRUE(cert.ok) << cert.error;
  EXPECT_EQ(cert.list_length, 6u);
}

TEST(CertifyTest, RejectsResponseMismatch) {
  Universal universal = make_counter(2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  const Universal::Completion completion = universal.invoke(0, 0, none);
  OpRecord record;
  record.node = completion.node;
  record.response = completion.response + 1;  // lie about what we observed
  record.completed = true;
  record.invoke_ts = 0;
  record.return_ts = 1;
  const CertResult cert = certify_history(universal, {record});
  EXPECT_FALSE(cert.ok);
  EXPECT_NE(cert.error.find("response mismatch"), std::string::npos);
}

TEST(CertifyTest, RejectsMissingCompletedOp) {
  Universal universal = make_counter(2);
  OpRecord record;
  record.node = 12345;  // never appended
  record.completed = true;
  const CertResult cert = certify_history(universal, {record});
  EXPECT_FALSE(cert.ok);
  EXPECT_NE(cert.error.find("missing from the list"), std::string::npos);
}

TEST(CertifyTest, RejectsRealTimeInversion) {
  Universal universal = make_counter(2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  const Universal::Completion first = universal.invoke(0, 0, none);
  const Universal::Completion second = universal.invoke(0, 0, none);
  // Claim the SECOND-linearized op finished before the first was invoked.
  OpRecord a;
  a.node = first.node;
  a.response = first.response;
  a.completed = true;
  a.invoke_ts = 10;
  a.return_ts = 11;
  OpRecord b;
  b.node = second.node;
  b.response = second.response;
  b.completed = true;
  b.invoke_ts = 0;
  b.return_ts = 1;  // returned before a was invoked, yet linearized later
  const CertResult cert = certify_history(universal, {a, b});
  EXPECT_FALSE(cert.ok);
  EXPECT_NE(cert.error.find("real-time"), std::string::npos);
}

TEST(CertifyTest, RejectsDoubleCompletion) {
  Universal universal = make_counter(2);
  runtime::CrashInjector none = runtime::CrashInjector::none();
  const Universal::Completion completion = universal.invoke(0, 0, none);
  OpRecord record;
  record.node = completion.node;
  record.response = completion.response;
  record.completed = true;
  const CertResult cert = certify_history(universal, {record, record});
  EXPECT_FALSE(cert.ok);
  EXPECT_NE(cert.error.find("two invocations"), std::string::npos);
}

TEST(CertifyTest, IncompleteRecordsAreUnconstrained) {
  Universal universal = make_counter(2);
  OpRecord record;
  record.completed = false;
  record.node = 999;  // nonsense is fine for incomplete ops
  const CertResult cert = certify_history(universal, {record});
  EXPECT_TRUE(cert.ok) << cert.error;
}

}  // namespace
}  // namespace rcons::universal
