// End-to-end CLI contract, driven against the real check_cli binary (path
// injected as RCONS_CHECK_CLI by CMake):
//
//   exit 0  every scenario clean
//   exit 1  at least one property violation (dominates truncation)
//   exit 2  invalid input — bad flags, bad spec, unusable checkpoint
//   exit 3  at least one scenario truncated (budget/sentinel), none violating
//
// plus the headline robustness story: the process dies mid-run (fault
// injection stands in for SIGKILL), the durable checkpoint survives, and
// --resume finishes with the same visited count and verdict as an
// uninterrupted run.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "rcons_cli_" + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

// Runs check_cli with `args`, capturing combined output. std::system goes
// through the shell, so exit codes come back WEXITSTATUS-encoded.
RunResult run_cli(const std::string& args, const std::string& tag) {
  const std::string out_path = temp_path("out_" + tag + ".txt");
  const std::string command =
      std::string(RCONS_CHECK_CLI) + " " + args + " > " + out_path + " 2>&1";
  const int raw = std::system(command.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  result.output = text.str();
  std::remove(out_path.c_str());
  return result;
}

TEST(CliExitCodeTest, CleanRunExitsZero) {
  const std::string spec = temp_path("clean.spec");
  write_file(spec, "type=Sn(2) n=2 model=independent budget=2\n");
  const RunResult result = run_cli(spec + " --strategy=bfs --threads=2", "clean");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("clean"), std::string::npos);
}

TEST(CliExitCodeTest, ViolationExitsOne) {
  const std::string spec = temp_path("viol.spec");
  write_file(spec, "type=register n=2 budget=0 algo=naive-register\n");
  const RunResult result = run_cli(spec + " --strategy=bfs --threads=2", "viol");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("VIOLATION"), std::string::npos);
}

TEST(CliExitCodeTest, InvalidInputExitsTwo) {
  const std::string bad_spec = temp_path("bad.spec");
  write_file(bad_spec, "type=NoSuchType n=2\n");
  EXPECT_EQ(run_cli(bad_spec, "badspec").exit_code, 2);
  EXPECT_EQ(run_cli("--no-such-flag", "badflag").exit_code, 2);
  const std::string spec = temp_path("ok.spec");
  write_file(spec, "type=Sn(2) n=2 budget=2\n");
  EXPECT_EQ(
      run_cli(spec + " --strategy=bfs --resume=" + temp_path("absent.ckpt"),
              "absent")
          .exit_code,
      2);
  EXPECT_EQ(run_cli(spec + " --fault-inject=explode@batch=1", "badfault").exit_code,
            2);
  EXPECT_EQ(run_cli(spec + " --checkpoint-every=10", "everynoout").exit_code, 2);
}

TEST(CliExitCodeTest, TruncationExitsThree) {
  const std::string spec = temp_path("trunc.spec");
  write_file(spec, "type=Sn(3) n=3 budget=2 max_visited=100\n");
  const RunResult result = run_cli(spec + " --strategy=bfs --threads=2", "trunc");
  EXPECT_EQ(result.exit_code, 3) << result.output;
  EXPECT_NE(result.output.find("TRUNCATED(visited-cap)"), std::string::npos)
      << result.output;
}

TEST(CliExitCodeTest, ViolationDominatesTruncation) {
  // One violating scenario + one truncated scenario in the same file: the
  // exit code reports the violation.
  const std::string spec = temp_path("both.spec");
  write_file(spec,
             "type=register n=2 budget=0 algo=naive-register\n"
             "type=Sn(3) n=3 budget=2 max_visited=100\n");
  const RunResult result = run_cli(spec + " --strategy=bfs --threads=2", "both");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("VIOLATION"), std::string::npos);
  EXPECT_NE(result.output.find("TRUNCATED"), std::string::npos);
}

TEST(CliExitCodeTest, TimeLimitTruncationIsTypedInTheVerdictTable) {
  const std::string spec = temp_path("deadline.spec");
  write_file(spec, "type=Sn(4) n=4 budget=2 time_limit=1\n");
  const RunResult result = run_cli(
      spec + " --strategy=bfs --threads=2 --sentinel-interval-ms=1", "deadline");
  EXPECT_EQ(result.exit_code, 3) << result.output;
  EXPECT_NE(result.output.find("TRUNCATED(deadline)"), std::string::npos)
      << result.output;
}

std::string visited_of(const std::string& table_output) {
  // The verdict table row: | scenario | strategy | verdict | visited | ...
  // One scenario → one data row; grab column 4 of the last data row.
  std::istringstream lines(table_output);
  std::string line, last;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '|' && line.find("visited") == std::string::npos &&
        line.find("---") == std::string::npos) {
      last = line;
    }
  }
  std::istringstream cells(last);
  std::string cell;
  int column = 0;
  while (std::getline(cells, cell, '|')) {
    if (++column == 5) {  // leading empty cell, then scenario/strategy/verdict
      const std::size_t begin = cell.find_first_not_of(' ');
      const std::size_t end = cell.find_last_not_of(' ');
      return begin == std::string::npos ? "" : cell.substr(begin, end - begin + 1);
    }
  }
  return "";
}

TEST(CliExitCodeTest, KillAndResumeReproducesVisitedAndVerdict) {
  const std::string spec = temp_path("kill.spec");
  write_file(spec, "type=Sn(4) n=4 model=independent budget=1\n");
  const std::string ckpt = temp_path("kill.ckpt");
  std::remove(ckpt.c_str());

  // Ground truth from an uninterrupted run.
  const RunResult full =
      run_cli(spec + " --strategy=bfs --threads=4", "kill_full");
  ASSERT_EQ(full.exit_code, 0) << full.output;
  const std::string expected_visited = visited_of(full.output);
  ASSERT_FALSE(expected_visited.empty()) << full.output;

  // Die mid-run (the in-tree stand-in for SIGKILL: same "no cleanup runs"
  // semantics), with frequent periodic checkpoints. The death itself is
  // deterministic in the hit-count domain, but whether the monitor's periodic
  // write lands before it is scheduling-dependent — so retry a few times
  // until a checkpoint survives a death.
  bool died_with_checkpoint = false;
  for (int attempt = 0; attempt < 5 && !died_with_checkpoint; ++attempt) {
    std::remove(ckpt.c_str());
    const RunResult killed = run_cli(
        spec + " --strategy=bfs --threads=4 --checkpoint-out=" + ckpt +
            " --checkpoint-every=1000 --sentinel-interval-ms=1 "
            "--fault-inject=die@batch=500",
        "kill_die");
    ASSERT_EQ(killed.exit_code, 137) << killed.output;
    died_with_checkpoint = std::ifstream(ckpt).good();
  }
  ASSERT_TRUE(died_with_checkpoint)
      << "no durable checkpoint survived any of 5 deaths";

  // Resume: byte-identical visited count, same clean verdict.
  const RunResult resumed = run_cli(
      spec + " --strategy=bfs --threads=4 --resume=" + ckpt, "kill_resume");
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_EQ(visited_of(resumed.output), expected_visited) << resumed.output;
  EXPECT_NE(resumed.output.find("clean"), std::string::npos);
  std::remove(ckpt.c_str());
}

TEST(CliExitCodeTest, CorruptCheckpointIsRejectedUnlessFreshFallback) {
  const std::string spec = temp_path("corrupt.spec");
  write_file(spec, "type=Sn(2) n=2 budget=2\n");
  const std::string ckpt = temp_path("corrupt.ckpt");
  const RunResult seeded = run_cli(
      spec + " --strategy=bfs --threads=2 --checkpoint-out=" + ckpt, "corrupt_seed");
  ASSERT_EQ(seeded.exit_code, 0) << seeded.output;

  // Flip a byte in the middle of the file.
  {
    std::fstream file(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, 64);
    file.seekg(size / 2);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  const RunResult rejected = run_cli(
      spec + " --strategy=bfs --threads=2 --resume=" + ckpt, "corrupt_resume");
  EXPECT_EQ(rejected.exit_code, 2) << rejected.output;
  EXPECT_NE(rejected.output.find("CRC"), std::string::npos) << rejected.output;

  // --resume-or-fresh downgrades the corrupt checkpoint to a warning and a
  // fresh (clean, exit 0) run.
  const RunResult fresh = run_cli(
      spec + " --strategy=bfs --threads=2 --resume-or-fresh=" + ckpt,
      "corrupt_fresh");
  EXPECT_EQ(fresh.exit_code, 0) << fresh.output;
  EXPECT_NE(fresh.output.find("starting fresh"), std::string::npos) << fresh.output;
  std::remove(ckpt.c_str());
}

TEST(CliExitCodeTest, ResumeRejectsACheckpointFromAnotherScenario) {
  const std::string spec_a = temp_path("scen_a.spec");
  const std::string spec_b = temp_path("scen_b.spec");
  write_file(spec_a, "type=Sn(2) n=2 budget=2\n");
  write_file(spec_b, "type=Sn(2) n=2 budget=3\n");
  const std::string ckpt = temp_path("scen.ckpt");
  ASSERT_EQ(run_cli(spec_a + " --strategy=bfs --checkpoint-out=" + ckpt, "scen_seed")
                .exit_code,
            0);
  const RunResult result =
      run_cli(spec_b + " --strategy=bfs --resume=" + ckpt, "scen_cross");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("different scenario"), std::string::npos)
      << result.output;
  std::remove(ckpt.c_str());
}

}  // namespace
