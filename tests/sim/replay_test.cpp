#include "sim/replay.hpp"

#include <gtest/gtest.h>

namespace rcons::sim {
namespace {

struct WriteThenReadProgram {
  RegId reg = 0;
  typesys::Value input = 0;
  int pc = 0;
  StepResult step(Memory& memory) {
    if (pc == 0) {
      memory.write(reg, input);
      pc = 1;
      return StepResult::running();
    }
    return StepResult::decided(memory.read(reg));
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(pc); }
};

TEST(ReplayTest, RunsScriptedSchedule) {
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(WriteThenReadProgram{reg, 1, 0});
  processes.emplace_back(WriteThenReadProgram{reg, 2, 0});
  // p0 writes, p1 writes, p0 reads (sees 2), p1 reads (sees 2): agreement.
  const auto report = replay(std::move(memory), std::move(processes),
                             {ScheduleEvent::step(0), ScheduleEvent::step(1),
                              ScheduleEvent::step(0), ScheduleEvent::step(1)});
  EXPECT_FALSE(report.violation.has_value());
  ASSERT_TRUE(report.decisions[0].has_value());
  EXPECT_EQ(*report.decisions[0], 2);
  EXPECT_EQ(*report.decisions[1], 2);
}

TEST(ReplayTest, DetectsScriptedAgreementViolation) {
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(WriteThenReadProgram{reg, 1, 0});
  processes.emplace_back(WriteThenReadProgram{reg, 2, 0});
  // p0 writes+reads (decides 1); then p1 writes+reads (decides 2).
  const auto report = replay(std::move(memory), std::move(processes),
                             {ScheduleEvent::step(0), ScheduleEvent::step(0),
                              ScheduleEvent::step(1), ScheduleEvent::step(1)});
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_EQ(report.outputs.size(), 2u);
}

TEST(ReplayTest, CrashResetsRunAndDecision) {
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(WriteThenReadProgram{reg, 1, 0});
  const auto report = replay(std::move(memory), std::move(processes),
                             {ScheduleEvent::step(0), ScheduleEvent::step(0),
                              ScheduleEvent::crash(0), ScheduleEvent::step(0),
                              ScheduleEvent::step(0)});
  // Decided twice (once per run), same value both times.
  EXPECT_EQ(report.outputs.size(), 2u);
  EXPECT_FALSE(report.violation.has_value());
}

TEST(ReplayTest, CrashAllResetsEveryone) {
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(WriteThenReadProgram{reg, 1, 0});
  processes.emplace_back(WriteThenReadProgram{reg, 2, 0});
  const auto report = replay(std::move(memory), std::move(processes),
                             {ScheduleEvent::step(0), ScheduleEvent::crash_all(),
                              ScheduleEvent::step(1), ScheduleEvent::step(1),
                              ScheduleEvent::step(0), ScheduleEvent::step(0)});
  // After the crash p1 writes 2 then reads... p0 re-writes 1 then reads 1.
  ASSERT_TRUE(report.decisions[1].has_value());
  EXPECT_EQ(report.outputs.front(), *report.decisions[1]);
}

TEST(ReplayTest, StepOnDecidedProcessIsIgnored) {
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(WriteThenReadProgram{reg, 1, 0});
  const auto report = replay(std::move(memory), std::move(processes),
                             {ScheduleEvent::step(0), ScheduleEvent::step(0),
                              ScheduleEvent::step(0), ScheduleEvent::step(0)});
  EXPECT_EQ(report.outputs.size(), 1u);
}

}  // namespace
}  // namespace rcons::sim
