#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include "typesys/types/rmw.hpp"

namespace rcons::sim {
namespace {

TEST(MemoryTest, RegistersReadWrite) {
  Memory memory;
  const RegId r0 = memory.add_register();
  const RegId r1 = memory.add_register(42);
  EXPECT_EQ(memory.read(r0), typesys::kBottom);
  EXPECT_EQ(memory.read(r1), 42);
  memory.write(r0, 7);
  EXPECT_EQ(memory.read(r0), 7);
  EXPECT_EQ(memory.num_registers(), 2);
}

TEST(MemoryTest, ObjectsApplyAndRead) {
  typesys::TestAndSetType tas;
  auto cache = std::make_shared<typesys::TransitionCache>(tas, 2);
  Memory memory;
  const ObjId obj = memory.add_object(cache, cache->initial_states().front());
  const typesys::StateId before = memory.object_state(obj);
  EXPECT_EQ(memory.apply(obj, 0), 0);  // old bit
  EXPECT_NE(memory.object_state(obj), before);
  EXPECT_EQ(memory.apply(obj, 0), 1);
}

TEST(MemoryTest, ValueSemanticsSnapshots) {
  typesys::TestAndSetType tas;
  auto cache = std::make_shared<typesys::TransitionCache>(tas, 2);
  Memory memory;
  const RegId reg = memory.add_register(1);
  const ObjId obj = memory.add_object(cache, cache->initial_states().front());

  Memory snapshot = memory;  // copy
  memory.write(reg, 2);
  memory.apply(obj, 0);
  EXPECT_EQ(snapshot.read(reg), 1);
  EXPECT_EQ(snapshot.object_state(obj), cache->initial_states().front());
}

TEST(MemoryTest, EncodeCoversRegistersAndObjects) {
  typesys::TestAndSetType tas;
  auto cache = std::make_shared<typesys::TransitionCache>(tas, 2);
  Memory memory;
  memory.add_register(5);
  memory.add_object(cache, cache->initial_states().front());
  std::vector<typesys::Value> a;
  memory.encode(a);
  EXPECT_EQ(a.size(), 2u);

  memory.apply(0, 0);
  std::vector<typesys::Value> b;
  memory.encode(b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rcons::sim
