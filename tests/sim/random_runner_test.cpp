#include "sim/random_runner.hpp"

#include <gtest/gtest.h>

#include "rc/race.hpp"
#include "sim/replay.hpp"
#include "typesys/types/rmw.hpp"

namespace rcons::sim {
namespace {

std::pair<Memory, std::vector<Process>> make_race_system(int n) {
  auto cache = std::make_shared<typesys::TransitionCache>(
      std::make_shared<const typesys::CompareAndSwapType>(), n);
  Memory memory;
  const rc::RaceInstance instance = rc::install_race(memory, cache);
  std::vector<Process> processes;
  for (int i = 0; i < n; ++i) {
    processes.emplace_back(rc::RaceConsensusProgram(instance, i, i + 1));
  }
  return {std::move(memory), std::move(processes)};
}

TEST(RandomRunnerTest, CompletesAndAgrees) {
  auto [memory, processes] = make_race_system(4);
  RandomRunConfig config;
  config.seed = 7;
  config.crash_per_mille = 100;
  config.properties.valid_outputs = {1, 2, 3, 4};
  const auto report = run_random(std::move(memory), std::move(processes), config);
  EXPECT_TRUE(report.all_decided);
  EXPECT_FALSE(report.violation.has_value());
  EXPECT_GE(report.outputs.size(), 4u);
}

TEST(RandomRunnerTest, DeterministicForFixedSeed) {
  RandomRunConfig config;
  config.seed = 1234;
  config.crash_per_mille = 200;
  auto [m1, p1] = make_race_system(3);
  auto [m2, p2] = make_race_system(3);
  const auto a = run_random(std::move(m1), std::move(p1), config);
  const auto b = run_random(std::move(m2), std::move(p2), config);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST(RandomRunnerTest, DifferentSeedsDiffer) {
  RandomRunConfig c1;
  c1.seed = 1;
  RandomRunConfig c2;
  c2.seed = 2;
  c1.crash_per_mille = c2.crash_per_mille = 300;
  c1.crash_budget = c2.crash_budget = 20;
  auto [m1, p1] = make_race_system(5);
  auto [m2, p2] = make_race_system(5);
  const auto a = run_random(std::move(m1), std::move(p1), c1);
  const auto b = run_random(std::move(m2), std::move(p2), c2);
  // Schedules differ with overwhelming probability; compare step counts and
  // crash tallies as a proxy.
  EXPECT_TRUE(a.steps != b.steps || a.crashes != b.crashes || a.outputs != b.outputs);
}

TEST(RandomRunnerTest, CrashBudgetHonored) {
  auto [memory, processes] = make_race_system(3);
  RandomRunConfig config;
  config.seed = 99;
  config.crash_per_mille = 900;
  config.crash_budget = 5;
  const auto report = run_random(std::move(memory), std::move(processes), config);
  EXPECT_LE(report.crashes, 5);
  EXPECT_TRUE(report.all_decided);
}

TEST(RandomRunnerTest, ZeroCrashRateNeverCrashes) {
  auto [memory, processes] = make_race_system(3);
  RandomRunConfig config;
  config.seed = 11;
  config.crash_per_mille = 0;  // lower edge of the documented [0, 1000] range
  config.crash_budget = 8;
  const auto report = run_random(std::move(memory), std::move(processes), config);
  EXPECT_EQ(report.crashes, 0);
  EXPECT_TRUE(report.all_decided);
  EXPECT_FALSE(report.violation.has_value());
}

TEST(RandomRunnerTest, FullCrashRateCrashesEverySlotUntilBudgetSpent) {
  auto [memory, processes] = make_race_system(3);
  RandomRunConfig config;
  config.seed = 12;
  config.crash_per_mille = 1000;  // upper edge: crash whenever budget remains
  config.crash_budget = 6;
  const auto report = run_random(std::move(memory), std::move(processes), config);
  // Every scheduling slot while budget remains injects a crash, so the
  // budget is fully spent before the first uninterrupted step.
  EXPECT_EQ(report.crashes, config.crash_budget);
  EXPECT_TRUE(report.all_decided);
  EXPECT_FALSE(report.violation.has_value());
}

TEST(RandomRunnerDeathTest, OutOfRangeCrashRateAsserts) {
  auto [memory, processes] = make_race_system(2);
  RandomRunConfig config;
  config.crash_per_mille = 1001;
  EXPECT_DEATH(run_random(std::move(memory), std::move(processes), config),
               "crash_per_mille");
}

TEST(RandomRunnerTest, RecordedScheduleReplaysIdentically) {
  // Every random run records its schedule in the shared ScheduleEvent
  // vocabulary; replaying it must reproduce the exact output sequence.
  auto [memory, processes] = make_race_system(3);
  auto [memory2, processes2] = make_race_system(3);
  RandomRunConfig config;
  config.seed = 21;
  config.crash_per_mille = 250;
  const auto report = run_random(std::move(memory), std::move(processes), config);
  ASSERT_FALSE(report.schedule.empty());
  EXPECT_EQ(report.schedule.size(),
            static_cast<std::size_t>(report.steps + report.crashes));
  const auto replayed =
      replay(std::move(memory2), std::move(processes2), report.schedule);
  EXPECT_EQ(replayed.outputs, report.outputs);
}

TEST(RandomRunnerTest, SimultaneousModelRuns) {
  auto [memory, processes] = make_race_system(3);
  RandomRunConfig config;
  config.seed = 5;
  config.crash_model = CrashModel::kSimultaneous;
  config.crash_per_mille = 200;
  config.crash_budget = 3;
  const auto report = run_random(std::move(memory), std::move(processes), config);
  EXPECT_TRUE(report.all_decided);
  EXPECT_FALSE(report.violation.has_value());
}

}  // namespace
}  // namespace rcons::sim
