// The typed property layer (sim/properties.hpp): PropertySet construction
// and its precomputed hot-path flags, the shared check helpers every backend
// funnels through, and the name/description round trips the spec grammar and
// `.viol` files rely on.
#include "sim/properties.hpp"

#include <gtest/gtest.h>

namespace rcons::sim {
namespace {

TEST(PropertySetTest, DefaultIsTheClassicTrio) {
  const PropertySet set;
  EXPECT_EQ(set.agreement_k(), 1);
  EXPECT_TRUE(set.checks_validity());
  EXPECT_FALSE(set.at_most_once());
  EXPECT_EQ(set.wait_bound(500), 500);  // inherits the budget bound
  EXPECT_EQ(set.specs().size(), 3u);
  EXPECT_EQ(set.label(), "agreement,validity,wait-freedom");
  EXPECT_TRUE(set.valid_outputs.empty());
}

TEST(PropertySetTest, NoneChecksNothing) {
  const PropertySet set = PropertySet::none();
  EXPECT_EQ(set.agreement_k(), 0);
  EXPECT_FALSE(set.checks_validity());
  EXPECT_FALSE(set.at_most_once());
  EXPECT_EQ(set.wait_bound(500), -1);  // wait-freedom not in the set
  EXPECT_TRUE(set.specs().empty());

  std::vector<typesys::Value> distinct;
  std::vector<std::uint8_t> ever;
  std::vector<typesys::Value> last;
  EXPECT_FALSE(check_output(set, 0, 1, distinct, ever, last).has_value());
  EXPECT_FALSE(check_output(set, 1, 2, distinct, ever, last).has_value());
  EXPECT_TRUE(distinct.empty());  // no agreement property -> no tracking
  EXPECT_FALSE(check_wait_freedom(set, 0, 1'000'000, 10).has_value());
}

TEST(PropertySetTest, WaitFreedomParamOverridesTheBudgetBound) {
  PropertySet set = PropertySet::none();
  set.add({PropertyKind::kWaitFreedom, 7});
  EXPECT_EQ(set.wait_bound(500), 7);
  ASSERT_TRUE(check_wait_freedom(set, 3, 8, 500).has_value());
  const PropertyViolation violation = *check_wait_freedom(set, 3, 8, 500);
  EXPECT_EQ(violation.property, PropertyKind::kWaitFreedom);
  EXPECT_EQ(violation.param, 7);
  EXPECT_FALSE(check_wait_freedom(set, 3, 7, 500).has_value());
}

TEST(PropertySetTest, AgreementIsKSetWithKOne) {
  const PropertySet set = PropertySet::classic({1, 2});
  std::vector<typesys::Value> distinct;
  std::vector<std::uint8_t> ever;
  std::vector<typesys::Value> last;

  EXPECT_FALSE(check_output(set, 0, 2, distinct, ever, last).has_value());
  EXPECT_FALSE(check_output(set, 1, 2, distinct, ever, last).has_value());
  ASSERT_EQ(distinct.size(), 1u);  // duplicates do not grow the set

  const auto violation = check_output(set, 1, 1, distinct, ever, last);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->property, PropertyKind::kAgreement);
  EXPECT_EQ(violation->description,
            "agreement violated: process 1 decided 1 but an earlier output was 2");
}

TEST(PropertySetTest, ValidityRejectsOutputsOutsideTheSet) {
  const PropertySet set = PropertySet::classic({1, 2});
  std::vector<typesys::Value> distinct;
  std::vector<std::uint8_t> ever;
  std::vector<typesys::Value> last;
  const auto violation = check_output(set, 0, 99, distinct, ever, last);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->property, PropertyKind::kValidity);
  EXPECT_TRUE(distinct.empty());  // an invalid output never joins the set
}

TEST(PropertySetTest, KSetAgreementAllowsKDistinctOutputs) {
  PropertySet set = PropertySet::none();
  set.add({PropertyKind::kKSetAgreement, 2});
  EXPECT_EQ(set.agreement_k(), 2);

  std::vector<typesys::Value> distinct;
  std::vector<std::uint8_t> ever;
  std::vector<typesys::Value> last;
  EXPECT_FALSE(check_output(set, 0, 101, distinct, ever, last).has_value());
  EXPECT_FALSE(check_output(set, 1, 202, distinct, ever, last).has_value());
  EXPECT_FALSE(check_output(set, 2, 101, distinct, ever, last).has_value());
  ASSERT_EQ(distinct.size(), 2u);

  const auto violation = check_output(set, 2, 303, distinct, ever, last);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->property, PropertyKind::kKSetAgreement);
  EXPECT_EQ(violation->param, 2);
  EXPECT_NE(violation->description.find("k-set agreement violated (k=2)"),
            std::string::npos);
}

TEST(PropertySetTest, AtMostOnceDecideCatchesUnstableReDecisions) {
  PropertySet set = PropertySet::none();
  set.add({PropertyKind::kKSetAgreement, 2});
  set.add({PropertyKind::kAtMostOnceDecide, 0});
  ASSERT_TRUE(set.at_most_once());

  std::vector<typesys::Value> distinct;
  std::vector<std::uint8_t> ever(2, 0);
  std::vector<typesys::Value> last(2, 0);
  EXPECT_FALSE(check_output(set, 0, 101, distinct, ever, last).has_value());
  // Re-deciding the same value after a crash is stability, not a violation.
  EXPECT_FALSE(check_output(set, 0, 101, distinct, ever, last).has_value());
  // p1 outputs a second distinct value: fine for k=2...
  EXPECT_FALSE(check_output(set, 1, 202, distinct, ever, last).has_value());
  // ...but p0 flipping to it is exactly what at-most-once exists to catch —
  // k-set agreement alone would accept this.
  const auto violation = check_output(set, 0, 202, distinct, ever, last);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->property, PropertyKind::kAtMostOnceDecide);
  EXPECT_NE(violation->description.find("after deciding 101"), std::string::npos);
}

TEST(PropertySetTest, NamesRoundTripForEveryKind) {
  for (const PropertyKind kind :
       {PropertyKind::kAgreement, PropertyKind::kKSetAgreement,
        PropertyKind::kValidity, PropertyKind::kWaitFreedom,
        PropertyKind::kAtMostOnceDecide}) {
    EXPECT_EQ(property_from_name(property_name(kind)), kind);
  }
  EXPECT_EQ(property_from_name("frobnication"), PropertyKind::kNone);
  EXPECT_EQ(property_from_name("none"), PropertyKind::kNone);
}

TEST(PropertySetTest, LabelJoinsNamesInAddOrder) {
  PropertySet set = PropertySet::none();
  set.add({PropertyKind::kKSetAgreement, 3});
  set.add({PropertyKind::kValidity, 0});
  set.add({PropertyKind::kAtMostOnceDecide, 0});
  EXPECT_EQ(set.label(), "k-set-agreement,validity,at-most-once");
}

}  // namespace
}  // namespace rcons::sim
