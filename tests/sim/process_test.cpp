#include "sim/process.hpp"

#include <gtest/gtest.h>

namespace rcons::sim {
namespace {

// A counting program: increments a register `limit` times, then decides its
// final read.
struct CountingProgram {
  RegId reg = 0;
  int limit = 3;
  int steps_done = 0;

  StepResult step(Memory& memory) {
    if (steps_done < limit) {
      memory.write(reg, memory.read(reg) + 1);
      steps_done += 1;
      return StepResult::running();
    }
    return StepResult::decided(memory.read(reg));
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(steps_done); }
};

TEST(ProcessTest, RunsToDecision) {
  Memory memory;
  const RegId reg = memory.add_register(0);
  Process process{CountingProgram{reg, 3, 0}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(process.step(memory).kind, StepResult::Kind::kRunning);
  }
  const StepResult result = process.step(memory);
  ASSERT_EQ(result.kind, StepResult::Kind::kDecided);
  EXPECT_EQ(result.decision, 3);
}

TEST(ProcessTest, ResetRestoresInitialLocalStateOnly) {
  Memory memory;
  const RegId reg = memory.add_register(0);
  Process process{CountingProgram{reg, 2, 0}};
  process.step(memory);
  process.step(memory);
  process.reset();  // crash: locals gone, register (shared NVRAM) keeps 2
  EXPECT_EQ(memory.read(reg), 2);
  process.step(memory);
  process.step(memory);
  const StepResult result = process.step(memory);
  ASSERT_EQ(result.kind, StepResult::Kind::kDecided);
  EXPECT_EQ(result.decision, 4);  // 2 pre-crash + 2 post-recovery increments
}

TEST(ProcessTest, CopyIsIndependent) {
  Memory memory;
  const RegId reg = memory.add_register(0);
  Process a{CountingProgram{reg, 2, 0}};
  a.step(memory);
  Process b = a;  // copy mid-run
  a.step(memory);
  // b still has one increment to go.
  std::vector<typesys::Value> ea, eb;
  a.encode(ea);
  b.encode(eb);
  EXPECT_NE(ea, eb);
}

TEST(ProcessTest, EncodeReflectsLocalState) {
  Memory memory;
  const RegId reg = memory.add_register(0);
  Process process{CountingProgram{reg, 2, 0}};
  std::vector<typesys::Value> before, after, reset;
  process.encode(before);
  process.step(memory);
  process.encode(after);
  EXPECT_NE(before, after);
  process.reset();
  process.encode(reset);
  EXPECT_EQ(before, reset);
}

}  // namespace
}  // namespace rcons::sim
