#include "sim/explorer.hpp"

#include <gtest/gtest.h>

namespace rcons::sim {
namespace {

// Deliberately broken "consensus": each process writes its input to a shared
// register and decides what it reads afterwards — classic register
// non-solvability, so the explorer must find an agreement violation even
// without crashes.
struct BrokenConsensus {
  RegId reg = 0;
  typesys::Value input = 0;
  int pc = 0;

  StepResult step(Memory& memory) {
    if (pc == 0) {
      memory.write(reg, input);
      pc = 1;
      return StepResult::running();
    }
    return StepResult::decided(memory.read(reg));
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(pc); }
};

// Correct one-shot "consensus" for any number of processes using a single
// write-once register guarded by... nothing recoverable, but correct without
// crashes only when every process writes the same value. Used to exercise
// validity checking.
struct ConstantDecider {
  typesys::Value value = 0;
  StepResult step(Memory& memory) {
    (void)memory;
    return StepResult::decided(value);
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(0); }
};

TEST(ExplorerTest, FindsAgreementViolation) {
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(BrokenConsensus{reg, 1, 0});
  processes.emplace_back(BrokenConsensus{reg, 2, 0});
  ExplorerConfig config;
  config.crash_budget = 0;
  config.properties.valid_outputs = {1, 2};
  Explorer explorer(std::move(memory), std::move(processes), config);
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("agreement"), std::string::npos);
  EXPECT_FALSE(violation->schedule.empty());
  EXPECT_FALSE(violation->trace().empty());
}

TEST(ExplorerTest, FindsValidityViolation) {
  Memory memory;
  std::vector<Process> processes;
  processes.emplace_back(ConstantDecider{99});
  ExplorerConfig config;
  config.properties.valid_outputs = {1, 2};
  config.crash_budget = 0;
  Explorer explorer(std::move(memory), std::move(processes), config);
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("validity"), std::string::npos);
}

TEST(ExplorerTest, CleanSystemPasses) {
  Memory memory;
  std::vector<Process> processes;
  processes.emplace_back(ConstantDecider{1});
  processes.emplace_back(ConstantDecider{1});
  ExplorerConfig config;
  config.properties.valid_outputs = {1};
  config.crash_budget = 3;
  Explorer explorer(std::move(memory), std::move(processes), config);
  EXPECT_FALSE(explorer.run().has_value());
  EXPECT_GT(explorer.stats().visited, 0u);
}

TEST(ExplorerTest, WaitFreedomBoundFlagsLoopers) {
  // A program that never decides: must trip the per-run step bound. Its
  // local state advances every step (all our real algorithms do), which the
  // explorer's deduplication assumes — see DESIGN.md.
  struct Looper {
    RegId reg = 0;
    long count = 0;
    StepResult step(Memory& memory) {
      memory.write(reg, 1);
      count += 1;
      return StepResult::running();
    }
    void encode(std::vector<typesys::Value>& out) const { out.push_back(count); }
  };
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(Looper{reg, 0});
  ExplorerConfig config;
  config.crash_budget = 0;
  config.max_steps_per_run = 10;
  Explorer explorer(std::move(memory), std::move(processes), config);
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("wait-freedom"), std::string::npos);
}

TEST(ExplorerTest, CrashBudgetRespected) {
  // With zero budget, BrokenConsensus run with a single process cannot
  // violate anything; with crash_after_decide it still cannot since no crash
  // moves exist.
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(BrokenConsensus{reg, 1, 0});
  ExplorerConfig config;
  config.crash_budget = 0;
  config.properties.valid_outputs = {1};
  Explorer explorer(std::move(memory), std::move(processes), config);
  EXPECT_FALSE(explorer.run().has_value());
}

TEST(ExplorerTest, CrashRerunsProduceMoreDecisions) {
  // One BrokenConsensus process alone stays consistent even across crashes
  // (it re-writes the same input); the explorer must explore the re-runs.
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(BrokenConsensus{reg, 1, 0});
  ExplorerConfig with_crashes;
  with_crashes.crash_budget = 2;
  with_crashes.properties.valid_outputs = {1};
  Explorer explorer(std::move(memory), std::move(processes), with_crashes);
  EXPECT_FALSE(explorer.run().has_value());
  ExplorerConfig no_crashes;
  no_crashes.crash_budget = 0;
  no_crashes.properties.valid_outputs = {1};
  Memory memory2;
  const RegId reg2 = memory2.add_register();
  std::vector<Process> processes2;
  processes2.emplace_back(BrokenConsensus{reg2, 1, 0});
  Explorer baseline(std::move(memory2), std::move(processes2), no_crashes);
  EXPECT_FALSE(baseline.run().has_value());
  EXPECT_GT(explorer.stats().visited, baseline.stats().visited);
}

TEST(ExplorerTest, SimultaneousModelCrashesEveryone) {
  // Two processes with different inputs and a shared register: under the
  // simultaneous model with budget 1, the explorer still finds the agreement
  // violation (crashes do not mask it).
  Memory memory;
  const RegId reg = memory.add_register();
  std::vector<Process> processes;
  processes.emplace_back(BrokenConsensus{reg, 1, 0});
  processes.emplace_back(BrokenConsensus{reg, 2, 0});
  ExplorerConfig config;
  config.crash_model = CrashModel::kSimultaneous;
  config.crash_budget = 1;
  config.properties.valid_outputs = {1, 2};
  Explorer explorer(std::move(memory), std::move(processes), config);
  EXPECT_TRUE(explorer.run().has_value());
}

}  // namespace
}  // namespace rcons::sim
