// The violation round-trip: a counterexample found by any explorer carries a
// typed ScheduleEvent schedule that, fed back through sim::replay on a
// pristine copy of the same system, reproduces the same property violation.
// This is what turns explorer findings into deterministic regression tests.
//
// Covered on two known-dirty scenarios:
//   * discerning-negative — Ruppert's halting algorithm over test-and-set
//     breaks under one crash (the schedule contains a CRASH event);
//   * register race — the classic write-then-read non-consensus breaks from
//     interleaving alone (no crashes).
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "rc/discerning_consensus.hpp"
#include "sim/replay.hpp"
#include "typesys/zoo.hpp"

namespace rcons::check {
namespace {

struct BrokenConsensus {
  sim::RegId reg = 0;
  typesys::Value input = 0;
  int pc = 0;

  sim::StepResult step(sim::Memory& memory) {
    if (pc == 0) {
      memory.write(reg, input);
      pc = 1;
      return sim::StepResult::running();
    }
    return sim::StepResult::decided(memory.read(reg));
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(pc); }
};

struct ConstantDecider {
  typesys::Value value = 0;
  sim::StepResult step(sim::Memory&) { return sim::StepResult::decided(value); }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(0); }
};

ScenarioSystem make_halting_tas_system() {
  auto type = typesys::make_type("test-and-set");
  rc::HaltingConsensusSystem system = rc::make_halting_consensus(*type, 2, {5, 6});
  ScenarioSystem out;
  out.memory = std::move(system.memory);
  out.processes = std::move(system.processes);
  out.properties.valid_outputs = {5, 6};
  return out;
}

ScenarioSystem make_register_race_system() {
  ScenarioSystem out;
  const sim::RegId reg = out.memory.add_register();
  out.processes.emplace_back(BrokenConsensus{reg, 1, 0});
  out.processes.emplace_back(BrokenConsensus{reg, 2, 0});
  out.properties.valid_outputs = {1, 2};
  return out;
}

// Finds a violation with `strategy`, then replays its schedule on a pristine
// copy and asserts the same property breaks again.
void round_trip(ScenarioSystem found_on, ScenarioSystem replay_on, int crash_budget,
                Strategy strategy, const std::string& expected_property) {
  CheckRequest request;
  request.system = std::move(found_on);
  request.budget.crash_budget = crash_budget;
  request.strategy = strategy;
  const CheckReport report = check(std::move(request));
  ASSERT_FALSE(report.clean);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_NE(report.violation->description.find(expected_property), std::string::npos)
      << report.violation->description;
  ASSERT_FALSE(report.violation->schedule.empty());

  const sim::PropertyKind expected_kind = report.violation->property;
  const sim::ReplayReport replayed = sim::replay(
      std::move(replay_on.memory), std::move(replay_on.processes),
      report.violation->schedule, replay_on.properties);
  ASSERT_TRUE(replayed.violation.has_value())
      << "schedule did not reproduce: " << report.violation->trace();
  EXPECT_NE(replayed.violation->description.find(expected_property),
            std::string::npos)
      << replayed.violation->description;
  // The typed identity survives the cross-backend round trip too.
  EXPECT_EQ(replayed.violation->property, expected_kind);
}

TEST(ViolationReplayTest, DiscerningNegativeRoundTripsThroughReplay) {
  // The schedule must contain the crash that destroys the TAS evidence.
  CheckRequest request;
  request.system = make_halting_tas_system();
  request.budget.crash_budget = 1;
  request.strategy = Strategy::kSequentialDFS;
  const CheckReport report = check(std::move(request));
  ASSERT_FALSE(report.clean);
  bool has_crash_event = false;
  for (const sim::ScheduleEvent& event : report.violation->schedule) {
    has_crash_event =
        has_crash_event || event.kind == sim::ScheduleEvent::Kind::kCrash;
  }
  EXPECT_TRUE(has_crash_event) << report.violation->trace();

  round_trip(make_halting_tas_system(), make_halting_tas_system(), 1,
             Strategy::kSequentialDFS, "agreement");
}

TEST(ViolationReplayTest, RegisterRaceRoundTripsThroughReplay) {
  round_trip(make_register_race_system(), make_register_race_system(), 0,
             Strategy::kSequentialDFS, "agreement");
}

TEST(ViolationReplayTest, ParallelEngineViolationRoundTripsToo) {
  // The parallel engine reports the lexicographically lowest violating
  // schedule; it must replay just as deterministically.
  round_trip(make_register_race_system(), make_register_race_system(), 0,
             Strategy::kParallelBFS, "agreement");
}

TEST(ViolationReplayTest, ValidityViolationRoundTripsWithValiditySet) {
  ScenarioSystem make;
  make.processes.emplace_back(ConstantDecider{99});
  make.properties.valid_outputs = {1, 2};
  ScenarioSystem again;
  again.processes.emplace_back(ConstantDecider{99});
  again.properties.valid_outputs = {1, 2};
  round_trip(std::move(make), std::move(again), 0, Strategy::kSequentialDFS,
             "validity");
}

TEST(ViolationReplayTest, WaitFreedomViolationRoundTripsWithSameBudget) {
  // A program that never decides trips the per-run step bound; replaying its
  // schedule under the same budget must trip the same bound.
  struct Looper {
    sim::RegId reg = 0;
    long count = 0;
    sim::StepResult step(sim::Memory& memory) {
      memory.write(reg, 1);
      count += 1;
      return sim::StepResult::running();
    }
    void encode(std::vector<typesys::Value>& out) const { out.push_back(count); }
  };
  auto make_looper_system = [] {
    ScenarioSystem out;
    const sim::RegId reg = out.memory.add_register();
    out.processes.emplace_back(Looper{reg, 0});
    return out;
  };

  CheckRequest find;
  find.system = make_looper_system();
  find.budget.crash_budget = 0;
  find.budget.max_steps_per_run = 10;
  find.strategy = Strategy::kSequentialDFS;
  const CheckReport found = check(std::move(find));
  ASSERT_FALSE(found.clean);
  ASSERT_NE(found.violation->description.find("wait-freedom"), std::string::npos);

  CheckRequest replay_request;
  replay_request.system = make_looper_system();
  replay_request.budget.max_steps_per_run = 10;
  replay_request.strategy = Strategy::kReplay;
  replay_request.schedule = found.violation->schedule;
  const CheckReport replayed = check(std::move(replay_request));
  ASSERT_FALSE(replayed.clean);
  EXPECT_NE(replayed.violation->description.find("wait-freedom"), std::string::npos);
}

TEST(ViolationReplayTest, FacadeReplayStrategyReproducesToo) {
  // The same round-trip, entirely through check(): find with kSequentialDFS,
  // reproduce with kReplay.
  CheckRequest find;
  find.system = make_register_race_system();
  find.budget.crash_budget = 0;
  find.strategy = Strategy::kSequentialDFS;
  const CheckReport found = check(std::move(find));
  ASSERT_FALSE(found.clean);

  CheckRequest replay_request;
  replay_request.system = make_register_race_system();
  replay_request.budget.crash_budget = 0;
  replay_request.strategy = Strategy::kReplay;
  replay_request.schedule = found.violation->schedule;
  const CheckReport replayed = check(std::move(replay_request));
  ASSERT_FALSE(replayed.clean);
  EXPECT_NE(replayed.violation->description.find("agreement"), std::string::npos);
  EXPECT_EQ(replayed.violation->schedule, found.violation->schedule);
}

}  // namespace
}  // namespace rcons::check
