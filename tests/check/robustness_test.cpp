// Resource sentinels and graceful truncation: every budget exhaustion —
// visited cap (including the non-positive edge), wall clock, memory — comes
// back as a typed truncated verdict with partial statistics, on both the
// sequential and the parallel exhaustive backends. Never an abort, never an
// empty report.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/scenario_spec.hpp"
#include "check/spec_system.hpp"

namespace rcons::check {
namespace {

CheckRequest request_for(const std::string& line, Strategy strategy) {
  ScenarioSpec spec;
  std::vector<std::string> errors;
  parse_scenario_line(line, spec, errors);
  EXPECT_TRUE(errors.empty());
  CheckRequest request;
  request.system = build_spec_system(spec);
  request.budget.crash_model = spec.crash_model;
  request.budget.crash_budget = spec.crash_budget;
  request.strategy = strategy;
  request.num_threads = 4;
  request.sentinel_interval_ms = 5;
  return request;
}

const char* kSmall = "type=Sn(2) n=2 model=independent budget=2";
const char* kLarge = "type=Sn(4) n=4 model=independent budget=2";

void expect_typed_truncation(const CheckReport& report, sim::StopReason reason) {
  EXPECT_TRUE(report.stats.truncated);
  EXPECT_EQ(report.stats.stop_reason, reason);
  EXPECT_FALSE(report.complete);
  ASSERT_TRUE(report.violation.has_value());  // the truncation marker
  EXPECT_EQ(report.violation->property, sim::PropertyKind::kNone);
  EXPECT_FALSE(report.violation->description.empty());
}

TEST(RobustnessTest, StopReasonNamesAreStable) {
  EXPECT_STREQ(sim::stop_reason_name(sim::StopReason::kNone), "none");
  EXPECT_STREQ(sim::stop_reason_name(sim::StopReason::kVisitedCap), "visited-cap");
  EXPECT_STREQ(sim::stop_reason_name(sim::StopReason::kDeadline), "deadline");
  EXPECT_STREQ(sim::stop_reason_name(sim::StopReason::kMemory), "memory");
  EXPECT_STREQ(sim::stop_reason_name(sim::StopReason::kWatchdog), "watchdog");
  EXPECT_STREQ(sim::stop_reason_name(sim::StopReason::kForcedStop), "forced-stop");
}

TEST(RobustnessTest, NonPositiveVisitedBudgetStillReturnsATypedVerdict) {
  // The budget edge: max_visited <= 0 means "truncate immediately", and the
  // report must still be fully formed — typed reason, marker violation,
  // stats — not an empty or crashed run (Budget::visited_cap documents this).
  for (const std::int64_t cap : {std::int64_t{0}, std::int64_t{-5}}) {
    for (const Strategy strategy :
         {Strategy::kSequentialDFS, Strategy::kParallelBFS}) {
      CheckRequest request = request_for(kSmall, strategy);
      request.budget.max_visited = cap;
      const CheckReport report = check(std::move(request));
      SCOPED_TRACE("cap=" + std::to_string(cap));
      expect_typed_truncation(report, sim::StopReason::kVisitedCap);
    }
  }
}

TEST(RobustnessTest, VisitedCapTruncationIsTypedOnBothBackends) {
  for (const Strategy strategy :
       {Strategy::kSequentialDFS, Strategy::kParallelBFS}) {
    CheckRequest request = request_for(kSmall, strategy);
    request.budget.max_visited = 50;
    const CheckReport report = check(std::move(request));
    expect_typed_truncation(report, sim::StopReason::kVisitedCap);
    EXPECT_GE(report.stats.visited, 50u);  // partial stats survive
  }
}

TEST(RobustnessTest, TimeLimitTruncatesParallelWithPartialStats) {
  CheckRequest request = request_for(kLarge, Strategy::kParallelBFS);
  request.budget.time_limit_ms = 1;
  const CheckReport report = check(std::move(request));
  expect_typed_truncation(report, sim::StopReason::kDeadline);
  EXPECT_GT(report.stats.visited, 0u);
  EXPECT_NE(report.violation->description.find("time limit"), std::string::npos);
}

TEST(RobustnessTest, TimeLimitTruncatesSequentialWithPartialStats) {
  CheckRequest request = request_for(kLarge, Strategy::kSequentialDFS);
  request.budget.time_limit_ms = 1;
  const CheckReport report = check(std::move(request));
  expect_typed_truncation(report, sim::StopReason::kDeadline);
  EXPECT_GT(report.stats.visited, 0u);
}

TEST(RobustnessTest, MemoryLimitTruncatesGracefully) {
  // 1 MiB is below any real process RSS, so the sentinel trips on its first
  // sample — deterministic without having to actually exhaust memory.
  for (const Strategy strategy :
       {Strategy::kSequentialDFS, Strategy::kParallelBFS}) {
    CheckRequest request = request_for(kLarge, strategy);
    request.budget.mem_limit_mb = 1;
    const CheckReport report = check(std::move(request));
    SCOPED_TRACE(strategy == Strategy::kSequentialDFS ? "dfs" : "bfs");
    expect_typed_truncation(report, sim::StopReason::kMemory);
  }
}

TEST(RobustnessTest, SentinelsOffLeaveVerdictsComplete) {
  // The default budget has no resource limits: a small clean scenario must
  // still come back complete and untruncated with the robustness layer built
  // in (zero-cost when unset).
  CheckRequest request = request_for(kSmall, Strategy::kParallelBFS);
  const CheckReport report = check(std::move(request));
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.complete);
  EXPECT_FALSE(report.stats.truncated);
  EXPECT_EQ(report.stats.stop_reason, sim::StopReason::kNone);
}

TEST(RobustnessTest, TimeLimitSpecFieldsReachTheBudget) {
  ScenarioSpec spec;
  std::vector<std::string> errors;
  parse_scenario_line("type=Sn(2) n=2 time_limit=250 mem_limit=512", spec, errors);
  ASSERT_TRUE(errors.empty());
  EXPECT_EQ(spec.time_limit_ms, 250);
  EXPECT_EQ(spec.mem_limit_mb, 512);
  // Round-trip through the formatter (the checkpoint label path).
  ScenarioSpec reparsed;
  parse_scenario_line(format_scenario_line(spec), reparsed, errors);
  ASSERT_TRUE(errors.empty());
  EXPECT_EQ(reparsed, spec);
}

TEST(RobustnessTest, ViolationKeepsItsTypedIdentityWithRobustnessLayerOn) {
  // A real property violation must keep its typed property — the truncation
  // marker (property kNone) and real violations stay distinguishable, which
  // is what the CLI's exit-code precedence is built on.
  CheckRequest request =
      request_for("type=register n=2 model=independent budget=0 "
                  "algo=naive-register",
                  Strategy::kParallelBFS);
  const CheckReport report = check(std::move(request));
  ASSERT_FALSE(report.clean);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_NE(report.violation->property, sim::PropertyKind::kNone);
}

}  // namespace
}  // namespace rcons::check
