// The ScenarioSpec text format: valid lines, defaults, comments, and the
// whole taxonomy of malformed input — every error is reported with its line
// number, and well-formed lines survive bad neighbours.
#include "check/scenario_spec.hpp"

#include <gtest/gtest.h>

namespace rcons::check {
namespace {

TEST(ScenarioSpecTest, ParsesFullyQualifiedLine) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(3) n=3 model=simultaneous budget=4 name=my-sweep max_steps=400 "
      "max_visited=12345\n");
  ASSERT_TRUE(parse.ok()) << parse.errors.front();
  ASSERT_EQ(parse.specs.size(), 1u);
  const ScenarioSpec& spec = parse.specs.front();
  EXPECT_EQ(spec.type, "Sn(3)");
  EXPECT_EQ(spec.n, 3);
  EXPECT_EQ(spec.crash_model, CrashModel::kSimultaneous);
  EXPECT_EQ(spec.crash_budget, 4);
  EXPECT_EQ(spec.name, "my-sweep");
  EXPECT_EQ(spec.max_steps_per_run, 400);
  EXPECT_EQ(spec.max_visited, 12345);
}

TEST(ScenarioSpecTest, AppliesDefaultsForOmittedFields) {
  const ScenarioParse parse = parse_scenario_specs("type=compare-and-swap\n");
  ASSERT_TRUE(parse.ok());
  ASSERT_EQ(parse.specs.size(), 1u);
  const ScenarioSpec& spec = parse.specs.front();
  EXPECT_EQ(spec.n, 2);
  EXPECT_EQ(spec.crash_model, CrashModel::kIndependent);
  EXPECT_EQ(spec.crash_budget, 2);
  EXPECT_TRUE(spec.name.empty());
  EXPECT_EQ(spec.max_steps_per_run, -1);  // inherit
  EXPECT_EQ(spec.max_visited, -1);        // inherit
}

TEST(ScenarioSpecTest, SkipsCommentsAndBlankLines) {
  const ScenarioParse parse = parse_scenario_specs(
      "# a comment\n"
      "\n"
      "   \t  \n"
      "type=Sn(2) n=2  # trailing comment\n"
      "# another\n"
      "type=Tn(4) n=2\n");
  ASSERT_TRUE(parse.ok()) << parse.errors.front();
  ASSERT_EQ(parse.specs.size(), 2u);
  EXPECT_EQ(parse.specs[0].type, "Sn(2)");
  EXPECT_EQ(parse.specs[1].type, "Tn(4)");
}

TEST(ScenarioSpecTest, RejectsUnknownTypeName) {
  const ScenarioParse parse = parse_scenario_specs("type=Qn(7) n=2\n");
  ASSERT_FALSE(parse.ok());
  EXPECT_TRUE(parse.specs.empty());
  EXPECT_NE(parse.errors.front().find("line 1"), std::string::npos);
  EXPECT_NE(parse.errors.front().find("unknown type 'Qn(7)'"), std::string::npos);
}

TEST(ScenarioSpecTest, RejectsMalformedFields) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(2) n=one\n"
      "type=Sn(2) budget=-3\n"
      "type=Sn(2) n=1\n"
      "type=Sn(2) frobnicate=9\n"
      "n=2 budget=1\n"
      "type=Sn(2) gibberish\n");
  EXPECT_TRUE(parse.specs.empty());
  ASSERT_EQ(parse.errors.size(), 6u);
  EXPECT_NE(parse.errors[0].find("line 1: n must be"), std::string::npos);
  EXPECT_NE(parse.errors[1].find("line 2: budget must be"), std::string::npos);
  EXPECT_NE(parse.errors[2].find("line 3: n must be"), std::string::npos);
  EXPECT_NE(parse.errors[3].find("line 4: unknown key 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(parse.errors[4].find("line 5: missing required type="), std::string::npos);
  EXPECT_NE(parse.errors[5].find("line 6: expected key=value"), std::string::npos);
}

TEST(ScenarioSpecTest, RejectsBadModel) {
  const ScenarioParse parse = parse_scenario_specs("type=Sn(2) model=chaotic\n");
  ASSERT_FALSE(parse.ok());
  EXPECT_NE(parse.errors.front().find("model must be independent or simultaneous"),
            std::string::npos);
}

TEST(ScenarioSpecTest, GoodLinesSurviveBadNeighbours) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(2) n=2\n"
      "type=nonsense-type n=2\n"
      "type=Sn(3) n=3\n");
  EXPECT_FALSE(parse.ok());
  ASSERT_EQ(parse.specs.size(), 2u);
  EXPECT_EQ(parse.specs[0].type, "Sn(2)");
  EXPECT_EQ(parse.specs[1].type, "Sn(3)");
  ASSERT_EQ(parse.errors.size(), 1u);
  EXPECT_NE(parse.errors.front().find("line 2"), std::string::npos);
}

TEST(ScenarioSpecTest, MissingFileIsAParseError) {
  const ScenarioParse parse = load_scenario_file("/nonexistent/scenarios.spec");
  ASSERT_FALSE(parse.ok());
  EXPECT_TRUE(parse.specs.empty());
  EXPECT_NE(parse.errors.front().find("cannot open"), std::string::npos);
}

TEST(ScenarioSpecTest, RejectsOverflowingNumbers) {
  const ScenarioParse parse =
      parse_scenario_specs("type=Sn(2) max_visited=99999999999999999999999\n");
  ASSERT_FALSE(parse.ok());
  EXPECT_NE(parse.errors.front().find("max_visited must be"), std::string::npos);
}

TEST(ScenarioSpecTest, RejectsIntFieldsAboveInt32Range) {
  // Values that fit int64 but not int must be rejected, not silently wrapped.
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(2) budget=4294967296\n"
      "type=Sn(2) n=4294967298\n");
  EXPECT_TRUE(parse.specs.empty());
  ASSERT_EQ(parse.errors.size(), 2u);
  EXPECT_NE(parse.errors[0].find("budget must be"), std::string::npos);
  EXPECT_NE(parse.errors[1].find("n must be"), std::string::npos);
}

TEST(ScenarioSpecTest, ParsesAlgoAndSymmetryFields) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=test-and-set n=2 budget=1 algo=halting\n"
      "type=register n=2 budget=0 algo=naive-register\n"
      "type=Sn(4) n=4 budget=1 symmetry=on\n"
      "type=Sn(2) algo=team symmetry=off\n");
  ASSERT_TRUE(parse.ok()) << parse.errors.front();
  ASSERT_EQ(parse.specs.size(), 4u);
  EXPECT_EQ(parse.specs[0].algo, ScenarioAlgo::kHaltingTournament);
  EXPECT_EQ(parse.specs[1].algo, ScenarioAlgo::kNaiveRegister);
  EXPECT_FALSE(parse.specs[1].symmetry);
  EXPECT_EQ(parse.specs[2].algo, ScenarioAlgo::kTeamConsensus);
  EXPECT_TRUE(parse.specs[2].symmetry);
  EXPECT_EQ(parse.specs[3].algo, ScenarioAlgo::kTeamConsensus);
  EXPECT_FALSE(parse.specs[3].symmetry);
}

TEST(ScenarioSpecTest, RejectsBadAlgoAndSymmetryValues) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(2) algo=quantum\n"
      "type=Sn(2) symmetry=maybe\n");
  EXPECT_TRUE(parse.specs.empty());
  ASSERT_EQ(parse.errors.size(), 2u);
  EXPECT_NE(parse.errors[0].find("algo must be"), std::string::npos);
  EXPECT_NE(parse.errors[1].find("symmetry must be"), std::string::npos);
}

TEST(ScenarioSpecTest, FormatScenarioLineRoundTrips) {
  ScenarioSpec spec;
  spec.type = "test-and-set";
  spec.n = 3;
  spec.crash_model = CrashModel::kSimultaneous;
  spec.crash_budget = 1;
  spec.algo = ScenarioAlgo::kHaltingTournament;
  spec.symmetry = true;
  spec.max_steps_per_run = 400;
  spec.max_visited = 1'000'000;
  spec.name = "tas-halting";

  ScenarioSpec parsed;
  std::vector<std::string> errors;
  parse_scenario_line(format_scenario_line(spec), parsed, errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_EQ(parsed, spec);
}

TEST(ScenarioSpecTest, ParsesPropertiesAndKFields) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(2) n=3 k=2 algo=k-set properties=k-set-agreement,validity\n"
      "type=Sn(2) n=2 properties=agreement,validity,wait-freedom,at-most-once\n"
      "type=Sn(2) n=4 k=2 algo=team\n");  // k is legal outside algo=k-set too
  ASSERT_TRUE(parse.ok()) << parse.errors.front();
  ASSERT_EQ(parse.specs.size(), 3u);
  EXPECT_EQ(parse.specs[0].algo, ScenarioAlgo::kKSetTeamConsensus);
  EXPECT_EQ(parse.specs[0].k, 2);
  EXPECT_EQ(parse.specs[0].properties,
            (std::vector<sim::PropertyKind>{sim::PropertyKind::kKSetAgreement,
                                            sim::PropertyKind::kValidity}));
  EXPECT_EQ(parse.specs[1].properties.size(), 4u);
  EXPECT_EQ(parse.specs[1].properties.back(), sim::PropertyKind::kAtMostOnceDecide);
  EXPECT_TRUE(parse.specs[2].properties.empty());  // default trio

  // spec_properties materializes the typed set (k threads into the param).
  const sim::PropertySet set = spec_properties(parse.specs[0]);
  EXPECT_EQ(set.agreement_k(), 2);
  EXPECT_TRUE(set.checks_validity());
  EXPECT_EQ(set.wait_bound(500), -1);  // wait-freedom not listed
}

TEST(ScenarioSpecTest, RejectsBadPropertiesAndK) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(2) properties=frobnication\n"
      "type=Sn(2) properties=agreement,agreement\n"
      "type=Sn(2) k=2 properties=agreement,k-set-agreement\n"
      "type=Sn(2) properties=k-set-agreement,validity\n"
      "type=Sn(2) n=3 algo=k-set\n"
      "type=Sn(2) n=2 k=3 algo=k-set\n"
      "type=Sn(2) k=1 algo=k-set\n");
  EXPECT_TRUE(parse.specs.empty());
  // The last line produces two diagnostics: the bad k value itself, and the
  // k-set algo left without a usable k.
  ASSERT_EQ(parse.errors.size(), 8u);
  EXPECT_NE(parse.errors[0].find("unknown property"), std::string::npos);
  EXPECT_NE(parse.errors[1].find("duplicate property"), std::string::npos);
  EXPECT_NE(parse.errors[2].find("mutually exclusive"), std::string::npos);
  EXPECT_NE(parse.errors[3].find("needs k="), std::string::npos);
  EXPECT_NE(parse.errors[4].find("algo=k-set needs k="), std::string::npos);
  EXPECT_NE(parse.errors[5].find("k <= n"), std::string::npos);
  EXPECT_NE(parse.errors[6].find("k must be an integer >= 2"), std::string::npos);
  EXPECT_NE(parse.errors[7].find("algo=k-set needs k="), std::string::npos);
}

TEST(ScenarioSpecTest, ParsesResourceLimitFields) {
  const ScenarioParse parse =
      parse_scenario_specs("type=Sn(2) n=2 time_limit=5000 mem_limit=2048\n");
  ASSERT_TRUE(parse.ok()) << parse.errors.front();
  EXPECT_EQ(parse.specs.front().time_limit_ms, 5000);
  EXPECT_EQ(parse.specs.front().mem_limit_mb, 2048);
}

TEST(ScenarioSpecTest, RejectsBadResourceLimits) {
  const ScenarioParse parse = parse_scenario_specs(
      "type=Sn(2) time_limit=0\n"
      "type=Sn(2) time_limit=-5\n"
      "type=Sn(2) mem_limit=abc\n");
  EXPECT_TRUE(parse.specs.empty());
  ASSERT_EQ(parse.errors.size(), 3u);
  EXPECT_NE(parse.errors[0].find("time_limit must be"), std::string::npos);
  EXPECT_NE(parse.errors[1].find("time_limit must be"), std::string::npos);
  EXPECT_NE(parse.errors[2].find("mem_limit must be"), std::string::npos);
}

TEST(ScenarioSpecTest, RoundTripsAGridOverEveryGrammarField) {
  // format_scenario_line ∘ parse_scenario_line must be the identity over the
  // whole grammar, including the properties=/k= extension — every field that
  // can be written must read back to the same spec.
  const std::vector<std::vector<sim::PropertyKind>> property_sets = {
      {},  // default trio (omitted from the line)
      {sim::PropertyKind::kAgreement, sim::PropertyKind::kValidity},
      {sim::PropertyKind::kKSetAgreement, sim::PropertyKind::kValidity,
       sim::PropertyKind::kWaitFreedom},
      {sim::PropertyKind::kAgreement, sim::PropertyKind::kValidity,
       sim::PropertyKind::kWaitFreedom, sim::PropertyKind::kAtMostOnceDecide},
  };
  int covered = 0;
  for (const std::string& type : {std::string("Sn(2)"), std::string("test-and-set")}) {
    for (const int n : {2, 3}) {
      for (const CrashModel model :
           {CrashModel::kIndependent, CrashModel::kSimultaneous}) {
        for (const int budget : {0, 2}) {
          for (const ScenarioAlgo algo :
               {ScenarioAlgo::kTeamConsensus, ScenarioAlgo::kHaltingTournament,
                ScenarioAlgo::kNaiveRegister, ScenarioAlgo::kKSetTeamConsensus}) {
            for (const int k : {0, 2}) {
              for (const auto& properties : property_sets) {
                for (const bool symmetry : {false, true}) {
                  for (const std::int64_t max_steps : {std::int64_t{-1}, std::int64_t{400}}) {
                    for (const std::int64_t max_visited :
                         {std::int64_t{-1}, std::int64_t{12345}}) {
                     for (const std::int64_t time_limit :
                          {std::int64_t{-1}, std::int64_t{250}}) {
                     for (const std::int64_t mem_limit :
                          {std::int64_t{-1}, std::int64_t{512}}) {
                      for (const std::string& name :
                           {std::string(), std::string("grid-name")}) {
                        const bool wants_k_set =
                            !properties.empty() &&
                            properties.front() == sim::PropertyKind::kKSetAgreement;
                        // Skip combinations the grammar rejects by design.
                        if ((wants_k_set || algo == ScenarioAlgo::kKSetTeamConsensus) &&
                            k == 0) {
                          continue;
                        }
                        if (algo == ScenarioAlgo::kKSetTeamConsensus && k > n) continue;

                        ScenarioSpec spec;
                        spec.type = type;
                        spec.n = n;
                        spec.crash_model = model;
                        spec.crash_budget = budget;
                        spec.algo = algo;
                        spec.k = k;
                        spec.properties = properties;
                        spec.symmetry = symmetry;
                        spec.max_steps_per_run = max_steps;
                        spec.max_visited = max_visited;
                        spec.time_limit_ms = time_limit;
                        spec.mem_limit_mb = mem_limit;
                        spec.name = name;

                        ScenarioSpec parsed;
                        std::vector<std::string> errors;
                        parse_scenario_line(format_scenario_line(spec), parsed, errors);
                        ASSERT_TRUE(errors.empty())
                            << format_scenario_line(spec) << "\n  -> " << errors.front();
                        ASSERT_EQ(parsed, spec) << format_scenario_line(spec);
                        covered += 1;
                      }
                     }
                     }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  EXPECT_GT(covered, 5000);  // the grid really swept the grammar
}

TEST(ScenarioSpecTest, DefaultSpecFileMatchesBuiltInSet) {
  // examples/scenarios/default.spec is the on-disk mirror of the library's
  // built-in default set; the two must parse to identical scenarios.
  const ScenarioParse built_in = parse_scenario_specs(default_scenario_spec_text());
  ASSERT_TRUE(built_in.ok());
  EXPECT_EQ(built_in.specs.size(), 16u);
  const ScenarioParse file = load_scenario_file(
      std::string(RCONS_SOURCE_DIR) + "/examples/scenarios/default.spec");
  ASSERT_TRUE(file.ok()) << file.errors.front();
  EXPECT_EQ(file.specs, built_in.specs);
}

}  // namespace
}  // namespace rcons::check
