// check::minimize — greedy event deletion against sim::replay. A minimized
// schedule must still reproduce the same typed property on a pristine system,
// be no longer than the original, and be 1-minimal (dropping any single event
// breaks reproduction).
#include "check/minimize.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "rc/naive_register.hpp"
#include "sim/replay.hpp"
#include "typesys/zoo.hpp"

namespace rcons::check {
namespace {

ScenarioSystem naive_register_system(int n) {
  rc::NaiveRegisterSystem built = rc::make_naive_register_system(n);
  ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.properties.valid_outputs = std::move(built.inputs);
  return system;
}

TEST(MinimizeTest, DescriptionsClassifyToTypedProperties) {
  // Legacy artifacts carry only descriptions; the typed layer recovers the
  // kind from the message prefix.
  EXPECT_EQ(sim::property_from_description("agreement violated: process 1 decided 2"),
            sim::PropertyKind::kAgreement);
  EXPECT_EQ(sim::property_from_description("validity violated: process 0 decided 99"),
            sim::PropertyKind::kValidity);
  EXPECT_EQ(
      sim::property_from_description("recoverable wait-freedom violated: process 0"),
      sim::PropertyKind::kWaitFreedom);
  EXPECT_EQ(sim::property_from_description(
                "k-set agreement violated (k=2): process 2 decided 303"),
            sim::PropertyKind::kKSetAgreement);
  EXPECT_EQ(sim::property_from_description(
                "at-most-once decide violated: process 0 decided 7"),
            sim::PropertyKind::kAtMostOnceDecide);
  EXPECT_EQ(sim::property_from_description("state space exceeded max_visited"),
            sim::PropertyKind::kNone);
}

TEST(MinimizeTest, ShrinksAPaddedScheduleToAMinimalOne) {
  // Find a real violation, then pad its schedule with redundant events the
  // minimizer must strip again.
  CheckRequest request;
  request.system = naive_register_system(2);
  request.budget.crash_budget = 0;
  request.strategy = Strategy::kSequentialDFS;
  const CheckReport found = check(std::move(request));
  ASSERT_FALSE(found.clean);
  ASSERT_EQ(found.violation->property, sim::PropertyKind::kAgreement);

  sim::Violation padded = *found.violation;
  // Redundant prefix: a crash before anything ran is a no-op, and stepping a
  // decided process is ignored by replay.
  padded.schedule.insert(padded.schedule.begin(), sim::ScheduleEvent::crash(0));
  padded.schedule.push_back(sim::ScheduleEvent::step(0));

  Budget budget;
  budget.crash_budget = 1;
  const ScenarioSystem pristine = naive_register_system(2);
  const MinimizeResult result = minimize(pristine, budget, padded);

  EXPECT_EQ(result.original_events, padded.schedule.size());
  EXPECT_LT(result.violation.schedule.size(), padded.schedule.size());
  EXPECT_EQ(result.removed_events,
            padded.schedule.size() - result.violation.schedule.size());
  EXPECT_GT(result.replays, 1);
  EXPECT_EQ(result.violation.property, sim::PropertyKind::kAgreement);

  // Still reproduces on a pristine copy, with the same typed property.
  const ScenarioSystem again = naive_register_system(2);
  const sim::ReplayReport replayed = sim::replay(
      again.memory, again.processes, result.violation.schedule, again.properties);
  ASSERT_TRUE(replayed.violation.has_value());
  EXPECT_EQ(replayed.violation->property, sim::PropertyKind::kAgreement);

  // 1-minimal: deleting any single remaining event stops reproduction.
  for (std::size_t i = 0; i < result.violation.schedule.size(); ++i) {
    std::vector<sim::ScheduleEvent> shorter = result.violation.schedule;
    shorter.erase(shorter.begin() + static_cast<std::ptrdiff_t>(i));
    const ScenarioSystem copy = naive_register_system(2);
    const sim::ReplayReport report =
        sim::replay(copy.memory, copy.processes, shorter, copy.properties);
    EXPECT_FALSE(report.violation.has_value() &&
                 report.violation->property == sim::PropertyKind::kAgreement)
        << "schedule not 1-minimal: event " << i << " is deletable";
  }

  // The register race needs exactly: two writes, then two conflicting reads.
  EXPECT_EQ(result.violation.schedule.size(), 4u);
}

TEST(MinimizeTest, AlreadyMinimalScheduleIsUnchanged) {
  // p0 writes and decides its own input before p1 writes; p1 then decides
  // its own — the shortest register-race agreement violation.
  const std::vector<sim::ScheduleEvent> minimal = {
      sim::ScheduleEvent::step(0), sim::ScheduleEvent::step(0),
      sim::ScheduleEvent::step(1), sim::ScheduleEvent::step(1)};
  const ScenarioSystem pristine = naive_register_system(2);
  const sim::ReplayReport direct =
      sim::replay(pristine.memory, pristine.processes, minimal, pristine.properties);
  ASSERT_TRUE(direct.violation.has_value());

  Budget budget;
  const MinimizeResult result = minimize(
      pristine, budget,
      sim::Violation{direct.violation->description, direct.violation->property,
                     direct.violation->param, minimal});
  EXPECT_EQ(result.violation.schedule, minimal);
  EXPECT_EQ(result.removed_events, 0u);
}

TEST(MinimizeTest, NonReproducingViolationIsReturnedUnchanged) {
  // A schedule that replays clean (e.g. from a symmetry-reduced search, or a
  // truncation marker) must pass through untouched.
  const ScenarioSystem pristine = naive_register_system(2);
  sim::Violation bogus{"agreement violated: fabricated",
                       sim::PropertyKind::kAgreement,
                       1,
                       {sim::ScheduleEvent::step(0)}};
  Budget budget;
  const MinimizeResult result = minimize(pristine, budget, bogus);
  EXPECT_EQ(result.violation.schedule, bogus.schedule);
  EXPECT_EQ(result.removed_events, 0u);
  EXPECT_EQ(result.replays, 1);

  sim::Violation truncation{"state space exceeded max_visited; verdict incomplete",
                            sim::PropertyKind::kNone,
                            0,
                            {sim::ScheduleEvent::step(0)}};
  const MinimizeResult untouched = minimize(pristine, budget, truncation);
  EXPECT_EQ(untouched.violation.schedule, truncation.schedule);
  EXPECT_EQ(untouched.replays, 0);
}

}  // namespace
}  // namespace rcons::check
