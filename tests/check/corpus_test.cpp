// The tests/corpus/ regression corpus: every checked-in `.viol` file must
// parse, build its scenario via build_spec_system, and reproduce a violation
// of the recorded property through Strategy::kReplay. Also covers the
// violation-file round trip (format -> parse -> format).
#include "check/violation_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/minimize.hpp"
#include "check/spec_system.hpp"

namespace rcons::check {
namespace {

std::filesystem::path corpus_dir() {
  return std::filesystem::path(RCONS_SOURCE_DIR) / "tests" / "corpus";
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.path().extension() == ".viol") files.push_back(entry.path());
  }
  return files;
}

TEST(CorpusTest, CorpusIsSeeded) {
  // The seed corpus: the halting-TAS crash violation and the register race.
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 2u);
  bool has_halting = false;
  bool has_register_race = false;
  for (const auto& path : files) {
    const std::string name = path.filename().string();
    has_halting = has_halting || name.find("halting") != std::string::npos;
    has_register_race =
        has_register_race || name.find("register") != std::string::npos;
  }
  EXPECT_TRUE(has_halting);
  EXPECT_TRUE(has_register_race);
}

TEST(CorpusTest, EveryCorpusViolationReproducesThroughReplay) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.string());
    const ViolationParse parse = load_violation_file(path.string());
    ASSERT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors.front());
    const ViolationFile& file = *parse.file;
    const sim::PropertyKind property = file.property;
    ASSERT_NE(property, sim::PropertyKind::kNone);

    CheckRequest request;
    request.system = build_spec_system(file.scenario);
    request.budget.crash_model = file.scenario.crash_model;
    request.budget.crash_budget = file.scenario.crash_budget;
    if (file.scenario.max_steps_per_run >= 0) {
      request.budget.max_steps_per_run = file.scenario.max_steps_per_run;
    }
    request.strategy = Strategy::kReplay;
    request.schedule = file.schedule;
    const CheckReport report = check(std::move(request));

    ASSERT_FALSE(report.clean);
    ASSERT_TRUE(report.violation.has_value());
    EXPECT_EQ(report.violation->property, property)
        << report.violation->description;
  }
}

TEST(ViolationIoTest, FormatParseRoundTrip) {
  ViolationFile file;
  file.scenario.type = "test-and-set";
  file.scenario.n = 2;
  file.scenario.crash_budget = 1;
  file.scenario.algo = ScenarioAlgo::kHaltingTournament;
  file.property = sim::PropertyKind::kAgreement;
  file.description = "agreement violated: process 1 decided 2 but earlier was 1";
  file.schedule = {sim::ScheduleEvent::step(0), sim::ScheduleEvent::crash(0),
                   sim::ScheduleEvent::crash_all(), sim::ScheduleEvent::step(1)};

  const std::string text = format_violation_file(file);
  const ViolationParse parse = parse_violation_file(text);
  ASSERT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors.front());
  EXPECT_EQ(parse.file->scenario, file.scenario);
  EXPECT_EQ(parse.file->property, file.property);
  EXPECT_EQ(parse.file->description, file.description);
  EXPECT_EQ(parse.file->schedule, file.schedule);
  // Formatting the parse reproduces the text (canonical form).
  EXPECT_EQ(format_violation_file(*parse.file), text);
}

TEST(ViolationIoTest, LegacyFilesRecoverThePropertyFromTheDescription) {
  // Files written before violations were typed have no `property` line; the
  // parser classifies the description's message prefix instead.
  const ViolationParse parse = parse_violation_file(
      "scenario type=register algo=naive-register n=2\n"
      "description agreement violated: process 1 decided 2\n"
      "step 0\n");
  ASSERT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors.front());
  EXPECT_EQ(parse.file->property, sim::PropertyKind::kAgreement);
}

TEST(ViolationIoTest, PropertyLineCarriesTypedKindAndParam) {
  const ViolationParse parse = parse_violation_file(
      "scenario type=Sn(2) algo=k-set n=3 k=2 "
      "properties=k-set-agreement,validity\n"
      "property k-set-agreement 2\n"
      "description k-set agreement violated (k=2): process 0 decided 101\n"
      "step 1\n");
  ASSERT_TRUE(parse.ok()) << (parse.errors.empty() ? "" : parse.errors.front());
  EXPECT_EQ(parse.file->property, sim::PropertyKind::kKSetAgreement);
  EXPECT_EQ(parse.file->property_param, 2);

  const ViolationParse bad = parse_violation_file(
      "scenario type=register algo=naive-register n=2\n"
      "property frobnication\n"
      "description agreement violated: x\n"
      "step 0\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("unknown property"), std::string::npos);
}

TEST(ViolationIoTest, ParseReportsStructuralErrors) {
  const ViolationParse missing = parse_violation_file("step 0\n");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.errors.size(), 2u);  // no scenario, no description

  const ViolationParse bad_event = parse_violation_file(
      "scenario type=register algo=naive-register n=2\n"
      "description agreement violated: x\n"
      "step minus-one\n"
      "frobnicate\n"
      "step 0\n");
  EXPECT_FALSE(bad_event.ok());
  EXPECT_EQ(bad_event.errors.size(), 2u);

  const ViolationParse bad_scenario = parse_violation_file(
      "scenario type=no-such-type n=2\n"
      "description agreement violated: x\n"
      "step 0\n");
  EXPECT_FALSE(bad_scenario.ok());

  // Replay would assert on an out-of-range process; the parser must report
  // it as an error instead.
  const ViolationParse out_of_range = parse_violation_file(
      "scenario type=register algo=naive-register n=2\n"
      "description agreement violated: x\n"
      "step 0\n"
      "step 7\n");
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_NE(out_of_range.errors.front().find("out of range"), std::string::npos);
}

TEST(ViolationIoTest, SaveAndLoadRoundTripsThroughDisk) {
  ViolationFile file;
  file.scenario.type = "register";
  file.scenario.algo = ScenarioAlgo::kNaiveRegister;
  file.scenario.crash_budget = 0;
  file.description = "agreement violated: round trip";
  file.schedule = {sim::ScheduleEvent::step(0), sim::ScheduleEvent::step(1)};

  const auto path = std::filesystem::temp_directory_path() / "rcons_roundtrip.viol";
  ASSERT_TRUE(save_violation_file(path.string(), file));
  const ViolationParse loaded = load_violation_file(path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.file->scenario, file.scenario);
  EXPECT_EQ(loaded.file->schedule, file.schedule);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rcons::check
