// The unified facade: one check(CheckRequest) entry point must route to all
// four backends, report the strategy it actually used, and produce verdicts
// that agree across backends on the same system.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"

namespace rcons::check {
namespace {

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

// Deliberately broken "consensus": write your input, decide what you read —
// register non-solvability, so every exhaustive backend must find an
// agreement violation even without crashes.
struct BrokenConsensus {
  sim::RegId reg = 0;
  typesys::Value input = 0;
  int pc = 0;

  sim::StepResult step(sim::Memory& memory) {
    if (pc == 0) {
      memory.write(reg, input);
      pc = 1;
      return sim::StepResult::running();
    }
    return sim::StepResult::decided(memory.read(reg));
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(pc); }
};

struct ConstantDecider {
  typesys::Value value = 0;
  sim::StepResult step(sim::Memory&) { return sim::StepResult::decided(value); }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(0); }
};

CheckRequest broken_request() {
  CheckRequest request;
  const sim::RegId reg = request.system.memory.add_register();
  request.system.processes.emplace_back(BrokenConsensus{reg, 1, 0});
  request.system.processes.emplace_back(BrokenConsensus{reg, 2, 0});
  request.system.properties.valid_outputs = {1, 2};
  request.budget.crash_budget = 0;
  return request;
}

CheckRequest team_request(const std::string& type_name, int n, int crash_budget) {
  auto type = typesys::make_type(type_name);
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, n, kInputA, kInputB);
  CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {kInputA, kInputB};
  request.budget.crash_budget = crash_budget;
  return request;
}

TEST(CheckTest, SequentialDfsFindsViolationWithReplayableSchedule) {
  CheckRequest request = broken_request();
  request.strategy = Strategy::kSequentialDFS;
  const CheckReport report = check(std::move(request));
  EXPECT_EQ(report.strategy, Strategy::kSequentialDFS);
  EXPECT_FALSE(report.clean);
  EXPECT_TRUE(report.complete);  // a found violation is a definitive verdict
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_NE(report.violation->description.find("agreement"), std::string::npos);
  EXPECT_FALSE(report.violation->schedule.empty());
}

TEST(CheckTest, ParallelBfsAgreesWithSequential) {
  CheckRequest sequential_request = team_request("Sn(2)", 2, 3);
  sequential_request.strategy = Strategy::kSequentialDFS;
  const CheckReport sequential = check(std::move(sequential_request));

  CheckRequest parallel_request = team_request("Sn(2)", 2, 3);
  parallel_request.strategy = Strategy::kParallelBFS;
  parallel_request.num_threads = 4;
  const CheckReport parallel = check(std::move(parallel_request));

  EXPECT_EQ(parallel.strategy, Strategy::kParallelBFS);
  EXPECT_EQ(sequential.clean, parallel.clean);
  EXPECT_TRUE(parallel.complete);
  EXPECT_EQ(sequential.stats.visited, parallel.stats.visited);
  EXPECT_EQ(sequential.stats.transitions, parallel.stats.transitions);
}

TEST(CheckTest, AutoStaysSequentialOnSmallStateSpaces) {
  CheckRequest request = team_request("Sn(2)", 2, 2);
  request.strategy = Strategy::kAuto;
  const CheckReport report = check(std::move(request));
  EXPECT_EQ(report.strategy, Strategy::kSequentialDFS);
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.complete);
}

TEST(CheckTest, AutoEscalatesToParallelWhenProbeTruncates) {
  // Force escalation by making the probe tiny: the full state space (a few
  // thousand states) exceeds it, so the facade must re-run on the engine —
  // and the engine must still deliver the complete verdict.
  CheckRequest sequential_request = team_request("Sn(2)", 2, 3);
  sequential_request.strategy = Strategy::kSequentialDFS;
  const CheckReport sequential = check(std::move(sequential_request));
  ASSERT_GT(sequential.stats.visited, 100u);

  CheckRequest request = team_request("Sn(2)", 2, 3);
  request.strategy = Strategy::kAuto;
  request.auto_probe_limit = 100;
  request.num_threads = 2;
  const CheckReport report = check(std::move(request));
  EXPECT_EQ(report.strategy, Strategy::kParallelBFS);
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.stats.visited, sequential.stats.visited);
}

TEST(CheckTest, AutoRespectsRealBudgetTruncation) {
  // When max_visited itself is below the probe limit, a truncated probe IS
  // the final answer (the engine would truncate too): no escalation.
  CheckRequest request = team_request("Sn(3)", 3, 2);
  request.strategy = Strategy::kAuto;
  request.budget.max_visited = 50;
  const CheckReport report = check(std::move(request));
  EXPECT_EQ(report.strategy, Strategy::kSequentialDFS);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.stats.truncated);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_NE(report.violation->description.find("max_visited"), std::string::npos);
}

TEST(CheckTest, RandomizedAggregatesRunsAndStaysIncompleteAsProof) {
  CheckRequest request = team_request("Sn(3)", 3, 2);
  request.strategy = Strategy::kRandomized;
  request.runs = 25;
  request.seed = 3;
  request.crash_per_mille = 200;
  const CheckReport report = check(std::move(request));
  EXPECT_EQ(report.strategy, Strategy::kRandomized);
  EXPECT_TRUE(report.clean);
  EXPECT_FALSE(report.complete);  // sampling proves nothing
  EXPECT_EQ(report.runs, 25);
  EXPECT_EQ(report.incomplete_runs, 0);
  EXPECT_GT(report.total_steps, 0);
}

TEST(CheckTest, RandomizedViolationCarriesReplayableSchedule) {
  CheckRequest request = broken_request();
  request.strategy = Strategy::kRandomized;
  request.runs = 50;  // the broken race is dirty enough to hit quickly
  const CheckReport report = check(std::move(request));
  ASSERT_FALSE(report.clean);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_FALSE(report.violation->schedule.empty());

  // Round-trip: replay the recorded schedule through the facade.
  CheckRequest replay_request = broken_request();
  replay_request.strategy = Strategy::kReplay;
  replay_request.schedule = report.violation->schedule;
  const CheckReport replayed = check(std::move(replay_request));
  EXPECT_EQ(replayed.strategy, Strategy::kReplay);
  ASSERT_FALSE(replayed.clean);
  EXPECT_NE(replayed.violation->description.find("agreement"), std::string::npos);
}

TEST(CheckTest, ReplayReportsDecisionsAndOutputs) {
  CheckRequest request = broken_request();
  request.strategy = Strategy::kReplay;
  request.schedule = {sim::ScheduleEvent::step(0), sim::ScheduleEvent::step(1),
                      sim::ScheduleEvent::step(0), sim::ScheduleEvent::step(1)};
  const CheckReport report = check(std::move(request));
  EXPECT_TRUE(report.clean);  // p0 and p1 both read 2: agreement holds
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(report.decisions.size(), 2u);
  EXPECT_EQ(report.decisions[0], 2);
  EXPECT_EQ(report.decisions[1], 2);
  EXPECT_EQ(report.outputs.size(), 2u);
}

TEST(CheckTest, SystemPropertySetIsTheOneSourceOfValidity) {
  // The old Budget.valid_outputs / system.valid_outputs dual fallback is
  // gone: the system's PropertySet owns the validity set, and tightening it
  // is a property-set edit, not a budget knob.
  CheckRequest request;
  request.system.processes.emplace_back(ConstantDecider{2});
  request.system.properties.valid_outputs = {1};  // 2 is not a valid output
  request.budget.crash_budget = 0;
  request.strategy = Strategy::kSequentialDFS;
  const CheckReport report = check(std::move(request));
  ASSERT_FALSE(report.clean);
  EXPECT_EQ(report.violation->property, sim::PropertyKind::kValidity);
  EXPECT_NE(report.violation->description.find("validity"), std::string::npos);
}

TEST(CheckTest, ReportsNodeStoreStatsOnDecodableSystems) {
  // Team-consensus programs decode, so exhaustive strategies run on the
  // compact interned representation and the report carries store stats.
  auto type = typesys::make_type("Sn(2)");
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, 2, kInputA, kInputB);
  CheckRequest request;
  request.system.memory = system.memory;
  request.system.processes = system.processes;
  request.system.properties.valid_outputs = {kInputA, kInputB};
  request.budget.crash_budget = 2;
  request.strategy = Strategy::kSequentialDFS;
  const CheckReport report = check(std::move(request));
  ASSERT_TRUE(report.clean);
  EXPECT_TRUE(report.stats.compact);
  EXPECT_EQ(report.stats.store.nodes, report.stats.visited + 1);  // + root
  EXPECT_GT(report.stats.store.bytes_per_node(), 0.0);
  EXPECT_GT(report.stats.store.encodes, report.stats.visited);
  EXPECT_EQ(report.stats.store.canonical_hits, 0u);  // no declaration given
}

TEST(CheckTest, SymmetryDeclarationShrinksVisitedSetThroughFacade) {
  auto type = typesys::make_type("Sn(3)");
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, 3, kInputA, kInputB);

  auto request_for = [&](bool symmetric) {
    CheckRequest request;
    request.system.memory = system.memory;
    request.system.processes = system.processes;
    request.system.properties.valid_outputs = {kInputA, kInputB};
    if (symmetric) request.system.symmetry_classes = system.symmetry_classes;
    request.budget.crash_budget = 1;
    request.strategy = Strategy::kSequentialDFS;
    return request;
  };

  const CheckReport plain = check(request_for(false));
  const CheckReport reduced = check(request_for(true));
  ASSERT_TRUE(plain.clean);
  ASSERT_TRUE(reduced.clean);
  EXPECT_LE(reduced.stats.visited, plain.stats.visited);
  EXPECT_GT(reduced.stats.store.canonical_hit_rate(), 0.0);
}

TEST(CheckTest, LegacyRepresentationStillWorksThroughFacade) {
  // Programs without decode() (like this test's BrokenConsensus) fall back
  // to clone-based nodes; forcing kLegacy on a decodable system works too.
  CheckRequest request;
  const sim::RegId reg = request.system.memory.add_register();
  request.system.processes.emplace_back(BrokenConsensus{reg, 1, 0});
  request.system.processes.emplace_back(BrokenConsensus{reg, 2, 0});
  request.system.properties.valid_outputs = {1, 2};
  request.budget.crash_budget = 0;
  request.strategy = Strategy::kParallelBFS;
  const CheckReport report = check(std::move(request));
  ASSERT_FALSE(report.clean);
  EXPECT_FALSE(report.stats.compact);
  EXPECT_EQ(report.stats.store.nodes, 0u);
}

TEST(CheckTest, WallTimeIsReported) {
  CheckRequest request = team_request("Sn(2)", 2, 1);
  const CheckReport report = check(std::move(request));
  EXPECT_GE(report.seconds, 0.0);
}

}  // namespace
}  // namespace rcons::check
