// The acceptance pair for the typed property layer, driven from spec grammar
// (examples/scenarios/k_set.spec): over the same weak type (Sn(2), 2- but not
// 3-recording), the algo=k-set system is provably clean for
// (2,3)-set agreement while its plain-consensus check violates agreement —
// and all four execution backends (kSequentialDFS, kParallelBFS, kRandomized,
// kReplay) report that violation with the identical typed property.
#include <gtest/gtest.h>

#include <string>

#include "check/check.hpp"
#include "check/minimize.hpp"
#include "check/scenario_spec.hpp"
#include "check/spec_system.hpp"
#include "check/violation_io.hpp"

namespace rcons::check {
namespace {

ScenarioParse load_pair() {
  return load_scenario_file(std::string(RCONS_SOURCE_DIR) +
                            "/examples/scenarios/k_set.spec");
}

CheckRequest request_for(const ScenarioSpec& spec, Strategy strategy) {
  CheckRequest request;
  request.system = build_spec_system(spec);
  request.budget.crash_model = spec.crash_model;
  request.budget.crash_budget = spec.crash_budget;
  request.strategy = strategy;
  return request;
}

TEST(KSetPropertyTest, SpecFileParsesToTheCleanViolatingPair) {
  const ScenarioParse parse = load_pair();
  ASSERT_TRUE(parse.ok()) << parse.errors.front();
  ASSERT_EQ(parse.specs.size(), 2u);
  EXPECT_EQ(parse.specs[0].algo, ScenarioAlgo::kKSetTeamConsensus);
  EXPECT_EQ(parse.specs[0].k, 2);
  EXPECT_EQ(parse.specs[0].properties,
            (std::vector<sim::PropertyKind>{sim::PropertyKind::kKSetAgreement,
                                            sim::PropertyKind::kValidity,
                                            sim::PropertyKind::kWaitFreedom}));
  EXPECT_EQ(parse.specs[1].properties.front(), sim::PropertyKind::kAgreement);

  // The built system carries the typed set: k-set agreement with k=2.
  const ScenarioSystem clean_system = build_spec_system(parse.specs[0]);
  EXPECT_EQ(clean_system.properties.agreement_k(), 2);
  EXPECT_FALSE(clean_system.properties.valid_outputs.empty());
}

TEST(KSetPropertyTest, KSetScenarioIsProvablyCleanOnBothExhaustiveBackends) {
  const ScenarioParse parse = load_pair();
  ASSERT_TRUE(parse.ok());
  const ScenarioSpec& clean_spec = parse.specs[0];

  const CheckReport dfs = check(request_for(clean_spec, Strategy::kSequentialDFS));
  EXPECT_TRUE(dfs.clean) << dfs.violation->description;
  EXPECT_TRUE(dfs.complete);

  CheckRequest parallel = request_for(clean_spec, Strategy::kParallelBFS);
  parallel.num_threads = 4;
  const CheckReport bfs = check(std::move(parallel));
  EXPECT_TRUE(bfs.clean) << bfs.violation->description;
  EXPECT_TRUE(bfs.complete);
  EXPECT_EQ(bfs.stats.visited, dfs.stats.visited);
}

TEST(KSetPropertyTest, AllFourBackendsReportTheIdenticalTypedAgreementViolation) {
  const ScenarioParse parse = load_pair();
  ASSERT_TRUE(parse.ok());
  const ScenarioSpec& violating_spec = parse.specs[1];

  // Sequential DFS: the deterministic first violation.
  const CheckReport dfs = check(request_for(violating_spec, Strategy::kSequentialDFS));
  ASSERT_FALSE(dfs.clean);
  ASSERT_TRUE(dfs.violation.has_value());
  EXPECT_EQ(dfs.violation->property, sim::PropertyKind::kAgreement);
  EXPECT_EQ(dfs.violation->property_param, 1);

  // Parallel BFS: the lexicographically lowest violation — same typed
  // property, and (both being deterministic orders over the same graph) the
  // identical description and schedule here.
  CheckRequest parallel = request_for(violating_spec, Strategy::kParallelBFS);
  parallel.num_threads = 4;
  const CheckReport bfs = check(std::move(parallel));
  ASSERT_FALSE(bfs.clean);
  EXPECT_EQ(bfs.violation->property, sim::PropertyKind::kAgreement);

  // Randomized: sampled schedules hit the same typed property.
  CheckRequest random = request_for(violating_spec, Strategy::kRandomized);
  random.runs = 200;
  random.seed = 7;
  const CheckReport sampled = check(std::move(random));
  ASSERT_FALSE(sampled.clean);
  EXPECT_EQ(sampled.violation->property, sim::PropertyKind::kAgreement);

  // Replay: both explorer schedules reproduce their exact violation —
  // property AND description — through the fourth backend.
  for (const CheckReport* found : {&dfs, &bfs}) {
    CheckRequest replay = request_for(violating_spec, Strategy::kReplay);
    replay.schedule = found->violation->schedule;
    const CheckReport replayed = check(std::move(replay));
    ASSERT_FALSE(replayed.clean);
    EXPECT_EQ(replayed.violation->property, sim::PropertyKind::kAgreement);
    EXPECT_EQ(replayed.violation->description, found->violation->description);
  }

  // And the randomized schedule reproduces its typed property too.
  CheckRequest replay = request_for(violating_spec, Strategy::kReplay);
  replay.schedule = sampled.violation->schedule;
  const CheckReport replayed = check(std::move(replay));
  ASSERT_FALSE(replayed.clean);
  EXPECT_EQ(replayed.violation->property, sim::PropertyKind::kAgreement);
  EXPECT_EQ(replayed.violation->description, sampled.violation->description);
}

TEST(KSetPropertyTest, TypedPropertySurvivesMinimizeAndViolationFiles) {
  const ScenarioParse parse = load_pair();
  ASSERT_TRUE(parse.ok());
  const ScenarioSpec& violating_spec = parse.specs[1];
  const CheckReport dfs = check(request_for(violating_spec, Strategy::kSequentialDFS));
  ASSERT_FALSE(dfs.clean);

  // The k-set consensus counterexample: both groups decide different values
  // — the shortest such schedule is tiny, and the property tag must survive.
  const ScenarioSystem pristine = build_spec_system(violating_spec);
  Budget budget;
  budget.crash_budget = violating_spec.crash_budget;
  const MinimizeResult minimized = minimize(pristine, budget, *dfs.violation);
  EXPECT_EQ(minimized.violation.property, sim::PropertyKind::kAgreement);
  EXPECT_LE(minimized.violation.schedule.size(), dfs.violation->schedule.size());

  ViolationFile file;
  file.scenario = violating_spec;
  file.property = minimized.violation.property;
  file.property_param = minimized.violation.property_param;
  file.description = minimized.violation.description;
  file.schedule = minimized.violation.schedule;
  const ViolationParse round_trip = parse_violation_file(format_violation_file(file));
  ASSERT_TRUE(round_trip.ok()) << round_trip.errors.front();
  EXPECT_EQ(round_trip.file->property, sim::PropertyKind::kAgreement);
  EXPECT_EQ(round_trip.file->scenario, violating_spec);
}

}  // namespace
}  // namespace rcons::check
