// Chrome trace-event export round-trip: spans recorded through the Tracer
// must come back out as JSON the validator (and therefore Perfetto) accepts,
// and the validator itself must reject the malformed shapes it exists to
// catch — otherwise the CI smoke step that gates on it proves nothing.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"

namespace rcons::obs {
namespace {

std::string export_trace(const Tracer& tracer) {
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  return out.str();
}

bool validate(const std::string& json, std::string* error = nullptr) {
  std::istringstream in(json);
  return validate_chrome_trace(in, error);
}

TEST(TraceTest, NestedSpansRoundTripThroughValidator) {
  Tracer tracer;
  {
    Span outer(&tracer, 0, "check");
    {
      Span inner(&tracer, 0, "explore");
      tracer.instant(0, "auto_select");
    }
    Span sibling(&tracer, 0, "minimize");
  }
  tracer.set_lane_name(0, "coordinator");
  EXPECT_EQ(tracer.events_recorded(), 4u);
  EXPECT_EQ(tracer.events_dropped(), 0u);

  const std::string json = export_trace(tracer);
  std::string error;
  EXPECT_TRUE(validate(json, &error)) << error;
  EXPECT_NE(json.find("\"explore\""), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
}

TEST(TraceTest, WorkerLanesStayOffLaneZeroAndWrap) {
  Tracer tracer(/*lanes=*/4);
  EXPECT_EQ(tracer.worker_lane(0), 1u);
  EXPECT_EQ(tracer.worker_lane(2), 3u);
  EXPECT_EQ(tracer.worker_lane(3), 1u);  // 1 + 3 % 3: wraps past lane count
  for (int worker = 0; worker < 8; ++worker) {
    EXPECT_GE(tracer.worker_lane(worker), 1u);
    EXPECT_LT(tracer.worker_lane(worker), tracer.lanes());
  }
}

TEST(TraceTest, BoundedLanesCountDropsAndStillExportValidJson) {
  Tracer tracer(/*lanes=*/2, /*max_events_per_lane=*/4);
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t now = tracer.now_us();
    tracer.complete(0, "expand_batch", now, now);
  }
  EXPECT_EQ(tracer.events_recorded(), 4u);
  EXPECT_EQ(tracer.events_dropped(), 6u);
  std::string error;
  EXPECT_TRUE(validate(export_trace(tracer), &error)) << error;
}

TEST(TraceTest, NullTracerSpansAreNoOps) {
  Span span(nullptr, 0, "check");
  span.close();  // must not crash; nothing to flush
}

TEST(TraceValidatorTest, RejectsGarbageAndEmptyTraces) {
  std::string error;
  EXPECT_FALSE(validate("not json at all", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(validate("{\"traceEvents\":[]}", &error));
  EXPECT_FALSE(validate("{\"somethingElse\":1}", &error));
}

TEST(TraceValidatorTest, RejectsPartiallyOverlappingSpans) {
  // [0,100] and [50,150] on one thread: neither disjoint nor nested. A tracer
  // can never emit this (RAII closes in reverse order), so seeing it means
  // the file was not produced by this pipeline — the validator must say no.
  const std::string overlapping =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":100},"
      "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":50,\"dur\":100}"
      "]}";
  std::string error;
  EXPECT_FALSE(validate(overlapping, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceValidatorTest, AcceptsTouchingSiblingsAndSeparateThreads) {
  // Boundary-touching spans are siblings, not overlaps; other (pid, tid)
  // pairs nest independently.
  const std::string touching =
      "{\"traceEvents\":["
      "{\"name\":\"worker\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":200},"
      "{\"name\":\"steal\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":100},"
      "{\"name\":\"expand_batch\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":100,"
      "\"dur\":100},"
      "{\"name\":\"worker\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":50,\"dur\":100}"
      "]}";
  std::string error;
  EXPECT_TRUE(validate(touching, &error)) << error;
}

TEST(TraceTest, FullCheckEmitsPhaseAndWorkerSpans) {
  auto type = typesys::make_type("Sn(2)");
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, 2, 101, 202);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {101, 202};
  request.budget.crash_budget = 2;
  request.strategy = check::Strategy::kParallelBFS;
  request.num_threads = 2;

  Tracer tracer;
  request.obs.tracer = &tracer;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean);

  const std::string json = export_trace(tracer);
  std::string error;
  ASSERT_TRUE(validate(json, &error)) << error;
  EXPECT_NE(json.find("\"check\""), std::string::npos);
  EXPECT_NE(json.find("\"explore\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\""), std::string::npos);
  EXPECT_NE(json.find("\"expand_batch\""), std::string::npos);
}

}  // namespace
}  // namespace rcons::obs
